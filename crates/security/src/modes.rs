//! Cipher modes: CTR keystream encryption and GCM authenticated
//! encryption with GHASH over GF(2¹²⁸), per NIST SP 800-38D.

use crate::aes::Aes128;
use crate::error::{SecurityError, SecurityResult};

/// Length of the GCM authentication tag in bytes.
pub const TAG_LEN: usize = 16;
/// Required nonce length in bytes (the 96-bit fast path).
pub const NONCE_LEN: usize = 12;

/// Multiplies two elements of GF(2¹²⁸) with the GCM polynomial
/// x¹²⁸ + x⁷ + x² + x + 1 (bit-reflected convention).
fn gf_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= 0xe1 << 120;
        }
    }
    z
}

fn block_to_u128(block: &[u8]) -> u128 {
    let mut padded = [0u8; 16];
    padded[..block.len()].copy_from_slice(block);
    u128::from_be_bytes(padded)
}

/// GHASH over the concatenation of AAD and ciphertext with length block.
fn ghash(h: u128, aad: &[u8], ct: &[u8]) -> u128 {
    let mut y = 0u128;
    for chunk in aad.chunks(16) {
        y = gf_mul(y ^ block_to_u128(chunk), h);
    }
    for chunk in ct.chunks(16) {
        y = gf_mul(y ^ block_to_u128(chunk), h);
    }
    let lengths = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
    gf_mul(y ^ lengths, h)
}

/// AES-128 in counter mode (also the keystream generator inside GCM).
#[derive(Debug, Clone)]
pub struct AesCtr {
    cipher: Aes128,
}

impl AesCtr {
    /// Creates a CTR context from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> AesCtr {
        AesCtr { cipher: Aes128::new(key) }
    }

    /// XORs `data` with the keystream for (`nonce`, starting counter
    /// `ctr0`). Encryption and decryption are the same operation.
    pub fn apply(&self, nonce: &[u8; NONCE_LEN], ctr0: u32, data: &mut [u8]) {
        let mut counter_block = [0u8; 16];
        counter_block[..12].copy_from_slice(nonce);
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            let ctr = ctr0.wrapping_add(i as u32);
            counter_block[12..].copy_from_slice(&ctr.to_be_bytes());
            let ks = self.cipher.encrypt_block(&counter_block);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

/// AES-128-GCM authenticated encryption.
#[derive(Debug, Clone)]
pub struct AesGcm {
    cipher: Aes128,
    h: u128,
}

impl AesGcm {
    /// Creates a GCM context from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> AesGcm {
        let cipher = Aes128::new(key);
        let h = u128::from_be_bytes(cipher.encrypt_block(&[0u8; 16]));
        AesGcm { cipher, h }
    }

    /// Encrypts `plaintext` and appends the 16-byte tag. `aad` is
    /// authenticated but not encrypted.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let ctr = AesCtr { cipher: self.cipher.clone() };
        let mut out = plaintext.to_vec();
        ctr.apply(nonce, 2, &mut out); // counter 1 is reserved for the tag
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies the tag and decrypts; refuses tampered inputs.
    ///
    /// # Errors
    ///
    /// [`SecurityError::TruncatedCiphertext`] if `sealed` is shorter than
    /// the tag; [`SecurityError::InvalidTag`] if authentication fails.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        sealed: &[u8],
        aad: &[u8],
    ) -> SecurityResult<Vec<u8>> {
        if sealed.len() < TAG_LEN {
            return Err(SecurityError::TruncatedCiphertext);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.tag(nonce, aad, ct);
        // Constant-time-ish comparison.
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(SecurityError::InvalidTag);
        }
        let ctr = AesCtr { cipher: self.cipher.clone() };
        let mut out = ct.to_vec();
        ctr.apply(nonce, 2, &mut out);
        Ok(out)
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ct: &[u8]) -> [u8; TAG_LEN] {
        let s = ghash(self.h, aad, ct);
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        let e = u128::from_be_bytes(self.cipher.encrypt_block(&j0));
        (s ^ e).to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn nist_gcm_test_case_1_empty() {
        // Key = 0, IV = 0, empty plaintext/aad: tag must be
        // 58e2fccefa7e3061367f1d57a4e7455a.
        let gcm = AesGcm::new(&[0u8; 16]);
        let sealed = gcm.seal(&[0u8; 12], b"", b"");
        assert_eq!(sealed, hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    #[test]
    fn nist_gcm_test_case_2_one_block() {
        // Key = 0, IV = 0, one zero block.
        let gcm = AesGcm::new(&[0u8; 16]);
        let sealed = gcm.seal(&[0u8; 12], &[0u8; 16], b"");
        let expected_ct = hex("0388dace60b6a392f328c2b971b2fe78");
        let expected_tag = hex("ab6e47d42cec13bdf53a67b21257bddf");
        assert_eq!(&sealed[..16], &expected_ct[..]);
        assert_eq!(&sealed[16..], &expected_tag[..]);
    }

    #[test]
    fn nist_gcm_test_case_3_four_blocks() {
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let nonce: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex("d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
        let gcm = AesGcm::new(&key);
        let sealed = gcm.seal(&nonce, &pt, b"");
        let expected_ct = hex("42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985");
        let expected_tag = hex("4d5c2af327cd64a62cf35abd2ba6fab4");
        assert_eq!(&sealed[..64], &expected_ct[..]);
        assert_eq!(&sealed[64..], &expected_tag[..]);
        // And decryption round-trips.
        assert_eq!(gcm.open(&nonce, &sealed, b"").unwrap(), pt);
    }

    #[test]
    fn tampering_is_detected() {
        let gcm = AesGcm::new(&[5u8; 16]);
        let nonce = [9u8; 12];
        let mut sealed = gcm.seal(&nonce, b"sensor reading: 42", b"meta");
        sealed[3] ^= 0x01;
        assert_eq!(gcm.open(&nonce, &sealed, b"meta"), Err(SecurityError::InvalidTag));
    }

    #[test]
    fn wrong_aad_is_detected() {
        let gcm = AesGcm::new(&[5u8; 16]);
        let nonce = [9u8; 12];
        let sealed = gcm.seal(&nonce, b"payload", b"header-a");
        assert_eq!(gcm.open(&nonce, &sealed, b"header-b"), Err(SecurityError::InvalidTag));
    }

    #[test]
    fn truncated_input_rejected() {
        let gcm = AesGcm::new(&[5u8; 16]);
        assert_eq!(gcm.open(&[0u8; 12], &[1, 2, 3], b""), Err(SecurityError::TruncatedCiphertext));
    }

    #[test]
    fn ctr_round_trips_odd_lengths() {
        let ctr = AesCtr::new(&[3u8; 16]);
        let nonce = [7u8; 12];
        for len in [0usize, 1, 15, 16, 17, 100] {
            let original: Vec<u8> = (0..len as u8).collect();
            let mut buf = original.clone();
            ctr.apply(&nonce, 1, &mut buf);
            if len > 0 {
                assert_ne!(buf, original);
            }
            ctr.apply(&nonce, 1, &mut buf);
            assert_eq!(buf, original);
        }
    }

    #[test]
    fn gf_mul_is_commutative() {
        let a = 0x0123456789abcdef_0123456789abcdefu128;
        let b = 0xfedcba9876543210_fedcba9876543210u128;
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
    }
}
