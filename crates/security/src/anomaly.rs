//! Hardware-monitor models and the auto-protection policy engine.
//!
//! "Dedicated hardware monitors will detect anomalies with respect to the
//! expected data behaviors (timing patterns, access patterns, typical
//! sizes and ranges), activating proper dynamic adaptation in the form of
//! 'auto-protection'" (paper III-B). Three monitors mirror those signal
//! classes; [`AutoProtect`] aggregates their alarms into actions the
//! runtime executes.

use std::collections::VecDeque;

/// Timing monitor: tracks an exponential moving average and variance of
/// observed latencies; flags observations too many sigmas from the mean.
#[derive(Debug, Clone)]
pub struct TimingMonitor {
    mean: f64,
    var: f64,
    alpha: f64,
    threshold_sigma: f64,
    warmup: usize,
    seen: usize,
}

impl TimingMonitor {
    /// Creates a monitor with smoothing factor `alpha` (0..1) and an alarm
    /// threshold in standard deviations.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1` and `threshold_sigma > 0`.
    pub fn new(alpha: f64, threshold_sigma: f64) -> TimingMonitor {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        assert!(threshold_sigma > 0.0, "threshold must be positive");
        TimingMonitor { mean: 0.0, var: 0.0, alpha, threshold_sigma, warmup: 16, seen: 0 }
    }

    /// Feeds one latency observation; returns `true` when it is anomalous.
    pub fn observe(&mut self, latency_us: f64) -> bool {
        self.seen += 1;
        if self.seen == 1 {
            self.mean = latency_us;
            self.var = 0.0;
            return false;
        }
        let sigma = self.var.sqrt();
        let anomalous = self.seen > self.warmup
            && sigma > 0.0
            && (latency_us - self.mean).abs() > self.threshold_sigma * sigma;
        if !anomalous {
            // Only clean samples update the profile (so an attack cannot
            // slowly poison the baseline).
            let delta = latency_us - self.mean;
            self.mean += self.alpha * delta;
            self.var = (1.0 - self.alpha) * (self.var + self.alpha * delta * delta);
        }
        anomalous
    }

    /// Current latency estimate.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

/// Access-pattern monitor: learns the stride histogram of addresses during
/// a training phase, then flags accesses whose stride was never seen
/// (e.g. a buffer-overflow scan has stride patterns unlike the kernel's).
#[derive(Debug, Clone)]
pub struct AccessMonitor {
    last: Option<u64>,
    known_strides: Vec<i64>,
    training: bool,
    window: VecDeque<bool>,
    window_len: usize,
}

impl AccessMonitor {
    /// Creates a monitor that flags when more than half the last
    /// `window_len` accesses had unknown strides.
    pub fn new(window_len: usize) -> AccessMonitor {
        AccessMonitor {
            last: None,
            known_strides: Vec::new(),
            training: true,
            window: VecDeque::new(),
            window_len: window_len.max(1),
        }
    }

    /// Ends the training phase; subsequent unknown strides count as
    /// suspicious.
    pub fn freeze(&mut self) {
        self.training = false;
    }

    /// Feeds one address; returns `true` when the recent window is
    /// majority-suspicious.
    pub fn observe(&mut self, addr: u64) -> bool {
        let stride = self.last.map(|l| addr as i64 - l as i64);
        self.last = Some(addr);
        let Some(stride) = stride else {
            return false;
        };
        if self.training {
            if !self.known_strides.contains(&stride) {
                self.known_strides.push(stride);
            }
            return false;
        }
        let suspicious = !self.known_strides.contains(&stride);
        self.window.push_back(suspicious);
        if self.window.len() > self.window_len {
            self.window.pop_front();
        }
        let bad = self.window.iter().filter(|s| **s).count();
        self.window.len() == self.window_len && bad * 2 > self.window_len
    }
}

/// Value-range monitor: expected [lo, hi] interval for a data field.
#[derive(Debug, Clone, Copy)]
pub struct RangeMonitor {
    lo: f64,
    hi: f64,
}

impl RangeMonitor {
    /// Creates a monitor for the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> RangeMonitor {
        assert!(lo <= hi, "empty range");
        RangeMonitor { lo, hi }
    }

    /// `true` when `value` falls outside the expected range.
    pub fn observe(&self, value: f64) -> bool {
        !(self.lo..=self.hi).contains(&value)
    }
}

/// Actions the auto-protection policy can demand from the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtectAction {
    /// Nothing to do.
    None,
    /// Log and keep watching.
    Audit,
    /// Switch to a hardened (encrypted / DIFT-enabled) variant.
    SwitchHardenedVariant,
    /// Quarantine the task: stop scheduling it on shared resources.
    Isolate,
}

/// Aggregates monitor alarms into escalating actions.
#[derive(Debug, Clone, Default)]
pub struct AutoProtect {
    timing_alarms: usize,
    access_alarms: usize,
    range_alarms: usize,
}

impl AutoProtect {
    /// Creates a policy engine with zeroed counters.
    pub fn new() -> AutoProtect {
        AutoProtect::default()
    }

    /// Records alarms from one observation round and returns the action.
    ///
    /// Escalation: a single timing alarm → audit (performance jitter is not
    /// an attack by itself); an access anomaly or repeated range
    /// violations → hardened variant; sustained access anomalies or
    /// combined signals → isolate.
    pub fn step(&mut self, timing: bool, access: bool, range: bool) -> ProtectAction {
        if timing {
            self.timing_alarms += 1;
        }
        if access {
            self.access_alarms += 1;
        }
        if range {
            self.range_alarms += 1;
        }
        let kinds = usize::from(timing) + usize::from(access) + usize::from(range);
        if self.access_alarms >= 3 || kinds >= 2 {
            ProtectAction::Isolate
        } else if access || self.range_alarms >= 3 {
            ProtectAction::SwitchHardenedVariant
        } else if kinds == 1 {
            ProtectAction::Audit
        } else {
            ProtectAction::None
        }
    }

    /// Total alarms recorded so far.
    pub fn total_alarms(&self) -> usize {
        self.timing_alarms + self.access_alarms + self.range_alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_monitor_flags_outliers_after_warmup() {
        let mut m = TimingMonitor::new(0.1, 4.0);
        for i in 0..100 {
            // Stable latency around 100 us with small jitter.
            let jitter = (i % 5) as f64 * 0.5;
            assert!(!m.observe(100.0 + jitter), "baseline flagged at iter {i}");
        }
        assert!(m.observe(500.0), "5x latency spike must alarm");
        assert!((m.mean() - 100.0).abs() < 5.0, "spike must not poison the mean");
    }

    #[test]
    fn timing_monitor_tolerates_warmup_noise() {
        let mut m = TimingMonitor::new(0.2, 3.0);
        for v in [10.0, 200.0, 50.0, 120.0] {
            assert!(!m.observe(v), "warmup must not alarm");
        }
    }

    #[test]
    fn access_monitor_learns_strides() {
        let mut m = AccessMonitor::new(4);
        // Train on a stride-8 scan.
        for i in 0..32 {
            m.observe(i * 8);
        }
        m.freeze();
        // Same pattern: fine.
        for i in 32..64 {
            assert!(!m.observe(i * 8));
        }
        // Byte-wise overflow-style scan: unknown stride 1.
        let mut alarms = 0;
        for a in 1_000..1_020u64 {
            if m.observe(a) {
                alarms += 1;
            }
        }
        assert!(alarms > 0, "unknown stride pattern must alarm");
    }

    #[test]
    fn range_monitor_bounds() {
        let m = RangeMonitor::new(-40.0, 60.0); // plausible temperatures
        assert!(!m.observe(21.5));
        assert!(m.observe(999.0));
        assert!(m.observe(-80.0));
    }

    #[test]
    fn autoprotect_escalates() {
        let mut p = AutoProtect::new();
        assert_eq!(p.step(false, false, false), ProtectAction::None);
        assert_eq!(p.step(true, false, false), ProtectAction::Audit);
        assert_eq!(p.step(false, true, false), ProtectAction::SwitchHardenedVariant);
        // Combined signals isolate immediately.
        assert_eq!(p.step(true, false, true), ProtectAction::Isolate);
        assert_eq!(p.total_alarms(), 4);
    }

    #[test]
    fn repeated_access_anomalies_isolate() {
        let mut p = AutoProtect::new();
        p.step(false, true, false);
        p.step(false, true, false);
        assert_eq!(p.step(false, true, false), ProtectAction::Isolate);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_rejected() {
        RangeMonitor::new(1.0, 0.0);
    }
}
