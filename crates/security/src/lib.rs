//! # everest-security — data protection for the EVEREST SDK
//!
//! EVEREST "proposes a data-centric approach for security, dealing with
//! confidentiality, authentication and integrity of the data ... a
//! comprehensive library of optimized accelerators for memory and near
//! memory encryption ... information flow tracking, monitoring, and
//! protection against malicious uses" (paper III-A). This crate provides
//! the software reference implementations those accelerators are generated
//! from:
//!
//! * [`aes`] — AES-128 block cipher, implemented from the FIPS-197 spec;
//! * [`modes`] — CTR encryption and GCM authenticated encryption
//!   (GHASH over GF(2¹²⁸)), with tamper detection;
//! * [`mod@sha256`] — SHA-256 and HMAC-SHA256 for integrity and
//!   authentication;
//! * [`anomaly`] — hardware-monitor models (timing, access-pattern, value
//!   range) feeding the "auto-protection" policy engine that reacts to
//!   deviations from expected data behaviour.
//!
//! Information-flow tracking lives with the HLS generator
//! (`everest_hls::dift`), since TaintHLS instruments the datapath itself.
//!
//! ## Example
//!
//! ```
//! use everest_security::modes::AesGcm;
//!
//! let key = [7u8; 16];
//! let gcm = AesGcm::new(&key);
//! let nonce = [1u8; 12];
//! let ct = gcm.seal(&nonce, b"wind farm telemetry", b"header");
//! let pt = gcm.open(&nonce, &ct, b"header").unwrap();
//! assert_eq!(pt, b"wind farm telemetry");
//! ```

pub mod aes;
pub mod anomaly;
pub mod error;
pub mod modes;
pub mod sha256;

pub use aes::Aes128;
pub use anomaly::{AccessMonitor, AutoProtect, ProtectAction, RangeMonitor, TimingMonitor};
pub use error::{SecurityError, SecurityResult};
pub use modes::AesGcm;
pub use sha256::{hmac_sha256, sha256};
