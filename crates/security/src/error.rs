//! Security-layer errors.

use std::fmt;

/// Result alias for security operations.
pub type SecurityResult<T> = Result<T, SecurityError>;

/// Errors raised by the crypto and monitoring layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityError {
    /// GCM authentication tag did not verify: data corrupted or forged.
    InvalidTag,
    /// Ciphertext shorter than the mandatory tag.
    TruncatedCiphertext,
    /// A nonce of the wrong length was supplied.
    BadNonceLen { expected: usize, got: usize },
}

impl fmt::Display for SecurityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityError::InvalidTag => write!(f, "authentication tag mismatch"),
            SecurityError::TruncatedCiphertext => write!(f, "ciphertext shorter than tag"),
            SecurityError::BadNonceLen { expected, got } => {
                write!(f, "nonce must be {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for SecurityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(SecurityError::InvalidTag.to_string(), "authentication tag mismatch");
        assert_eq!(
            SecurityError::BadNonceLen { expected: 12, got: 7 }.to_string(),
            "nonce must be 12 bytes, got 7"
        );
    }
}
