//! Property tests for the crypto layer: round-trips, tamper detection and
//! algebraic invariants hold for arbitrary inputs.

use everest_security::modes::{AesCtr, AesGcm, NONCE_LEN, TAG_LEN};
use everest_security::{hmac_sha256, sha256, Aes128};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gcm_round_trips_arbitrary_payloads(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; NONCE_LEN]>(),
        payload in prop::collection::vec(any::<u8>(), 0..300),
        aad in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let gcm = AesGcm::new(&key);
        let sealed = gcm.seal(&nonce, &payload, &aad);
        prop_assert_eq!(sealed.len(), payload.len() + TAG_LEN);
        let opened = gcm.open(&nonce, &sealed, &aad).expect("authentic");
        prop_assert_eq!(opened, payload);
    }

    #[test]
    fn gcm_detects_any_single_byte_flip(
        key in any::<[u8; 16]>(),
        payload in prop::collection::vec(any::<u8>(), 1..128),
        flip_pos in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let gcm = AesGcm::new(&key);
        let nonce = [3u8; NONCE_LEN];
        let mut sealed = gcm.seal(&nonce, &payload, b"aad");
        let pos = flip_pos.index(sealed.len());
        sealed[pos] ^= 1 << flip_bit;
        prop_assert!(gcm.open(&nonce, &sealed, b"aad").is_err(), "flip at {} undetected", pos);
    }

    #[test]
    fn gcm_binds_the_nonce_and_aad(
        key in any::<[u8; 16]>(),
        n1 in any::<[u8; NONCE_LEN]>(),
        n2 in any::<[u8; NONCE_LEN]>(),
        payload in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        prop_assume!(n1 != n2);
        let gcm = AesGcm::new(&key);
        let sealed = gcm.seal(&n1, &payload, b"a");
        prop_assert!(gcm.open(&n2, &sealed, b"a").is_err(), "wrong nonce accepted");
        prop_assert!(gcm.open(&n1, &sealed, b"b").is_err(), "wrong aad accepted");
    }

    #[test]
    fn ctr_is_an_involution(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; NONCE_LEN]>(),
        ctr0 in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let ctr = AesCtr::new(&key);
        let mut buf = payload.clone();
        ctr.apply(&nonce, ctr0, &mut buf);
        ctr.apply(&nonce, ctr0, &mut buf);
        prop_assert_eq!(buf, payload);
    }

    #[test]
    fn aes_decrypt_inverts_encrypt(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    #[test]
    fn sha256_is_deterministic_and_injective_in_practice(
        a in prop::collection::vec(any::<u8>(), 0..200),
        b in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        prop_assert_eq!(sha256(&a), sha256(&a));
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b), "collision found?!");
        }
    }

    #[test]
    fn hmac_separates_keys_and_messages(
        k1 in prop::collection::vec(any::<u8>(), 1..80),
        k2 in prop::collection::vec(any::<u8>(), 1..80),
        msg in prop::collection::vec(any::<u8>(), 0..120),
    ) {
        prop_assert_eq!(hmac_sha256(&k1, &msg), hmac_sha256(&k1, &msg));
        if k1 != k2 {
            prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }
    }
}
