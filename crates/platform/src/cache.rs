//! A trace-driven set-associative cache model — the "high-level
//! architecture models and simulators" (paper III-B, gem5 refs \[25\]\[26\])
//! the middle end uses to price software variants. The tiling knob of the
//! variants cost model is validated against this model (experiment E15).

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A typical 32 KiB, 8-way L1 data cache with 64-byte lines.
    pub fn l1d() -> CacheConfig {
        CacheConfig { size_bytes: 32 << 10, line_bytes: 64, ways: 8 }
    }

    /// A 1 MiB, 16-way L2.
    pub fn l2() -> CacheConfig {
        CacheConfig { size_bytes: 1 << 20, line_bytes: 64, ways: 16 }
    }

    fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// One cache level with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: (tag, last-use stamp) per way.
    sets: Vec<Vec<(u64, u64)>>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity smaller
    /// than one way of lines).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.line_bytes > 0 && config.ways > 0, "degenerate cache");
        assert!(config.size_bytes >= config.line_bytes * config.ways, "capacity below one set");
        Cache { config, sets: vec![Vec::new(); config.sets()], clock: 0, accesses: 0, misses: 0 }
    }

    /// Accesses a byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.clock;
            return true;
        }
        self.misses += 1;
        if set.len() < self.config.ways {
            set.push((tag, self.clock));
        } else {
            // Evict the least-recently-used way.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("non-empty set");
            set[lru] = (tag, self.clock);
        }
        false
    }

    /// Accesses performed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.misses as f64 / self.accesses as f64
    }
}

/// Where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// L1 hit.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// Missed both levels.
    Memory,
}

/// A two-level hierarchy with a simple cycle cost model.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Level-1 cache.
    pub l1: Cache,
    /// Level-2 cache.
    pub l2: Cache,
    cycles: u64,
}

impl Hierarchy {
    /// L1 hit latency (cycles).
    pub const L1_CYCLES: u64 = 4;
    /// L2 hit latency.
    pub const L2_CYCLES: u64 = 14;
    /// DRAM latency.
    pub const MEM_CYCLES: u64 = 120;

    /// Creates the default L1+L2 hierarchy.
    pub fn typical() -> Hierarchy {
        Hierarchy {
            l1: Cache::new(CacheConfig::l1d()),
            l2: Cache::new(CacheConfig::l2()),
            cycles: 0,
        }
    }

    /// Accesses an address through the hierarchy.
    pub fn access(&mut self, addr: u64) -> ServedBy {
        if self.l1.access(addr) {
            self.cycles += Self::L1_CYCLES;
            ServedBy::L1
        } else if self.l2.access(addr) {
            self.cycles += Self::L2_CYCLES;
            ServedBy::L2
        } else {
            self.cycles += Self::MEM_CYCLES;
            ServedBy::Memory
        }
    }

    /// Total modeled memory-access cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Average memory access time in cycles.
    pub fn amat(&self) -> f64 {
        if self.l1.accesses() == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.l1.accesses() as f64
    }
}

/// Runs the memory trace of `C = A x B` (row-major `n`×`n` f64 matrices)
/// through `hierarchy`; `tile` of `Some(t)` uses t×t×t cache blocking.
pub fn matmul_trace(hierarchy: &mut Hierarchy, n: usize, tile: Option<usize>) {
    let elem = 8u64;
    let a_base = 0u64;
    let b_base = (n * n) as u64 * elem;
    let c_base = 2 * (n * n) as u64 * elem;
    let addr = |base: u64, r: usize, c: usize| base + ((r * n + c) as u64) * elem;
    let t = tile.unwrap_or(n).max(1).min(n);
    let block = |h: &mut Hierarchy, i0: usize, j0: usize, k0: usize| {
        for i in i0..(i0 + t).min(n) {
            for j in j0..(j0 + t).min(n) {
                h.access(addr(c_base, i, j));
                for k in k0..(k0 + t).min(n) {
                    h.access(addr(a_base, i, k));
                    h.access(addr(b_base, k, j));
                }
                h.access(addr(c_base, i, j));
            }
        }
    };
    for i0 in (0..n).step_by(t) {
        for j0 in (0..n).step_by(t) {
            for k0 in (0..n).step_by(t) {
                block(hierarchy, i0, j0, k0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = Cache::new(CacheConfig { size_bytes: 4 << 10, line_bytes: 64, ways: 4 });
        for addr in (0..4096u64).step_by(8) {
            c.access(addr);
        }
        // 4096 bytes / 64-byte lines = 64 misses out of 512 accesses.
        assert_eq!(c.misses(), 64);
        assert!((c.miss_rate() - 64.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1008), "same line");
    }

    #[test]
    fn lru_evicts_the_oldest_way() {
        // 1 set, 2 ways, 64-byte lines.
        let mut c = Cache::new(CacheConfig { size_bytes: 128, line_bytes: 64, ways: 2 });
        c.access(0); // line A
        c.access(64); // line B (alias to same set: only one set)
        c.access(0); // touch A: B is now LRU
        c.access(128); // line C evicts B
        assert!(c.access(0), "A survives");
        assert!(!c.access(64), "B was evicted");
    }

    #[test]
    fn thrashing_working_set_misses() {
        // Working set of 3 lines in a 2-way single-set cache: round-robin
        // access pattern thrashes.
        let mut c = Cache::new(CacheConfig { size_bytes: 128, line_bytes: 64, ways: 2 });
        for _ in 0..10 {
            for line in [0u64, 64, 128] {
                c.access(line);
            }
        }
        assert!(c.miss_rate() > 0.9, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn hierarchy_escalates_and_costs() {
        let mut h = Hierarchy::typical();
        assert_eq!(h.access(0), ServedBy::Memory);
        assert_eq!(h.access(0), ServedBy::L1);
        assert_eq!(h.cycles(), Hierarchy::MEM_CYCLES + Hierarchy::L1_CYCLES);
        assert!(h.amat() > 0.0);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut h = Hierarchy::typical();
        // Touch a 256 KiB array (fits L2, not L1) twice.
        let elems = (256 << 10) / 8;
        for round in 0..2 {
            let mut l2_hits = 0;
            for i in 0..elems {
                if h.access((i * 8) as u64) == ServedBy::L2 {
                    l2_hits += 1;
                }
            }
            if round == 1 {
                assert!(l2_hits > elems / 16, "second pass should hit L2: {l2_hits}");
            }
        }
    }

    #[test]
    fn tiled_matmul_misses_less_than_naive() {
        // 128x128 f64 matmul: 3 x 128 KiB working set overflows L1 badly
        // untiled; 32x32 tiles (3 x 8 KiB) fit.
        let mut naive = Hierarchy::typical();
        matmul_trace(&mut naive, 128, None);
        let mut tiled = Hierarchy::typical();
        matmul_trace(&mut tiled, 128, Some(32));
        // Blocking re-touches C once per k-block, so raw access counts
        // differ slightly; compare rates, not counts.
        assert!(
            tiled.l1.miss_rate() < 0.6 * naive.l1.miss_rate(),
            "tiled {:.4} vs naive {:.4} L1 miss rate",
            tiled.l1.miss_rate(),
            naive.l1.miss_rate()
        );
        assert!(tiled.amat() < naive.amat());
    }

    #[test]
    #[should_panic(expected = "capacity below one set")]
    fn degenerate_geometry_rejected() {
        Cache::new(CacheConfig { size_bytes: 64, line_bytes: 64, ways: 4 });
    }
}
