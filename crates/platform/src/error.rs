//! Platform-model errors.

use std::fmt;

/// Result alias for platform operations.
pub type PlatformResult<T> = Result<T, PlatformError>;

/// Errors raised by the platform model and simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// A named node/device/link does not exist.
    Unknown(String),
    /// A deployment does not fit the target fabric.
    CapacityExceeded { what: String, needed: u64, available: u64 },
    /// Two endpoints are not connected.
    NoRoute { from: String, to: String },
    /// Invalid model parameter.
    Config(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Unknown(name) => write!(f, "unknown platform entity '{name}'"),
            PlatformError::CapacityExceeded { what, needed, available } => {
                write!(f, "capacity exceeded for {what}: need {needed}, have {available}")
            }
            PlatformError::NoRoute { from, to } => write!(f, "no route from '{from}' to '{to}'"),
            PlatformError::Config(msg) => write!(f, "invalid platform configuration: {msg}"),
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = PlatformError::CapacityExceeded { what: "LUTs".into(), needed: 10, available: 5 };
        assert_eq!(e.to_string(), "capacity exceeded for LUTs: need 10, have 5");
        assert_eq!(
            PlatformError::NoRoute { from: "a".into(), to: "b".into() }.to_string(),
            "no route from 'a' to 'b'"
        );
    }
}
