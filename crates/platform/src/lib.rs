//! # everest-platform — target-system model and simulator
//!
//! The EVEREST target system (paper Section V, Fig. 3 and Fig. 4) combines
//! POWER9 cloud nodes with **bus-attached, cache-coherent FPGAs**
//! (OpenCAPI) and **network-attached, disaggregated FPGAs** (the cloudFPGA
//! platform) plus ARM/RISC-V edge nodes and end-point devices. Since this
//! reproduction has no physical FPGAs, this crate models that hardware:
//!
//! * [`node`] / [`fpga`] — nodes, CPUs and FPGA devices with fabric
//!   capacity, clocking, attachment type and shell/role split with partial
//!   reconfiguration (cloudFPGA);
//! * [`link`] — interconnect models (OpenCAPI, PCIe, datacenter TCP/UDP,
//!   edge WAN) with latency + bandwidth transfer costs;
//! * [`system`] — assembled systems, including the reference EVEREST
//!   demonstrator topology;
//! * [`sim`] — a deterministic resource-timeline simulator for transfers
//!   and kernel executions with contention;
//! * [`energy`] — static + dynamic energy accounting;
//! * [`ecosystem`] — the endpoint → inner-edge → cloud hierarchy of Fig. 3
//!   with tier-placement evaluation.
//!
//! ## Example
//!
//! ```
//! use everest_platform::system::System;
//!
//! let sys = System::everest_reference();
//! assert!(sys.nodes().len() >= 3);
//! let p9 = sys.node_by_name("cloud-p9").unwrap();
//! assert!(!p9.devices.is_empty());
//! ```

pub mod cache;
pub mod ecosystem;
pub mod energy;
pub mod error;
pub mod fpga;
pub mod link;
pub mod node;
pub mod sim;
pub mod system;

pub use error::{PlatformError, PlatformResult};
pub use fpga::{Attachment, FabricCapacity, FpgaDevice};
pub use link::{Link, LinkProfile};
pub use node::{CpuSpec, Node, NodeKind};
pub use sim::Sim;
pub use system::System;
