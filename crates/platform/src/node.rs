//! Compute nodes: CPUs plus attached FPGA devices.

use crate::fpga::FpgaDevice;

/// Node classes of the EVEREST ecosystem (paper Fig. 3 / Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Cloud server: IBM POWER9 with coherent FPGA attachment.
    CloudPower9,
    /// Generic x86 cloud server.
    CloudX86,
    /// Inner-edge ARM server.
    EdgeArm,
    /// Inner-edge RISC-V server.
    EdgeRiscV,
    /// End-point device (sensor gateway, vehicle unit).
    Endpoint,
}

impl NodeKind {
    /// `true` for cloud-tier nodes.
    pub fn is_cloud(&self) -> bool {
        matches!(self, NodeKind::CloudPower9 | NodeKind::CloudX86)
    }
}

/// CPU capability model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Number of cores.
    pub cores: u32,
    /// Sustained double-precision GFLOP/s per core.
    pub gflops_per_core: f64,
    /// Package power at full load, watts.
    pub power_w: f64,
    /// Idle power, watts.
    pub idle_power_w: f64,
}

impl CpuSpec {
    /// POWER9 22-core.
    pub fn power9() -> CpuSpec {
        CpuSpec { cores: 22, gflops_per_core: 12.0, power_w: 190.0, idle_power_w: 60.0 }
    }

    /// x86 server part.
    pub fn x86_server() -> CpuSpec {
        CpuSpec { cores: 16, gflops_per_core: 10.0, power_w: 150.0, idle_power_w: 45.0 }
    }

    /// ARM edge server.
    pub fn arm_edge() -> CpuSpec {
        CpuSpec { cores: 8, gflops_per_core: 4.0, power_w: 30.0, idle_power_w: 8.0 }
    }

    /// RISC-V edge board.
    pub fn riscv_edge() -> CpuSpec {
        CpuSpec { cores: 4, gflops_per_core: 1.5, power_w: 12.0, idle_power_w: 3.0 }
    }

    /// Endpoint microcontroller-class device.
    pub fn endpoint() -> CpuSpec {
        CpuSpec { cores: 2, gflops_per_core: 0.2, power_w: 2.0, idle_power_w: 0.4 }
    }

    /// Total sustained GFLOP/s.
    pub fn total_gflops(&self) -> f64 {
        self.cores as f64 * self.gflops_per_core
    }

    /// Time in microseconds to execute `flops` floating-point operations on
    /// `threads` cores (capped at the core count, 70% parallel efficiency
    /// beyond one core).
    pub fn compute_us(&self, flops: f64, threads: u32) -> f64 {
        let t = threads.clamp(1, self.cores) as f64;
        let eff = if t > 1.0 { 0.7 } else { 1.0 };
        flops / (self.gflops_per_core * 1e3 * t * eff)
    }
}

/// A compute node: CPU, memory and zero or more FPGA devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Unique node name.
    pub name: String,
    /// Node class.
    pub kind: NodeKind,
    /// CPU model.
    pub cpu: CpuSpec,
    /// Main-memory capacity in bytes.
    pub memory_bytes: u64,
    /// Attached FPGA devices.
    pub devices: Vec<FpgaDevice>,
}

impl Node {
    /// Creates a node without devices.
    pub fn new(name: impl Into<String>, kind: NodeKind, cpu: CpuSpec, memory_bytes: u64) -> Node {
        Node { name: name.into(), kind, cpu, memory_bytes, devices: Vec::new() }
    }

    /// Adds an FPGA device, returning `self` for chaining.
    pub fn with_device(mut self, device: FpgaDevice) -> Node {
        self.devices.push(device);
        self
    }

    /// Finds a device by name.
    pub fn device(&self, name: &str) -> Option<&FpgaDevice> {
        self.devices.iter().find(|d| d.name == name)
    }

    /// Mutable device lookup.
    pub fn device_mut(&mut self, name: &str) -> Option<&mut FpgaDevice> {
        self.devices.iter_mut().find(|d| d.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_compute_time_scales_with_threads() {
        let cpu = CpuSpec::power9();
        let serial = cpu.compute_us(1e9, 1);
        let parallel = cpu.compute_us(1e9, 22);
        assert!(parallel < serial);
        // 70% efficiency: not a perfect 22x.
        assert!(parallel > serial / 22.0);
    }

    #[test]
    fn thread_count_caps_at_cores() {
        let cpu = CpuSpec::arm_edge();
        assert_eq!(cpu.compute_us(1e6, 8), cpu.compute_us(1e6, 100));
    }

    #[test]
    fn edge_cpus_are_slower_but_lower_power() {
        let p9 = CpuSpec::power9();
        let arm = CpuSpec::arm_edge();
        assert!(p9.total_gflops() > arm.total_gflops());
        assert!(p9.power_w > arm.power_w);
    }

    #[test]
    fn node_device_lookup() {
        let node = Node::new("n", NodeKind::CloudPower9, CpuSpec::power9(), 1 << 36)
            .with_device(FpgaDevice::bus_attached("f0"))
            .with_device(FpgaDevice::network_attached("f1", true));
        assert!(node.device("f0").is_some());
        assert!(node.device("nope").is_none());
        assert!(node.kind.is_cloud());
    }
}
