//! The EVEREST ecosystem hierarchy (paper Fig. 3): end-point devices →
//! inner edge → core cloud, with tier-placement evaluation for streaming
//! pipelines.
//!
//! "The outermost layer receives the stream of data and performs initial
//! processing under strict latency constraints ... the inner-edge
//! environment does more extensive processing ... results are then
//! forwarded to the core cloud services" — this module makes that hierarchy
//! executable: a pipeline of stages is assigned to tiers and the model
//! reports per-item latency, energy and uplink traffic.

use crate::link::Link;
use crate::node::CpuSpec;

/// The three processing tiers of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// End-point devices (sensors, vehicles).
    Endpoint,
    /// Inner-edge servers close to the data.
    InnerEdge,
    /// Core cloud (public/private/hybrid).
    Cloud,
}

impl Tier {
    /// All tiers, outermost first.
    pub const ALL: [Tier; 3] = [Tier::Endpoint, Tier::InnerEdge, Tier::Cloud];

    /// The compute capability of this tier.
    pub fn cpu(&self) -> CpuSpec {
        match self {
            Tier::Endpoint => CpuSpec::endpoint(),
            Tier::InnerEdge => CpuSpec::arm_edge(),
            Tier::Cloud => CpuSpec::power9(),
        }
    }

    /// FPGA acceleration factor available at this tier (1.0 = none).
    /// Endpoints have no FPGA; the inner edge has a small one; the cloud
    /// has bus- and network-attached cards.
    pub fn fpga_speedup(&self) -> f64 {
        match self {
            Tier::Endpoint => 1.0,
            Tier::InnerEdge => 6.0,
            Tier::Cloud => 15.0,
        }
    }

    /// The uplink from this tier towards the next-inner tier.
    pub fn uplink(&self) -> Option<Link> {
        match self {
            Tier::Endpoint => Some(Link::edge_wan()),
            Tier::InnerEdge => Some(Link::tcp_datacenter()),
            Tier::Cloud => None,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Tier::Endpoint => "endpoint",
            Tier::InnerEdge => "inner-edge",
            Tier::Cloud => "cloud",
        };
        f.write_str(s)
    }
}

/// One stage of a streaming pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name.
    pub name: String,
    /// Floating-point work per input item.
    pub flops: f64,
    /// Bytes this stage emits per item (its output volume).
    pub output_bytes: u64,
    /// Whether the stage can run on an FPGA when the tier has one.
    pub accelerable: bool,
}

impl Stage {
    /// Creates a stage.
    pub fn new(name: impl Into<String>, flops: f64, output_bytes: u64, accelerable: bool) -> Stage {
        Stage { name: name.into(), flops, output_bytes, accelerable }
    }
}

/// Evaluation of one placement.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementReport {
    /// End-to-end latency for one item, microseconds.
    pub latency_us: f64,
    /// Energy per item, millijoules.
    pub energy_mj: f64,
    /// Bytes crossing the endpoint uplink per item (the scarce resource).
    pub wan_bytes: u64,
    /// Per-stage `(name, tier, compute_us, transfer_us)` breakdown.
    pub breakdown: Vec<(String, Tier, f64, f64)>,
}

/// Evaluates a pipeline placement: stage `i` runs on `placement[i]`, data
/// moves over tier uplinks between consecutive stages on different tiers.
///
/// # Panics
///
/// Panics if `placement.len() != stages.len()`, or tiers are not
/// non-decreasing (data only flows inward: endpoint → edge → cloud).
pub fn evaluate(stages: &[Stage], placement: &[Tier], input_bytes: u64) -> PlacementReport {
    assert_eq!(stages.len(), placement.len(), "one tier per stage");
    assert!(
        placement.windows(2).all(|w| w[0] <= w[1]),
        "data flows inward: tiers must be non-decreasing"
    );
    let mut latency = 0.0;
    let mut energy_j = 0.0;
    let mut wan_bytes = 0u64;
    let mut breakdown = Vec::new();

    // The raw input must first reach the tier of the first stage.
    let mut current_bytes = input_bytes;
    let mut transfer_to_first = 0.0;
    if let Some(first) = placement.first() {
        let mut tier = Tier::Endpoint;
        while tier < *first {
            let link = tier.uplink().expect("non-cloud tier has an uplink");
            transfer_to_first += link.transfer_us(current_bytes);
            if tier == Tier::Endpoint {
                wan_bytes += current_bytes;
            }
            energy_j += transfer_bytes_energy_j(current_bytes);
            tier = next_tier(tier);
        }
    }
    latency += transfer_to_first;

    for (i, (stage, tier)) in stages.iter().zip(placement).enumerate() {
        let cpu = tier.cpu();
        let speedup = if stage.accelerable { tier.fpga_speedup() } else { 1.0 };
        let compute = cpu.compute_us(stage.flops, cpu.cores) / speedup;
        let active_w = cpu.power_w + if stage.accelerable && speedup > 1.0 { 20.0 } else { 0.0 };
        energy_j += active_w * compute * 1e-6;
        latency += compute;
        current_bytes = stage.output_bytes;

        // Transfer to the next stage's tier.
        let mut transfer = 0.0;
        if let Some(next_placement) = placement.get(i + 1) {
            let mut tier_cursor = *tier;
            while tier_cursor < *next_placement {
                let link = tier_cursor.uplink().expect("non-cloud tier has an uplink");
                transfer += link.transfer_us(current_bytes);
                if tier_cursor == Tier::Endpoint {
                    wan_bytes += current_bytes;
                }
                energy_j += transfer_bytes_energy_j(current_bytes);
                tier_cursor = next_tier(tier_cursor);
            }
        }
        latency += transfer;
        breakdown.push((stage.name.clone(), *tier, compute, transfer));
    }

    PlacementReport { latency_us: latency, energy_mj: energy_j * 1e3, wan_bytes, breakdown }
}

fn next_tier(tier: Tier) -> Tier {
    match tier {
        Tier::Endpoint => Tier::InnerEdge,
        Tier::InnerEdge | Tier::Cloud => Tier::Cloud,
    }
}

/// Network energy: ~20 nJ per byte end to end (NIC + switching).
fn transfer_bytes_energy_j(bytes: u64) -> f64 {
    bytes as f64 * 20e-9
}

/// Nominal floating-point work of one Monte-Carlo sample-edge step in
/// the PTDR kernel (normal draw + clamp + divide), used to translate
/// query shape into tier compute time.
pub const PTDR_SAMPLE_EDGE_FLOPS: f64 = 50.0;

/// Nominal work of one cache lookup + response serialization on the
/// serving path.
pub const PTDR_LOOKUP_FLOPS: f64 = 2_000.0;

/// Request/response payload sizes of a cloud-tier cache fill, bytes.
pub const PTDR_REQUEST_BYTES: u64 = 64;
pub const PTDR_RESPONSE_BYTES: u64 = 24;

/// Virtual service-cost model of one PTDR edge shard, derived from the
/// Fig. 3 tier specs: lookups and Monte-Carlo recomputes run on an
/// inner-edge core, misses pay a round trip over the edge→cloud uplink
/// to consult the cloud tier. All costs are in virtual microseconds, so
/// admission/shedding decisions built on them are pure functions of the
/// workload — independent of wall-clock and worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeCostModel {
    /// Cost of answering from the shard's own cache.
    pub hit_us: f64,
    /// Round-trip cost of consulting the cloud tier (request out,
    /// response back over the inner-edge uplink).
    pub fill_rtt_us: f64,
    /// Monte-Carlo recompute cost per sample-edge on an edge core.
    pub compute_us_per_sample_edge: f64,
}

impl ServeCostModel {
    /// The model for an inner-edge shard backed by the cloud tier.
    pub fn edge_shard() -> ServeCostModel {
        let cpu = Tier::InnerEdge.cpu();
        let flops_per_us = cpu.gflops_per_core * 1e3;
        let uplink = Tier::InnerEdge.uplink().expect("inner edge has an uplink");
        ServeCostModel {
            hit_us: PTDR_LOOKUP_FLOPS / flops_per_us,
            fill_rtt_us: uplink.transfer_us(PTDR_REQUEST_BYTES)
                + uplink.transfer_us(PTDR_RESPONSE_BYTES),
            compute_us_per_sample_edge: PTDR_SAMPLE_EDGE_FLOPS / flops_per_us,
        }
    }

    /// Cost of a full Monte-Carlo recompute for a `route_edges`-edge
    /// route at `samples` samples (cloud-tier fill on a total miss).
    pub fn compute_us(&self, route_edges: usize, samples: usize) -> f64 {
        (route_edges * samples) as f64 * self.compute_us_per_sample_edge
    }

    /// Worst-case service cost of a single query: a total miss that
    /// pays the uplink round trip plus the full recompute.
    pub fn worst_case_us(&self, route_edges: usize, samples: usize) -> f64 {
        self.fill_rtt_us + self.compute_us(route_edges, samples)
    }
}

/// Enumerates all valid (non-decreasing) placements for `n` stages.
pub fn all_placements(n: usize) -> Vec<Vec<Tier>> {
    fn rec(n: usize, min_tier: usize, prefix: &mut Vec<Tier>, out: &mut Vec<Vec<Tier>>) {
        if prefix.len() == n {
            out.push(prefix.clone());
            return;
        }
        for t in min_tier..Tier::ALL.len() {
            prefix.push(Tier::ALL[t]);
            rec(n, t, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    rec(n, 0, &mut Vec::new(), &mut out);
    out
}

/// The placement minimizing per-item latency.
pub fn best_placement(stages: &[Stage], input_bytes: u64) -> (Vec<Tier>, PlacementReport) {
    all_placements(stages.len())
        .into_iter()
        .map(|p| {
            let r = evaluate(stages, &p, input_bytes);
            (p, r)
        })
        .min_by(|a, b| a.1.latency_us.total_cmp(&b.1.latency_us))
        .expect("at least one placement exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stages() -> Vec<Stage> {
        vec![
            // Heavy data reduction early: filter 1 MB down to 10 kB.
            Stage::new("pre-process", 2e6, 10_000, false),
            Stage::new("inference", 5e8, 1_000, true),
            Stage::new("model-update", 5e9, 500, true),
        ]
    }

    #[test]
    fn all_placements_are_monotone() {
        let ps = all_placements(3);
        // Combinations with repetition: C(3+3-1, 3) = 10.
        assert_eq!(ps.len(), 10);
        for p in &ps {
            assert!(p.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn early_preprocessing_at_the_edge_saves_wan_traffic() {
        let stages = sample_stages();
        let all_cloud = evaluate(&stages, &[Tier::Cloud, Tier::Cloud, Tier::Cloud], 1_000_000);
        let edge_first =
            evaluate(&stages, &[Tier::Endpoint, Tier::InnerEdge, Tier::Cloud], 1_000_000);
        // Shipping raw data to the cloud moves 1 MB over the WAN; filtering
        // at the endpoint moves only the 10 kB digest.
        assert!(edge_first.wan_bytes < all_cloud.wan_bytes / 10);
    }

    #[test]
    fn compute_heavy_stages_prefer_the_cloud() {
        let stages = vec![Stage::new("train", 1e12, 100, true)];
        let (best, _) = best_placement(&stages, 1_000);
        assert_eq!(best, vec![Tier::Cloud]);
    }

    #[test]
    fn tiny_latency_critical_stage_prefers_the_endpoint() {
        // Almost no compute, large input: moving the data dominates.
        let stages = vec![Stage::new("threshold", 1e3, 16, false)];
        let (best, _) = best_placement(&stages, 5_000_000);
        assert_eq!(best, vec![Tier::Endpoint]);
    }

    #[test]
    fn acceleration_helps_only_accelerable_stages() {
        let acc = Stage::new("fft", 1e9, 100, true);
        let plain = Stage::new("fft", 1e9, 100, false);
        let with = evaluate(&[acc], &[Tier::Cloud], 100);
        let without = evaluate(&[plain], &[Tier::Cloud], 100);
        assert!(with.latency_us < without.latency_us);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn backward_placement_rejected() {
        let stages = sample_stages();
        evaluate(&stages, &[Tier::Cloud, Tier::InnerEdge, Tier::Cloud], 100);
    }

    #[test]
    fn serve_cost_model_orders_hit_fill_compute() {
        let model = ServeCostModel::edge_shard();
        // A cache hit is far cheaper than the cloud round trip, which in
        // turn is cheaper than recomputing a realistic query (20 edges x
        // 256 samples) — the ordering the shard cache exists to exploit.
        assert!(model.hit_us > 0.0);
        assert!(model.hit_us < 2.0, "lookup must be sub-2us on an edge core: {}", model.hit_us);
        assert!(model.fill_rtt_us > 10.0 * model.hit_us);
        let compute = model.compute_us(20, 256);
        assert!(compute > model.fill_rtt_us);
        assert_eq!(model.worst_case_us(20, 256), model.fill_rtt_us + compute);
        // Costs scale linearly in route length and sample count.
        assert!((model.compute_us(40, 256) - 2.0 * compute).abs() < 1e-9);
    }

    #[test]
    fn breakdown_covers_every_stage() {
        let stages = sample_stages();
        let r = evaluate(&stages, &[Tier::Endpoint, Tier::InnerEdge, Tier::Cloud], 1_000_000);
        assert_eq!(r.breakdown.len(), 3);
        assert!(r.latency_us > 0.0);
        assert!(r.energy_mj > 0.0);
    }
}
