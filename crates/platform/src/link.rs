//! Interconnect models: latency + bandwidth links with transfer-time
//! computation.
//!
//! The EVEREST demonstrator (Fig. 4) couples nodes through "OpenCAPI cache
//! coherent and TCP/UDP protocols"; the presets here reflect those two
//! classes plus PCIe, datacenter Ethernet and an edge WAN. Presets are
//! named by [`LinkProfile`], so front-ends (and the fault-injection layer)
//! can refer to an interconnect class by a parseable name; the historical
//! per-class constructors delegate to [`Link::profile`].

use crate::error::PlatformError;

/// The named interconnect classes of the reference platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkProfile {
    /// OpenCAPI cache-coherent bus attachment.
    OpenCapi,
    /// PCIe Gen4 x8 DMA attachment.
    Pcie,
    /// Datacenter TCP through the kernel stack.
    TcpDatacenter,
    /// Datacenter UDP with a lightweight offloaded stack (cloudFPGA).
    UdpDatacenter,
    /// Edge wide-area uplink.
    EdgeWan,
    /// 1 GbE local-area link between inner-edge nodes.
    Lan,
}

impl LinkProfile {
    /// Every profile, ordered from tightest to loosest coupling.
    pub const ALL: [LinkProfile; 6] = [
        LinkProfile::OpenCapi,
        LinkProfile::Pcie,
        LinkProfile::UdpDatacenter,
        LinkProfile::TcpDatacenter,
        LinkProfile::Lan,
        LinkProfile::EdgeWan,
    ];

    /// The profile whose preset parameters equal `link`, if any. Lets
    /// layers that only hold a [`Link`] (device attachments, fault plans)
    /// recover the interconnect class it came from.
    pub fn of(link: &Link) -> Option<LinkProfile> {
        LinkProfile::ALL.into_iter().find(|p| Link::profile(*p) == *link)
    }

    /// The canonical (parseable) name of this profile.
    pub fn name(&self) -> &'static str {
        match self {
            LinkProfile::OpenCapi => "opencapi",
            LinkProfile::Pcie => "pcie",
            LinkProfile::TcpDatacenter => "tcp-datacenter",
            LinkProfile::UdpDatacenter => "udp-datacenter",
            LinkProfile::EdgeWan => "edge-wan",
            LinkProfile::Lan => "lan",
        }
    }
}

impl std::fmt::Display for LinkProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for LinkProfile {
    type Err = PlatformError;

    /// Parses a profile name; `_` is accepted for `-`.
    fn from_str(s: &str) -> Result<LinkProfile, PlatformError> {
        let canon = s.trim().to_ascii_lowercase().replace('_', "-");
        LinkProfile::ALL
            .into_iter()
            .find(|p| p.name() == canon)
            .ok_or_else(|| PlatformError::Unknown(format!("link profile '{s}'")))
    }
}

/// A point-to-point interconnect with fixed latency and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One-way latency in microseconds.
    pub latency_us: f64,
    /// Usable bandwidth in gigabytes per second.
    pub bandwidth_gbps: f64,
    /// Per-message protocol overhead in bytes (headers, DMA descriptors).
    pub overhead_bytes: u64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if latency is negative or bandwidth is not positive.
    pub fn new(latency_us: f64, bandwidth_gbps: f64, overhead_bytes: u64) -> Link {
        assert!(latency_us >= 0.0, "negative latency");
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        Link { latency_us, bandwidth_gbps, overhead_bytes }
    }

    /// The preset link for a named interconnect profile.
    pub fn profile(profile: LinkProfile) -> Link {
        match profile {
            // Sub-microsecond latency, ~22 GB/s usable.
            LinkProfile::OpenCapi => Link::new(0.4, 22.0, 64),
            LinkProfile::Pcie => Link::new(1.2, 12.0, 128),
            // Tens of microseconds, 10 GbE-class.
            LinkProfile::TcpDatacenter => Link::new(25.0, 1.1, 512),
            // Low latency, near line-rate 10 GbE.
            LinkProfile::UdpDatacenter => Link::new(4.0, 1.2, 128),
            LinkProfile::EdgeWan => Link::new(5_000.0, 0.012, 256),
            LinkProfile::Lan => Link::new(80.0, 0.11, 512),
        }
    }

    /// OpenCAPI cache-coherent attachment ([`LinkProfile::OpenCapi`]).
    pub fn opencapi() -> Link {
        Link::profile(LinkProfile::OpenCapi)
    }

    /// PCIe Gen4 x8 DMA attachment ([`LinkProfile::Pcie`]).
    pub fn pcie() -> Link {
        Link::profile(LinkProfile::Pcie)
    }

    /// Datacenter TCP (kernel stack) ([`LinkProfile::TcpDatacenter`]).
    pub fn tcp_datacenter() -> Link {
        Link::profile(LinkProfile::TcpDatacenter)
    }

    /// Datacenter UDP with a lightweight offloaded stack (cloudFPGA role)
    /// ([`LinkProfile::UdpDatacenter`]).
    pub fn udp_datacenter() -> Link {
        Link::profile(LinkProfile::UdpDatacenter)
    }

    /// Edge wide-area uplink ([`LinkProfile::EdgeWan`]).
    pub fn edge_wan() -> Link {
        Link::profile(LinkProfile::EdgeWan)
    }

    /// Local-area link between inner-edge nodes ([`LinkProfile::Lan`]).
    pub fn lan() -> Link {
        Link::profile(LinkProfile::Lan)
    }

    /// Time in microseconds to move `bytes` across this link.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        let total = bytes + self.overhead_bytes;
        self.latency_us + total as f64 / (self.bandwidth_gbps * 1e3)
    }

    /// Effective bandwidth (GB/s) achieved for a transfer of `bytes`,
    /// including latency and overhead — small transfers are latency-bound.
    pub fn effective_bandwidth_gbps(&self, bytes: u64) -> f64 {
        let t = self.transfer_us(bytes);
        if t <= 0.0 {
            return 0.0;
        }
        bytes as f64 / 1e3 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_has_latency_floor() {
        let l = Link::opencapi();
        assert!(l.transfer_us(1) >= l.latency_us);
        // 22 MB at 22 GB/s is ~1000 us plus latency.
        let t = l.transfer_us(22_000_000);
        assert!((t - (0.4 + 1000.0)).abs() < 1.0, "got {t}");
    }

    #[test]
    fn small_transfers_favor_low_latency_links() {
        let bus = Link::opencapi();
        let net = Link::tcp_datacenter();
        assert!(bus.transfer_us(4_096) < net.transfer_us(4_096));
    }

    #[test]
    fn effective_bandwidth_approaches_nominal_for_large_transfers() {
        let l = Link::tcp_datacenter();
        let small = l.effective_bandwidth_gbps(1_000);
        let large = l.effective_bandwidth_gbps(1_000_000_000);
        assert!(small < large);
        assert!(large > 0.9 * l.bandwidth_gbps);
        assert!(small < 0.1 * l.bandwidth_gbps);
    }

    #[test]
    fn presets_are_ordered_by_latency() {
        assert!(Link::opencapi().latency_us < Link::pcie().latency_us);
        assert!(Link::pcie().latency_us < Link::udp_datacenter().latency_us);
        assert!(Link::udp_datacenter().latency_us < Link::tcp_datacenter().latency_us);
        assert!(Link::tcp_datacenter().latency_us < Link::edge_wan().latency_us);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Link::new(1.0, 0.0, 0);
    }

    #[test]
    fn constructors_delegate_to_profiles() {
        assert_eq!(Link::opencapi(), Link::profile(LinkProfile::OpenCapi));
        assert_eq!(Link::pcie(), Link::profile(LinkProfile::Pcie));
        assert_eq!(Link::tcp_datacenter(), Link::profile(LinkProfile::TcpDatacenter));
        assert_eq!(Link::udp_datacenter(), Link::profile(LinkProfile::UdpDatacenter));
        assert_eq!(Link::edge_wan(), Link::profile(LinkProfile::EdgeWan));
        assert_eq!(Link::lan(), Link::profile(LinkProfile::Lan));
    }

    #[test]
    fn profile_recovered_from_preset_links() {
        for profile in LinkProfile::ALL {
            assert_eq!(LinkProfile::of(&Link::profile(profile)), Some(profile));
        }
        assert_eq!(LinkProfile::of(&Link::new(3.0, 3.0, 3)), None);
    }

    #[test]
    fn profiles_parse_by_name() {
        for profile in LinkProfile::ALL {
            assert_eq!(profile.name().parse::<LinkProfile>().unwrap(), profile);
        }
        // Case and separator are normalized.
        assert_eq!("UDP_Datacenter".parse::<LinkProfile>().unwrap(), LinkProfile::UdpDatacenter);
        let err = "quantum-tunnel".parse::<LinkProfile>().unwrap_err();
        assert!(err.to_string().contains("link profile 'quantum-tunnel'"));
    }
}
