//! Interconnect models: latency + bandwidth links with transfer-time
//! computation.
//!
//! The EVEREST demonstrator (Fig. 4) couples nodes through "OpenCAPI cache
//! coherent and TCP/UDP protocols"; the presets here reflect those two
//! classes plus PCIe, datacenter Ethernet and an edge WAN.

/// A point-to-point interconnect with fixed latency and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One-way latency in microseconds.
    pub latency_us: f64,
    /// Usable bandwidth in gigabytes per second.
    pub bandwidth_gbps: f64,
    /// Per-message protocol overhead in bytes (headers, DMA descriptors).
    pub overhead_bytes: u64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if latency is negative or bandwidth is not positive.
    pub fn new(latency_us: f64, bandwidth_gbps: f64, overhead_bytes: u64) -> Link {
        assert!(latency_us >= 0.0, "negative latency");
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        Link { latency_us, bandwidth_gbps, overhead_bytes }
    }

    /// OpenCAPI cache-coherent attachment: sub-microsecond latency,
    /// ~22 GB/s usable.
    pub fn opencapi() -> Link {
        Link::new(0.4, 22.0, 64)
    }

    /// PCIe Gen4 x8 DMA attachment.
    pub fn pcie() -> Link {
        Link::new(1.2, 12.0, 128)
    }

    /// Datacenter TCP (kernel stack): tens of microseconds, 10 GbE-class.
    pub fn tcp_datacenter() -> Link {
        Link::new(25.0, 1.1, 512)
    }

    /// Datacenter UDP with a lightweight offloaded stack (cloudFPGA role):
    /// low latency, near line-rate 10 GbE.
    pub fn udp_datacenter() -> Link {
        Link::new(4.0, 1.2, 128)
    }

    /// Edge wide-area uplink (endpoint to inner edge).
    pub fn edge_wan() -> Link {
        Link::new(5_000.0, 0.012, 256)
    }

    /// Local-area link between inner-edge nodes (1 GbE).
    pub fn lan() -> Link {
        Link::new(80.0, 0.11, 512)
    }

    /// Time in microseconds to move `bytes` across this link.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        let total = bytes + self.overhead_bytes;
        self.latency_us + total as f64 / (self.bandwidth_gbps * 1e3)
    }

    /// Effective bandwidth (GB/s) achieved for a transfer of `bytes`,
    /// including latency and overhead — small transfers are latency-bound.
    pub fn effective_bandwidth_gbps(&self, bytes: u64) -> f64 {
        let t = self.transfer_us(bytes);
        if t <= 0.0 {
            return 0.0;
        }
        bytes as f64 / 1e3 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_has_latency_floor() {
        let l = Link::opencapi();
        assert!(l.transfer_us(1) >= l.latency_us);
        // 22 MB at 22 GB/s is ~1000 us plus latency.
        let t = l.transfer_us(22_000_000);
        assert!((t - (0.4 + 1000.0)).abs() < 1.0, "got {t}");
    }

    #[test]
    fn small_transfers_favor_low_latency_links() {
        let bus = Link::opencapi();
        let net = Link::tcp_datacenter();
        assert!(bus.transfer_us(4_096) < net.transfer_us(4_096));
    }

    #[test]
    fn effective_bandwidth_approaches_nominal_for_large_transfers() {
        let l = Link::tcp_datacenter();
        let small = l.effective_bandwidth_gbps(1_000);
        let large = l.effective_bandwidth_gbps(1_000_000_000);
        assert!(small < large);
        assert!(large > 0.9 * l.bandwidth_gbps);
        assert!(small < 0.1 * l.bandwidth_gbps);
    }

    #[test]
    fn presets_are_ordered_by_latency() {
        assert!(Link::opencapi().latency_us < Link::pcie().latency_us);
        assert!(Link::pcie().latency_us < Link::udp_datacenter().latency_us);
        assert!(Link::udp_datacenter().latency_us < Link::tcp_datacenter().latency_us);
        assert!(Link::tcp_datacenter().latency_us < Link::edge_wan().latency_us);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Link::new(1.0, 0.0, 0);
    }
}
