//! Assembled systems: a set of nodes plus the links between them, with the
//! reference EVEREST demonstrator topology of Fig. 4.

use crate::error::{PlatformError, PlatformResult};
use crate::fpga::FpgaDevice;
use crate::link::Link;
use crate::node::{CpuSpec, Node, NodeKind};
use std::collections::HashMap;

/// A distributed heterogeneous system.
#[derive(Debug, Clone, Default)]
pub struct System {
    nodes: Vec<Node>,
    links: HashMap<(String, String), Link>,
}

impl System {
    /// Creates an empty system.
    pub fn new() -> System {
        System::default()
    }

    /// Adds a node.
    pub fn add_node(&mut self, node: Node) -> &mut Self {
        self.nodes.push(node);
        self
    }

    /// Connects two nodes bidirectionally.
    pub fn connect(&mut self, a: &str, b: &str, link: Link) -> &mut Self {
        self.links.insert((a.to_owned(), b.to_owned()), link);
        self.links.insert((b.to_owned(), a.to_owned()), link);
        self
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable access to all nodes.
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<&Node> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Mutable node lookup.
    pub fn node_by_name_mut(&mut self, name: &str) -> Option<&mut Node> {
        self.nodes.iter_mut().find(|n| n.name == name)
    }

    /// The link between two nodes.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Unknown`] naming the endpoint when either
    /// node does not exist, and [`PlatformError::NoRoute`] when both exist
    /// but are not directly connected.
    pub fn link(&self, from: &str, to: &str) -> PlatformResult<Link> {
        if let Some(link) = self.links.get(&(from.to_owned(), to.to_owned())) {
            return Ok(*link);
        }
        for endpoint in [from, to] {
            if self.node_by_name(endpoint).is_none() {
                return Err(PlatformError::Unknown(format!("node '{endpoint}'")));
            }
        }
        Err(PlatformError::NoRoute { from: from.to_owned(), to: to.to_owned() })
    }

    /// Every FPGA device in the system as `(node, device)` name pairs.
    pub fn fpga_inventory(&self) -> Vec<(String, String)> {
        self.nodes
            .iter()
            .flat_map(|n| n.devices.iter().map(move |d| (n.name.clone(), d.name.clone())))
            .collect()
    }

    /// The stream budget a fusable edge must fit on *any* FPGA of this
    /// system: the minimum over every device of the BRAM bytes left for a
    /// double-buffered stream FIFO after the shell and deployed roles.
    /// `None` when the system has no FPGAs at all.
    pub fn stream_budget_bytes(&self) -> Option<u64> {
        self.nodes
            .iter()
            .flat_map(|n| &n.devices)
            .map(|d| d.available_fabric().stream_budget_bytes())
            .min()
    }

    /// The reference EVEREST demonstrator (paper Fig. 4): a POWER9 cloud
    /// node with two bus-attached (OpenCAPI) FPGAs, four network-attached
    /// cloudFPGA devices as stand-alone resources, an ARM and a RISC-V
    /// inner-edge node (the ARM one with a small FPGA), and two endpoint
    /// devices, wired with datacenter TCP/UDP and edge WAN links.
    pub fn everest_reference() -> System {
        let mut sys = System::new();
        sys.add_node(
            Node::new("cloud-p9", NodeKind::CloudPower9, CpuSpec::power9(), 512 << 30)
                .with_device(FpgaDevice::bus_attached("capi0"))
                .with_device(FpgaDevice::bus_attached("capi1")),
        );
        // Disaggregated cloudFPGAs live on a stand-alone "node" with a
        // management-only CPU, mirroring their independence from servers.
        sys.add_node(
            Node::new("cloudfpga-rack", NodeKind::CloudX86, CpuSpec::endpoint(), 16 << 30)
                .with_device(FpgaDevice::network_attached("cf0", true))
                .with_device(FpgaDevice::network_attached("cf1", true))
                .with_device(FpgaDevice::network_attached("cf2", false))
                .with_device(FpgaDevice::network_attached("cf3", false)),
        );
        sys.add_node(
            Node::new("edge-arm", NodeKind::EdgeArm, CpuSpec::arm_edge(), 32 << 30)
                .with_device(FpgaDevice::edge("ez0")),
        );
        sys.add_node(Node::new("edge-riscv", NodeKind::EdgeRiscV, CpuSpec::riscv_edge(), 8 << 30));
        sys.add_node(Node::new("endpoint-0", NodeKind::Endpoint, CpuSpec::endpoint(), 1 << 30));
        sys.add_node(Node::new("endpoint-1", NodeKind::Endpoint, CpuSpec::endpoint(), 1 << 30));

        sys.connect("cloud-p9", "cloudfpga-rack", Link::udp_datacenter());
        sys.connect("cloud-p9", "edge-arm", Link::tcp_datacenter());
        sys.connect("cloud-p9", "edge-riscv", Link::tcp_datacenter());
        sys.connect("edge-arm", "edge-riscv", Link::lan());
        sys.connect("endpoint-0", "edge-arm", Link::edge_wan());
        sys.connect("endpoint-1", "edge-arm", Link::edge_wan());
        sys.connect("endpoint-0", "edge-riscv", Link::edge_wan());
        sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_system_matches_fig4() {
        let sys = System::everest_reference();
        let p9 = sys.node_by_name("cloud-p9").unwrap();
        assert_eq!(p9.devices.len(), 2);
        assert!(p9.devices.iter().all(|d| !d.attachment.is_disaggregated()));
        let rack = sys.node_by_name("cloudfpga-rack").unwrap();
        assert_eq!(rack.devices.len(), 4);
        assert!(rack.devices.iter().all(|d| d.attachment.is_disaggregated()));
        assert_eq!(sys.fpga_inventory().len(), 7);
    }

    #[test]
    fn stream_budget_is_the_weakest_device() {
        let sys = System::everest_reference();
        // The edge Zynq (ez0): (216 - 16 shell) BRAMs, double-buffered.
        assert_eq!(sys.stream_budget_bytes(), Some(230_400));
        assert_eq!(System::new().stream_budget_bytes(), None);
    }

    #[test]
    fn links_are_bidirectional() {
        let sys = System::everest_reference();
        assert!(sys.link("cloud-p9", "edge-arm").is_ok());
        assert!(sys.link("edge-arm", "cloud-p9").is_ok());
    }

    #[test]
    fn missing_route_reported() {
        let sys = System::everest_reference();
        let err = sys.link("endpoint-0", "cloud-p9").unwrap_err();
        assert!(matches!(err, PlatformError::NoRoute { .. }));
    }

    #[test]
    fn unknown_endpoint_names_the_node() {
        let sys = System::everest_reference();
        let err = sys.link("cloud-p9", "mars").unwrap_err();
        assert_eq!(err, PlatformError::Unknown("node 'mars'".into()));
        let err = sys.link("venus", "cloud-p9").unwrap_err();
        assert!(err.to_string().contains("venus"));
    }

    #[test]
    fn custom_topologies_compose() {
        let mut sys = System::new();
        sys.add_node(Node::new("a", NodeKind::CloudX86, CpuSpec::x86_server(), 1 << 30));
        sys.add_node(Node::new("b", NodeKind::EdgeArm, CpuSpec::arm_edge(), 1 << 30));
        sys.connect("a", "b", Link::lan());
        assert_eq!(sys.nodes().len(), 2);
        assert!(sys.link("b", "a").is_ok());
    }
}
