//! FPGA device models: fabric capacity, attachment style and the
//! cloudFPGA shell/role split with partial reconfiguration.

use crate::error::{PlatformError, PlatformResult};
use crate::link::Link;
use everest_hls::AreaReport;

/// Usable fabric resources of one FPGA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricCapacity {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP slices.
    pub dsps: u64,
    /// 18-kbit block RAMs.
    pub brams: u64,
}

impl FabricCapacity {
    /// A mid-range datacenter card (VU33P-class, role region only).
    pub fn datacenter() -> FabricCapacity {
        FabricCapacity { luts: 440_000, ffs: 880_000, dsps: 2_880, brams: 1_440 }
    }

    /// A small edge-class fabric (Zynq-class).
    pub fn edge() -> FabricCapacity {
        FabricCapacity { luts: 70_000, ffs: 140_000, dsps: 360, brams: 216 }
    }

    /// Whether `area` fits in this fabric.
    pub fn fits(&self, area: &AreaReport) -> bool {
        area.luts <= self.luts
            && area.ffs <= self.ffs
            && area.dsps <= self.dsps
            && area.brams <= self.brams
    }

    /// Largest double-buffered stream transfer this fabric's BRAMs can
    /// hold — the per-device budget the fusion-legality classifier proves
    /// fusable edges against.
    pub fn stream_budget_bytes(&self) -> u64 {
        everest_hls::stream_capacity_bytes(self.brams)
    }

    /// Remaining capacity after subtracting `area` (saturating).
    pub fn minus(&self, area: &AreaReport) -> FabricCapacity {
        FabricCapacity {
            luts: self.luts.saturating_sub(area.luts),
            ffs: self.ffs.saturating_sub(area.ffs),
            dsps: self.dsps.saturating_sub(area.dsps),
            brams: self.brams.saturating_sub(area.brams),
        }
    }
}

/// How the FPGA is coupled to the rest of the system (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attachment {
    /// Tightly-coupled, cache-coherent bus attachment (OpenCAPI on the
    /// POWER9 node).
    Bus(Link),
    /// Loosely-coupled, network-attached stand-alone resource (cloudFPGA),
    /// reachable over TCP or UDP.
    Network(Link),
}

impl Attachment {
    /// The underlying link.
    pub fn link(&self) -> &Link {
        match self {
            Attachment::Bus(l) | Attachment::Network(l) => l,
        }
    }

    /// `true` for network-attached (disaggregated) devices.
    pub fn is_disaggregated(&self) -> bool {
        matches!(self, Attachment::Network(_))
    }
}

/// A deployed role (user logic) occupying a partial-reconfiguration slot.
#[derive(Debug, Clone, PartialEq)]
pub struct Role {
    /// Accelerator/bitstream name.
    pub name: String,
    /// Fabric area the role occupies.
    pub area: AreaReport,
}

/// An FPGA device.
///
/// Network-attached devices follow the cloudFPGA **shell-role**
/// architecture: a static shell (network stack + management, privileged)
/// isolates the DC network from user logic, and roles are swapped through
/// partial reconfiguration without touching the shell.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    /// Device name, unique within its node.
    pub name: String,
    /// Total usable fabric (role region).
    pub fabric: FabricCapacity,
    /// Fabric claimed by the static shell.
    pub shell_area: AreaReport,
    /// Attachment style and link.
    pub attachment: Attachment,
    /// Default clock for deployed roles, MHz.
    pub clock_mhz: f64,
    /// Static power draw, watts.
    pub static_power_w: f64,
    /// Number of partial-reconfiguration slots for roles.
    pub pr_slots: usize,
    /// Time to partially reconfigure one role, microseconds.
    pub reconfig_us: f64,
    roles: Vec<Option<Role>>,
}

impl FpgaDevice {
    /// A bus-attached (OpenCAPI) datacenter card: no network shell, a
    /// single large role.
    pub fn bus_attached(name: impl Into<String>) -> FpgaDevice {
        FpgaDevice {
            name: name.into(),
            fabric: FabricCapacity::datacenter(),
            shell_area: AreaReport { luts: 30_000, ffs: 45_000, dsps: 0, brams: 60 },
            attachment: Attachment::Bus(Link::opencapi()),
            clock_mhz: 200.0,
            static_power_w: 22.0,
            pr_slots: 2,
            reconfig_us: 120_000.0,
            roles: vec![None, None],
        }
    }

    /// A network-attached cloudFPGA device with a TCP/UDP shell and two
    /// role slots.
    pub fn network_attached(name: impl Into<String>, udp: bool) -> FpgaDevice {
        let link = if udp { Link::udp_datacenter() } else { Link::tcp_datacenter() };
        FpgaDevice {
            name: name.into(),
            fabric: FabricCapacity::datacenter(),
            shell_area: AreaReport { luts: 90_000, ffs: 140_000, dsps: 4, brams: 220 },
            attachment: Attachment::Network(link),
            clock_mhz: 156.25,
            static_power_w: 28.0,
            pr_slots: 2,
            reconfig_us: 60_000.0,
            roles: vec![None, None],
        }
    }

    /// A small edge FPGA (bus-attached to an embedded CPU).
    pub fn edge(name: impl Into<String>) -> FpgaDevice {
        FpgaDevice {
            name: name.into(),
            fabric: FabricCapacity::edge(),
            shell_area: AreaReport { luts: 8_000, ffs: 12_000, dsps: 0, brams: 16 },
            attachment: Attachment::Bus(Link::pcie()),
            clock_mhz: 150.0,
            static_power_w: 5.0,
            pr_slots: 1,
            reconfig_us: 40_000.0,
            roles: vec![None],
        }
    }

    /// Fabric left for user roles after the shell and deployed roles.
    pub fn available_fabric(&self) -> FabricCapacity {
        let mut cap = self.fabric.minus(&self.shell_area);
        for role in self.roles.iter().flatten() {
            cap = cap.minus(&role.area);
        }
        cap
    }

    /// Deploys a role into a free PR slot.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::CapacityExceeded`] when no slot is free or
    /// the role does not fit the remaining fabric.
    pub fn deploy(&mut self, role: Role) -> PlatformResult<usize> {
        let avail = self.available_fabric();
        if !avail.fits(&role.area) {
            return Err(PlatformError::CapacityExceeded {
                what: format!("fabric of '{}'", self.name),
                needed: role.area.luts,
                available: avail.luts,
            });
        }
        let slot = self.roles.iter().position(Option::is_none).ok_or_else(|| {
            PlatformError::CapacityExceeded {
                what: format!("PR slots of '{}'", self.name),
                needed: 1,
                available: 0,
            }
        })?;
        self.roles[slot] = Some(role);
        Ok(slot)
    }

    /// Removes the role in `slot` (partial reconfiguration to empty).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Unknown`] if the slot index is invalid.
    pub fn undeploy(&mut self, slot: usize) -> PlatformResult<Option<Role>> {
        if slot >= self.roles.len() {
            return Err(PlatformError::Unknown(format!("slot {slot} of '{}'", self.name)));
        }
        Ok(self.roles[slot].take())
    }

    /// The deployed roles (by slot).
    pub fn roles(&self) -> &[Option<Role>] {
        &self.roles
    }

    /// Finds the slot running a role by name.
    pub fn find_role(&self, name: &str) -> Option<usize> {
        self.roles.iter().position(|r| r.as_ref().is_some_and(|role| role.name == name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_role(name: &str, luts: u64) -> Role {
        Role { name: name.into(), area: AreaReport { luts, ffs: luts, dsps: 4, brams: 8 } }
    }

    #[test]
    fn shell_reduces_available_fabric() {
        let d = FpgaDevice::network_attached("nf1", true);
        let avail = d.available_fabric();
        assert_eq!(avail.luts, d.fabric.luts - d.shell_area.luts);
    }

    #[test]
    fn deploy_and_undeploy_roles() {
        let mut d = FpgaDevice::network_attached("nf1", true);
        let s0 = d.deploy(small_role("gemm", 10_000)).unwrap();
        let s1 = d.deploy(small_role("aes", 5_000)).unwrap();
        assert_ne!(s0, s1);
        assert_eq!(d.find_role("aes"), Some(s1));
        // Third role: no free slot.
        let err = d.deploy(small_role("extra", 1_000)).unwrap_err();
        assert!(err.to_string().contains("PR slots"));
        let removed = d.undeploy(s0).unwrap().unwrap();
        assert_eq!(removed.name, "gemm");
        assert!(d.deploy(small_role("extra", 1_000)).is_ok());
    }

    #[test]
    fn oversized_role_rejected() {
        let mut d = FpgaDevice::edge("ez1");
        let err = d.deploy(small_role("huge", 10_000_000)).unwrap_err();
        assert!(matches!(err, PlatformError::CapacityExceeded { .. }));
    }

    #[test]
    fn attachment_classification() {
        assert!(!FpgaDevice::bus_attached("b").attachment.is_disaggregated());
        assert!(FpgaDevice::network_attached("n", false).attachment.is_disaggregated());
    }

    #[test]
    fn bus_attachment_has_lower_latency_than_network() {
        let bus = FpgaDevice::bus_attached("b");
        let net = FpgaDevice::network_attached("n", true);
        assert!(bus.attachment.link().latency_us < net.attachment.link().latency_us);
    }

    #[test]
    fn invalid_slot_is_unknown() {
        let mut d = FpgaDevice::bus_attached("b");
        assert!(matches!(d.undeploy(7), Err(PlatformError::Unknown(_))));
    }
}
