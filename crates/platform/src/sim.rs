//! A deterministic resource-timeline simulator.
//!
//! Resources (CPU slots, FPGA roles, links) are FIFO timelines: an activity
//! asks for a resource at its ready time and is serialized after whatever
//! the resource is already committed to. This captures contention without a
//! full event queue, and is exactly reproducible.

use std::collections::HashMap;

/// Time in microseconds since simulation start.
pub type TimeUs = f64;

/// A named exclusive resource timeline.
#[derive(Debug, Clone, Default)]
struct Timeline {
    available_at: TimeUs,
    busy_us: f64,
}

/// The simulator: a clock plus named resource timelines and an activity log.
#[derive(Debug, Clone, Default)]
pub struct Sim {
    timelines: HashMap<String, Timeline>,
    log: Vec<Activity>,
    horizon: TimeUs,
}

/// One recorded activity.
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    /// Resource the activity ran on.
    pub resource: String,
    /// Activity label (kernel name, transfer description).
    pub label: String,
    /// Start time (µs).
    pub start: TimeUs,
    /// End time (µs).
    pub end: TimeUs,
}

impl Sim {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Sim {
        Sim::default()
    }

    /// Schedules an activity of `duration_us` on `resource`, not before
    /// `ready_at`. Returns the finish time.
    ///
    /// # Panics
    ///
    /// Panics if `duration_us` is negative.
    pub fn run(
        &mut self,
        resource: &str,
        label: &str,
        ready_at: TimeUs,
        duration_us: f64,
    ) -> TimeUs {
        assert!(duration_us >= 0.0, "negative duration");
        let timeline = self.timelines.entry(resource.to_owned()).or_default();
        let start = timeline.available_at.max(ready_at);
        let end = start + duration_us;
        timeline.available_at = end;
        timeline.busy_us += duration_us;
        self.horizon = self.horizon.max(end);
        self.log.push(Activity {
            resource: resource.to_owned(),
            label: label.to_owned(),
            start,
            end,
        });
        end
    }

    /// The time at which `resource` becomes free (0 when never used).
    pub fn available_at(&self, resource: &str) -> TimeUs {
        self.timelines.get(resource).map(|t| t.available_at).unwrap_or(0.0)
    }

    /// Total busy time accumulated on `resource`.
    pub fn busy_us(&self, resource: &str) -> f64 {
        self.timelines.get(resource).map(|t| t.busy_us).unwrap_or(0.0)
    }

    /// Utilization of `resource` over the makespan (0..1).
    pub fn utilization(&self, resource: &str) -> f64 {
        if self.horizon <= 0.0 {
            return 0.0;
        }
        self.busy_us(resource) / self.horizon
    }

    /// Latest finish time across all activities (the makespan).
    pub fn makespan(&self) -> TimeUs {
        self.horizon
    }

    /// The recorded activity log, in scheduling order.
    pub fn log(&self) -> &[Activity] {
        &self.log
    }

    /// Names of every resource touched so far.
    pub fn resources(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.timelines.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activities_on_one_resource_serialize() {
        let mut sim = Sim::new();
        let f1 = sim.run("fpga0", "k1", 0.0, 100.0);
        let f2 = sim.run("fpga0", "k2", 0.0, 50.0);
        assert_eq!(f1, 100.0);
        assert_eq!(f2, 150.0);
        assert_eq!(sim.makespan(), 150.0);
    }

    #[test]
    fn activities_on_different_resources_overlap() {
        let mut sim = Sim::new();
        let f1 = sim.run("fpga0", "k1", 0.0, 100.0);
        let f2 = sim.run("fpga1", "k2", 0.0, 80.0);
        assert_eq!(f1, 100.0);
        assert_eq!(f2, 80.0);
        assert_eq!(sim.makespan(), 100.0);
    }

    #[test]
    fn ready_time_delays_start() {
        let mut sim = Sim::new();
        let f = sim.run("cpu", "late", 500.0, 10.0);
        assert_eq!(f, 510.0);
        assert_eq!(sim.log()[0].start, 500.0);
    }

    #[test]
    fn utilization_and_busy_accounting() {
        let mut sim = Sim::new();
        sim.run("link", "t1", 0.0, 30.0);
        sim.run("cpu", "c1", 0.0, 100.0);
        assert_eq!(sim.busy_us("link"), 30.0);
        assert!((sim.utilization("link") - 0.3).abs() < 1e-9);
        assert!((sim.utilization("cpu") - 1.0).abs() < 1e-9);
        assert_eq!(sim.utilization("unused"), 0.0);
    }

    #[test]
    fn log_preserves_order_and_labels() {
        let mut sim = Sim::new();
        sim.run("r", "a", 0.0, 1.0);
        sim.run("r", "b", 0.0, 1.0);
        let labels: Vec<&str> = sim.log().iter().map(|a| a.label.as_str()).collect();
        assert_eq!(labels, ["a", "b"]);
        assert_eq!(sim.resources(), ["r"]);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_panics() {
        Sim::new().run("r", "bad", 0.0, -1.0);
    }
}
