//! Energy accounting: static power over the makespan plus dynamic energy
//! per activity.
//!
//! EVEREST's benefit claims include "performance and energy efficiency ...
//! hardware acceleration will reduce the time and the energy spent"
//! (paper VI-D); this meter is what the benchmarks use to quantify that.

use crate::sim::Sim;
use std::collections::HashMap;

/// Power characteristics of one resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSpec {
    /// Power drawn while idle, watts.
    pub idle_w: f64,
    /// Additional power while active, watts.
    pub active_w: f64,
}

/// An energy meter over a set of named resources.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    specs: HashMap<String, PowerSpec>,
}

impl EnergyMeter {
    /// Creates a meter with no registered resources.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Registers the power spec of a resource.
    pub fn register(&mut self, resource: &str, spec: PowerSpec) -> &mut Self {
        self.specs.insert(resource.to_owned(), spec);
        self
    }

    /// Total energy in millijoules for a finished simulation: every
    /// registered resource burns idle power for the whole makespan plus
    /// active power for its busy time.
    pub fn total_mj(&self, sim: &Sim) -> f64 {
        let makespan_s = sim.makespan() * 1e-6;
        let mut joules = 0.0;
        for (name, spec) in &self.specs {
            let busy_s = sim.busy_us(name) * 1e-6;
            joules += spec.idle_w * makespan_s + spec.active_w * busy_s;
        }
        joules * 1e3
    }

    /// Energy attributable to one resource, millijoules.
    pub fn resource_mj(&self, sim: &Sim, resource: &str) -> f64 {
        let Some(spec) = self.specs.get(resource) else {
            return 0.0;
        };
        let makespan_s = sim.makespan() * 1e-6;
        let busy_s = sim.busy_us(resource) * 1e-6;
        (spec.idle_w * makespan_s + spec.active_w * busy_s) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_power_accrues_over_makespan() {
        let mut sim = Sim::new();
        sim.run("cpu", "c", 0.0, 1_000_000.0); // 1 s
        let mut meter = EnergyMeter::new();
        meter.register("cpu", PowerSpec { idle_w: 10.0, active_w: 90.0 });
        meter.register("fpga", PowerSpec { idle_w: 20.0, active_w: 0.0 });
        // cpu: 10 W * 1 s + 90 W * 1 s = 100 J; fpga idles: 20 J.
        assert!((meter.total_mj(&sim) - 120_000.0).abs() < 1.0);
        assert!((meter.resource_mj(&sim, "fpga") - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn unregistered_resources_cost_nothing() {
        let mut sim = Sim::new();
        sim.run("ghost", "g", 0.0, 100.0);
        let meter = EnergyMeter::new();
        assert_eq!(meter.total_mj(&sim), 0.0);
        assert_eq!(meter.resource_mj(&sim, "ghost"), 0.0);
    }

    #[test]
    fn faster_execution_costs_less_idle_energy() {
        let meter = {
            let mut m = EnergyMeter::new();
            m.register("cpu", PowerSpec { idle_w: 50.0, active_w: 50.0 });
            m
        };
        let mut slow = Sim::new();
        slow.run("cpu", "work", 0.0, 2_000_000.0);
        let mut fast = Sim::new();
        fast.run("cpu", "work", 0.0, 500_000.0);
        assert!(meter.total_mj(&fast) < meter.total_mj(&slow));
    }
}
