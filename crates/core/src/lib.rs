//! # everest — the EVEREST System Development Kit
//!
//! "The EVEREST SDK is a design environment to ease the description,
//! optimization and execution of Big Data applications with heterogeneous
//! data sources onto FPGA-based architectures, operating at design and run
//! time" (paper Section II). This crate is the façade over the whole
//! reproduction:
//!
//! | paper concept | crate |
//! |---|---|
//! | unified MLIR-like IR + passes (Fig. 1) | [`ir`] |
//! | tensor & workflow DSLs | [`dsl`] |
//! | HLS engine ("Bambu") + TaintHLS DIFT | [`hls`] |
//! | hardware/software variants + DSE | [`variants`] |
//! | target system (Fig. 3/4) + simulator | [`platform`] |
//! | HyperLoom-style workflow platform | [`workflow`] |
//! | virtualized runtime + mARGOt autotuner (Fig. 2) | [`runtime`] |
//! | crypto + monitors + auto-protection | [`security`] |
//! | the three industrial use cases (VI) | [`apps`] |
//!
//! The [`Sdk`] type drives the end-to-end flow; configure it with
//! [`Sdk::builder`]:
//!
//! ```
//! use everest::Sdk;
//!
//! let sdk = Sdk::builder().build();
//! let compiled = sdk.compile(
//!     "kernel axpy(a: tensor<64xf64>, b: tensor<64xf64>) -> tensor<64xf64> {
//!          return 2.0 * a + b;
//!      }",
//! ).unwrap();
//! let kernel = &compiled.kernels[0];
//! assert_eq!(kernel.name, "axpy");
//! assert!(kernel.variants.len() > 2);
//! assert!(kernel.pareto_front().len() <= kernel.variants.len());
//! ```

pub mod bridge;
pub mod check;
pub mod error;
pub mod fuse;
pub mod sdk;

pub use bridge::task_graph_from_workflow;
pub use check::{check_workflow_spec, workflow_accesses};
pub use error::{SdkError, SdkResult};
pub use fuse::{build_plan, kernel_index, plan_diags, render_plan_text, unresolved_diags};
pub use sdk::{Compiled, CompiledKernel, Deployment, Sdk, SdkBuilder};

// The shared diagnostic vocabulary of `everestc check`.
pub use everest_ir::{Diagnostic, Severity};

// Re-export the types users touch on every path through the façade, so
// `use everest::{Sdk, System, Link}` works without naming the subsystem
// crates.
pub use everest_platform::{Link, LinkProfile, System};
pub use everest_runtime::offload::{
    FaultKind, FaultPlan, FaultRates, OffloadCall, OffloadManager, OffloadOutcome, TargetClass,
};
pub use everest_variants::space::DesignSpace;
pub use everest_variants::{
    Dataset, DatasetConfig, ExploreReport, KnobVector, PruneConfig, SurrogateModel, Variant,
};
pub use everest_workflow::RunReport;

// Re-export the subsystem crates under stable names.
pub use everest_apps as apps;
pub use everest_dsl as dsl;
pub use everest_hls as hls;
pub use everest_ir as ir;
pub use everest_platform as platform;
pub use everest_runtime as runtime;
pub use everest_security as security;
pub use everest_variants as variants;
pub use everest_workflow as workflow;
