//! SDK-level error type aggregating every subsystem failure.

use std::fmt;

/// Result alias for SDK operations.
pub type SdkResult<T> = Result<T, SdkError>;

/// Any failure along the compile → deploy → run pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SdkError {
    /// DSL front-end failure.
    Dsl(everest_dsl::DslError),
    /// IR verification/transformation failure.
    Ir(everest_ir::IrError),
    /// HLS synthesis failure.
    Hls(everest_hls::HlsError),
    /// Malformed design space rejected before enumeration.
    DesignSpace(String),
    /// Platform/deployment failure.
    Platform(everest_platform::PlatformError),
    /// Runtime failure.
    Runtime(everest_runtime::RuntimeError),
    /// Workflow failure.
    Workflow(everest_workflow::WorkflowError),
}

impl fmt::Display for SdkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdkError::Dsl(e) => write!(f, "dsl: {e}"),
            SdkError::Ir(e) => write!(f, "ir: {e}"),
            SdkError::Hls(e) => write!(f, "hls: {e}"),
            SdkError::DesignSpace(msg) => write!(f, "design space: {msg}"),
            SdkError::Platform(e) => write!(f, "platform: {e}"),
            SdkError::Runtime(e) => write!(f, "runtime: {e}"),
            SdkError::Workflow(e) => write!(f, "workflow: {e}"),
        }
    }
}

impl std::error::Error for SdkError {
    /// The wrapped subsystem error, so `anyhow`-style chain walking (and
    /// plain `source()` loops) reach the original failure.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdkError::Dsl(e) => Some(e),
            SdkError::Ir(e) => Some(e),
            SdkError::Hls(e) => Some(e),
            SdkError::DesignSpace(_) => None,
            SdkError::Platform(e) => Some(e),
            SdkError::Runtime(e) => Some(e),
            SdkError::Workflow(e) => Some(e),
        }
    }
}

impl From<everest_dsl::DslError> for SdkError {
    fn from(e: everest_dsl::DslError) -> SdkError {
        SdkError::Dsl(e)
    }
}

impl From<everest_ir::IrError> for SdkError {
    fn from(e: everest_ir::IrError) -> SdkError {
        SdkError::Ir(e)
    }
}

impl From<everest_hls::HlsError> for SdkError {
    fn from(e: everest_hls::HlsError) -> SdkError {
        SdkError::Hls(e)
    }
}

impl From<everest_variants::VariantError> for SdkError {
    fn from(e: everest_variants::VariantError) -> SdkError {
        match e {
            everest_variants::VariantError::Hls(e) => SdkError::Hls(e),
            everest_variants::VariantError::Space(msg) => SdkError::DesignSpace(msg),
        }
    }
}

impl From<everest_platform::PlatformError> for SdkError {
    fn from(e: everest_platform::PlatformError) -> SdkError {
        SdkError::Platform(e)
    }
}

impl From<everest_runtime::RuntimeError> for SdkError {
    fn from(e: everest_runtime::RuntimeError) -> SdkError {
        SdkError::Runtime(e)
    }
}

impl From<everest_workflow::WorkflowError> for SdkError {
    fn from(e: everest_workflow::WorkflowError) -> SdkError {
        SdkError::Workflow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_displays_subsystem_errors() {
        let e: SdkError = everest_dsl::DslError::parse(3, "bad token").into();
        assert_eq!(e.to_string(), "dsl: parse error at line 3: bad token");
        let e: SdkError = everest_runtime::RuntimeError::NoFeasiblePoint.into();
        assert!(e.to_string().starts_with("runtime:"));
    }

    #[test]
    fn source_chain_reaches_the_subsystem_error() {
        use std::error::Error;
        let inner = everest_platform::PlatformError::NoRoute { from: "a".into(), to: "b".into() };
        let e: SdkError = inner.clone().into();
        let source = e.source().expect("platform errors chain");
        assert_eq!(source.to_string(), inner.to_string());
        // Leaf variants end the chain instead of fabricating a source.
        assert!(SdkError::DesignSpace("empty".into()).source().is_none());
        // The chain survives boxing, the shape `main()` error reporting sees.
        let boxed: Box<dyn Error> = Box::new(e);
        assert!(boxed.source().is_some());
    }

    #[test]
    fn usable_as_boxed_error() {
        fn returns_boxed() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
            Err(Box::new(SdkError::Runtime(everest_runtime::RuntimeError::NoFeasiblePoint)))
        }
        assert!(returns_boxed().is_err());
    }
}
