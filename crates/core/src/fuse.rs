//! The fusion-legality driver behind `everestc fuse`: bridges parsed
//! workflow specs, compiled kernel modules and the platform BRAM budget
//! onto the graph-only classifier in [`everest_workflow::fuse`].
//!
//! The split of responsibilities mirrors `check`:
//!
//! * `everest-ir` computes per-kernel footprint summaries
//!   ([`module_footprints`]) — byte bounds for every kernel result;
//! * [`build_plan`] turns a [`WorkflowSpec`] into [`DataEdge`]s (single
//!   producer per item is DSL-enforced), attaches the byte bound of each
//!   item by positionally mapping task outputs onto kernel results, and
//!   hands everything to [`classify`];
//! * [`unresolved_diags`] makes a missing kernel a *hard* error before
//!   classification — fusion analysis must never run on a partial graph;
//! * [`plan_diags`] renders racy classifications as `fuse-racy`
//!   diagnostics with the race counterexample and its ordering witness.

use everest_dsl::{WorkflowSpec, WorkflowStep};
use everest_ir::diag::record_metrics;
use everest_ir::footprint::{module_footprints, FnFootprint};
use everest_ir::lints::{LINT_FUSE_RACY, LINT_UNRESOLVED_KERNEL};
use everest_ir::{Diagnostic, Module, Severity};
use everest_workflow::fuse::{classify, DataEdge, EdgeClass, EdgeEnd, FusionPlan};
use std::collections::BTreeMap;

/// Footprint summaries for every kernel across a set of compiled modules,
/// keyed by kernel name. Later modules win on name collisions, matching
/// the CLI's sorted-search-path semantics.
pub fn kernel_index(modules: &[Module]) -> BTreeMap<String, FnFootprint> {
    let mut index = BTreeMap::new();
    for module in modules {
        index.extend(module_footprints(module));
    }
    index
}

/// One `wf-unresolved-kernel` error per workflow task whose kernel is
/// missing from `index`. An empty result means the graph is complete and
/// classification may proceed.
pub fn unresolved_diags(
    spec: &WorkflowSpec,
    index: &BTreeMap<String, FnFootprint>,
) -> Vec<Diagnostic> {
    let known = if index.is_empty() {
        "(none)".to_string()
    } else {
        index.keys().cloned().collect::<Vec<_>>().join(", ")
    };
    let diags: Vec<Diagnostic> = spec
        .steps
        .iter()
        .filter_map(|step| match step {
            WorkflowStep::Task { name, .. } if !index.contains_key(name) => Some(
                Diagnostic::new(
                    Severity::Error,
                    LINT_UNRESOLVED_KERNEL,
                    &spec.name,
                    format!("task '{name}' references a kernel missing from the search path"),
                )
                .at(format!("task {name}"))
                .with_snippet(format!("known kernels: {known}")),
            ),
            _ => None,
        })
        .collect();
    record_metrics(&diags);
    diags
}

/// Builds and classifies the dataset-edge graph of one workflow.
///
/// Byte bounds come from `index`: the producer task's kernel summary,
/// positionally mapping the task's output list onto the kernel's results.
/// Tasks without a summary (unresolved kernels — already reported by
/// [`unresolved_diags`]) contribute unbounded edges.
pub fn build_plan(
    spec: &WorkflowSpec,
    index: &BTreeMap<String, FnFootprint>,
    budget_bytes: u64,
) -> FusionPlan {
    let mut span = everest_telemetry::span("workflow.fuse", "workflow");
    // Single producer per item (DSL-validated): a source node or a task.
    let mut producer: BTreeMap<&str, EdgeEnd> = BTreeMap::new();
    let mut item_bytes: BTreeMap<&str, Option<u64>> = BTreeMap::new();
    for step in &spec.steps {
        match step {
            WorkflowStep::Source { name, kind } => {
                producer.insert(name, EdgeEnd::source(name, kind));
                item_bytes.insert(name, None);
            }
            WorkflowStep::Task { name, outputs, .. } => {
                let fp = index.get(name);
                for (pos, out) in outputs.iter().enumerate() {
                    producer.insert(out, EdgeEnd::task(name));
                    let bytes =
                        fp.and_then(|fp| fp.out_shapes.get(pos)).and_then(|s| s.max_bytes());
                    item_bytes.insert(out, bytes);
                }
            }
            WorkflowStep::Sink { .. } => {}
        }
    }
    // Consumers: tasks (with per-consumer read counts) and sinks.
    let mut consumers: Vec<(&str, EdgeEnd, usize)> = Vec::new();
    for step in &spec.steps {
        match step {
            WorkflowStep::Task { name, inputs, .. } => {
                let mut reads: BTreeMap<&str, usize> = BTreeMap::new();
                for input in inputs {
                    *reads.entry(input).or_default() += 1;
                }
                for (item, count) in reads {
                    consumers.push((item, EdgeEnd::task(name), count));
                }
            }
            WorkflowStep::Sink { name, kind } => {
                consumers.push((name, EdgeEnd::sink(name, kind), 1));
            }
            WorkflowStep::Source { .. } => {}
        }
    }
    let mut reader_count: BTreeMap<&str, usize> = BTreeMap::new();
    for (item, _, _) in &consumers {
        *reader_count.entry(item).or_default() += 1;
    }
    let edges: Vec<DataEdge> = consumers
        .iter()
        .filter_map(|(item, consumer, reads)| {
            Some(DataEdge {
                item: item.to_string(),
                producer: producer.get(item)?.clone(),
                consumer: consumer.clone(),
                bytes: item_bytes.get(item).copied().flatten(),
                readers: reader_count[item],
                reads: *reads,
            })
        })
        .collect();
    span.attr("edges", edges.len());
    let plan = classify(
        &spec.name,
        edges,
        &crate::check::workflow_accesses(spec),
        &spec.task_edges(),
        budget_bytes,
    );
    span.attr("fusable", plan.count(EdgeClass::Fusable));
    span.attr("racy", plan.count(EdgeClass::Racy));
    plan
}

/// Renders every racy edge of a plan as a `fuse-racy` error with the race
/// counterexample (and its ordering witness) as the snippet.
pub fn plan_diags(spec: &WorkflowSpec, plan: &FusionPlan) -> Vec<Diagnostic> {
    let diags: Vec<Diagnostic> = plan
        .racy()
        .map(|e| {
            let mut d = Diagnostic::new(
                Severity::Error,
                LINT_FUSE_RACY,
                &spec.name,
                format!("dataset edge \"{}\" cannot be scheduled: {}", e.edge.item, e.detail),
            )
            .at(format!("edge {} -> {}", e.edge.producer.name, e.edge.consumer.name));
            if let Some(race) = &e.race {
                d = d.with_snippet(format!(
                    "counterexample: '{}' and '{}' both write \"{}\" in either order ({})",
                    race.first, race.second, race.dataset, race.evidence
                ));
            }
            d
        })
        .collect();
    record_metrics(&diags);
    diags
}

/// Renders a plan as the human `everestc fuse` report. With `explain`,
/// every verdict carries its one-line proof.
pub fn render_plan_text(plan: &FusionPlan, explain: bool) -> String {
    let mut out = format!(
        "fusion plan for '{}' (BRAM stream budget {} B)\n",
        plan.workflow, plan.budget_bytes
    );
    for e in &plan.edges {
        let bytes = e.edge.bytes.map_or("? B".to_string(), |b| format!("{b} B"));
        out.push_str(&format!(
            "  [{}] {}: {} -> {} ({bytes}, {})\n",
            e.class, e.edge.item, e.edge.producer.name, e.edge.consumer.name, e.reason
        ));
        if explain {
            out.push_str(&format!("      proof: {}\n", e.detail));
        }
    }
    out.push_str(&format!(
        "fuse: {} fusable, {} must-spill, {} racy\n",
        plan.count(EdgeClass::Fusable),
        plan.count(EdgeClass::MustSpill),
        plan.count(EdgeClass::Racy)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_dsl::compile_kernels;

    const CASCADE_WF: &str = r#"
        workflow air_quality_cascade {
            source obs: "weather-ensemble-feed";
            task assimilate(obs) -> fields;
            task ensemble(fields) -> ensemble_field;
            task plume(ensemble_field) -> concentration;
            task exceedance(concentration) -> alerts;
            task report(concentration) -> summary;
            sink alerts: "operations-dashboard";
            sink summary: "forecast-archive";
        }
    "#;

    const CASCADE_KERNELS: &str = r#"
        kernel assimilate(obs: tensor<256x256xf64>, psf: tensor<3x3xf64>) -> tensor<256x256xf64> {
            return conv2d(obs, psf);
        }
        kernel ensemble(fields: tensor<256x256xf64>, lift: tensor<256x128xf64>) -> tensor<128x128xf64> {
            var proj = transpose(fields @ lift, [1, 0]);
            return proj @ lift;
        }
        kernel plume(field: tensor<128x128xf64>, kern: tensor<5x5xf64>) -> tensor<128x128xf64> {
            return conv2d(field, kern);
        }
        kernel exceedance(conc: tensor<128x128xf64>) -> tensor<128xf64> {
            return reduce_max(conc, [1]);
        }
        kernel report(conc: tensor<128x128xf64>) -> tensor<128xf64> {
            return reduce_mean(conc, [1]);
        }
    "#;

    const BUDGET: u64 = 230_400;

    fn cascade_plan() -> FusionPlan {
        let spec = WorkflowSpec::parse(CASCADE_WF).unwrap();
        let modules = vec![compile_kernels(CASCADE_KERNELS).unwrap()];
        let index = kernel_index(&modules);
        assert!(unresolved_diags(&spec, &index).is_empty());
        build_plan(&spec, &index, BUDGET)
    }

    #[test]
    fn ensemble_to_plume_edge_is_certified_fusable() {
        let plan = cascade_plan();
        let edge = plan
            .edges
            .iter()
            .find(|e| e.edge.item == "ensemble_field")
            .expect("ensemble_field edge");
        assert_eq!(edge.class, EdgeClass::Fusable);
        // 128x128 f64 = 131072 B, under the 230400 B edge-device budget.
        assert_eq!(edge.edge.bytes, Some(131_072));
        assert_eq!(edge.ordering_path, Some(vec!["ensemble".to_string(), "plume".to_string()]));
        assert_eq!(plan.count(EdgeClass::Racy), 0);
        assert_eq!(plan.count(EdgeClass::Fusable), 1, "{plan:?}");
    }

    #[test]
    fn oversized_and_fanned_out_edges_spill() {
        let plan = cascade_plan();
        let by_item =
            |item: &str| plan.edges.iter().filter(|e| e.edge.item == item).collect::<Vec<_>>();
        // 256x256 f64 = 524288 B > budget.
        let fields = by_item("fields");
        assert_eq!(fields[0].reason, "exceeds-budget");
        assert_eq!(fields[0].edge.bytes, Some(524_288));
        // concentration feeds exceedance and report.
        let conc = by_item("concentration");
        assert_eq!(conc.len(), 2);
        assert!(conc.iter().all(|e| e.reason == "fan-out" && e.edge.readers == 2));
        // Source and sink hand-offs stay on the host.
        assert_eq!(by_item("obs")[0].reason, "host-boundary");
        assert_eq!(by_item("alerts")[0].reason, "host-boundary");
    }

    #[test]
    fn missing_kernel_is_a_hard_diagnostic() {
        let spec = WorkflowSpec::parse(CASCADE_WF).unwrap();
        let index = BTreeMap::new();
        let diags = unresolved_diags(&spec, &index);
        assert_eq!(diags.len(), 5);
        assert!(diags.iter().all(|d| d.code == LINT_UNRESOLVED_KERNEL));
        assert_eq!(
            diags[0].render(),
            "error[wf-unresolved-kernel] @air_quality_cascade at task assimilate: \
             task 'assimilate' references a kernel missing from the search path\n    \
             known kernels: (none)"
        );
    }

    #[test]
    fn aliased_sinks_are_rejected_with_a_counterexample() {
        let spec = WorkflowSpec::parse(
            r#"workflow aliased_export {
                source frames: "camera-feed";
                task blur(frames) -> soft;
                task sharpen(frames) -> crisp;
                sink soft: "frame-store";
                sink crisp: "frame-store";
            }"#,
        )
        .unwrap();
        let plan = build_plan(&spec, &BTreeMap::new(), BUDGET);
        assert_eq!(plan.count(EdgeClass::Racy), 2, "{plan:?}");
        let diags = plan_diags(&spec, &plan);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].code, LINT_FUSE_RACY);
        // Golden rendering: the exact proof text is part of the contract.
        assert_eq!(
            diags[0].render(),
            "error[fuse-racy] @aliased_export at edge sharpen -> crisp: dataset edge \
             \"crisp\" cannot be scheduled: write-write conflict on \"frame-store\" between \
             'blur' and 'sharpen' (no ordering path links them)\n    counterexample: 'blur' \
             and 'sharpen' both write \"frame-store\" in either order (no ordering path \
             links them)"
        );
    }

    #[test]
    fn golden_plan_rendering() {
        let plan = cascade_plan();
        let text = render_plan_text(&plan, true);
        assert!(text.contains(
            "  [fusable] ensemble_field: ensemble -> plume (131072 B, fits-budget)\n      \
             proof: single reader, footprint 131072 B <= 230400 B budget, serialized by \
             ensemble -> plume\n"
        ));
        assert!(text.ends_with("fuse: 1 fusable, 6 must-spill, 0 racy\n"));
        // Deterministic rendering and serialization.
        assert_eq!(text, render_plan_text(&cascade_plan(), true));
        assert_eq!(plan.to_json(), cascade_plan().to_json());
    }
}
