//! The [`Sdk`] façade: compile kernels, explore variants, deploy roles to
//! the target system, and wire the runtime. Configure it through
//! [`Sdk::builder`] (the historical `Sdk::new()` / `Sdk::small()` /
//! `Sdk::with_jobs()` wrappers went through a deprecation cycle and are
//! gone; every caller builds).

use crate::error::SdkResult;
use everest_dsl::compile_kernels;
use everest_hls::accel::{synthesize, HlsConfig};
use everest_ir::pass::PassManager;
use everest_ir::Module;
use everest_platform::System;
use everest_runtime::offload::{FaultPlan, OffloadManager};
use everest_runtime::{Autotuner, Hypervisor};
use everest_variants::space::DesignSpace;
use everest_variants::{pareto, ExploreReport, PruneConfig, Variant};

/// A compiled kernel: its variants (operating points) and the Pareto set.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Kernel symbol name.
    pub name: String,
    /// All generated variants.
    pub variants: Vec<Variant>,
}

impl CompiledKernel {
    /// The Pareto-optimal subset of the variants.
    pub fn pareto_front(&self) -> Vec<Variant> {
        pareto::pareto_front(&self.variants)
    }

    /// The fastest variant.
    pub fn fastest(&self) -> Option<&Variant> {
        pareto::fastest(&self.variants)
    }

    /// An autotuner pre-loaded with this kernel's operating points.
    pub fn autotuner(&self) -> Autotuner {
        Autotuner::new(self.variants.clone())
    }
}

/// Output of [`Sdk::compile`].
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The optimized unified IR module.
    pub module: Module,
    /// Per-kernel variant sets, in declaration order.
    pub kernels: Vec<CompiledKernel>,
    /// What the surrogate-pruned explorer did, when the SDK was built
    /// with [`SdkBuilder::surrogate`] (`None` for exhaustive DSE).
    pub explore: Option<ExploreReport>,
}

impl Compiled {
    /// Looks up one kernel's compilation result.
    pub fn kernel(&self, name: &str) -> Option<&CompiledKernel> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// A deployment of compiled kernels onto a node's FPGA devices.
#[derive(Debug)]
pub struct Deployment {
    /// The hypervisor managing the node's devices and guest VMs.
    pub hypervisor: Hypervisor,
    /// `(kernel, vfpga handle)` pairs for the hardware variants deployed.
    pub placements: Vec<(String, String)>,
}

/// Builder for [`Sdk`]: the single place all façade configuration meets.
///
/// ```
/// use everest::{DesignSpace, Sdk};
///
/// let sdk = Sdk::builder().space(DesignSpace::small()).jobs(4).build();
/// assert_eq!(sdk.jobs, 4);
/// ```
#[derive(Debug, Clone)]
pub struct SdkBuilder {
    space: DesignSpace,
    hls: HlsConfig,
    system: System,
    jobs: usize,
    trace: bool,
    fault_plan: Option<FaultPlan>,
    surrogate: Option<PruneConfig>,
}

impl Default for SdkBuilder {
    fn default() -> SdkBuilder {
        SdkBuilder {
            space: DesignSpace::default(),
            hls: HlsConfig::default(),
            system: System::everest_reference(),
            jobs: 2,
            trace: false,
            fault_plan: None,
            surrogate: None,
        }
    }
}

impl SdkBuilder {
    /// Sets the design space swept per kernel.
    #[must_use]
    pub fn space(mut self, space: DesignSpace) -> SdkBuilder {
        self.space = space;
        self
    }

    /// Sets the HLS configuration for hardware variants.
    #[must_use]
    pub fn hls(mut self, hls: HlsConfig) -> SdkBuilder {
        self.hls = hls;
        self
    }

    /// Sets the target system model (default: the reference EVEREST
    /// demonstrator of Fig. 4).
    #[must_use]
    pub fn system(mut self, system: System) -> SdkBuilder {
        self.system = system;
        self
    }

    /// Sets the DSE worker count (clamped to at least 1).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> SdkBuilder {
        self.jobs = jobs.max(1);
        self
    }

    /// When `true`, [`SdkBuilder::build`] installs the recording tracer so
    /// every span the pipeline emits is captured for Chrome-trace export.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> SdkBuilder {
        self.trace = trace;
        self
    }

    /// Arms a fault-injection plan; [`Sdk::offload_manager`] wires it into
    /// the offload recovery layer.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> SdkBuilder {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables surrogate-pruned DSE: [`Sdk::compile`] trains a learned
    /// cost model on a sample of the hardware points and synthesizes
    /// exactly only near the predicted Pareto front (falling back to
    /// exhaustive exploration when the model validates poorly — see
    /// [`PruneConfig::max_val_mape`]).
    #[must_use]
    pub fn surrogate(mut self, cfg: PruneConfig) -> SdkBuilder {
        self.surrogate = Some(cfg);
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> Sdk {
        if self.trace {
            everest_telemetry::install_global(everest_telemetry::Tracer::recording());
        }
        Sdk {
            space: self.space,
            hls: self.hls,
            system: self.system,
            jobs: self.jobs,
            fault_plan: self.fault_plan,
            surrogate: self.surrogate,
        }
    }
}

/// The EVEREST SDK: configuration plus the compile/deploy entry points.
#[derive(Debug, Clone)]
pub struct Sdk {
    /// Design space swept per kernel.
    pub space: DesignSpace,
    /// HLS configuration for hardware variants.
    pub hls: HlsConfig,
    /// The target system model.
    pub system: System,
    /// DSE worker count: `1` runs the sequential reference evaluator,
    /// `>= 2` the pooled, memoized engine. Outputs are bit-identical
    /// either way.
    pub jobs: usize,
    /// The armed fault-injection plan, if any (see
    /// [`SdkBuilder::fault_plan`]).
    pub fault_plan: Option<FaultPlan>,
    /// Surrogate-pruned DSE configuration, if enabled (see
    /// [`SdkBuilder::surrogate`]).
    pub surrogate: Option<PruneConfig>,
}

impl Default for Sdk {
    fn default() -> Sdk {
        Sdk::builder().build()
    }
}

impl Sdk {
    /// Starts configuring an SDK.
    pub fn builder() -> SdkBuilder {
        SdkBuilder::default()
    }

    /// An offload recovery layer over this SDK's system, armed with the
    /// configured fault plan (or a fault-free plan when none was set).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] when the system model has no nodes.
    pub fn offload_manager(&self) -> SdkResult<OffloadManager> {
        let plan = self.fault_plan.clone().unwrap_or_else(|| FaultPlan::none(0));
        Ok(OffloadManager::for_system(&self.system, plan)?)
    }

    /// Compiles tensor-DSL source: parse + type-check, lower to the unified
    /// IR, canonicalize, then generate the variant set for every kernel
    /// (the full Fig. 1 flow).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] for DSL, verification or HLS failures.
    pub fn compile(&self, source: &str) -> SdkResult<Compiled> {
        let mut compile_span = everest_telemetry::span("sdk.compile", "sdk");
        let mut module = compile_kernels(source)?;
        PassManager::standard().run(&mut module)?;
        {
            let _span = everest_telemetry::span("ir.verify", "ir");
            module.verify()?;
        }
        let (kernels, explore) = {
            let funcs: Vec<&everest_ir::Func> = module.iter().collect();
            let (sets, explore) = match &self.surrogate {
                Some(cfg) => {
                    let (sets, report) =
                        everest_variants::generate_all_pruned(&funcs, &self.space, self.jobs, cfg)?;
                    (sets, Some(report))
                }
                None => (everest_variants::generate_all(&funcs, &self.space, self.jobs)?, None),
            };
            let kernels = funcs
                .iter()
                .zip(sets)
                .map(|(func, variants)| CompiledKernel { name: func.name.clone(), variants })
                .collect::<Vec<_>>();
            (kernels, explore)
        };
        compile_span.attr("kernels", kernels.len());
        compile_span.attr("jobs", self.jobs);
        Ok(Compiled { module, kernels, explore })
    }

    /// Statically checks tensor-DSL source: compiles and canonicalizes the
    /// kernels like [`Sdk::compile`], then runs every IR lint (liveness,
    /// range, taint/IFC) without generating variants. Returns the
    /// diagnostics; an empty vector means the source is clean.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] for DSL or verification failures —
    /// malformed IR is a hard error, not a diagnostic.
    pub fn check(&self, source: &str) -> SdkResult<Vec<everest_ir::Diagnostic>> {
        let mut span = everest_telemetry::span("sdk.check", "sdk");
        let mut module = compile_kernels(source)?;
        PassManager::standard().run(&mut module)?;
        module.verify()?;
        let diags = everest_ir::lints::check_module(&module);
        span.attr("diagnostics", diags.len());
        Ok(diags)
    }

    /// Statically checks workflow-DSL source: parses the spec and runs the
    /// dataset race detector over its task graph.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] when the workflow source is invalid.
    pub fn check_workflow(&self, source: &str) -> SdkResult<Vec<everest_ir::Diagnostic>> {
        let spec = everest_dsl::WorkflowSpec::parse(source)?;
        Ok(crate::check::check_workflow_spec(&spec))
    }

    /// Runs the stream-fusion legality analysis over one workflow: compiles
    /// every kernel source, indexes per-kernel footprint summaries, and
    /// classifies each dataset edge against the weakest FPGA's BRAM stream
    /// budget (see [`System::stream_budget_bytes`]; `0` when the system has
    /// no FPGAs, so nothing fuses). Returns the machine-checkable plan plus
    /// the diagnostics (unresolved kernels, racy edges) — an empty
    /// diagnostic list means the plan is safe to hand to a transport layer.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] when the workflow or any kernel source
    /// is invalid — malformed input is a hard error, not a diagnostic.
    pub fn fuse_workflow(
        &self,
        workflow_source: &str,
        kernel_sources: &[&str],
    ) -> SdkResult<(everest_workflow::fuse::FusionPlan, Vec<everest_ir::Diagnostic>)> {
        let mut span = everest_telemetry::span("sdk.fuse", "sdk");
        let spec = everest_dsl::WorkflowSpec::parse(workflow_source)?;
        let mut modules = Vec::with_capacity(kernel_sources.len());
        for source in kernel_sources {
            let mut module = compile_kernels(source)?;
            PassManager::standard().run(&mut module)?;
            module.verify()?;
            modules.push(module);
        }
        let index = crate::fuse::kernel_index(&modules);
        let budget = self.system.stream_budget_bytes().unwrap_or(0);
        let mut diags = crate::fuse::unresolved_diags(&spec, &index);
        let plan = crate::fuse::build_plan(&spec, &index, budget);
        diags.extend(crate::fuse::plan_diags(&spec, &plan));
        span.attr("edges", plan.edges.len());
        span.attr("diagnostics", diags.len());
        Ok((plan, diags))
    }

    /// Synthesizes one kernel to an accelerator artifact (RTL + reports)
    /// without variant exploration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] for DSL or HLS failures.
    pub fn synthesize_kernel(
        &self,
        source: &str,
        kernel: &str,
    ) -> SdkResult<everest_hls::Accelerator> {
        let mut sdk_span = everest_telemetry::span("sdk.synthesize_kernel", "sdk");
        sdk_span.attr("kernel", kernel);
        let module = compile_kernels(source)?;
        let func = module
            .func(kernel)
            .ok_or_else(|| everest_ir::IrError::UnknownSymbol(kernel.to_owned()))?;
        let mut hls_span = everest_telemetry::span("hls.synthesize", "hls");
        hls_span.attr("kernel", kernel);
        Ok(synthesize(func, &self.hls)?)
    }

    /// Parses a workflow and binds it to previously compiled kernels: a
    /// task whose callee matches a compiled kernel is costed with that
    /// kernel's fastest variant (latency + its result size); unmatched
    /// tasks get a nominal I/O cost.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] when the workflow source is invalid.
    pub fn compile_workflow(
        &self,
        source: &str,
        compiled: &Compiled,
    ) -> SdkResult<(everest_dsl::WorkflowSpec, everest_workflow::TaskGraph)> {
        let spec = everest_dsl::WorkflowSpec::parse(source)?;
        let graph =
            crate::bridge::task_graph_from_workflow(&spec, |name| match compiled.kernel(name) {
                Some(kernel) => {
                    let cost = kernel.fastest().map(|v| v.metrics.total_us()).unwrap_or(100.0);
                    let bytes = compiled
                        .module
                        .func(name)
                        .and_then(|f| f.results.first())
                        .and_then(|t| t.byte_size())
                        .unwrap_or(10_000) as u64;
                    (cost, bytes)
                }
                None => (100.0, 10_000),
            });
        Ok((spec, graph))
    }

    /// Deploys the fastest hardware variant of every kernel onto the named
    /// node, creating a guest VM with vFPGA handles.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] if the node is unknown or the fabric
    /// cannot host a role.
    pub fn deploy(&self, compiled: &Compiled, node: &str) -> SdkResult<Deployment> {
        let node_model = self
            .system
            .node_by_name(node)
            .ok_or_else(|| everest_platform::PlatformError::Unknown(node.to_owned()))?;
        let mut hypervisor = Hypervisor::new(node, node_model.devices.clone());
        hypervisor.create_vm("guest0", 4, "linux");
        let mut placements = Vec::new();
        for kernel in &compiled.kernels {
            let Some(hw) = kernel
                .variants
                .iter()
                .filter(|v| v.is_hardware())
                .min_by(|a, b| a.metrics.total_us().total_cmp(&b.metrics.total_us()))
            else {
                continue;
            };
            let area = everest_hls::AreaReport {
                luts: hw.metrics.area_luts,
                ffs: hw.metrics.area_luts, // FF≈LUT at this granularity
                dsps: 8,
                brams: hw.metrics.area_brams,
            };
            let handle = hypervisor.attach_vfpga("guest0", &kernel.name, area)?;
            placements.push((kernel.name.clone(), handle));
        }
        Ok(Deployment { hypervisor, placements })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sdk() -> Sdk {
        Sdk::builder().space(DesignSpace::small()).build()
    }

    const SRC: &str = "
        kernel gemm(a: tensor<16x16xf64>, b: tensor<16x16xf64>) -> tensor<16x16xf64> {
            return a @ b;
        }
        kernel smooth(x: tensor<64xf64>) -> tensor<64xf64> {
            return stencil(x, [0.25, 0.5, 0.25]);
        }
    ";

    #[test]
    fn compile_generates_variants_per_kernel() {
        let sdk = small_sdk();
        let compiled = sdk.compile(SRC).unwrap();
        assert_eq!(compiled.kernels.len(), 2);
        let gemm = compiled.kernel("gemm").unwrap();
        assert_eq!(gemm.variants.len(), sdk.space.size());
        assert!(gemm.fastest().is_some());
        assert!(!gemm.pareto_front().is_empty());
    }

    #[test]
    fn compile_rejects_bad_source() {
        let sdk = small_sdk();
        assert!(matches!(sdk.compile("kernel broken(").unwrap_err(), crate::SdkError::Dsl(_)));
    }

    #[test]
    fn synthesize_kernel_produces_rtl() {
        let sdk = small_sdk();
        let acc = sdk.synthesize_kernel(SRC, "smooth").unwrap();
        assert!(acc.rtl.contains("module smooth_loops"));
        assert!(acc.latency_cycles > 0);
    }

    #[test]
    fn synthesize_unknown_kernel_fails() {
        let sdk = small_sdk();
        assert!(matches!(
            sdk.synthesize_kernel(SRC, "ghost").unwrap_err(),
            crate::SdkError::Ir(everest_ir::IrError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn deploy_places_hardware_variants() {
        let sdk = small_sdk();
        let compiled = sdk.compile(SRC).unwrap();
        let deployment = sdk.deploy(&compiled, "cloud-p9").unwrap();
        assert_eq!(deployment.placements.len(), 2);
        assert!(deployment.hypervisor.vm("guest0").is_some());
    }

    #[test]
    fn deploy_to_unknown_node_fails() {
        let sdk = small_sdk();
        let compiled = sdk.compile(SRC).unwrap();
        assert!(matches!(sdk.deploy(&compiled, "mars").unwrap_err(), crate::SdkError::Platform(_)));
    }

    #[test]
    fn compile_workflow_binds_kernel_costs() {
        let sdk = small_sdk();
        let compiled = sdk.compile(SRC).unwrap();
        let (spec, graph) = sdk
            .compile_workflow(
                "workflow w { source raw: \"in\"; task gemm(raw) -> out; sink out: \"done\"; }",
                &compiled,
            )
            .unwrap();
        assert_eq!(spec.task_names(), vec!["gemm"]);
        let gemm_task = graph.tasks().iter().find(|t| t.name == "gemm").unwrap();
        // The bridge clamps task costs to >= 1 us (scheduler granularity).
        let expected =
            compiled.kernel("gemm").unwrap().fastest().unwrap().metrics.total_us().max(1.0);
        assert!((gemm_task.cost_us - expected).abs() < 1e-9);
        // Output bytes come from the kernel's declared result tensor.
        assert_eq!(gemm_task.output_bytes, 16 * 16 * 8);
    }

    #[test]
    fn compile_workflow_rejects_bad_source() {
        let sdk = small_sdk();
        let compiled = sdk.compile(SRC).unwrap();
        assert!(sdk.compile_workflow("workflow broken {", &compiled).is_err());
    }

    #[test]
    fn builder_configures_every_knob() {
        use everest_runtime::offload::FaultRates;
        let plan = FaultPlan::new(9, FaultRates { drop: 0.1, ..FaultRates::NONE }).unwrap();
        let sdk = Sdk::builder()
            .space(DesignSpace::small())
            .system(System::everest_reference())
            .jobs(0) // clamped
            .fault_plan(plan.clone())
            .build();
        assert_eq!(sdk.jobs, 1);
        assert_eq!(sdk.space.size(), DesignSpace::small().size());
        assert_eq!(sdk.fault_plan, Some(plan));
        // The armed plan reaches the offload layer.
        let mgr = sdk.offload_manager().unwrap();
        assert!(!mgr.chain().is_empty());
    }

    #[test]
    fn surrogate_compile_reports_and_matches_ids() {
        // The small space has too few hardware points to train on, so the
        // surrogate path must fall back to exhaustive exploration and say
        // so — while producing the identical variant set.
        let exhaustive = small_sdk().compile(SRC).unwrap();
        let pruned = Sdk::builder()
            .space(DesignSpace::small())
            .surrogate(PruneConfig::default())
            .build()
            .compile(SRC)
            .unwrap();
        let report = pruned.explore.as_ref().expect("surrogate compile carries a report");
        assert!(report.fallback);
        assert!(exhaustive.explore.is_none());
        for (a, b) in exhaustive.kernels.iter().zip(&pruned.kernels) {
            assert_eq!(a.variants, b.variants);
        }
    }

    #[test]
    fn offload_manager_defaults_to_a_fault_free_plan() {
        let mut mgr = small_sdk().offload_manager().unwrap();
        let call = everest_runtime::offload::OffloadCall {
            kernel: "gemm".into(),
            payload_bytes: 4096,
            work_us: 50.0,
        };
        let outcome = mgr.execute(&call).unwrap();
        assert!(!outcome.degraded);
    }

    #[test]
    fn autotuner_integrates_with_compiled_kernels() {
        let sdk = small_sdk();
        let compiled = sdk.compile(SRC).unwrap();
        let tuner = compiled.kernel("gemm").unwrap().autotuner();
        let choice = tuner.select(&Default::default()).unwrap();
        assert!(compiled.kernel("gemm").unwrap().variants.iter().any(|v| v.id == choice.id));
    }
}
