//! The [`Sdk`] façade: compile kernels, explore variants, deploy roles to
//! the target system, and wire the runtime.

use crate::error::SdkResult;
use everest_dsl::compile_kernels;
use everest_hls::accel::{synthesize, HlsConfig};
use everest_ir::pass::PassManager;
use everest_ir::Module;
use everest_platform::System;
use everest_runtime::{Autotuner, Hypervisor};
use everest_variants::space::DesignSpace;
use everest_variants::{pareto, Variant};

/// A compiled kernel: its variants (operating points) and the Pareto set.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Kernel symbol name.
    pub name: String,
    /// All generated variants.
    pub variants: Vec<Variant>,
}

impl CompiledKernel {
    /// The Pareto-optimal subset of the variants.
    pub fn pareto_front(&self) -> Vec<Variant> {
        pareto::pareto_front(&self.variants)
    }

    /// The fastest variant.
    pub fn fastest(&self) -> Option<&Variant> {
        pareto::fastest(&self.variants)
    }

    /// An autotuner pre-loaded with this kernel's operating points.
    pub fn autotuner(&self) -> Autotuner {
        Autotuner::new(self.variants.clone())
    }
}

/// Output of [`Sdk::compile`].
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The optimized unified IR module.
    pub module: Module,
    /// Per-kernel variant sets, in declaration order.
    pub kernels: Vec<CompiledKernel>,
}

impl Compiled {
    /// Looks up one kernel's compilation result.
    pub fn kernel(&self, name: &str) -> Option<&CompiledKernel> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// A deployment of compiled kernels onto a node's FPGA devices.
#[derive(Debug)]
pub struct Deployment {
    /// The hypervisor managing the node's devices and guest VMs.
    pub hypervisor: Hypervisor,
    /// `(kernel, vfpga handle)` pairs for the hardware variants deployed.
    pub placements: Vec<(String, String)>,
}

/// The EVEREST SDK: configuration plus the compile/deploy entry points.
#[derive(Debug, Clone)]
pub struct Sdk {
    /// Design space swept per kernel.
    pub space: DesignSpace,
    /// HLS configuration for hardware variants.
    pub hls: HlsConfig,
    /// The target system model.
    pub system: System,
    /// DSE worker count: `1` runs the sequential reference evaluator,
    /// `>= 2` the pooled, memoized engine. Outputs are bit-identical
    /// either way.
    pub jobs: usize,
}

impl Default for Sdk {
    fn default() -> Sdk {
        Sdk::new()
    }
}

impl Sdk {
    /// An SDK over the reference EVEREST system with the default design
    /// space.
    pub fn new() -> Sdk {
        Sdk {
            space: DesignSpace::default(),
            hls: HlsConfig::default(),
            system: System::everest_reference(),
            jobs: 2,
        }
    }

    /// An SDK with a minimal design space (fast unit tests / examples).
    pub fn small() -> Sdk {
        Sdk { space: DesignSpace::small(), ..Sdk::new() }
    }

    /// Sets the DSE worker count (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Sdk {
        self.jobs = jobs.max(1);
        self
    }

    /// Compiles tensor-DSL source: parse + type-check, lower to the unified
    /// IR, canonicalize, then generate the variant set for every kernel
    /// (the full Fig. 1 flow).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] for DSL, verification or HLS failures.
    pub fn compile(&self, source: &str) -> SdkResult<Compiled> {
        let mut compile_span = everest_telemetry::span("sdk.compile", "sdk");
        let mut module = compile_kernels(source)?;
        PassManager::standard().run(&mut module)?;
        {
            let _span = everest_telemetry::span("ir.verify", "ir");
            module.verify()?;
        }
        let kernels = {
            let funcs: Vec<&everest_ir::Func> = module.iter().collect();
            let sets = everest_variants::generate_all(&funcs, &self.space, self.jobs)?;
            funcs
                .iter()
                .zip(sets)
                .map(|(func, variants)| CompiledKernel { name: func.name.clone(), variants })
                .collect::<Vec<_>>()
        };
        compile_span.attr("kernels", kernels.len());
        compile_span.attr("jobs", self.jobs);
        Ok(Compiled { module, kernels })
    }

    /// Synthesizes one kernel to an accelerator artifact (RTL + reports)
    /// without variant exploration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] for DSL or HLS failures.
    pub fn synthesize_kernel(
        &self,
        source: &str,
        kernel: &str,
    ) -> SdkResult<everest_hls::Accelerator> {
        let mut sdk_span = everest_telemetry::span("sdk.synthesize_kernel", "sdk");
        sdk_span.attr("kernel", kernel);
        let module = compile_kernels(source)?;
        let func = module
            .func(kernel)
            .ok_or_else(|| everest_ir::IrError::UnknownSymbol(kernel.to_owned()))?;
        let mut hls_span = everest_telemetry::span("hls.synthesize", "hls");
        hls_span.attr("kernel", kernel);
        Ok(synthesize(func, &self.hls)?)
    }

    /// Parses a workflow and binds it to previously compiled kernels: a
    /// task whose callee matches a compiled kernel is costed with that
    /// kernel's fastest variant (latency + its result size); unmatched
    /// tasks get a nominal I/O cost.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] when the workflow source is invalid.
    pub fn compile_workflow(
        &self,
        source: &str,
        compiled: &Compiled,
    ) -> SdkResult<(everest_dsl::WorkflowSpec, everest_workflow::TaskGraph)> {
        let spec = everest_dsl::WorkflowSpec::parse(source)?;
        let graph =
            crate::bridge::task_graph_from_workflow(&spec, |name| match compiled.kernel(name) {
                Some(kernel) => {
                    let cost = kernel.fastest().map(|v| v.metrics.total_us()).unwrap_or(100.0);
                    let bytes = compiled
                        .module
                        .func(name)
                        .and_then(|f| f.results.first())
                        .and_then(|t| t.byte_size())
                        .unwrap_or(10_000) as u64;
                    (cost, bytes)
                }
                None => (100.0, 10_000),
            });
        Ok((spec, graph))
    }

    /// Deploys the fastest hardware variant of every kernel onto the named
    /// node, creating a guest VM with vFPGA handles.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SdkError`] if the node is unknown or the fabric
    /// cannot host a role.
    pub fn deploy(&self, compiled: &Compiled, node: &str) -> SdkResult<Deployment> {
        let node_model = self
            .system
            .node_by_name(node)
            .ok_or_else(|| everest_platform::PlatformError::Unknown(node.to_owned()))?;
        let mut hypervisor = Hypervisor::new(node, node_model.devices.clone());
        hypervisor.create_vm("guest0", 4, "linux");
        let mut placements = Vec::new();
        for kernel in &compiled.kernels {
            let Some(hw) = kernel
                .variants
                .iter()
                .filter(|v| v.is_hardware())
                .min_by(|a, b| a.metrics.total_us().total_cmp(&b.metrics.total_us()))
            else {
                continue;
            };
            let area = everest_hls::AreaReport {
                luts: hw.metrics.area_luts,
                ffs: hw.metrics.area_luts, // FF≈LUT at this granularity
                dsps: 8,
                brams: hw.metrics.area_brams,
            };
            let handle = hypervisor.attach_vfpga("guest0", &kernel.name, area)?;
            placements.push((kernel.name.clone(), handle));
        }
        Ok(Deployment { hypervisor, placements })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        kernel gemm(a: tensor<16x16xf64>, b: tensor<16x16xf64>) -> tensor<16x16xf64> {
            return a @ b;
        }
        kernel smooth(x: tensor<64xf64>) -> tensor<64xf64> {
            return stencil(x, [0.25, 0.5, 0.25]);
        }
    ";

    #[test]
    fn compile_generates_variants_per_kernel() {
        let sdk = Sdk::small();
        let compiled = sdk.compile(SRC).unwrap();
        assert_eq!(compiled.kernels.len(), 2);
        let gemm = compiled.kernel("gemm").unwrap();
        assert_eq!(gemm.variants.len(), sdk.space.size());
        assert!(gemm.fastest().is_some());
        assert!(!gemm.pareto_front().is_empty());
    }

    #[test]
    fn compile_rejects_bad_source() {
        let sdk = Sdk::small();
        assert!(matches!(sdk.compile("kernel broken(").unwrap_err(), crate::SdkError::Dsl(_)));
    }

    #[test]
    fn synthesize_kernel_produces_rtl() {
        let sdk = Sdk::small();
        let acc = sdk.synthesize_kernel(SRC, "smooth").unwrap();
        assert!(acc.rtl.contains("module smooth_loops"));
        assert!(acc.latency_cycles > 0);
    }

    #[test]
    fn synthesize_unknown_kernel_fails() {
        let sdk = Sdk::small();
        assert!(matches!(
            sdk.synthesize_kernel(SRC, "ghost").unwrap_err(),
            crate::SdkError::Ir(everest_ir::IrError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn deploy_places_hardware_variants() {
        let sdk = Sdk::small();
        let compiled = sdk.compile(SRC).unwrap();
        let deployment = sdk.deploy(&compiled, "cloud-p9").unwrap();
        assert_eq!(deployment.placements.len(), 2);
        assert!(deployment.hypervisor.vm("guest0").is_some());
    }

    #[test]
    fn deploy_to_unknown_node_fails() {
        let sdk = Sdk::small();
        let compiled = sdk.compile(SRC).unwrap();
        assert!(matches!(sdk.deploy(&compiled, "mars").unwrap_err(), crate::SdkError::Platform(_)));
    }

    #[test]
    fn compile_workflow_binds_kernel_costs() {
        let sdk = Sdk::small();
        let compiled = sdk.compile(SRC).unwrap();
        let (spec, graph) = sdk
            .compile_workflow(
                "workflow w { source raw: \"in\"; task gemm(raw) -> out; sink out: \"done\"; }",
                &compiled,
            )
            .unwrap();
        assert_eq!(spec.task_names(), vec!["gemm"]);
        let gemm_task = graph.tasks().iter().find(|t| t.name == "gemm").unwrap();
        // The bridge clamps task costs to >= 1 us (scheduler granularity).
        let expected =
            compiled.kernel("gemm").unwrap().fastest().unwrap().metrics.total_us().max(1.0);
        assert!((gemm_task.cost_us - expected).abs() < 1e-9);
        // Output bytes come from the kernel's declared result tensor.
        assert_eq!(gemm_task.output_bytes, 16 * 16 * 8);
    }

    #[test]
    fn compile_workflow_rejects_bad_source() {
        let sdk = Sdk::small();
        let compiled = sdk.compile(SRC).unwrap();
        assert!(sdk.compile_workflow("workflow broken {", &compiled).is_err());
    }

    #[test]
    fn autotuner_integrates_with_compiled_kernels() {
        let sdk = Sdk::small();
        let compiled = sdk.compile(SRC).unwrap();
        let tuner = compiled.kernel("gemm").unwrap().autotuner();
        let choice = tuner.select(&Default::default()).unwrap();
        assert!(compiled.kernel("gemm").unwrap().variants.iter().any(|v| v.id == choice.id));
    }
}
