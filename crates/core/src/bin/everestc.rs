//! `everestc` — a command-line front door to the EVEREST SDK.
//!
//! ```text
//! everestc ir <kernels.edsl>              print the unified IR
//! everestc variants <kernels.edsl>       print the variant table per kernel
//! everestc rtl <kernels.edsl> <kernel>   print the synthesized RTL
//! everestc workflow <pipeline.ewf>       validate + print a workflow
//! ```

use everest::Sdk;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  everestc ir <kernels.edsl>\n  everestc variants <kernels.edsl>\n  \
         everestc rtl <kernels.edsl> <kernel>\n  everestc workflow <pipeline.ewf>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    match run(cmd, rest) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read(path: &str) -> Result<String, Box<dyn std::error::Error>> {
    Ok(std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?)
}

fn run(cmd: &str, rest: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let sdk = Sdk::new();
    match (cmd, rest) {
        ("ir", [path]) => {
            let source = read(path)?;
            let module = everest::dsl::compile_kernels(&source)?;
            print!("{}", module.to_text());
            Ok(ExitCode::SUCCESS)
        }
        ("variants", [path]) => {
            let source = read(path)?;
            let compiled = sdk.compile(&source)?;
            for kernel in &compiled.kernels {
                println!("kernel {} — {} variants:", kernel.name, kernel.variants.len());
                for v in &kernel.variants {
                    println!(
                        "  {:<16} target={:<9} total={:>10.2} us  energy={:>9.4} mJ  luts={}",
                        v.id,
                        v.target().to_string(),
                        v.metrics.total_us(),
                        v.metrics.energy_mj,
                        v.metrics.area_luts
                    );
                }
                let front = kernel.pareto_front();
                let ids: Vec<&str> = front.iter().map(|v| v.id.as_str()).collect();
                println!("  pareto: {}", ids.join(", "));
            }
            Ok(ExitCode::SUCCESS)
        }
        ("rtl", [path, kernel]) => {
            let source = read(path)?;
            let acc = sdk.synthesize_kernel(&source, kernel)?;
            eprintln!(
                "// {}: {} cycles @ {} MHz, II={}, pe={}, area: {}",
                acc.name, acc.latency_cycles, acc.clock_mhz, acc.innermost_ii, acc.pe, acc.area
            );
            print!("{}", acc.rtl);
            Ok(ExitCode::SUCCESS)
        }
        ("workflow", [path]) => {
            let source = read(path)?;
            let spec = everest::dsl::WorkflowSpec::parse(&source)?;
            println!("workflow {} — {} steps", spec.name, spec.steps.len());
            let module = spec.to_ir()?;
            print!("{}", module.to_text());
            let graph = everest::task_graph_from_workflow(&spec, |_| (1_000.0, 10_000));
            println!(
                "// task graph: {} tasks, critical path {:.1} ms (unit costs)",
                graph.len(),
                graph.critical_path_us() / 1e3
            );
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}
