//! `everestc` — a command-line front door to the EVEREST SDK.
//!
//! Every subcommand is an entry in the [`COMMANDS`] registry: a name, an
//! argument synopsis, a one-line summary, its flag documentation, and a
//! run function. The help text, the usage error, and dispatch are all
//! generated from that one table, so adding a subcommand is adding a row
//! — there is no parallel `match` to keep in sync.
//!
//! ```text
//! everestc ir <kernels.edsl>              print the unified IR
//! everestc variants <kernels.edsl>        print the variant table per kernel
//!          [--surrogate] [--margin <f>]   ... pruned by a learned cost model
//! everestc rtl <kernels.edsl> <kernel>    print the synthesized RTL
//! everestc workflow <pipeline.ewf>        validate + print a workflow
//! everestc check [--format <f>] <path>..  run the static lints
//! everestc fuse [--explain] <wf.ewf> ..   prove which dataset edges can stream
//! everestc profile <kernels.edsl>         per-phase timing summary table
//! everestc dataset [--seed <n>] [--points <n>] [--out <csv>] [--model <json>]
//!                                         mass-produce an HLS training table
//! everestc route [--queries <n>] ...      serve a PTDR routing workload
//! everestc offload [--fault-profile <p>]  run a fault-injected offload batch
//! everestc serve [--shards <n>] ...       drive the sharded PTDR serving tier
//! everestc stats [--format <f>] <snap>..  merge + render metrics snapshots
//! ```
//!
//! The global `--trace <out.json>` flag records every compiler phase and
//! writes a Chrome trace-event file loadable in `chrome://tracing` or
//! Perfetto. The global `--jobs <n>` flag sets the DSE worker count:
//! `--jobs 1` runs the sequential reference evaluator, `--jobs 2` and up
//! the pooled, memoized engine — outputs are identical either way.
//!
//! Observability: the global `--metrics <path>` flag writes the final
//! metrics snapshot of any subcommand — OpenMetrics text when the path
//! ends in `.prom`/`.txt`/`.om`, JSON otherwise — and `--flight <path>`
//! dumps the flight recorder's recent-event rings. `everestc stats`
//! reloads, merges, and re-renders JSON snapshots offline.

use everest::{PruneConfig, Sdk};
use everest_telemetry::export::{chrome_trace_json, flame_summary, spans_to_events};
use everest_telemetry::openmetrics::{openmetrics_text, render_table};
use everest_telemetry::{MetricsSnapshot, Tracer};
use std::process::ExitCode;

/// Global context handed to every subcommand's run function.
struct Ctx {
    /// DSE / service worker count (`--jobs`).
    jobs: usize,
}

type RunFn = fn(&Ctx, Vec<String>) -> Result<u8, Box<dyn std::error::Error>>;

/// One documented flag: the name, its value placeholder, and help text.
struct FlagDoc {
    name: &'static str,
    value: &'static str,
    help: &'static str,
}

/// One subcommand: everything the driver needs to dispatch and document
/// it. `records` opts the command into span recording even without
/// `--trace` (and into the post-run flame summary).
struct CommandSpec {
    name: &'static str,
    synopsis: &'static str,
    summary: &'static str,
    flags: &'static [FlagDoc],
    records: bool,
    run: RunFn,
}

/// Flags accepted in any position, before or after the subcommand.
const GLOBAL_FLAGS: &[FlagDoc] = &[
    FlagDoc {
        name: "--trace",
        value: "<out.json>",
        help: "write a Chrome trace-event JSON file covering the compiler \
               phases run by the subcommand",
    },
    FlagDoc {
        name: "--metrics",
        value: "<path>",
        help: "write the final metrics snapshot of any subcommand: OpenMetrics \
               text when <path> ends in .prom/.txt/.om, JSON otherwise \
               (reloadable by `everestc stats`)",
    },
    FlagDoc {
        name: "--flight",
        value: "<path>",
        help: "write the flight recorder's recent-event rings as JSON (the \
               always-on post-hoc trace)",
    },
    FlagDoc {
        name: "--jobs",
        value: "<n>",
        help: "worker count for design-space exploration and the PTDR routing \
               service (default: the host's available parallelism, at least \
               2); 1 runs the sequential reference evaluator, 2+ the pooled, \
               cached engine — results are identical either way",
    },
];

/// The subcommand registry. Dispatch, `everestc help` and the usage error
/// are all generated from this table.
const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "ir",
        synopsis: "<kernels.edsl>",
        summary: "compile tensor-DSL kernels and print the unified IR",
        flags: &[],
        records: false,
        run: cmd_ir,
    },
    CommandSpec {
        name: "variants",
        synopsis: "[--surrogate] [--margin <f>] <kernels.edsl>",
        summary: "explore the design space and print the variant table per kernel",
        flags: &[
            FlagDoc {
                name: "--surrogate",
                value: "",
                help: "prune the exploration with a learned cost model: train on \
                       a sample of the hardware points, synthesize exactly only \
                       near the predicted Pareto front",
            },
            FlagDoc {
                name: "--margin",
                value: "<f>",
                help: "surrogate pruning margin in [0, 1): larger keeps a thicker \
                       band around the predicted front (default 0.15)",
            },
        ],
        records: false,
        run: cmd_variants,
    },
    CommandSpec {
        name: "rtl",
        synopsis: "<kernels.edsl> <kernel>",
        summary: "synthesize one kernel and print its RTL",
        flags: &[],
        records: false,
        run: cmd_rtl,
    },
    CommandSpec {
        name: "workflow",
        synopsis: "<pipeline.ewf>",
        summary: "validate a workflow spec and print its IR and task graph",
        flags: &[],
        records: false,
        run: cmd_workflow,
    },
    CommandSpec {
        name: "check",
        synopsis: "[--format text|json] <file.edsl|file.eir|file.ewf>...",
        summary: "run the static lints (liveness, range, taint/IFC, workflow races)",
        flags: &[FlagDoc {
            name: "--format",
            value: "<f>",
            help: "diagnostic output format: text (default) or json; exit code \
                   is 1 when any error-severity diagnostic is reported, 0 when \
                   clean",
        }],
        records: false,
        run: cmd_check,
    },
    CommandSpec {
        name: "fuse",
        synopsis: "[--explain] [--format text|json] <pipeline.ewf> [kernels.edsl...]",
        summary: "classify every workflow dataset edge as fusable / must-spill / racy",
        flags: &[
            FlagDoc {
                name: "--explain",
                value: "",
                help: "print the proof behind every verdict: the ordering path, \
                       the footprint bound vs the BRAM stream budget, or the \
                       race counterexample",
            },
            FlagDoc {
                name: "--format",
                value: "<f>",
                help: "plan output format: text (default) or json (the \
                       machine-checkable FusionPlan, stable under --jobs); \
                       diagnostics go to stderr in json mode; exit code is 1 \
                       when any edge is racy or a kernel is unresolved",
            },
        ],
        records: false,
        run: cmd_fuse,
    },
    CommandSpec {
        name: "profile",
        synopsis: "<kernels.edsl>",
        summary: "compile with the recording tracer and print a per-phase summary",
        flags: &[],
        records: true,
        run: cmd_profile,
    },
    CommandSpec {
        name: "dataset",
        synopsis: "[--seed <n>] [--points <n>] [--kernels <file.edsl>] [--out <csv>] [--model <json>]",
        summary: "mass-produce a seed-reproducible HLS training table (and \
                  optionally fit + save a surrogate cost model)",
        flags: &[
            FlagDoc {
                name: "--seed",
                value: "<n>",
                help: "knob-sampling seed; the same seed yields a byte-identical \
                       table at any --jobs count (dataset: default 7)",
            },
            FlagDoc {
                name: "--points",
                value: "<n>",
                help: "number of (kernel, knob-vector) rows to produce \
                       (default 256)",
            },
            FlagDoc {
                name: "--kernels",
                value: "<file.edsl>",
                help: "tensor-DSL source providing the kernels to sample \
                       (default: an embedded four-kernel corpus)",
            },
            FlagDoc {
                name: "--out",
                value: "<csv>",
                help: "write the table to this file instead of stdout",
            },
            FlagDoc {
                name: "--model",
                value: "<json>",
                help: "fit a surrogate cost model on the produced table and \
                       write it as JSON",
            },
        ],
        records: false,
        run: cmd_dataset,
    },
    CommandSpec {
        name: "route",
        synopsis: "[--queries <n>] [--samples <n>]",
        summary: "serve a synthetic PTDR routing workload cold and warm",
        flags: &[
            FlagDoc {
                name: "--queries",
                value: "<n>",
                help: "routing requests in the synthetic workload (route: \
                       default 256; serve: cap on generated arrivals per load \
                       point, default 50000)",
            },
            FlagDoc {
                name: "--samples",
                value: "<n>",
                help: "Monte-Carlo samples per routing request (default 1000)",
            },
        ],
        records: false,
        run: cmd_route,
    },
    CommandSpec {
        name: "offload",
        synopsis: "[--seed <n>] [--fault-profile <name>] [--calls <n>]",
        summary: "run a fault-injected offload batch through the recovery layer",
        flags: &[
            FlagDoc {
                name: "--seed",
                value: "<n>",
                help: "workload/fault-plan seed; the same seed yields a \
                       bit-identical trace at any --jobs count (offload and \
                       serve: default 7)",
            },
            FlagDoc {
                name: "--fault-profile",
                value: "<p>",
                help: "fault scenario: none, lossy, flaky or meltdown \
                       (default lossy)",
            },
            FlagDoc {
                name: "--calls",
                value: "<n>",
                help: "kernel invocations in the offload batch (default 32)",
            },
        ],
        records: false,
        run: cmd_offload,
    },
    CommandSpec {
        name: "serve",
        synopsis: "[--shards <n>] [--duration <s>] [--queue-depth <n>] [--policy <p>] [--seed <n>] [--queries <n>]",
        summary: "drive the sharded PTDR serving tier through 0.5x/1x/2x offered load",
        flags: &[
            FlagDoc {
                name: "--shards",
                value: "<n>",
                help: "edge shard count on the consistent-hash ring (default 4)",
            },
            FlagDoc {
                name: "--duration",
                value: "<s>",
                help: "virtual seconds of open-loop load per offered-load point; \
                       one diurnal day is compressed into the window \
                       (default 0.2)",
            },
            FlagDoc {
                name: "--queue-depth",
                value: "<n>",
                help: "bounded admission queue per shard; arrivals beyond it are \
                       load-shed (default 64)",
            },
            FlagDoc {
                name: "--policy",
                value: "<p>",
                help: "shedding policy once a queue fills: reject-new or \
                       shed-oldest (default reject-new)",
            },
        ],
        records: false,
        run: cmd_serve,
    },
    CommandSpec {
        name: "stats",
        synopsis: "[--format table|openmetrics|json] <snapshot.json>...",
        summary: "merge metrics snapshots and render them offline",
        flags: &[FlagDoc {
            name: "--format",
            value: "<f>",
            help: "stats output format: table (default), openmetrics or json",
        }],
        records: false,
        run: cmd_stats,
    },
];

/// Renders the full help text from [`GLOBAL_FLAGS`] and [`COMMANDS`].
fn usage_text() -> String {
    let mut out = String::from(
        "usage:\n  everestc [--trace <out.json>] [--metrics <path>] [--flight <path>]\n           \
         [--jobs <n>] <command> [options] <args>\n  everestc help | --help | -h\n  everestc \
         --version | -V\n\ncommands:\n",
    );
    for cmd in COMMANDS {
        out.push_str(&format!("  {} {}\n      {}\n", cmd.name, cmd.synopsis, cmd.summary));
    }
    out.push_str("\nglobal options:\n");
    for flag in GLOBAL_FLAGS {
        out.push_str(&format!("  {} {}\n      {}\n", flag.name, flag.value, flag.help));
    }
    out.push_str("\ncommand options:\n");
    for cmd in COMMANDS.iter().filter(|c| !c.flags.is_empty()) {
        out.push_str(&format!("  {}:\n", cmd.name));
        for flag in cmd.flags {
            let head = format!("{} {}", flag.name, flag.value);
            out.push_str(&format!("    {:<22} {}\n", head.trim_end(), flag.help));
        }
    }
    out
}

fn usage() -> u8 {
    eprintln!("{}", usage_text());
    2
}

/// Extracts the global `--trace <path>` / `--trace=<path>` flag, which is
/// valid in any position.
fn extract_trace_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    if let Some(at) = args.iter().position(|a| a == "--trace") {
        if at + 1 >= args.len() {
            return Err("--trace requires a file argument".to_owned());
        }
        let path = args.remove(at + 1);
        args.remove(at);
        return Ok(Some(path));
    }
    if let Some(at) = args.iter().position(|a| a.starts_with("--trace=")) {
        let path = args.remove(at)["--trace=".len()..].to_owned();
        if path.is_empty() {
            return Err("--trace requires a file argument".to_owned());
        }
        return Ok(Some(path));
    }
    Ok(None)
}

/// Extracts the global `--jobs <n>` / `--jobs=<n>` flag, valid in any
/// position. Defaults to the host's available parallelism (at least 2, so
/// the memoized engine is on by default).
fn extract_jobs_flag(args: &mut Vec<String>) -> Result<usize, String> {
    let raw = if let Some(at) = args.iter().position(|a| a == "--jobs") {
        if at + 1 >= args.len() {
            return Err("--jobs requires a worker count".to_owned());
        }
        let value = args.remove(at + 1);
        args.remove(at);
        Some(value)
    } else {
        args.iter()
            .position(|a| a.starts_with("--jobs="))
            .map(|at| args.remove(at)["--jobs=".len()..].to_owned())
    };
    match raw {
        Some(value) => match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("--jobs requires a positive worker count, got '{value}'")),
        },
        None => Ok(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(2)),
    }
}

/// Extracts a `--flag <value>` / `--flag=<value>` string option, valid in
/// any position of the subcommand's argument list.
fn extract_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(at) = args.iter().position(|a| a == flag) {
        if at + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(at + 1);
        args.remove(at);
        return Ok(Some(value));
    }
    let prefix = format!("{flag}=");
    if let Some(at) = args.iter().position(|a| a.starts_with(&prefix)) {
        let value = args.remove(at)[prefix.len()..].to_owned();
        if value.is_empty() {
            return Err(format!("{flag} requires a value"));
        }
        return Ok(Some(value));
    }
    Ok(None)
}

/// Extracts a `--flag <n>` / `--flag=<n>` positive count, valid in any
/// position of the subcommand's argument list.
fn extract_count_flag(args: &mut Vec<String>, flag: &str, default: usize) -> Result<usize, String> {
    let raw = if let Some(at) = args.iter().position(|a| a == flag) {
        if at + 1 >= args.len() {
            return Err(format!("{flag} requires a count"));
        }
        let value = args.remove(at + 1);
        args.remove(at);
        Some(value)
    } else {
        let prefix = format!("{flag}=");
        args.iter()
            .position(|a| a.starts_with(&prefix))
            .map(|at| args.remove(at)[prefix.len()..].to_owned())
    };
    match raw {
        Some(value) => match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("{flag} requires a positive count, got '{value}'")),
        },
        None => Ok(default),
    }
}

/// Extracts a `--flag <n>` / `--flag=<n>` unsigned seed, valid in any
/// position of the subcommand's argument list.
fn extract_seed_flag(args: &mut Vec<String>, default: u64) -> Result<u64, String> {
    match extract_value_flag(args, "--seed")? {
        Some(raw) => raw
            .parse::<u64>()
            .map_err(|_| format!("--seed requires an unsigned integer, got '{raw}'")),
        None => Ok(default),
    }
}

/// Extracts a presence-only `--flag`, valid in any position.
fn extract_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(at) => {
            args.remove(at);
            true
        }
        None => false,
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = match extract_trace_flag(&mut args) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let metrics_path = match extract_value_flag(&mut args, "--metrics") {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let flight_path = match extract_value_flag(&mut args, "--flight") {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let jobs = match extract_jobs_flag(&mut args) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return ExitCode::from(usage()),
    };
    match cmd {
        "help" | "--help" | "-h" => {
            println!("{}", usage_text());
            return ExitCode::SUCCESS;
        }
        "--version" | "-V" => {
            println!("everestc {}", env!("CARGO_PKG_VERSION"));
            return ExitCode::SUCCESS;
        }
        _ => {}
    }
    let Some(spec) = COMMANDS.iter().find(|c| c.name == cmd) else {
        return ExitCode::from(usage());
    };

    // Recording subcommands always record; `--trace` opts any in.
    let recording = trace_path.is_some() || spec.records;
    if recording {
        everest_telemetry::install_global(Tracer::recording());
        everest_telemetry::metrics().reset();
    }
    if metrics_path.is_some() {
        // A clean registry, so the written snapshot covers exactly this
        // invocation.
        everest_telemetry::metrics().reset();
    }

    let ctx = Ctx { jobs };
    let result = (spec.run)(&ctx, rest.to_vec());

    let spans = everest_telemetry::take_global().finish();
    if let Some(path) = &trace_path {
        let json = chrome_trace_json(&spans_to_events(&spans));
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write trace '{path}': {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace: {} spans written to {path}", spans.len());
    }
    if let Some(path) = &metrics_path {
        let snapshot = everest_telemetry::metrics().snapshot();
        let openmetrics =
            path.ends_with(".prom") || path.ends_with(".txt") || path.ends_with(".om");
        let body = if openmetrics {
            openmetrics_text(&snapshot)
        } else {
            serde_json::to_string_pretty(&snapshot).expect("snapshot serializes")
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write metrics '{path}': {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "metrics: {} counters, {} gauges, {} histograms written to {path}",
            snapshot.counters.len(),
            snapshot.gauges.len(),
            snapshot.histograms.len()
        );
    }
    if let Some(path) = &flight_path {
        let dump = everest_telemetry::flight().dump("cli");
        if let Err(e) = std::fs::write(path, dump.to_json()) {
            eprintln!("error: cannot write flight dump '{path}': {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "flight: {} events from {} threads ({} overwritten) written to {path}",
            dump.events.len(),
            dump.threads,
            dump.dropped
        );
    }

    match result {
        Ok(code) => {
            if spec.records && code == 0 {
                print!("{}", flame_summary(&spans));
                print_counters();
            }
            ExitCode::from(code)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_counters() {
    let snapshot = everest_telemetry::metrics().snapshot();
    if snapshot.counters.is_empty() {
        return;
    }
    println!();
    println!("counters:");
    for counter in &snapshot.counters {
        println!("  {:<32} {}", counter.name, counter.value);
    }
}

fn read(path: &str) -> Result<String, Box<dyn std::error::Error>> {
    Ok(std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?)
}

fn cmd_ir(ctx: &Ctx, rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    let _ = ctx;
    let [path] = rest.as_slice() else {
        return Ok(usage());
    };
    let source = read(path)?;
    let module = everest::dsl::compile_kernels(&source)?;
    print!("{}", module.to_text());
    Ok(0)
}

fn cmd_variants(ctx: &Ctx, mut rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    let surrogate = extract_bool_flag(&mut rest, "--surrogate");
    let margin = match extract_value_flag(&mut rest, "--margin")? {
        Some(raw) => match raw.parse::<f64>() {
            Ok(f) if (0.0..1.0).contains(&f) => Some(f),
            _ => return Err(format!("--margin requires a fraction in [0, 1), got '{raw}'").into()),
        },
        None => None,
    };
    if margin.is_some() && !surrogate {
        return Err("--margin only applies with --surrogate".into());
    }
    let [path] = rest.as_slice() else {
        return Ok(usage());
    };
    let source = read(path)?;
    let mut builder = Sdk::builder().jobs(ctx.jobs);
    if surrogate {
        let mut cfg = PruneConfig::default();
        if let Some(m) = margin {
            cfg.margin = m;
        }
        builder = builder.surrogate(cfg);
    }
    let compiled = builder.build().compile(&source)?;
    for kernel in &compiled.kernels {
        println!("kernel {} — {} variants:", kernel.name, kernel.variants.len());
        for v in &kernel.variants {
            println!(
                "  {:<16} target={:<9} total={:>10.2} us  energy={:>9.4} mJ  luts={}",
                v.id,
                v.target().to_string(),
                v.metrics.total_us(),
                v.metrics.energy_mj,
                v.metrics.area_luts
            );
        }
        let front = kernel.pareto_front();
        let ids: Vec<&str> = front.iter().map(|v| v.id.as_str()).collect();
        println!("  pareto: {}", ids.join(", "));
    }
    if let Some(report) = &compiled.explore {
        if report.fallback {
            println!(
                "surrogate: fell back to exhaustive exploration ({} points, val mape {:.3})",
                report.points, report.val_mape
            );
        } else {
            println!(
                "surrogate: trained {}, predicted {}, exact {}, pruned {} (val mape {:.3})",
                report.train, report.predicted, report.exact, report.pruned, report.val_mape
            );
        }
    }
    Ok(0)
}

fn cmd_rtl(ctx: &Ctx, rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    let [path, kernel] = rest.as_slice() else {
        return Ok(usage());
    };
    let source = read(path)?;
    let sdk = Sdk::builder().jobs(ctx.jobs).build();
    let acc = sdk.synthesize_kernel(&source, kernel)?;
    eprintln!(
        "// {}: {} cycles @ {} MHz, II={}, pe={}, area: {}",
        acc.name, acc.latency_cycles, acc.clock_mhz, acc.innermost_ii, acc.pe, acc.area
    );
    print!("{}", acc.rtl);
    Ok(0)
}

fn cmd_workflow(ctx: &Ctx, rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    let _ = ctx;
    let [path] = rest.as_slice() else {
        return Ok(usage());
    };
    let source = read(path)?;
    let spec = everest::dsl::WorkflowSpec::parse(&source)?;
    println!("workflow {} — {} steps", spec.name, spec.steps.len());
    let module = spec.to_ir()?;
    print!("{}", module.to_text());
    let graph = everest::task_graph_from_workflow(&spec, |_| (1_000.0, 10_000));
    println!(
        "// task graph: {} tasks, critical path {:.1} ms (unit costs)",
        graph.len(),
        graph.critical_path_us() / 1e3
    );
    Ok(0)
}

fn cmd_check(ctx: &Ctx, mut rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    let format = extract_value_flag(&mut rest, "--format")?.unwrap_or_else(|| "text".into());
    if format != "text" && format != "json" {
        return Err(format!("--format must be 'text' or 'json', got '{format}'").into());
    }
    if rest.is_empty() {
        return Ok(usage());
    }
    let sdk = Sdk::builder().jobs(ctx.jobs).build();
    run_check(&sdk, &rest, &format)
}

fn cmd_fuse(ctx: &Ctx, mut rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    let explain = extract_bool_flag(&mut rest, "--explain");
    let format = extract_value_flag(&mut rest, "--format")?.unwrap_or_else(|| "text".into());
    if format != "text" && format != "json" {
        return Err(format!("--format must be 'text' or 'json', got '{format}'").into());
    }
    let workflows: Vec<String> = rest.iter().filter(|p| p.ends_with(".ewf")).cloned().collect();
    let kernels: Vec<String> = rest.iter().filter(|p| p.ends_with(".edsl")).cloned().collect();
    if workflows.is_empty() || workflows.len() + kernels.len() != rest.len() {
        return Ok(usage());
    }
    let sdk = Sdk::builder().jobs(ctx.jobs).build();
    run_fuse(&sdk, &workflows, &kernels, &format, explain)
}

/// The kernel search path for one workflow: the `.edsl` files named on the
/// command line, or — when none were given — every sibling `.edsl` of the
/// workflow file, in sorted order (deterministic regardless of readdir
/// order).
fn kernel_search_path(
    workflow: &str,
    explicit: &[String],
) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    if !explicit.is_empty() {
        return Ok(explicit.to_vec());
    }
    let dir = std::path::Path::new(workflow).parent().unwrap_or(std::path::Path::new("."));
    let mut found = Vec::new();
    for entry in
        std::fs::read_dir(dir).map_err(|e| format!("cannot read '{}': {e}", dir.display()))?
    {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "edsl") {
            found.push(path.to_string_lossy().into_owned());
        }
    }
    found.sort();
    Ok(found)
}

/// `everestc fuse`: runs the stream-fusion legality analysis over each
/// workflow — interprocedural footprint inference on the kernels, then the
/// dependence classifier against the platform's weakest-device BRAM stream
/// budget. Text mode prints the plan (with `--explain`, each verdict's
/// proof) followed by any diagnostics; json mode prints one machine-
/// checkable `FusionPlan` object per workflow on stdout and keeps
/// diagnostics on stderr, so the artifact stays parseable. Exits 1 when
/// any kernel is unresolved or any edge is racy.
fn run_fuse(
    sdk: &Sdk,
    workflows: &[String],
    kernels: &[String],
    format: &str,
    explain: bool,
) -> Result<u8, Box<dyn std::error::Error>> {
    let mut errors = 0;
    for wf_path in workflows {
        let wf_source = read(wf_path)?;
        let search = kernel_search_path(wf_path, kernels)?;
        let kernel_sources = search.iter().map(|p| read(p)).collect::<Result<Vec<_>, _>>()?;
        let refs: Vec<&str> = kernel_sources.iter().map(String::as_str).collect();
        let (plan, mut diags) = sdk.fuse_workflow(&wf_source, &refs)?;
        for d in &mut diags {
            d.file = wf_path.clone();
        }
        errors += everest::ir::diag::tally(&diags).0;
        match format {
            "json" => {
                print!("{}", plan.to_json());
                if !diags.is_empty() {
                    eprint!("{}", everest::ir::render_text(&diags));
                }
            }
            _ => {
                print!("{}", everest::render_plan_text(&plan, explain));
                for d in &diags {
                    println!("{}", d.render());
                }
            }
        }
    }
    Ok(u8::from(errors > 0))
}

fn cmd_profile(ctx: &Ctx, rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    let [path] = rest.as_slice() else {
        return Ok(usage());
    };
    let source = read(path)?;
    let sdk = Sdk::builder().jobs(ctx.jobs).build();
    let compiled = sdk.compile(&source)?;
    let variants: usize = compiled.kernels.iter().map(|k| k.variants.len()).sum();
    let pareto: usize = compiled.kernels.iter().map(|k| k.pareto_front().len()).sum();
    println!(
        "profiled {} kernels: {} variants ({} pareto-optimal)\n",
        compiled.kernels.len(),
        variants,
        pareto
    );
    // The flame table is printed by main() after the tracer is drained,
    // so the compile spans above are all captured.
    Ok(0)
}

/// The embedded kernel corpus `everestc dataset` samples when no
/// `--kernels` file is given: four structurally distinct kernels (dense
/// matmul, stencil, streaming triad, pointwise scale) so the produced
/// table spans compute-bound and memory-bound shapes.
const DATASET_CORPUS: &str = "
    kernel gemm(a: tensor<16x16xf64>, b: tensor<16x16xf64>) -> tensor<16x16xf64> {
        return a @ b;
    }
    kernel smooth(x: tensor<64xf64>) -> tensor<64xf64> {
        return stencil(x, [0.25, 0.5, 0.25]);
    }
    kernel axpy(a: tensor<64xf64>, b: tensor<64xf64>) -> tensor<64xf64> {
        return 2.0 * a + b;
    }
    kernel scale(x: tensor<32x32xf64>) -> tensor<32x32xf64> {
        return 3.0 * x;
    }
";

fn cmd_dataset(ctx: &Ctx, mut rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    use everest::variants::{DatasetConfig, SurrogateModel};

    let seed = extract_seed_flag(&mut rest, 7)?;
    let points = extract_count_flag(&mut rest, "--points", 256)?;
    let kernels_path = extract_value_flag(&mut rest, "--kernels")?;
    let out_path = extract_value_flag(&mut rest, "--out")?;
    let model_path = extract_value_flag(&mut rest, "--model")?;
    if !rest.is_empty() {
        return Ok(usage());
    }

    let source = match &kernels_path {
        Some(path) => read(path)?,
        None => DATASET_CORPUS.to_owned(),
    };
    let module = everest::dsl::compile_kernels(&source)?;
    let funcs: Vec<&everest::ir::Func> = module.iter().collect();
    let cfg = DatasetConfig { seed, points, jobs: ctx.jobs, ..DatasetConfig::default() };
    let dataset = everest::variants::dataset::produce(&funcs, &cfg)?;
    eprintln!(
        "dataset: {} rows ({} requested), {} kernels, seed={seed}, jobs={}",
        dataset.rows.len(),
        points,
        funcs.len(),
        ctx.jobs
    );

    let csv = dataset.to_csv();
    match &out_path {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("cannot write '{path}': {e}"))?;
            eprintln!("dataset: table written to {path}");
        }
        None => print!("{csv}"),
    }

    if let Some(path) = &model_path {
        let model = SurrogateModel::fit(&dataset, &Default::default());
        std::fs::write(path, model.to_json()).map_err(|e| format!("cannot write '{path}': {e}"))?;
        eprintln!(
            "model: fit on {} rows, validated on {} (worst mape {:.3}), written to {path}",
            model.validation.rows_train,
            model.validation.rows_val,
            model.validation.worst_mape()
        );
    }
    Ok(0)
}

fn cmd_route(ctx: &Ctx, mut rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    let queries = extract_count_flag(&mut rest, "--queries", 256)?;
    let samples = extract_count_flag(&mut rest, "--samples", 1_000)?;
    if !rest.is_empty() {
        return Ok(usage());
    }
    run_route(queries, samples, ctx.jobs)
}

fn cmd_offload(ctx: &Ctx, mut rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    let seed = extract_seed_flag(&mut rest, 7)?;
    let profile =
        extract_value_flag(&mut rest, "--fault-profile")?.unwrap_or_else(|| "lossy".into());
    let calls = extract_count_flag(&mut rest, "--calls", 32)?;
    if !rest.is_empty() {
        return Ok(usage());
    }
    run_offload(&profile, seed, calls, ctx.jobs)
}

fn cmd_serve(ctx: &Ctx, mut rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    let shards = extract_count_flag(&mut rest, "--shards", 4)?;
    let queue_depth = extract_count_flag(&mut rest, "--queue-depth", 64)?;
    let max_queries = extract_count_flag(&mut rest, "--queries", 50_000)?;
    let seed = extract_seed_flag(&mut rest, 7)?;
    let duration_s = match extract_value_flag(&mut rest, "--duration")? {
        Some(raw) => match raw.parse::<f64>() {
            Ok(s) if s > 0.0 && s.is_finite() => s,
            _ => return Err(format!("--duration requires positive seconds, got '{raw}'").into()),
        },
        None => 0.2,
    };
    let policy = extract_value_flag(&mut rest, "--policy")?.unwrap_or_else(|| "reject-new".into());
    if !rest.is_empty() {
        return Ok(usage());
    }
    run_serve(shards, duration_s, queue_depth, &policy, seed, max_queries, ctx.jobs)
}

fn cmd_stats(ctx: &Ctx, mut rest: Vec<String>) -> Result<u8, Box<dyn std::error::Error>> {
    let _ = ctx;
    let format = extract_value_flag(&mut rest, "--format")?.unwrap_or_else(|| "table".into());
    if !["table", "openmetrics", "json"].contains(&format.as_str()) {
        return Err(
            format!("--format must be 'table', 'openmetrics' or 'json', got '{format}'").into()
        );
    }
    if rest.is_empty() {
        return Ok(usage());
    }
    run_stats(&rest, &format)
}

/// `everestc stats`: reloads one or more JSON metrics snapshots (as
/// written by `--metrics <path>.json`), merges them — counters add,
/// histograms merge bucket-wise, so percentiles stay exact across
/// shards — and renders the result as a table, OpenMetrics text, or
/// merged JSON.
fn run_stats(paths: &[String], format: &str) -> Result<u8, Box<dyn std::error::Error>> {
    let mut merged: Option<MetricsSnapshot> = None;
    for path in paths {
        let source = read(path)?;
        let snapshot: MetricsSnapshot = serde_json::from_str(&source)
            .map_err(|e| format!("'{path}' is not a metrics snapshot: {e}"))?;
        match &mut merged {
            Some(acc) => acc.merge(&snapshot),
            None => merged = Some(snapshot),
        }
    }
    let merged = merged.expect("caller checked paths is non-empty");
    match format {
        "openmetrics" => print!("{}", openmetrics_text(&merged)),
        "json" => println!("{}", serde_json::to_string_pretty(&merged)?),
        _ => {
            println!(
                "stats: {} snapshot(s), {} counters, {} gauges, {} histograms",
                paths.len(),
                merged.counters.len(),
                merged.gauges.len(),
                merged.histograms.len()
            );
            print!("{}", render_table(&merged));
        }
    }
    Ok(0)
}

/// `everestc check`: runs every static lint over the given source files —
/// tensor-DSL kernels (`.edsl`), printed IR modules (`.eir`), and workflow
/// specs (`.ewf`) — and renders the findings in one diagnostic stream.
/// Exits 1 when any error-severity diagnostic is reported.
fn run_check(sdk: &Sdk, paths: &[String], format: &str) -> Result<u8, Box<dyn std::error::Error>> {
    // The `.edsl` files of this invocation double as the kernel search
    // path for its workflows: when any are present, a workflow task whose
    // kernel is missing from them is a hard `wf-unresolved-kernel` error
    // (fusion analysis must never run on a partial graph). With no
    // `.edsl` on the command line there is no search path to resolve
    // against, and workflows are race-checked standalone as before.
    let mut modules = Vec::new();
    for path in paths.iter().filter(|p| p.ends_with(".edsl")) {
        modules.push(everest::dsl::compile_kernels(&read(path)?)?);
    }
    let kernel_index = (!modules.is_empty()).then(|| everest::kernel_index(&modules));
    let mut diags: Vec<everest::Diagnostic> = Vec::new();
    for path in paths {
        let source = read(path)?;
        let mut found = if path.ends_with(".ewf") {
            let mut found = sdk.check_workflow(&source)?;
            if let Some(index) = &kernel_index {
                let spec = everest::dsl::WorkflowSpec::parse(&source)?;
                found.extend(everest::unresolved_diags(&spec, index));
            }
            found
        } else if path.ends_with(".edsl") {
            sdk.check(&source)?
        } else {
            // `.eir` and anything else: printed IR, checked as written —
            // no canonicalization, so seeded lint fixtures stay seeded.
            let module = everest::ir::parse_module(&source)?;
            module.verify()?;
            everest::ir::check_module(&module)
        };
        for d in &mut found {
            d.file = path.clone();
        }
        diags.extend(found);
    }
    let (errors, _) = everest::ir::diag::tally(&diags);
    match format {
        "json" => print!("{}", everest::ir::render_json(&diags)),
        _ => print!("{}", everest::ir::render_text(&diags)),
    }
    Ok(u8::from(errors > 0))
}

/// `everestc offload`: runs a batch of synthetic kernel invocations
/// through the fault-injected offload recovery layer (retry + circuit
/// breakers + fallback chain), then reschedules the same workload off the
/// tripped devices. Everything printed is a pure function of the seed, so
/// two runs with the same `--seed` diff clean at any `--jobs` count.
fn run_offload(
    profile: &str,
    seed: u64,
    calls: usize,
    jobs: usize,
) -> Result<u8, Box<dyn std::error::Error>> {
    use everest::workflow::exec::simulate_available;
    use everest::workflow::scheduler::Policy;
    use everest::workflow::{TaskGraph, Worker};
    use everest::{FaultPlan, OffloadCall, Sdk};

    everest_telemetry::metrics().reset();
    let plan = FaultPlan::from_profile(profile, seed)?;
    let sdk = Sdk::builder().jobs(jobs).fault_plan(plan).build();
    let mut mgr = sdk.offload_manager()?;

    // One invocation per task of a layered synthetic workflow.
    let graph = TaskGraph::random(seed, 4, calls.div_ceil(4).max(1), 400.0);
    let batch: Vec<OffloadCall> = graph
        .tasks()
        .iter()
        .take(calls)
        .map(|t| OffloadCall {
            kernel: t.name.clone(),
            payload_bytes: t.output_bytes,
            work_us: t.cost_us,
        })
        .collect();
    println!(
        "offload: profile={profile} seed={seed} calls={} targets={} jobs={jobs}",
        batch.len(),
        mgr.chain().len()
    );
    let outcomes = mgr.run_batch(&batch, jobs)?;
    print!("{}", mgr.trace());

    let degraded = outcomes.iter().filter(|o| o.degraded).count();
    let attempts: u32 = outcomes.iter().map(|o| o.attempts).sum();
    println!(
        "completed {}/{} calls ({degraded} degraded, {attempts} attempts)",
        outcomes.len(),
        batch.len()
    );
    let tripped = mgr.tripped_devices();
    if tripped.is_empty() {
        println!("tripped devices: none");
    } else {
        println!("tripped devices: {}", tripped.join(", "));
    }

    // Reschedule the workload off the tripped targets: one worker per
    // fallback-chain rung, excluded when its device is out of rotation.
    let workers: Vec<Worker> = mgr
        .chain()
        .iter()
        .map(|t| {
            Worker::new(
                t.device.clone(),
                t.speedup,
                1.0 / (t.link.bandwidth_gbps.max(1e-9) * 1e3),
                t.link.latency_us,
            )
        })
        .collect();
    let available: Vec<bool> = mgr.chain().iter().map(|t| !tripped.contains(&t.device)).collect();
    let run = simulate_available(&graph, &workers, Policy::Heft, &available)?;
    println!(
        "reschedule: makespan {:.1} us on {}/{} workers, mode={}",
        run.makespan_us,
        workers.len() - run.excluded_workers.len(),
        workers.len(),
        if run.degraded { "degraded" } else { "healthy" }
    );

    let snapshot = everest_telemetry::metrics().snapshot();
    println!("counters:");
    for name in
        ["offload.completed", "offload.retries", "offload.breaker.open", "offload.fallbacks"]
    {
        println!("  {:<24} {}", name, snapshot.counter(name));
    }
    Ok(0)
}

/// `everestc serve`: stands up the sharded PTDR serving tier over a
/// synthetic city (paper Fig. 3 — endpoint→edge→cloud), calibrates its
/// virtual serving capacity, then drives an open-loop diurnal/Zipf
/// workload at 0.5×/1×/2× capacity. The stdout table (admit/shed
/// decisions, virtual-time latency percentiles) is a pure function of
/// the seed and topology and diffs clean at any `--jobs`; wall-clock
/// throughput is machine-dependent and goes to stderr.
fn run_serve(
    shards: usize,
    duration_s: f64,
    queue_depth: usize,
    policy: &str,
    seed: u64,
    max_queries: usize,
    jobs: usize,
) -> Result<u8, Box<dyn std::error::Error>> {
    use everest::apps::traffic::serve::{LoadGen, ServeConfig, ServeTier, ShedPolicy};
    use everest::apps::traffic::{generate_fcd, RoadNetwork, SpeedProfiles};

    let policy: ShedPolicy = policy.parse()?;
    let network = RoadNetwork::grid(2026, 8, 1.0);
    let fcd = generate_fcd(&network, 7, 40_000);
    let profiles = SpeedProfiles::learn(&network, &fcd);
    let generator = LoadGen::new(&network, &profiles, 48, seed);

    let mut config = ServeConfig::new(shards);
    config.seed = seed;
    config.jobs = jobs;
    config.queue_depth = queue_depth;
    config.policy = policy;
    let tier = ServeTier::new(network, profiles, config);
    // Day 0 warms the caches, day 1 measures the steady-state mixed
    // hit/miss capacity; the sweep then serves fresh days 2..4 without
    // a cold restart, like a long-running tier.
    let cold_capacity = tier.calibrate(&generator, 0, 2_000);
    let capacity = tier.calibrate(&generator, 1, 2_000);
    println!(
        "serve tier: {shards} shards x {} vnodes, queue depth {queue_depth} ({policy}), \
         jobs={jobs}",
        config.vnodes
    );
    println!("calibrated capacity: cold {cold_capacity:.0} q/s, warm {capacity:.0} q/s (virtual)");
    println!(
        "{:>6}  {:>10}  {:>8}  {:>6}  {:>6}  {:>8}  {:>8}  {:>8}",
        "load", "offered", "served", "shed", "reject", "p50_us", "p95_us", "p99_us"
    );
    for (day, mult) in [0.5f64, 1.0, 2.0].into_iter().enumerate() {
        let offered = mult * capacity;
        let workload = generator.generate(2 + day as u64, offered, duration_s, max_queries);
        let report = tier.run(&workload);
        let shed: u64 = report.shards.iter().map(|s| s.shed).sum();
        let rejected: u64 = report.shards.iter().map(|s| s.rejected).sum();
        println!(
            "{mult:>5.2}x  {offered:>10.0}  {:>8}  {shed:>6}  {rejected:>6}  {:>8.1}  {:>8.1}  {:>8.1}",
            report.served(),
            report.latency.p50(),
            report.latency.p95(),
            report.latency.p99()
        );
        eprintln!(
            "  {mult:.1}x wall: {:.1} ms, {:.0} served q/s (wall-clock, machine-dependent)",
            report.wall_s * 1e3,
            report.served_per_sec_wall()
        );
    }
    Ok(0)
}

/// `everestc route`: stands up the PTDR serving engine over a synthetic
/// city (paper §VI-C, "route calculation as a service"), replays a
/// request stream of repeated commutes cold and warm, and reports
/// latency, throughput, and cache effectiveness.
fn run_route(
    queries: usize,
    samples: usize,
    jobs: usize,
) -> Result<u8, Box<dyn std::error::Error>> {
    use everest::apps::traffic::service::{PtdrService, RouteQuery};
    use everest::apps::traffic::{
        generate_fcd, random_od, shortest_route, RoadNetwork, SpeedProfiles,
    };

    let network = RoadNetwork::grid(2026, 8, 1.0);
    let fcd = generate_fcd(&network, 7, 40_000);
    let profiles = SpeedProfiles::learn(&network, &fcd);
    let od = random_od(&network, 11, 64, 700.0);
    let routes: Vec<Vec<usize>> = od
        .iter()
        .filter_map(|pair| shortest_route(&network, &profiles, pair.from, pair.to, 8))
        .filter(|route| !route.is_empty())
        .take(16)
        .collect();
    if routes.is_empty() {
        return Err("synthetic grid produced no routes".into());
    }
    // Repeated commutes: the request stream cycles a small set of
    // (route, departure) pairs, the shape the response cache serves.
    let departures = [7.5f64, 8.0, 12.25, 17.0];
    let batch: Vec<RouteQuery> = (0..queries)
        .map(|i| RouteQuery {
            route: routes[i % routes.len()].clone(),
            depart_hour: departures[(i / routes.len()) % departures.len()],
            samples,
        })
        .collect();

    let service = PtdrService::new(network, profiles).with_jobs(jobs).with_seed(7);
    println!(
        "ptdr service: 8x8 grid, {} routes, {queries} queries x {samples} samples, jobs={jobs}",
        routes.len()
    );
    for phase in ["cold", "warm"] {
        let before = everest_telemetry::metrics().snapshot();
        let start = std::time::Instant::now();
        let stats = service.route_batch(&batch);
        let wall = start.elapsed().as_secs_f64();
        let after = everest_telemetry::metrics().snapshot();
        let hits = after.counter("ptdr.cache.hit") - before.counter("ptdr.cache.hit");
        let misses = after.counter("ptdr.cache.miss") - before.counter("ptdr.cache.miss");
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        let slowest = stats.iter().map(|s| s.p95_h).fold(0.0f64, f64::max);
        println!(
            "{phase}: {:>8.2} ms  {:>9.1} queries/s  cache {hits}h/{misses}m ({:.0}% hit)  \
             worst p95 {:.3} h",
            wall * 1e3,
            queries as f64 / wall.max(1e-12),
            hit_rate * 100.0,
            slowest
        );
    }
    Ok(0)
}
