//! Bridges between subsystems: workflow DSL specs → HyperLoom-style task
//! graphs (the paper's "higher-level coordination of the workflow kernels
//! ... and its integration on HyperLoom").

use everest_dsl::{WorkflowSpec, WorkflowStep};
use everest_workflow::{TaskGraph, TaskId};
use std::collections::HashMap;

/// Converts a validated workflow spec into an executable task graph.
///
/// `cost_of` supplies `(cost_us, output_bytes)` per task name — typically
/// from the variant metrics of the kernels the tasks invoke. Sources and
/// sinks become lightweight I/O tasks.
///
/// # Panics
///
/// Panics if the spec is inconsistent (call [`WorkflowSpec::validate`]
/// first; specs from [`WorkflowSpec::parse`] are always valid).
pub fn task_graph_from_workflow(
    spec: &WorkflowSpec,
    mut cost_of: impl FnMut(&str) -> (f64, u64),
) -> TaskGraph {
    let mut graph = TaskGraph::new(spec.name.clone());
    // Producer of each data item: task id in the graph.
    let mut producer: HashMap<&str, TaskId> = HashMap::new();
    for step in &spec.steps {
        match step {
            WorkflowStep::Source { name, kind } => {
                let (cost, bytes) = cost_of(kind);
                let id = graph.add_task(format!("source:{kind}"), cost.max(1.0), bytes, &[]);
                producer.insert(name, id);
            }
            WorkflowStep::Task { name, inputs, outputs } => {
                let deps: Vec<TaskId> = inputs
                    .iter()
                    .map(|i| *producer.get(i.as_str()).expect("validated spec"))
                    .collect();
                let (cost, bytes) = cost_of(name);
                let id = graph.add_task(name.clone(), cost.max(1.0), bytes, &deps);
                for out in outputs {
                    producer.insert(out, id);
                }
            }
            WorkflowStep::Sink { name, kind } => {
                let dep = *producer.get(name.as_str()).expect("validated spec");
                graph.add_task(format!("sink:{kind}"), 1.0, 0, &[dep]);
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_workflow::exec::simulate;
    use everest_workflow::{Policy, Worker};

    const WF: &str = r#"
        workflow forecast {
            source raw: "weather-feed";
            source hist: "history-db";
            task downscale(raw) -> fine;
            task predict(fine, hist) -> power;
            sink power: "trading-desk";
        }
    "#;

    #[test]
    fn converts_spec_structure() {
        let spec = WorkflowSpec::parse(WF).unwrap();
        let graph = task_graph_from_workflow(&spec, |name| match name {
            "downscale" => (5_000.0, 100_000),
            "predict" => (2_000.0, 1_000),
            _ => (10.0, 10_000),
        });
        // 2 sources + 2 tasks + 1 sink.
        assert_eq!(graph.len(), 5);
        // predict depends on downscale's output and the history source.
        let predict = graph.tasks().iter().find(|t| t.name == "predict").unwrap();
        assert_eq!(predict.deps.len(), 2);
    }

    #[test]
    fn converted_graph_executes() {
        let spec = WorkflowSpec::parse(WF).unwrap();
        let graph = task_graph_from_workflow(&spec, |_| (100.0, 1_000));
        let run = simulate(&graph, &Worker::uniform_pool(2, 1.0), Policy::Heft).unwrap();
        assert!(run.makespan_us >= 300.0, "three chained levels of 100us");
    }

    #[test]
    fn costs_flow_through() {
        let spec = WorkflowSpec::parse(WF).unwrap();
        let cheap = task_graph_from_workflow(&spec, |_| (10.0, 0));
        let pricey = task_graph_from_workflow(&spec, |_| (10_000.0, 0));
        assert!(pricey.total_work_us() > 100.0 * cheap.total_work_us());
    }
}
