//! The static-analysis driver behind `everestc check`: bridges workflow
//! specs onto the `everest-workflow` race detector and reports everything
//! through the shared [`Diagnostic`] type the IR lints use.
//!
//! Workflow items are internally single-producer (the DSL validator
//! enforces it), so task/task conflicts can only arise through *external*
//! datasets — the `kind` tags on `source`/`sink` steps. A task *reads* the
//! kinds of the sources it consumes and *writes* the kinds of the sinks its
//! outputs feed; two tasks with no ordering path between them touching the
//! same kind (at least one writing) race on that external dataset.

use everest_dsl::{WorkflowSpec, WorkflowStep};
use everest_ir::diag::record_metrics;
use everest_ir::lints::LINT_WF_RACE;
use everest_ir::{Diagnostic, Severity};
use everest_workflow::race::{detect_races, Race, TaskAccess};
use std::collections::BTreeMap;

/// Derives each task's external-dataset access set from a workflow spec:
/// reads are the kinds of sources whose items the task consumes, writes the
/// kinds of sinks its outputs feed.
pub fn workflow_accesses(spec: &WorkflowSpec) -> Vec<TaskAccess> {
    let mut source_kind: BTreeMap<&str, &str> = BTreeMap::new();
    let mut sink_kinds: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for step in &spec.steps {
        match step {
            WorkflowStep::Source { name, kind } => {
                source_kind.insert(name, kind);
            }
            WorkflowStep::Sink { name, kind } => {
                sink_kinds.entry(name).or_default().push(kind);
            }
            WorkflowStep::Task { .. } => {}
        }
    }
    spec.steps
        .iter()
        .filter_map(|step| match step {
            WorkflowStep::Task { name, inputs, outputs } => {
                let mut access = TaskAccess { task: name.clone(), ..TaskAccess::default() };
                for input in inputs {
                    if let Some(kind) = source_kind.get(input.as_str()) {
                        access.reads.insert(kind.to_string());
                    }
                }
                for output in outputs {
                    for kind in sink_kinds.get(output.as_str()).map(Vec::as_slice).unwrap_or(&[]) {
                        access.writes.insert(kind.to_string());
                    }
                }
                Some(access)
            }
            _ => None,
        })
        .collect()
}

fn race_diagnostic(spec: &WorkflowSpec, race: &Race) -> Diagnostic {
    Diagnostic::new(
        Severity::Error,
        LINT_WF_RACE,
        &spec.name,
        format!(
            "{} race on dataset \"{}\": tasks '{}' and '{}' have no ordering edge ({})",
            race.kind, race.dataset, race.first, race.second, race.evidence
        ),
    )
    .at(format!("task {} / task {}", race.first, race.second))
    .with_snippet(format!(
        "{} and {} both touch \"{}\" concurrently",
        race.first, race.second, race.dataset
    ))
}

/// Runs the race detector over a parsed workflow and renders the findings
/// as `wf-race` diagnostics (bumping the `check.diag.*` counters).
pub fn check_workflow_spec(spec: &WorkflowSpec) -> Vec<Diagnostic> {
    let mut span = everest_telemetry::span("workflow.check", "workflow");
    let accesses = workflow_accesses(spec);
    let races = detect_races(&accesses, &spec.task_edges());
    let diags: Vec<Diagnostic> = races.iter().map(|r| race_diagnostic(spec, r)).collect();
    span.attr("races", diags.len());
    record_metrics(&diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    const RACY: &str = r#"
        workflow racy {
            source raw: "warehouse";
            task clean(raw) -> table;
            task refresh(raw) -> snapshot;
            sink table: "results";
            sink snapshot: "warehouse";
        }
    "#;

    #[test]
    fn unordered_tasks_race_on_external_datasets() {
        let spec = WorkflowSpec::parse(RACY).unwrap();
        let diags = check_workflow_spec(&spec);
        // clean reads "warehouse" while refresh writes it, unordered.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LINT_WF_RACE);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("read-write"));
        assert!(diags[0].message.contains("warehouse"));
    }

    #[test]
    fn write_write_on_shared_sink_kind() {
        let spec = WorkflowSpec::parse(
            r#"workflow w {
                source a: "in";
                task left(a) -> x;
                task right(a) -> y;
                sink x: "table";
                sink y: "table";
            }"#,
        )
        .unwrap();
        let diags = check_workflow_spec(&spec);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("write-write"));
    }

    #[test]
    fn ordered_pipeline_is_clean() {
        let spec = WorkflowSpec::parse(
            r#"workflow clean {
                source fcd: "floating-car-data";
                task model(fcd) -> m;
                task predict(m) -> p;
                sink p: "dashboard";
            }"#,
        )
        .unwrap();
        assert!(check_workflow_spec(&spec).is_empty());
    }

    #[test]
    fn golden_race_rendering() {
        let spec = WorkflowSpec::parse(RACY).unwrap();
        let diags = check_workflow_spec(&spec);
        assert_eq!(
            diags[0].render(),
            "error[wf-race] @racy at task clean / task refresh: read-write race on dataset \
             \"warehouse\": tasks 'clean' and 'refresh' have no ordering edge (no ordering \
             path links them)\n    clean and refresh both touch \"warehouse\" concurrently"
        );
    }

    #[test]
    fn accesses_capture_kinds_not_items() {
        let spec = WorkflowSpec::parse(RACY).unwrap();
        let accesses = workflow_accesses(&spec);
        assert_eq!(accesses.len(), 2);
        let clean = accesses.iter().find(|a| a.task == "clean").unwrap();
        assert!(clean.reads.contains("warehouse"));
        assert!(clean.writes.contains("results"));
    }
}
