//! DSL front-end errors.

use std::fmt;

/// Result alias for DSL operations.
pub type DslResult<T> = Result<T, DslError>;

/// Compilation phase in which a DSL error occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Syntax analysis.
    Parse,
    /// Shape/type checking.
    Type,
    /// Lowering to IR.
    Lower,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Type => "type",
            Phase::Lower => "lower",
        };
        f.write_str(s)
    }
}

/// An error raised by any DSL phase, carrying the 1-based source line.
///
/// ```
/// use everest_dsl::DslError;
/// let err = DslError::ty(4, "shape mismatch");
/// assert_eq!(err.to_string(), "type error at line 4: shape mismatch");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// Failing phase.
    pub phase: Phase,
    /// 1-based source line (0 when no location applies).
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl DslError {
    /// Builds a lexer error.
    pub fn lex(line: usize, msg: impl Into<String>) -> DslError {
        DslError { phase: Phase::Lex, line, msg: msg.into() }
    }

    /// Builds a parser error.
    pub fn parse(line: usize, msg: impl Into<String>) -> DslError {
        DslError { phase: Phase::Parse, line, msg: msg.into() }
    }

    /// Builds a type-checking error.
    pub fn ty(line: usize, msg: impl Into<String>) -> DslError {
        DslError { phase: Phase::Type, line, msg: msg.into() }
    }

    /// Builds a lowering error.
    pub fn lower(line: usize, msg: impl Into<String>) -> DslError {
        DslError { phase: Phase::Lower, line, msg: msg.into() }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at line {}: {}", self.phase, self.line, self.msg)
    }
}

impl std::error::Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_line() {
        assert_eq!(DslError::lex(1, "bad char").to_string(), "lex error at line 1: bad char");
        assert_eq!(DslError::parse(2, "x").to_string(), "parse error at line 2: x");
        assert_eq!(DslError::lower(9, "y").to_string(), "lower error at line 9: y");
    }

    #[test]
    fn error_trait_object_compatible() {
        let boxed: Box<dyn std::error::Error + Send + Sync> = Box::new(DslError::ty(1, "m"));
        assert!(boxed.to_string().contains("type error"));
    }
}
