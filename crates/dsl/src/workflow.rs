//! The workflow DSL: "a workflow pipeline where each node can be specified
//! in C/C++ or with proper AI libraries" (paper III-A). Here nodes are named
//! tasks wired through named data items; the spec lowers to the `df` dialect
//! and converts into HyperLoom-style task graphs downstream.
//!
//! ```text
//! workflow forecast {
//!     source raw: "weather-feed";
//!     task clean(raw) -> cleaned;
//!     task predict(cleaned) -> result;
//!     sink result: "dashboard";
//! }
//! ```

use crate::error::{DslError, DslResult};
use crate::lexer::{lex, SpannedTok, Tok};
use everest_ir::dialects::df;
use everest_ir::{FuncBuilder, Module, Type, Value};
use std::collections::HashMap;

/// One step of a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowStep {
    /// External data source producing item `name`, tagged with `kind`.
    Source {
        /// Produced data item.
        name: String,
        /// Source kind tag (e.g. `"weather-feed"`).
        kind: String,
    },
    /// A computational task consuming `inputs` and producing `outputs`.
    Task {
        /// Task/callee name.
        name: String,
        /// Consumed data items.
        inputs: Vec<String>,
        /// Produced data items.
        outputs: Vec<String>,
    },
    /// Final consumer of data item `name`, tagged with `kind`.
    Sink {
        /// Consumed data item.
        name: String,
        /// Sink kind tag (e.g. `"dashboard"`).
        kind: String,
    },
}

/// A parsed and validated workflow.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkflowSpec {
    /// Workflow name.
    pub name: String,
    /// Steps in declaration order.
    pub steps: Vec<WorkflowStep>,
}

impl WorkflowSpec {
    /// Parses workflow-DSL source into a validated spec.
    ///
    /// # Errors
    ///
    /// Returns [`DslError`] on syntax errors, uses of undefined items or
    /// duplicate producers.
    ///
    /// ```
    /// let spec = everest_dsl::WorkflowSpec::parse(
    ///     "workflow w { source a: \"in\"; task t(a) -> b; sink b: \"out\"; }",
    /// ).unwrap();
    /// assert_eq!(spec.steps.len(), 3);
    /// ```
    pub fn parse(source: &str) -> DslResult<WorkflowSpec> {
        let mut span = everest_telemetry::span("dsl.workflow.parse", "dsl");
        span.attr("bytes", source.len());
        let toks = lex(source)?;
        let mut p = WfParser { toks, pos: 0 };
        let spec = p.workflow()?;
        spec.validate()?;
        span.attr("steps", spec.steps.len());
        Ok(spec)
    }

    /// Checks dataflow consistency: every consumed item has a producer
    /// declared earlier, and every item has exactly one producer.
    ///
    /// # Errors
    ///
    /// Returns a [`DslError`] (phase `Type`) naming the offending item.
    pub fn validate(&self) -> DslResult<()> {
        let mut produced: HashMap<&str, ()> = HashMap::new();
        for step in &self.steps {
            match step {
                WorkflowStep::Source { name, .. } => {
                    if produced.insert(name, ()).is_some() {
                        return Err(DslError::ty(0, format!("item '{name}' produced twice")));
                    }
                }
                WorkflowStep::Task { name, inputs, outputs } => {
                    for input in inputs {
                        if !produced.contains_key(input.as_str()) {
                            return Err(DslError::ty(
                                0,
                                format!("task '{name}' consumes undefined item '{input}'"),
                            ));
                        }
                    }
                    for output in outputs {
                        if produced.insert(output, ()).is_some() {
                            return Err(DslError::ty(0, format!("item '{output}' produced twice")));
                        }
                    }
                }
                WorkflowStep::Sink { name, .. } => {
                    if !produced.contains_key(name.as_str()) {
                        return Err(DslError::ty(
                            0,
                            format!("sink consumes undefined item '{name}'"),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Names of all task steps, in order.
    pub fn task_names(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                WorkflowStep::Task { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Producer→consumer edges between tasks (by task name), derived from
    /// shared data items. Source/sink steps are not included.
    pub fn task_edges(&self) -> Vec<(String, String)> {
        let mut producer_of: HashMap<&str, &str> = HashMap::new();
        for step in &self.steps {
            if let WorkflowStep::Task { name, outputs, .. } = step {
                for out in outputs {
                    producer_of.insert(out, name);
                }
            }
        }
        let mut edges = Vec::new();
        for step in &self.steps {
            if let WorkflowStep::Task { name, inputs, .. } = step {
                for input in inputs {
                    if let Some(producer) = producer_of.get(input.as_str()) {
                        edges.push(((*producer).to_owned(), name.clone()));
                    }
                }
            }
        }
        edges
    }

    /// Lowers the workflow to a `df`-dialect IR function inside a fresh
    /// module (the unified representation of paper Fig. 1).
    ///
    /// # Errors
    ///
    /// Returns a [`DslError`] if the spec is inconsistent (see
    /// [`WorkflowSpec::validate`]).
    pub fn to_ir(&self) -> DslResult<Module> {
        let mut span = everest_telemetry::span("dsl.workflow.lower", "dsl");
        span.attr("steps", self.steps.len());
        self.validate()?;
        let mut module = Module::new(self.name.clone());
        let mut fb = FuncBuilder::new(self.name.clone(), &[], &[]);
        fb.set_func_attr("dsl", "workflow");
        let mut items: HashMap<&str, Value> = HashMap::new();
        let item_ty = Type::Token;
        for step in &self.steps {
            match step {
                WorkflowStep::Source { name, kind } => {
                    let v = df::source(&mut fb, kind, item_ty.clone());
                    items.insert(name, v);
                }
                WorkflowStep::Task { name, inputs, outputs } => {
                    let ins: Vec<Value> = inputs.iter().map(|i| items[i.as_str()]).collect();
                    let out_tys = vec![item_ty.clone(); outputs.len()];
                    let outs = df::task(&mut fb, name, &ins, &out_tys);
                    for (o, v) in outputs.iter().zip(outs) {
                        items.insert(o, v);
                    }
                }
                WorkflowStep::Sink { name, kind } => {
                    let v = items[name.as_str()];
                    df::sink(&mut fb, kind, &[v]);
                }
            }
        }
        fb.ret(&[]);
        module.push(fb.finish());
        module
            .verify()
            .map_err(|e| DslError::lower(0, format!("workflow lowering failed: {e}")))?;
        Ok(module)
    }
}

struct WfParser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl WfParser {
    fn line(&self) -> usize {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) -> DslResult<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DslError::parse(self.line(), "unexpected end of input"))?;
        self.pos += 1;
        Ok(t.tok)
    }

    fn expect(&mut self, want: &Tok) -> DslResult<()> {
        let line = self.line();
        let got = self.bump()?;
        if &got == want {
            Ok(())
        } else {
            Err(DslError::parse(line, format!("expected {want:?}, got {got:?}")))
        }
    }

    fn ident(&mut self) -> DslResult<String> {
        let line = self.line();
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            other => Err(DslError::parse(line, format!("expected identifier, got {other:?}"))),
        }
    }

    fn string(&mut self) -> DslResult<String> {
        let line = self.line();
        match self.bump()? {
            Tok::Str(s) => Ok(s),
            other => Err(DslError::parse(line, format!("expected string, got {other:?}"))),
        }
    }

    fn workflow(&mut self) -> DslResult<WorkflowSpec> {
        let line = self.line();
        let kw = self.ident()?;
        if kw != "workflow" {
            return Err(DslError::parse(line, format!("expected 'workflow', got '{kw}'")));
        }
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut steps = Vec::new();
        loop {
            let line = self.line();
            match self.bump()? {
                Tok::RBrace => break,
                Tok::Ident(kw) => match kw.as_str() {
                    "source" => {
                        let item = self.ident()?;
                        self.expect(&Tok::Colon)?;
                        let kind = self.string()?;
                        self.expect(&Tok::Semi)?;
                        steps.push(WorkflowStep::Source { name: item, kind });
                    }
                    "task" => {
                        let tname = self.ident()?;
                        self.expect(&Tok::LParen)?;
                        let mut inputs = Vec::new();
                        loop {
                            inputs.push(self.ident()?);
                            match self.bump()? {
                                Tok::Comma => continue,
                                Tok::RParen => break,
                                other => {
                                    return Err(DslError::parse(
                                        line,
                                        format!("expected ',' or ')', got {other:?}"),
                                    ))
                                }
                            }
                        }
                        self.expect(&Tok::Arrow)?;
                        let mut outputs = vec![self.ident()?];
                        while self.toks.get(self.pos).map(|t| &t.tok) == Some(&Tok::Comma) {
                            self.pos += 1;
                            outputs.push(self.ident()?);
                        }
                        self.expect(&Tok::Semi)?;
                        steps.push(WorkflowStep::Task { name: tname, inputs, outputs });
                    }
                    "sink" => {
                        let item = self.ident()?;
                        self.expect(&Tok::Colon)?;
                        let kind = self.string()?;
                        self.expect(&Tok::Semi)?;
                        steps.push(WorkflowStep::Sink { name: item, kind });
                    }
                    other => {
                        return Err(DslError::parse(
                            line,
                            format!("expected 'source', 'task' or 'sink', got '{other}'"),
                        ))
                    }
                },
                other => return Err(DslError::parse(line, format!("unexpected token {other:?}"))),
            }
        }
        Ok(WorkflowSpec { name, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAFFIC: &str = r#"
        workflow traffic {
            source fcd: "floating-car-data";
            source od: "origin-destination";
            task build_model(fcd, od) -> model;
            task simulate(model) -> sim;
            task predict(sim, model) -> forecast;
            sink forecast: "routing-service";
        }
    "#;

    #[test]
    fn parses_multi_step_workflow() {
        let spec = WorkflowSpec::parse(TRAFFIC).unwrap();
        assert_eq!(spec.name, "traffic");
        assert_eq!(spec.steps.len(), 6);
        assert_eq!(spec.task_names(), vec!["build_model", "simulate", "predict"]);
    }

    #[test]
    fn task_edges_follow_data_items() {
        let spec = WorkflowSpec::parse(TRAFFIC).unwrap();
        let edges = spec.task_edges();
        assert!(edges.contains(&("build_model".into(), "simulate".into())));
        assert!(edges.contains(&("simulate".into(), "predict".into())));
        assert!(edges.contains(&("build_model".into(), "predict".into())));
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn rejects_undefined_input() {
        let err = WorkflowSpec::parse("workflow w { task t(ghost) -> out; sink out: \"o\"; }")
            .unwrap_err();
        assert!(err.to_string().contains("undefined item 'ghost'"));
    }

    #[test]
    fn rejects_duplicate_producer() {
        let src = "workflow w { source a: \"x\"; task t(a) -> a; sink a: \"o\"; }";
        assert!(WorkflowSpec::parse(src).unwrap_err().to_string().contains("produced twice"));
    }

    #[test]
    fn lowers_to_df_dialect() {
        let spec = WorkflowSpec::parse(TRAFFIC).unwrap();
        let module = spec.to_ir().unwrap();
        let f = module.func("traffic").unwrap();
        let mut counts: HashMap<String, usize> = HashMap::new();
        f.walk(&mut |op| *counts.entry(op.name.clone()).or_default() += 1);
        assert_eq!(counts["df.source"], 2);
        assert_eq!(counts["df.task"], 3);
        assert_eq!(counts["df.sink"], 1);
    }

    #[test]
    fn multi_output_tasks() {
        let src = "workflow w { source a: \"in\"; task split(a) -> b, c; sink b: \"o1\"; sink c: \"o2\"; }";
        let spec = WorkflowSpec::parse(src).unwrap();
        let module = spec.to_ir().unwrap();
        module.verify().unwrap();
        assert_eq!(spec.task_edges().len(), 0);
    }
}
