//! Shared tokenizer for the tensor and workflow DSLs.

use crate::error::{DslError, DslResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (contains `.` or exponent).
    Float(f64),
    /// Double-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `->`
    Arrow,
    /// `@` (tensor contraction / matmul)
    At,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// Tokenizes DSL source text.
///
/// `#` starts a line comment.
///
/// # Errors
///
/// Returns [`DslError`] on unknown characters or malformed literals.
pub fn lex(source: &str) -> DslResult<Vec<SpannedTok>> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                toks.push(SpannedTok { tok: Tok::LParen, line });
                i += 1;
            }
            b')' => {
                toks.push(SpannedTok { tok: Tok::RParen, line });
                i += 1;
            }
            b'{' => {
                toks.push(SpannedTok { tok: Tok::LBrace, line });
                i += 1;
            }
            b'}' => {
                toks.push(SpannedTok { tok: Tok::RBrace, line });
                i += 1;
            }
            b'[' => {
                toks.push(SpannedTok { tok: Tok::LBracket, line });
                i += 1;
            }
            b']' => {
                toks.push(SpannedTok { tok: Tok::RBracket, line });
                i += 1;
            }
            b'<' => {
                toks.push(SpannedTok { tok: Tok::Lt, line });
                i += 1;
            }
            b'>' => {
                toks.push(SpannedTok { tok: Tok::Gt, line });
                i += 1;
            }
            b',' => {
                toks.push(SpannedTok { tok: Tok::Comma, line });
                i += 1;
            }
            b';' => {
                toks.push(SpannedTok { tok: Tok::Semi, line });
                i += 1;
            }
            b':' => {
                toks.push(SpannedTok { tok: Tok::Colon, line });
                i += 1;
            }
            b'=' => {
                toks.push(SpannedTok { tok: Tok::Eq, line });
                i += 1;
            }
            b'@' => {
                toks.push(SpannedTok { tok: Tok::At, line });
                i += 1;
            }
            b'+' => {
                toks.push(SpannedTok { tok: Tok::Plus, line });
                i += 1;
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(SpannedTok { tok: Tok::Arrow, line });
                    i += 2;
                } else {
                    toks.push(SpannedTok { tok: Tok::Minus, line });
                    i += 1;
                }
            }
            b'*' => {
                toks.push(SpannedTok { tok: Tok::Star, line });
                i += 1;
            }
            b'/' => {
                toks.push(SpannedTok { tok: Tok::Slash, line });
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\n' {
                        return Err(DslError::lex(line, "unterminated string literal"));
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(DslError::lex(line, "unterminated string literal"));
                }
                let text = std::str::from_utf8(&bytes[start..j])
                    .map_err(|_| DslError::lex(line, "invalid utf-8 in string"))?;
                toks.push(SpannedTok { tok: Tok::Str(text.to_owned()), line });
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' | b'e' | b'E' => {
                            is_float = true;
                            i += 1;
                            if i < bytes.len() && (bytes[i] == b'-' || bytes[i] == b'+') {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).expect("ascii digits");
                let tok = if is_float {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| DslError::lex(line, format!("bad float '{text}'")))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| DslError::lex(line, format!("bad integer '{text}'")))?,
                    )
                };
                toks.push(SpannedTok { tok, line });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[start..i]).expect("ascii ident");
                toks.push(SpannedTok { tok: Tok::Ident(text.to_owned()), line });
            }
            other => {
                return Err(DslError::lex(
                    line,
                    format!("unexpected character '{}'", other as char),
                ))
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_kernel_header() {
        let toks = kinds("kernel f(a: tensor<4x4xf64>) -> tensor<4x4xf64> {");
        assert_eq!(toks[0], Tok::Ident("kernel".into()));
        assert!(toks.contains(&Tok::Arrow));
        assert!(toks.contains(&Tok::Lt));
    }

    #[test]
    fn lexes_numbers_and_strings() {
        assert_eq!(kinds("42"), vec![Tok::Int(42)]);
        assert_eq!(kinds("2.5"), vec![Tok::Float(2.5)]);
        assert_eq!(kinds("1e3"), vec![Tok::Float(1000.0)]);
        assert_eq!(kinds("\"hello\""), vec![Tok::Str("hello".into())]);
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("a # comment with symbols @{}<>\nb");
        assert_eq!(toks, vec![Tok::Ident("a".into()), Tok::Ident("b".into())]);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(kinds("- ->"), vec![Tok::Minus, Tok::Arrow]);
    }
}
