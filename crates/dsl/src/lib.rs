//! # everest-dsl — embedded domain-specific languages
//!
//! The EVEREST SDK offers application experts "embedded domain-specific
//! languages to express the semantics and security requirements of
//! computational tasks" (paper III-A). This crate provides the two DSL
//! frontends of the reproduction:
//!
//! * a **tensor-expression language** in the spirit of CFDlang/TeIL
//!   (`kernel` declarations over typed tensors, with contraction,
//!   elementwise algebra, stencils, reductions and activation functions)
//!   that type-checks shapes and lowers to the `tensor` dialect of
//!   [`everest_ir`];
//! * a **workflow language** (`workflow` declarations naming sources,
//!   tasks and sinks) that lowers to the `df` dialect and from there to
//!   HyperLoom-style task graphs.
//!
//! ## Example
//!
//! ```
//! let src = r#"
//!     kernel scale_add(a: tensor<8x8xf64>, b: tensor<8x8xf64>) -> tensor<8x8xf64> {
//!         var s = 2.0 * a;
//!         return s + b;
//!     }
//! "#;
//! let module = everest_dsl::compile_kernels(src).unwrap();
//! assert!(module.func("scale_add").is_some());
//! module.verify().unwrap();
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod typecheck;
pub mod workflow;

pub use ast::{Expr, Kernel, Program, Stmt};
pub use error::{DslError, DslResult};
pub use workflow::{WorkflowSpec, WorkflowStep};

use everest_ir::Module;

/// Compiles tensor-DSL source text into a verified IR module.
///
/// # Errors
///
/// Returns a [`DslError`] for lexical, syntactic, shape-checking or
/// lowering failures.
pub fn compile_kernels(source: &str) -> DslResult<Module> {
    let program = {
        let mut span = everest_telemetry::span("dsl.parse", "dsl");
        span.attr("bytes", source.len());
        let program = parser::parse_program(source)?;
        span.attr("kernels", program.kernels.len());
        program
    };
    {
        let _span = everest_telemetry::span("dsl.typecheck", "dsl");
        typecheck::check_program(&program)?;
    }
    let module = {
        let _span = everest_telemetry::span("dsl.lower", "dsl");
        lower::lower_program(&program)?
    };
    {
        let _span = everest_telemetry::span("dsl.verify", "dsl");
        module
            .verify()
            .map_err(|e| DslError::lower(0, format!("lowered module failed verification: {e}")))?;
    }
    Ok(module)
}
