//! Abstract syntax tree of the tensor-expression DSL.

use std::fmt;

/// Scalar element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemTy {
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
}

impl fmt::Display for ElemTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemTy::F32 => f.write_str("f32"),
            ElemTy::F64 => f.write_str("f64"),
        }
    }
}

/// A tensor type in the DSL; an empty shape denotes a scalar.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorTy {
    /// Element type.
    pub elem: ElemTy,
    /// Dimensions; empty for scalars.
    pub shape: Vec<usize>,
}

impl TensorTy {
    /// A scalar of the given element type.
    pub fn scalar(elem: ElemTy) -> TensorTy {
        TensorTy { elem, shape: Vec::new() }
    }

    /// Whether this type is a scalar.
    pub fn is_scalar(&self) -> bool {
        self.shape.is_empty()
    }

    /// Total element count (1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.shape.iter().product()
    }
}

impl fmt::Display for TensorTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_scalar() {
            write!(f, "{}", self.elem)
        } else {
            f.write_str("tensor<")?;
            for d in &self.shape {
                write!(f, "{d}x")?;
            }
            write!(f, "{}>", self.elem)
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Elementwise or scalar addition.
    Add,
    /// Elementwise or scalar subtraction.
    Sub,
    /// Elementwise multiply, scalar multiply, or scalar×tensor scaling.
    Mul,
    /// Scalar division.
    Div,
    /// Matrix multiplication (`@`).
    MatMul,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::MatMul => "@",
        };
        f.write_str(s)
    }
}

/// An expression node, annotated with its source line.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable or parameter reference.
    Var { name: String, line: usize },
    /// Numeric (scalar) literal.
    Num { value: f64, line: usize },
    /// Binary operation.
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr>, line: usize },
    /// Intrinsic call: `transpose`, `reduce_sum`, `reduce_max`,
    /// `reduce_mean`, `stencil`, `relu`, `sigmoid`.
    ///
    /// `list` carries the bracketed numeric argument (permutation,
    /// dimensions or stencil weights) when present.
    Call { name: String, args: Vec<Expr>, list: Option<Vec<f64>>, line: usize },
}

impl Expr {
    /// The source line of this expression.
    pub fn line(&self) -> usize {
        match self {
            Expr::Var { line, .. }
            | Expr::Num { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Call { line, .. } => *line,
        }
    }
}

/// A statement in a kernel body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = expr;`
    Var { name: String, expr: Expr, line: usize },
    /// `return expr;`
    Return { expr: Expr, line: usize },
}

/// A kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: TensorTy,
}

/// A kernel declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (becomes the IR function symbol).
    pub name: String,
    /// Typed parameters.
    pub params: Vec<Param>,
    /// Declared result type.
    pub ret: TensorTy,
    /// Body statements; exactly one `return` at the end.
    pub body: Vec<Stmt>,
    /// Declaration line.
    pub line: usize,
}

/// A parsed program: a list of kernels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Kernels in declaration order.
    pub kernels: Vec<Kernel>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_ty_display() {
        let t = TensorTy { elem: ElemTy::F64, shape: vec![4, 8] };
        assert_eq!(t.to_string(), "tensor<4x8xf64>");
        assert_eq!(TensorTy::scalar(ElemTy::F32).to_string(), "f32");
    }

    #[test]
    fn scalar_predicate_and_count() {
        assert!(TensorTy::scalar(ElemTy::F64).is_scalar());
        let t = TensorTy { elem: ElemTy::F32, shape: vec![3, 5] };
        assert!(!t.is_scalar());
        assert_eq!(t.num_elements(), 15);
    }

    #[test]
    fn expr_line_propagates() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Num { value: 1.0, line: 3 }),
            rhs: Box::new(Expr::Num { value: 2.0, line: 3 }),
            line: 3,
        };
        assert_eq!(e.line(), 3);
    }
}
