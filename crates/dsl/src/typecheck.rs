//! Shape/type checking for the tensor-expression DSL.
//!
//! The checker infers a [`TensorTy`] for every expression and rejects
//! programs with incompatible shapes, unknown variables or malformed
//! intrinsic calls — before any IR is built, so lowering never panics.

use crate::ast::{BinOp, ElemTy, Expr, Kernel, Program, Stmt, TensorTy};
use crate::error::{DslError, DslResult};
use std::collections::HashMap;

/// Type-checks every kernel of a program.
///
/// # Errors
///
/// Returns the first [`DslError`] (phase `Type`) encountered.
pub fn check_program(program: &Program) -> DslResult<()> {
    let mut seen = HashMap::new();
    for kernel in &program.kernels {
        if let Some(prev) = seen.insert(kernel.name.clone(), kernel.line) {
            return Err(DslError::ty(
                kernel.line,
                format!("kernel '{}' already defined at line {prev}", kernel.name),
            ));
        }
        check_kernel(kernel)?;
    }
    Ok(())
}

/// Type-checks one kernel.
///
/// # Errors
///
/// Returns a [`DslError`] describing the first shape violation.
pub fn check_kernel(kernel: &Kernel) -> DslResult<()> {
    let mut env: HashMap<String, TensorTy> = HashMap::new();
    for param in &kernel.params {
        if env.insert(param.name.clone(), param.ty.clone()).is_some() {
            return Err(DslError::ty(kernel.line, format!("duplicate parameter '{}'", param.name)));
        }
    }
    let mut returned = false;
    for (i, stmt) in kernel.body.iter().enumerate() {
        match stmt {
            Stmt::Var { name, expr, line } => {
                if returned {
                    return Err(DslError::ty(*line, "statement after return"));
                }
                let ty = infer(expr, &env)?;
                if env.contains_key(name.as_str()) {
                    return Err(DslError::ty(*line, format!("'{name}' is already bound")));
                }
                env.insert(name.clone(), ty);
            }
            Stmt::Return { expr, line } => {
                if i + 1 != kernel.body.len() {
                    return Err(DslError::ty(*line, "return must be the last statement"));
                }
                returned = true;
                let ty = infer(expr, &env)?;
                if ty != kernel.ret {
                    return Err(DslError::ty(
                        *line,
                        format!("return type {ty} does not match declared {}", kernel.ret),
                    ));
                }
            }
        }
    }
    if !returned {
        return Err(DslError::ty(kernel.line, format!("kernel '{}' has no return", kernel.name)));
    }
    Ok(())
}

/// Infers the type of an expression in the given environment.
///
/// # Errors
///
/// Returns a [`DslError`] on unknown names or shape mismatches.
pub fn infer(expr: &Expr, env: &HashMap<String, TensorTy>) -> DslResult<TensorTy> {
    match expr {
        Expr::Var { name, line } => env
            .get(name.as_str())
            .cloned()
            .ok_or_else(|| DslError::ty(*line, format!("unknown variable '{name}'"))),
        Expr::Num { .. } => Ok(TensorTy::scalar(ElemTy::F64)),
        Expr::Binary { op, lhs, rhs, line } => {
            let lt = infer(lhs, env)?;
            let rt = infer(rhs, env)?;
            let l_lit = matches!(**lhs, Expr::Num { .. });
            let r_lit = matches!(**rhs, Expr::Num { .. });
            binary_type(*op, &lt, &rt, l_lit, r_lit, *line)
        }
        Expr::Call { name, args, list, line } => call_type(name, args, list.as_deref(), env, *line),
    }
}

/// Unifies scalar element types: numeric literals (typed f64 by default)
/// adapt to the peer tensor's element type.
fn unify_elem(a: ElemTy, a_is_lit: bool, b: ElemTy, b_is_lit: bool) -> Option<ElemTy> {
    if a == b {
        Some(a)
    } else if a_is_lit {
        Some(b)
    } else if b_is_lit {
        Some(a)
    } else {
        None
    }
}

fn binary_type(
    op: BinOp,
    lt: &TensorTy,
    rt: &TensorTy,
    l_lit: bool,
    r_lit: bool,
    line: usize,
) -> DslResult<TensorTy> {
    match op {
        BinOp::MatMul => {
            if lt.shape.len() != 2 || rt.shape.len() != 2 {
                return Err(DslError::ty(
                    line,
                    format!("'@' requires rank-2 tensors, got {lt} and {rt}"),
                ));
            }
            if lt.elem != rt.elem {
                return Err(DslError::ty(line, format!("'@' element types differ: {lt} vs {rt}")));
            }
            if lt.shape[1] != rt.shape[0] {
                return Err(DslError::ty(
                    line,
                    format!("'@' inner dimensions differ: {} vs {}", lt.shape[1], rt.shape[0]),
                ));
            }
            Ok(TensorTy { elem: lt.elem, shape: vec![lt.shape[0], rt.shape[1]] })
        }
        BinOp::Div => {
            if !lt.is_scalar() || !rt.is_scalar() {
                return Err(DslError::ty(line, "'/' is only defined on scalars"));
            }
            let elem = unify_elem(lt.elem, l_lit, rt.elem, r_lit).ok_or_else(|| {
                DslError::ty(line, format!("'/' element types differ: {lt} vs {rt}"))
            })?;
            Ok(TensorTy::scalar(elem))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            match (lt.is_scalar(), rt.is_scalar()) {
                (true, true) => {
                    let elem = unify_elem(lt.elem, l_lit, rt.elem, r_lit).ok_or_else(|| {
                        DslError::ty(line, format!("'{op}' element types differ: {lt} vs {rt}"))
                    })?;
                    Ok(TensorTy::scalar(elem))
                }
                // scalar (x) tensor: only '*' scales; '+'/'-' broadcast is
                // deliberately not supported to keep semantics explicit.
                (true, false) | (false, true) => {
                    if op != BinOp::Mul {
                        return Err(DslError::ty(
                            line,
                            format!("'{op}' between scalar and tensor is not supported (only '*')"),
                        ));
                    }
                    let (t, s_elem, s_lit) =
                        if lt.is_scalar() { (rt, lt.elem, l_lit) } else { (lt, rt.elem, r_lit) };
                    if !s_lit && s_elem != t.elem {
                        return Err(DslError::ty(
                            line,
                            format!("scale element types differ: {lt} vs {rt}"),
                        ));
                    }
                    Ok(t.clone())
                }
                (false, false) => {
                    if lt != rt {
                        return Err(DslError::ty(
                            line,
                            format!("elementwise '{op}' on mismatched shapes {lt} vs {rt}"),
                        ));
                    }
                    Ok(lt.clone())
                }
            }
        }
    }
}

fn call_type(
    name: &str,
    args: &[Expr],
    list: Option<&[f64]>,
    env: &HashMap<String, TensorTy>,
    line: usize,
) -> DslResult<TensorTy> {
    let need_one_tensor = |args: &[Expr]| -> DslResult<TensorTy> {
        if args.len() != 1 {
            return Err(DslError::ty(line, format!("'{name}' takes exactly one tensor argument")));
        }
        let t = infer(&args[0], env)?;
        if t.is_scalar() {
            return Err(DslError::ty(line, format!("'{name}' requires a tensor argument")));
        }
        Ok(t)
    };
    match name {
        "transpose" => {
            let t = need_one_tensor(args)?;
            let perm =
                list.ok_or_else(|| DslError::ty(line, "'transpose' needs a permutation list"))?;
            let perm: Vec<usize> = perm.iter().map(|p| *p as usize).collect();
            if perm.len() != t.shape.len() {
                return Err(DslError::ty(line, "permutation rank mismatch"));
            }
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            if sorted.iter().enumerate().any(|(i, p)| i != *p) {
                return Err(DslError::ty(line, format!("{perm:?} is not a permutation")));
            }
            Ok(TensorTy { elem: t.elem, shape: perm.iter().map(|p| t.shape[*p]).collect() })
        }
        "reduce_sum" | "reduce_max" | "reduce_min" | "reduce_mean" => {
            let t = need_one_tensor(args)?;
            let dims =
                list.ok_or_else(|| DslError::ty(line, format!("'{name}' needs a dimension list")))?;
            let dims: Vec<usize> = dims.iter().map(|d| *d as usize).collect();
            for d in &dims {
                if *d >= t.shape.len() {
                    return Err(DslError::ty(line, format!("reduce dim {d} out of range")));
                }
            }
            let shape: Vec<usize> = t
                .shape
                .iter()
                .enumerate()
                .filter(|(i, _)| !dims.contains(i))
                .map(|(_, d)| *d)
                .collect();
            if shape.is_empty() {
                return Err(DslError::ty(
                    line,
                    "reduce over all dimensions is not supported; keep at least one",
                ));
            }
            Ok(TensorTy { elem: t.elem, shape })
        }
        "stencil" => {
            let t = need_one_tensor(args)?;
            let w = list.ok_or_else(|| DslError::ty(line, "'stencil' needs a weight list"))?;
            if w.len() % 2 == 0 {
                return Err(DslError::ty(line, "stencil width must be odd"));
            }
            Ok(t)
        }
        "conv2d" => {
            if args.len() != 2 {
                return Err(DslError::ty(line, "'conv2d' takes (input, kernel)"));
            }
            let x = infer(&args[0], env)?;
            let k = infer(&args[1], env)?;
            if x.shape.len() != 2 || k.shape.len() != 2 {
                return Err(DslError::ty(line, "'conv2d' requires rank-2 tensors"));
            }
            if x.elem != k.elem {
                return Err(DslError::ty(line, format!("conv2d element types differ: {x} vs {k}")));
            }
            if k.shape[0] % 2 == 0 || k.shape[1] % 2 == 0 {
                return Err(DslError::ty(line, "conv2d kernel dimensions must be odd"));
            }
            if k.shape[0] > x.shape[0] || k.shape[1] > x.shape[1] {
                return Err(DslError::ty(line, "conv2d kernel larger than input"));
            }
            Ok(x)
        }
        "relu" | "sigmoid" => need_one_tensor(args),
        other => Err(DslError::ty(line, format!("unknown intrinsic '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> DslResult<()> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_gemm() {
        let src = r#"
            kernel gemm(a: tensor<32x16xf64>, b: tensor<16x8xf64>) -> tensor<32x8xf64> {
                return a @ b;
            }
        "#;
        check(src).unwrap();
    }

    #[test]
    fn rejects_inner_dim_mismatch() {
        let src = r#"
            kernel g(a: tensor<32x16xf64>, b: tensor<17x8xf64>) -> tensor<32x8xf64> {
                return a @ b;
            }
        "#;
        let err = check(src).unwrap_err();
        assert!(err.to_string().contains("inner dimensions"));
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let src = "kernel f(a: tensor<4x4xf64>) -> tensor<2x2xf64> { return a; }";
        let err = check(src).unwrap_err();
        assert!(err.to_string().contains("does not match declared"));
    }

    #[test]
    fn rejects_unknown_variable() {
        let src = "kernel f(a: f64) -> f64 { return zz; }";
        assert!(check(src).unwrap_err().to_string().contains("unknown variable"));
    }

    #[test]
    fn rejects_rebinding() {
        let src = "kernel f(a: f64) -> f64 { var a = 1.0; return a; }";
        assert!(check(src).unwrap_err().to_string().contains("already bound"));
    }

    #[test]
    fn scalar_times_tensor_scales() {
        let src = r#"
            kernel f(x: tensor<8xf32>) -> tensor<8xf32> {
                return 3.0 * x;
            }
        "#;
        check(src).unwrap();
    }

    #[test]
    fn scalar_plus_tensor_rejected() {
        let src = "kernel f(x: tensor<8xf32>) -> tensor<8xf32> { return 3.0 + x; }";
        assert!(check(src).is_err());
    }

    #[test]
    fn transpose_shape_inference() {
        let src = r#"
            kernel f(x: tensor<2x3x5xf64>) -> tensor<5x2x3xf64> {
                return transpose(x, [2, 0, 1]);
            }
        "#;
        check(src).unwrap();
    }

    #[test]
    fn reduce_removes_dims() {
        let src = r#"
            kernel f(x: tensor<4x6xf64>) -> tensor<4xf64> {
                return reduce_sum(x, [1]);
            }
        "#;
        check(src).unwrap();
    }

    #[test]
    fn reduce_dim_out_of_range_rejected() {
        let src = "kernel f(x: tensor<4xf64>) -> f64 { return reduce_sum(x, [1]); }";
        assert!(check(src).unwrap_err().to_string().contains("out of range"));
    }

    #[test]
    fn even_stencil_rejected() {
        let src = "kernel f(x: tensor<8xf64>) -> tensor<8xf64> { return stencil(x, [0.5, 0.5]); }";
        assert!(check(src).unwrap_err().to_string().contains("odd"));
    }

    #[test]
    fn missing_return_rejected() {
        let src = "kernel f(a: f64) -> f64 { var b = a; }";
        assert!(check(src).unwrap_err().to_string().contains("no return"));
    }

    #[test]
    fn duplicate_kernel_rejected() {
        let src = "kernel f(a: f64) -> f64 { return a; } kernel f(a: f64) -> f64 { return a; }";
        assert!(check(src).unwrap_err().to_string().contains("already defined"));
    }

    #[test]
    fn statement_after_return_rejected() {
        let src = "kernel f(a: f64) -> f64 { return a; var b = a; }";
        assert!(check(src).unwrap_err().to_string().contains("last statement"));
    }
}
