//! Recursive-descent parser for the tensor-expression DSL.
//!
//! Grammar (EBNF-ish):
//!
//! ```text
//! program  := kernel*
//! kernel   := "kernel" IDENT "(" params? ")" "->" type "{" stmt* "}"
//! params   := param ("," param)*
//! param    := IDENT ":" type
//! type     := "f32" | "f64" | "tensor" "<" (INT "x")* elem ">"
//! stmt     := "var" IDENT "=" expr ";" | "return" expr ";"
//! expr     := term (("+"|"-") term)*
//! term     := factor (("*"|"/"|"@") factor)*
//! factor   := NUM | IDENT | IDENT "(" args ")" | "(" expr ")" | "-" factor
//! args     := (expr | "[" NUM ("," NUM)* "]") ("," ...)*
//! ```

use crate::ast::{BinOp, ElemTy, Expr, Kernel, Param, Program, Stmt, TensorTy};
use crate::error::{DslError, DslResult};
use crate::lexer::{lex, SpannedTok, Tok};

/// Parses a full program.
///
/// # Errors
///
/// Returns [`DslError`] with the offending line on malformed input.
pub fn parse_program(source: &str) -> DslResult<Program> {
    let toks = lex(source)?;
    let mut p = P { toks, pos: 0 };
    let mut kernels = Vec::new();
    while !p.at_end() {
        kernels.push(p.kernel()?);
    }
    Ok(Program { kernels })
}

struct P {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl P {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|t| t.line).unwrap_or(0)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> DslResult<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DslError::parse(self.line(), "unexpected end of input"))?;
        self.pos += 1;
        Ok(t.tok)
    }

    fn expect(&mut self, want: &Tok) -> DslResult<()> {
        let line = self.line();
        let got = self.bump()?;
        if &got == want {
            Ok(())
        } else {
            Err(DslError::parse(line, format!("expected {want:?}, got {got:?}")))
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> DslResult<String> {
        let line = self.line();
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            other => Err(DslError::parse(line, format!("expected identifier, got {other:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> DslResult<()> {
        let line = self.line();
        let name = self.ident()?;
        if name == kw {
            Ok(())
        } else {
            Err(DslError::parse(line, format!("expected '{kw}', got '{name}'")))
        }
    }

    fn kernel(&mut self) -> DslResult<Kernel> {
        let line = self.line();
        self.keyword("kernel")?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect(&Tok::Colon)?;
                let ty = self.ty()?;
                params.push(Param { name: pname, ty });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Arrow)?;
        let ret = self.ty()?;
        self.expect(&Tok::LBrace)?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            body.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(Kernel { name, params, ret, body, line })
    }

    fn ty(&mut self) -> DslResult<TensorTy> {
        let line = self.line();
        let name = self.ident()?;
        match name.as_str() {
            "f32" => Ok(TensorTy::scalar(ElemTy::F32)),
            "f64" => Ok(TensorTy::scalar(ElemTy::F64)),
            "tensor" => {
                self.expect(&Tok::Lt)?;
                let mut shape = Vec::new();
                let elem;
                loop {
                    let line = self.line();
                    match self.bump()? {
                        Tok::Int(d) => {
                            if d <= 0 {
                                return Err(DslError::parse(line, "dimension must be positive"));
                            }
                            shape.push(d as usize);
                            // Dims are written `4x8xf64`; the lexer splits
                            // this into Int(4), Ident("x8xf64")... only when
                            // digits and idents collide. To keep the grammar
                            // simple we require `4 x 8 x f64` OR the fused
                            // `4x8xf64` form handled below.
                            match self.bump()? {
                                Tok::Ident(rest) => {
                                    // e.g. "x8xf64" or "x" alone
                                    let mut parsed = parse_fused_dims(&rest, &mut shape, line)?;
                                    if let Some(e) = parsed.take() {
                                        elem = e;
                                        break;
                                    }
                                }
                                other => {
                                    return Err(DslError::parse(
                                        line,
                                        format!("expected 'x' separator, got {other:?}"),
                                    ))
                                }
                            }
                        }
                        Tok::Ident(word) => {
                            elem = elem_of(&word, line)?;
                            break;
                        }
                        other => {
                            return Err(DslError::parse(
                                line,
                                format!("expected dimension or element type, got {other:?}"),
                            ))
                        }
                    }
                }
                self.expect(&Tok::Gt)?;
                Ok(TensorTy { elem, shape })
            }
            other => Err(DslError::parse(line, format!("unknown type '{other}'"))),
        }
    }

    fn stmt(&mut self) -> DslResult<Stmt> {
        let line = self.line();
        let kw = self.ident()?;
        match kw.as_str() {
            "var" => {
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                let expr = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Var { name, expr, line })
            }
            "return" => {
                let expr = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return { expr, line })
            }
            other => {
                Err(DslError::parse(line, format!("expected 'var' or 'return', got '{other}'")))
            }
        }
    }

    fn expr(&mut self) -> DslResult<Expr> {
        let mut lhs = self.term()?;
        loop {
            let line = self.line();
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> DslResult<Expr> {
        let mut lhs = self.factor()?;
        loop {
            let line = self.line();
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::At) => BinOp::MatMul,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> DslResult<Expr> {
        let line = self.line();
        match self.bump()? {
            Tok::Int(v) => Ok(Expr::Num { value: v as f64, line }),
            Tok::Float(v) => Ok(Expr::Num { value: v, line }),
            Tok::Minus => {
                let inner = self.factor()?;
                Ok(Expr::Binary {
                    op: BinOp::Sub,
                    lhs: Box::new(Expr::Num { value: 0.0, line }),
                    rhs: Box::new(inner),
                    line,
                })
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    let mut list = None;
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            if self.peek() == Some(&Tok::LBracket) {
                                list = Some(self.num_list()?);
                            } else {
                                args.push(self.expr()?);
                            }
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call { name, args, list, line })
                } else {
                    Ok(Expr::Var { name, line })
                }
            }
            other => Err(DslError::parse(line, format!("unexpected token {other:?}"))),
        }
    }

    fn num_list(&mut self) -> DslResult<Vec<f64>> {
        self.expect(&Tok::LBracket)?;
        let mut out = Vec::new();
        if self.peek() != Some(&Tok::RBracket) {
            loop {
                let line = self.line();
                let neg = self.eat(&Tok::Minus);
                let v = match self.bump()? {
                    Tok::Int(v) => v as f64,
                    Tok::Float(v) => v,
                    other => {
                        return Err(DslError::parse(
                            line,
                            format!("expected number, got {other:?}"),
                        ))
                    }
                };
                out.push(if neg { -v } else { v });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RBracket)?;
        Ok(out)
    }
}

fn elem_of(word: &str, line: usize) -> DslResult<ElemTy> {
    match word {
        "f32" => Ok(ElemTy::F32),
        "f64" => Ok(ElemTy::F64),
        other => Err(DslError::parse(line, format!("unknown element type '{other}'"))),
    }
}

/// Parses the fused `x8xf64`-style tail of a tensor type. Returns
/// `Some(elem)` when the element type was reached.
fn parse_fused_dims(rest: &str, shape: &mut Vec<usize>, line: usize) -> DslResult<Option<ElemTy>> {
    let mut s = rest;
    loop {
        let Some(stripped) = s.strip_prefix('x') else {
            return Err(DslError::parse(line, format!("expected 'x' separator in '{rest}'")));
        };
        s = stripped;
        // Try element type first.
        if s == "f32" || s == "f64" {
            return Ok(Some(elem_of(s, line)?));
        }
        // Otherwise a run of digits, optionally followed by more 'x...'.
        let digits: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            return Err(DslError::parse(line, format!("bad tensor dimensions '{rest}'")));
        }
        let d: usize = digits
            .parse()
            .map_err(|_| DslError::parse(line, format!("bad dimension '{digits}'")))?;
        if d == 0 {
            return Err(DslError::parse(line, "dimension must be positive"));
        }
        shape.push(d);
        s = &s[digits.len()..];
        if s.is_empty() {
            // Next token continues the type (e.g. `tensor<4x8x f64>`); signal
            // the caller to keep reading. We model that by returning None.
            return Ok(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_gemm_kernel() {
        let src = r#"
            kernel gemm(a: tensor<32x16xf64>, b: tensor<16x8xf64>) -> tensor<32x8xf64> {
                return a @ b;
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.kernels.len(), 1);
        let k = &p.kernels[0];
        assert_eq!(k.name, "gemm");
        assert_eq!(k.params[0].ty.shape, vec![32, 16]);
        assert_eq!(k.ret.shape, vec![32, 8]);
        assert!(matches!(
            &k.body[0],
            Stmt::Return { expr: Expr::Binary { op: BinOp::MatMul, .. }, .. }
        ));
    }

    #[test]
    fn parses_intrinsics_with_lists() {
        let src = r#"
            kernel f(x: tensor<4x6xf32>) -> tensor<6x4xf32> {
                var t = transpose(x, [1, 0]);
                var s = stencil(t, [0.25, 0.5, 0.25]);
                return relu(s);
            }
        "#;
        let p = parse_program(src).unwrap();
        let k = &p.kernels[0];
        assert_eq!(k.body.len(), 3);
        match &k.body[0] {
            Stmt::Var { expr: Expr::Call { name, list, .. }, .. } => {
                assert_eq!(name, "transpose");
                assert_eq!(list.as_deref(), Some(&[1.0, 0.0][..]));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let src = "kernel f(a: f64, b: f64, c: f64) -> f64 { return a + b * c; }";
        let p = parse_program(src).unwrap();
        match &p.kernels[0].body[0] {
            Stmt::Return { expr: Expr::Binary { op: BinOp::Add, rhs, .. }, .. } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_minus_desugars_to_zero_minus() {
        let src = "kernel f(a: f64) -> f64 { return -a; }";
        let p = parse_program(src).unwrap();
        match &p.kernels[0].body[0] {
            Stmt::Return { expr: Expr::Binary { op: BinOp::Sub, lhs, .. }, .. } => {
                assert!(matches!(**lhs, Expr::Num { value, .. } if value == 0.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_zero_dimension() {
        let src = "kernel f(a: tensor<0x4xf64>) -> f64 { return 1.0; }";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn rejects_missing_semicolon() {
        let src = "kernel f(a: f64) -> f64 { return a }";
        let err = parse_program(src).unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn parses_multiple_kernels() {
        let src = "kernel f(a: f64) -> f64 { return a; } kernel g(b: f64) -> f64 { return b; }";
        assert_eq!(parse_program(src).unwrap().kernels.len(), 2);
    }

    #[test]
    fn parses_spaced_tensor_dims() {
        // Lexer splits `4x8xf64` as Int(4) Ident("x8xf64"): fused path.
        let src = "kernel f(a: tensor<4x8xf64>) -> tensor<4x8xf64> { return a; }";
        let p = parse_program(src).unwrap();
        assert_eq!(p.kernels[0].params[0].ty.shape, vec![4, 8]);
    }
}
