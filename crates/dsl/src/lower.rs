//! Lowering from the tensor-expression AST to the `tensor`/`arith` dialects
//! of [`everest_ir`].
//!
//! Lowering assumes the program already passed [`crate::typecheck`]; shape
//! errors are therefore reported as internal lowering errors rather than
//! user-facing diagnostics.

use crate::ast::{BinOp, ElemTy, Expr, Kernel, Program, Stmt, TensorTy};
use crate::error::{DslError, DslResult};
use crate::typecheck::infer;
use everest_ir::dialects::tensor as tdl;
use everest_ir::{FuncBuilder, Module, Type, Value};
use std::collections::HashMap;

fn ir_elem(elem: ElemTy) -> Type {
    match elem {
        ElemTy::F32 => Type::F32,
        ElemTy::F64 => Type::F64,
    }
}

/// Converts a DSL type to an IR type (scalars stay scalar, tensors become
/// `tensor<...>`).
pub fn ir_type(ty: &TensorTy) -> Type {
    if ty.is_scalar() {
        ir_elem(ty.elem)
    } else {
        Type::tensor(ir_elem(ty.elem), &ty.shape)
    }
}

/// Lowers a whole program into a fresh module named `dsl`.
///
/// # Errors
///
/// Returns a [`DslError`] (phase `Lower`) if the program was not
/// type-checked and contains inconsistencies.
pub fn lower_program(program: &Program) -> DslResult<Module> {
    let mut module = Module::new("dsl");
    for kernel in &program.kernels {
        module.push(lower_kernel(kernel)?);
    }
    Ok(module)
}

/// Lowers one kernel to an IR function.
///
/// # Errors
///
/// Returns a [`DslError`] on internal inconsistencies (should not happen for
/// type-checked kernels).
pub fn lower_kernel(kernel: &Kernel) -> DslResult<everest_ir::Func> {
    let param_types: Vec<Type> = kernel.params.iter().map(|p| ir_type(&p.ty)).collect();
    let ret_types = vec![ir_type(&kernel.ret)];
    let mut fb = FuncBuilder::new(kernel.name.clone(), &param_types, &ret_types);
    fb.set_func_attr("dsl", "tensor");

    let mut tys: HashMap<String, TensorTy> = HashMap::new();
    let mut vals: HashMap<String, Value> = HashMap::new();
    for (i, param) in kernel.params.iter().enumerate() {
        tys.insert(param.name.clone(), param.ty.clone());
        vals.insert(param.name.clone(), fb.arg(i));
    }

    for stmt in &kernel.body {
        match stmt {
            Stmt::Var { name, expr, .. } => {
                let ty = infer(expr, &tys)
                    .map_err(|e| DslError::lower(e.line, format!("untyped expr: {}", e.msg)))?;
                let v = lower_expr(&mut fb, expr, &tys, &vals, Some(ty.elem))?;
                tys.insert(name.clone(), ty);
                vals.insert(name.clone(), v);
            }
            Stmt::Return { expr, .. } => {
                let v = lower_expr(&mut fb, expr, &tys, &vals, Some(kernel.ret.elem))?;
                fb.ret(&[v]);
            }
        }
    }
    Ok(fb.finish())
}

fn lower_expr(
    fb: &mut FuncBuilder,
    expr: &Expr,
    tys: &HashMap<String, TensorTy>,
    vals: &HashMap<String, Value>,
    hint: Option<ElemTy>,
) -> DslResult<Value> {
    match expr {
        Expr::Var { name, line } => vals
            .get(name)
            .copied()
            .ok_or_else(|| DslError::lower(*line, format!("unbound variable '{name}'"))),
        Expr::Num { value, .. } => {
            let elem = hint.unwrap_or(ElemTy::F64);
            Ok(fb.const_f(*value, ir_elem(elem)))
        }
        Expr::Binary { op, lhs, rhs, line } => {
            let lt = infer(lhs, tys).map_err(to_lower)?;
            let rt = infer(rhs, tys).map_err(to_lower)?;
            // Literals adopt the element type of the non-literal side.
            let elem = if matches!(**lhs, Expr::Num { .. }) { rt.elem } else { lt.elem };
            let lv = lower_expr(fb, lhs, tys, vals, Some(elem))?;
            let rv = lower_expr(fb, rhs, tys, vals, Some(elem))?;
            match op {
                BinOp::MatMul => Ok(tdl::matmul(fb, lv, rv)),
                BinOp::Div => Ok(fb.binary("arith.divf", lv, rv, ir_elem(elem))),
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    match (lt.is_scalar(), rt.is_scalar()) {
                        (true, true) => {
                            let name = match op {
                                BinOp::Add => "arith.addf",
                                BinOp::Sub => "arith.subf",
                                _ => "arith.mulf",
                            };
                            Ok(fb.binary(name, lv, rv, ir_elem(elem)))
                        }
                        (true, false) => {
                            let mut op_ir = everest_ir::Op::new("tensor.scale");
                            op_ir.operands = vec![lv, rv];
                            let ty = fb.value_type(rv).clone();
                            Ok(fb.op1(op_ir, ty))
                        }
                        (false, true) => {
                            // Normalize to scalar-first operand order.
                            let mut op_ir = everest_ir::Op::new("tensor.scale");
                            op_ir.operands = vec![rv, lv];
                            let ty = fb.value_type(lv).clone();
                            Ok(fb.op1(op_ir, ty))
                        }
                        (false, false) => {
                            let name = match op {
                                BinOp::Add => "tensor.add",
                                BinOp::Sub => "tensor.sub",
                                _ => "tensor.mul",
                            };
                            Ok(tdl::elementwise(fb, name, lv, rv))
                        }
                    }
                }
            }
            .map_err(|e: DslError| DslError::lower(*line, e.msg))
        }
        Expr::Call { name, args, list, line } => {
            if name == "conv2d" {
                let x = lower_expr(fb, &args[0], tys, vals, hint)?;
                let k = lower_expr(fb, &args[1], tys, vals, hint)?;
                let ty = fb.value_type(x).clone();
                let mut op_ir = everest_ir::Op::new("tensor.conv2d");
                op_ir.operands = vec![x, k];
                return Ok(fb.op1(op_ir, ty));
            }
            let arg = lower_expr(fb, &args[0], tys, vals, hint)?;
            match name.as_str() {
                "transpose" => {
                    let perm: Vec<usize> = list
                        .as_ref()
                        .ok_or_else(|| DslError::lower(*line, "transpose without permutation"))?
                        .iter()
                        .map(|p| *p as usize)
                        .collect();
                    Ok(tdl::transpose(fb, arg, &perm))
                }
                "reduce_sum" | "reduce_max" | "reduce_min" | "reduce_mean" => {
                    let dims: Vec<usize> = list
                        .as_ref()
                        .ok_or_else(|| DslError::lower(*line, "reduce without dimensions"))?
                        .iter()
                        .map(|d| *d as usize)
                        .collect();
                    let kind = &name["reduce_".len()..];
                    Ok(tdl::reduce(fb, arg, &dims, kind))
                }
                "stencil" => {
                    let weights = list
                        .as_ref()
                        .ok_or_else(|| DslError::lower(*line, "stencil without weights"))?;
                    Ok(tdl::stencil(fb, arg, weights))
                }
                "relu" => Ok(tdl::relu(fb, arg)),
                "sigmoid" => Ok(tdl::sigmoid(fb, arg)),
                other => Err(DslError::lower(*line, format!("unknown intrinsic '{other}'"))),
            }
        }
    }
}

fn to_lower(e: DslError) -> DslError {
    DslError::lower(e.line, e.msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::typecheck::check_program;

    fn lower(src: &str) -> Module {
        let p = parse_program(src).unwrap();
        check_program(&p).unwrap();
        let m = lower_program(&p).unwrap();
        m.verify().unwrap();
        m
    }

    #[test]
    fn lowers_gemm_to_tensor_matmul() {
        let m = lower(
            "kernel gemm(a: tensor<8x4xf64>, b: tensor<4x2xf64>) -> tensor<8x2xf64> { return a @ b; }",
        );
        let f = m.func("gemm").unwrap();
        let mut names = Vec::new();
        f.walk(&mut |op| names.push(op.name.clone()));
        assert_eq!(names, vec!["tensor.matmul", "func.return"]);
    }

    #[test]
    fn lowers_scale_with_scalar_first() {
        for src in [
            "kernel f(x: tensor<8xf32>) -> tensor<8xf32> { return 2.0 * x; }",
            "kernel f(x: tensor<8xf32>) -> tensor<8xf32> { return x * 2.0; }",
        ] {
            let m = lower(src);
            let f = m.func("f").unwrap();
            let mut scale = None;
            f.walk(&mut |op| {
                if op.name == "tensor.scale" {
                    scale = Some(op.clone());
                }
            });
            let scale = scale.expect("tensor.scale emitted");
            // First operand must be the scalar.
            assert!(f.value_type(scale.operands[0]).is_scalar());
            // Literal adopted the tensor's f32 element type.
            assert_eq!(f.value_type(scale.operands[0]), &Type::F32);
        }
    }

    #[test]
    fn lowers_chained_pipeline() {
        let m = lower(
            r#"
            kernel pipeline(a: tensor<16x16xf64>, b: tensor<16x16xf64>) -> tensor<16xf64> {
                var c = a @ b;
                var d = relu(c + a);
                return reduce_mean(d, [1]);
            }
            "#,
        );
        let f = m.func("pipeline").unwrap();
        let mut names = Vec::new();
        f.walk(&mut |op| names.push(op.name.clone()));
        assert_eq!(
            names,
            vec!["tensor.matmul", "tensor.add", "tensor.relu", "tensor.reduce", "func.return"]
        );
    }

    #[test]
    fn scalar_kernels_lower_to_arith() {
        let m = lower("kernel f(a: f64, b: f64) -> f64 { return (a + b) / 2.0; }");
        let f = m.func("f").unwrap();
        let mut names = Vec::new();
        f.walk(&mut |op| names.push(op.name.clone()));
        assert!(names.contains(&"arith.addf".to_string()));
        assert!(names.contains(&"arith.divf".to_string()));
    }

    #[test]
    fn end_to_end_compile_kernels() {
        let m = crate::compile_kernels(
            "kernel f(x: tensor<4x4xf32>) -> tensor<4x4xf32> { return sigmoid(x); }",
        )
        .unwrap();
        assert_eq!(m.len(), 1);
        assert!(m.func("f").unwrap().attrs.contains_key("dsl"));
    }

    #[test]
    fn compile_kernels_reports_type_errors() {
        let err =
            crate::compile_kernels("kernel f(x: tensor<4xf32>) -> tensor<4xf32> { return x @ x; }")
                .unwrap_err();
        assert_eq!(err.phase, crate::error::Phase::Type);
    }
}
