//! Property tests for the workflow platform: every policy produces valid
//! schedules on random graphs, and the threaded executor computes the
//! same values as a sequential evaluation.

use everest_workflow::exec::simulate;
use everest_workflow::graph::TaskGraph;
use everest_workflow::parallel::ParallelGraph;
use everest_workflow::scheduler::Policy;
use everest_workflow::worker::Worker;
use proptest::prelude::*;
use std::sync::Arc;

fn random_graph(seed: u64, layers: usize, width: usize) -> TaskGraph {
    TaskGraph::random(seed, layers.max(1), width.max(1), 200.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_policy_yields_valid_schedules(
        seed in any::<u64>(),
        layers in 1usize..5,
        width in 1usize..6,
        workers in 1usize..9,
    ) {
        let g = random_graph(seed, layers, width);
        let pool = Worker::uniform_pool(workers, 1.0);
        for policy in [Policy::Fifo, Policy::MinLoad, Policy::Heft] {
            let run = simulate(&g, &pool, policy).expect("simulates");
            // Dependencies respected.
            for (id, t) in g.tasks().iter().enumerate() {
                for d in &t.deps {
                    prop_assert!(run.start[id] >= run.finish[*d] - 1e-9, "{}: dep violated", policy);
                }
            }
            // No overlap per worker.
            for w in 0..workers {
                let mut spans: Vec<(f64, f64)> = run
                    .tasks_on(w)
                    .iter()
                    .map(|t| (run.start[*t], run.finish[*t]))
                    .collect();
                spans.sort_by(|a, b| a.0.total_cmp(&b.0));
                for pair in spans.windows(2) {
                    prop_assert!(pair[1].0 >= pair[0].1 - 1e-9, "{}: overlap", policy);
                }
            }
            // Makespan bounded below by the critical path.
            prop_assert!(run.makespan_us >= g.critical_path_us() - 1e-9);
        }
    }

    #[test]
    fn heft_never_loses_to_fifo_by_much(
        seed in any::<u64>(),
        workers in 2usize..8,
    ) {
        // HEFT is a heuristic, but on uniform pools it should never be
        // dramatically worse than FIFO (and usually better).
        let g = random_graph(seed, 4, 5);
        let pool = Worker::uniform_pool(workers, 1.0);
        let heft = simulate(&g, &pool, Policy::Heft).unwrap().makespan_us;
        let fifo = simulate(&g, &pool, Policy::Fifo).unwrap().makespan_us;
        prop_assert!(heft <= fifo * 1.5, "heft {} vs fifo {}", heft, fifo);
    }

    #[test]
    fn threaded_executor_matches_sequential_evaluation(
        seeds in prop::collection::vec(1i64..100, 1..6),
        threads in 1usize..6,
    ) {
        // Build a chain DAG and compare against a sequential fold with
        // identical structure.
        let mut g: ParallelGraph<i64> = ParallelGraph::new();
        let mut expected: Vec<i64> = Vec::new();
        let mut ids = Vec::new();
        for (i, s) in seeds.iter().enumerate() {
            let s = *s;
            if i == 0 {
                ids.push(g.add_task("seed", &[], move |_| Ok(s)));
                expected.push(s);
            } else {
                let dep = ids[i - 1];
                ids.push(g.add_task(format!("t{i}"), &[dep], move |ins: &[Arc<i64>]| {
                    Ok(*ins[0] * 2 + s)
                }));
                expected.push(expected[i - 1] * 2 + s);
            }
        }
        let results = g.run(threads).expect("executes");
        for (id, want) in ids.iter().zip(&expected) {
            prop_assert_eq!(*results[*id], *want);
        }
    }
}
