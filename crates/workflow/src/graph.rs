//! Task graphs: DAGs of computational tasks with costs and data volumes.

use crate::error::{WorkflowError, WorkflowResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifier of a task within one [`TaskGraph`].
pub type TaskId = usize;

/// One task: base cost (on a speed-1.0 worker) and output volume.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Task name.
    pub name: String,
    /// Execution cost in microseconds on a reference worker.
    pub cost_us: f64,
    /// Bytes produced for each consumer.
    pub output_bytes: u64,
    /// Direct dependencies (must complete first).
    pub deps: Vec<TaskId>,
}

/// A directed acyclic graph of tasks. Acyclicity holds by construction:
/// dependencies must reference already-added tasks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskGraph {
    /// Graph name (workflow name).
    pub name: String,
    tasks: Vec<TaskSpec>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> TaskGraph {
        TaskGraph { name: name.into(), tasks: Vec::new() }
    }

    /// Adds a task depending on `deps`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id has not been added yet (which also makes
    /// cycles unrepresentable).
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        cost_us: f64,
        output_bytes: u64,
        deps: &[TaskId],
    ) -> TaskId {
        let id = self.tasks.len();
        for d in deps {
            assert!(*d < id, "dependency {d} does not exist yet");
        }
        self.tasks.push(TaskSpec { name: name.into(), cost_us, output_bytes, deps: deps.to_vec() });
        id
    }

    /// Fallible variant of [`TaskGraph::add_task`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::UnknownTask`] for a forward/missing
    /// dependency.
    pub fn try_add_task(
        &mut self,
        name: impl Into<String>,
        cost_us: f64,
        output_bytes: u64,
        deps: &[TaskId],
    ) -> WorkflowResult<TaskId> {
        let id = self.tasks.len();
        for d in deps {
            if *d >= id {
                return Err(WorkflowError::UnknownTask(*d));
            }
        }
        Ok(self.add_task(name, cost_us, output_bytes, deps))
    }

    /// The task with the given id.
    pub fn task(&self, id: TaskId) -> &TaskSpec {
        &self.tasks[id]
    }

    /// All tasks in id order (a valid topological order).
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Successor lists (inverse of the dependency edges).
    pub fn successors(&self) -> Vec<Vec<TaskId>> {
        let mut succ = vec![Vec::new(); self.tasks.len()];
        for (id, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                succ[*d].push(id);
            }
        }
        succ
    }

    /// Total serial work (sum of costs).
    pub fn total_work_us(&self) -> f64 {
        self.tasks.iter().map(|t| t.cost_us).sum()
    }

    /// Critical-path length (ignoring communication).
    pub fn critical_path_us(&self) -> f64 {
        let mut finish = vec![0.0f64; self.tasks.len()];
        let mut best: f64 = 0.0;
        for (id, t) in self.tasks.iter().enumerate() {
            let start = t.deps.iter().map(|d| finish[*d]).fold(0.0, f64::max);
            finish[id] = start + t.cost_us;
            best = best.max(finish[id]);
        }
        best
    }

    /// Upward rank of every task (HEFT priority): the longest cost path
    /// from the task to any exit, inclusive.
    pub fn upward_ranks(&self) -> Vec<f64> {
        let succ = self.successors();
        let mut rank = vec![0.0f64; self.tasks.len()];
        for id in (0..self.tasks.len()).rev() {
            let down = succ[id].iter().map(|s| rank[*s]).fold(0.0, f64::max);
            rank[id] = self.tasks[id].cost_us + down;
        }
        rank
    }

    // --- generators for benchmark topologies ----------------------------

    /// `n` independent tasks feeding one reducer (embarrassingly parallel).
    pub fn wide(n: usize, cost_us: f64, output_bytes: u64) -> TaskGraph {
        let mut g = TaskGraph::new(format!("wide-{n}"));
        let leaves: Vec<TaskId> =
            (0..n).map(|i| g.add_task(format!("map-{i}"), cost_us, output_bytes, &[])).collect();
        g.add_task("reduce", cost_us, output_bytes, &leaves);
        g
    }

    /// A chain of `n` tasks (fully sequential).
    pub fn deep(n: usize, cost_us: f64, output_bytes: u64) -> TaskGraph {
        let mut g = TaskGraph::new(format!("deep-{n}"));
        let mut prev: Option<TaskId> = None;
        for i in 0..n {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(g.add_task(format!("stage-{i}"), cost_us, output_bytes, &deps));
        }
        g
    }

    /// Fork-join diamond: source → `w` branches → sink.
    pub fn diamond(w: usize, cost_us: f64, output_bytes: u64) -> TaskGraph {
        let mut g = TaskGraph::new(format!("diamond-{w}"));
        let src = g.add_task("source", cost_us, output_bytes, &[]);
        let branches: Vec<TaskId> = (0..w)
            .map(|i| g.add_task(format!("branch-{i}"), cost_us, output_bytes, &[src]))
            .collect();
        g.add_task("sink", cost_us, output_bytes, &branches);
        g
    }

    /// A random layered DAG with reproducible structure.
    pub fn random(seed: u64, layers: usize, width: usize, cost_us: f64) -> TaskGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = TaskGraph::new(format!("random-{seed}"));
        let mut prev_layer: Vec<TaskId> = Vec::new();
        for layer in 0..layers {
            let mut this_layer = Vec::new();
            for i in 0..width {
                let deps: Vec<TaskId> = if prev_layer.is_empty() {
                    Vec::new()
                } else {
                    let k = rng.gen_range(1..=prev_layer.len().min(3));
                    let mut ds = prev_layer.clone();
                    // Reproducible partial shuffle.
                    for j in (1..ds.len()).rev() {
                        let swap = rng.gen_range(0..=j);
                        ds.swap(j, swap);
                    }
                    ds.truncate(k);
                    ds
                };
                let cost = cost_us * rng.gen_range(0.5..2.0);
                let bytes = rng.gen_range(1_000..100_000);
                this_layer.push(g.add_task(format!("t{layer}_{i}"), cost, bytes, &deps));
            }
            prev_layer = this_layer;
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_and_deps_checked() {
        let mut g = TaskGraph::new("g");
        let a = g.add_task("a", 1.0, 0, &[]);
        let b = g.add_task("b", 1.0, 0, &[a]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(g.try_add_task("c", 1.0, 0, &[9]), Err(WorkflowError::UnknownTask(9)));
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new("g");
        g.add_task("a", 1.0, 0, &[1]);
    }

    #[test]
    fn critical_path_of_chain_is_total_work() {
        let g = TaskGraph::deep(5, 10.0, 0);
        assert_eq!(g.critical_path_us(), 50.0);
        assert_eq!(g.total_work_us(), 50.0);
    }

    #[test]
    fn critical_path_of_wide_graph_is_two_levels() {
        let g = TaskGraph::wide(10, 10.0, 0);
        assert_eq!(g.critical_path_us(), 20.0);
        assert_eq!(g.total_work_us(), 110.0);
    }

    #[test]
    fn diamond_structure() {
        let g = TaskGraph::diamond(4, 1.0, 0);
        assert_eq!(g.len(), 6);
        let succ = g.successors();
        assert_eq!(succ[0].len(), 4); // source feeds all branches
        assert_eq!(g.task(5).deps.len(), 4); // sink joins all branches
    }

    #[test]
    fn upward_ranks_decrease_along_edges() {
        let g = TaskGraph::random(7, 4, 5, 100.0);
        let ranks = g.upward_ranks();
        for (id, t) in g.tasks().iter().enumerate() {
            for d in &t.deps {
                assert!(ranks[*d] > ranks[id], "rank must strictly decrease along edges");
            }
        }
    }

    #[test]
    fn random_graphs_are_reproducible() {
        let a = TaskGraph::random(42, 3, 4, 50.0);
        let b = TaskGraph::random(42, 3, 4, 50.0);
        assert_eq!(a, b);
        let c = TaskGraph::random(43, 3, 4, 50.0);
        assert_ne!(a, c);
    }
}
