//! A real multi-threaded executor: runs closures as tasks with
//! dependency-ordered hand-off across a thread pool — the in-process
//! equivalent of HyperLoom's worker processes.

use crate::error::{WorkflowError, WorkflowResult};
use crate::graph::TaskId;
use crossbeam::channel;
use parking_lot::RwLock;
use std::sync::Arc;

type TaskFn<T> = Arc<dyn Fn(&[Arc<T>]) -> Result<T, String> + Send + Sync>;

struct ParallelTask<T> {
    name: String,
    deps: Vec<TaskId>,
    run: TaskFn<T>,
}

/// A graph of executable closures.
///
/// ```
/// use everest_workflow::parallel::ParallelGraph;
///
/// let mut g: ParallelGraph<i64> = ParallelGraph::new();
/// let a = g.add_task("a", &[], |_| Ok(2));
/// let b = g.add_task("b", &[], |_| Ok(3));
/// let _ = g.add_task("sum", &[a, b], |ins| Ok(*ins[0] + *ins[1]));
/// let results = g.run(4).unwrap();
/// assert_eq!(*results[2], 5);
/// ```
pub struct ParallelGraph<T> {
    tasks: Vec<ParallelTask<T>>,
}

impl<T> Default for ParallelGraph<T> {
    fn default() -> ParallelGraph<T> {
        ParallelGraph { tasks: Vec::new() }
    }
}

impl<T: Send + Sync + 'static> ParallelGraph<T> {
    /// Creates an empty graph.
    pub fn new() -> ParallelGraph<T> {
        ParallelGraph::default()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task computing from its dependencies' outputs.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id does not exist yet.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        deps: &[TaskId],
        run: impl Fn(&[Arc<T>]) -> Result<T, String> + Send + Sync + 'static,
    ) -> TaskId {
        let id = self.tasks.len();
        for d in deps {
            assert!(*d < id, "dependency {d} does not exist yet");
        }
        self.tasks.push(ParallelTask {
            name: name.into(),
            deps: deps.to_vec(),
            run: Arc::new(run),
        });
        id
    }

    /// Executes the graph on `threads` worker threads and returns every
    /// task's output (indexed by task id).
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::TaskFailed`] with the first failing task;
    /// remaining tasks are abandoned.
    pub fn run(self, threads: usize) -> WorkflowResult<Vec<Arc<T>>> {
        let threads = threads.max(1);
        let n = self.tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let tasks: Arc<Vec<ParallelTask<T>>> = Arc::new(self.tasks);
        let results: Arc<RwLock<Vec<Option<Arc<T>>>>> = Arc::new(RwLock::new(vec![None; n]));

        // Successor lists + indegrees for the coordinator.
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut indeg: Vec<usize> = vec![0; n];
        for (id, t) in tasks.iter().enumerate() {
            indeg[id] = t.deps.len();
            for d in &t.deps {
                succs[*d].push(id);
            }
        }

        let (ready_tx, ready_rx) = channel::unbounded::<TaskId>();
        let (done_tx, done_rx) = channel::unbounded::<(TaskId, Result<T, String>)>();

        let mut handles = Vec::new();
        for _ in 0..threads.min(n) {
            let ready_rx = ready_rx.clone();
            let done_tx = done_tx.clone();
            let tasks = Arc::clone(&tasks);
            let results = Arc::clone(&results);
            handles.push(std::thread::spawn(move || {
                while let Ok(id) = ready_rx.recv() {
                    let inputs: Vec<Arc<T>> = {
                        let guard = results.read();
                        tasks[id]
                            .deps
                            .iter()
                            .map(|d| Arc::clone(guard[*d].as_ref().expect("dep completed")))
                            .collect()
                    };
                    let out = (tasks[id].run)(&inputs);
                    if done_tx.send((id, out)).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(done_tx);

        for (id, d) in indeg.iter().enumerate() {
            if *d == 0 {
                ready_tx.send(id).expect("workers alive");
            }
        }

        let mut completed = 0usize;
        let mut failure: Option<WorkflowError> = None;
        while completed < n {
            let Ok((id, out)) = done_rx.recv() else {
                break;
            };
            match out {
                Ok(value) => {
                    results.write()[id] = Some(Arc::new(value));
                    completed += 1;
                    for s in &succs[id] {
                        indeg[*s] -= 1;
                        if indeg[*s] == 0 {
                            let _ = ready_tx.send(*s);
                        }
                    }
                }
                Err(reason) => {
                    failure =
                        Some(WorkflowError::TaskFailed { task: tasks[id].name.clone(), reason });
                    break;
                }
            }
        }
        drop(ready_tx);
        for h in handles {
            let _ = h.join();
        }
        if let Some(err) = failure {
            return Err(err);
        }
        let guard = results.read();
        Ok(guard.iter().map(|r| Arc::clone(r.as_ref().expect("all tasks completed"))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_computes_correct_value() {
        let mut g: ParallelGraph<f64> = ParallelGraph::new();
        let src = g.add_task("src", &[], |_| Ok(10.0));
        let l = g.add_task("double", &[src], |ins| Ok(*ins[0] * 2.0));
        let r = g.add_task("square", &[src], |ins| Ok(*ins[0] * *ins[0]));
        let _ = g.add_task("sum", &[l, r], |ins| Ok(*ins[0] + *ins[1]));
        let out = g.run(4).unwrap();
        assert_eq!(*out[3], 120.0);
    }

    #[test]
    fn wide_fanout_executes_in_parallel() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static CURRENT: AtomicUsize = AtomicUsize::new(0);
        let mut g: ParallelGraph<usize> = ParallelGraph::new();
        for i in 0..8 {
            g.add_task(format!("t{i}"), &[], move |_| {
                let now = CURRENT.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(20));
                CURRENT.fetch_sub(1, Ordering::SeqCst);
                Ok(i)
            });
        }
        let out = g.run(8).unwrap();
        assert_eq!(out.len(), 8);
        assert!(PEAK.load(Ordering::SeqCst) >= 2, "tasks should overlap");
    }

    #[test]
    fn failure_propagates_with_task_name() {
        let mut g: ParallelGraph<i32> = ParallelGraph::new();
        let a = g.add_task("ok", &[], |_| Ok(1));
        let _ = g.add_task("boom", &[a], |_| Err("division by zero".into()));
        let err = g.run(2).unwrap_err();
        assert_eq!(
            err,
            WorkflowError::TaskFailed { task: "boom".into(), reason: "division by zero".into() }
        );
    }

    #[test]
    fn empty_graph_returns_empty() {
        let g: ParallelGraph<i32> = ParallelGraph::new();
        assert!(g.run(4).unwrap().is_empty());
    }

    #[test]
    fn deep_chain_orders_correctly() {
        let mut g: ParallelGraph<u64> = ParallelGraph::new();
        let mut prev = g.add_task("t0", &[], |_| Ok(1));
        for i in 1..20 {
            prev = g.add_task(format!("t{i}"), &[prev], |ins| Ok(*ins[0] * 2));
        }
        let out = g.run(4).unwrap();
        assert_eq!(*out[19], 1 << 19);
    }

    #[test]
    fn single_thread_still_completes() {
        let mut g: ParallelGraph<i32> = ParallelGraph::new();
        let a = g.add_task("a", &[], |_| Ok(5));
        let b = g.add_task("b", &[], |_| Ok(7));
        g.add_task("c", &[a, b], |ins| Ok(*ins[0] * *ins[1]));
        let out = g.run(1).unwrap();
        assert_eq!(*out[2], 35);
    }
}
