//! Workflow platform errors.

use std::fmt;

/// Result alias for workflow operations.
pub type WorkflowResult<T> = Result<T, WorkflowError>;

/// Errors raised by graph construction, scheduling or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// A dependency references a task that does not exist (yet).
    UnknownTask(usize),
    /// No workers were provided.
    NoWorkers,
    /// A task execution failed (real executor).
    TaskFailed { task: String, reason: String },
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::UnknownTask(id) => write!(f, "unknown task id {id}"),
            WorkflowError::NoWorkers => write!(f, "worker pool is empty"),
            WorkflowError::TaskFailed { task, reason } => {
                write!(f, "task '{task}' failed: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(WorkflowError::UnknownTask(3).to_string(), "unknown task id 3");
        assert_eq!(WorkflowError::NoWorkers.to_string(), "worker pool is empty");
        assert_eq!(
            WorkflowError::TaskFailed { task: "t".into(), reason: "boom".into() }.to_string(),
            "task 't' failed: boom"
        );
    }
}
