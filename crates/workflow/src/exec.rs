//! The simulated distributed executor: applies a scheduling policy to a
//! task graph over a worker pool and reports the resulting timeline.

use crate::error::{WorkflowError, WorkflowResult};
use crate::graph::{TaskGraph, TaskId};
use crate::scheduler::{task_order, AssignState, Policy};
use crate::worker::Worker;

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Policy used.
    pub policy: Policy,
    /// Overall makespan in microseconds.
    pub makespan_us: f64,
    /// Worker index per task.
    pub assignment: Vec<usize>,
    /// Start time per task.
    pub start: Vec<f64>,
    /// Finish time per task.
    pub finish: Vec<f64>,
    /// Busy time per worker.
    pub worker_busy_us: Vec<f64>,
}

impl RunReport {
    /// Parallel speedup versus serial execution on a speed-1 worker.
    pub fn speedup(&self, graph: &TaskGraph) -> f64 {
        if self.makespan_us <= 0.0 {
            return 1.0;
        }
        graph.total_work_us() / self.makespan_us
    }

    /// Mean worker utilization (busy / makespan).
    pub fn mean_utilization(&self) -> f64 {
        if self.makespan_us <= 0.0 || self.worker_busy_us.is_empty() {
            return 0.0;
        }
        let total: f64 = self.worker_busy_us.iter().sum();
        total / (self.makespan_us * self.worker_busy_us.len() as f64)
    }

    /// Tasks assigned to worker `w`.
    pub fn tasks_on(&self, w: usize) -> Vec<TaskId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == w)
            .map(|(t, _)| t)
            .collect()
    }
}

/// Simulates executing `graph` on `workers` under `policy`.
///
/// # Errors
///
/// Returns [`WorkflowError::NoWorkers`] for an empty pool.
pub fn simulate(graph: &TaskGraph, workers: &[Worker], policy: Policy) -> WorkflowResult<RunReport> {
    if workers.is_empty() {
        return Err(WorkflowError::NoWorkers);
    }
    let mut st = AssignState::new(graph.len(), workers.len());
    for task in task_order(graph, policy) {
        let w = st.choose(graph, workers, task, policy);
        st.place(graph, workers, task, w);
    }
    let makespan = st.finish.iter().copied().fold(0.0, f64::max);
    let mut busy = vec![0.0; workers.len()];
    for (t, w) in st.assignment.iter().enumerate() {
        busy[*w] += st.finish[t] - st.start[t];
    }
    Ok(RunReport {
        policy,
        makespan_us: makespan,
        assignment: st.assignment,
        start: st.start,
        finish: st.finish,
        worker_busy_us: busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pool_is_an_error() {
        let g = TaskGraph::wide(4, 10.0, 0);
        assert_eq!(simulate(&g, &[], Policy::Fifo).unwrap_err(), WorkflowError::NoWorkers);
    }

    #[test]
    fn single_worker_makespan_is_total_work() {
        let g = TaskGraph::wide(8, 10.0, 0);
        let w = Worker::uniform_pool(1, 1.0);
        let run = simulate(&g, &w, Policy::MinLoad).unwrap();
        assert!((run.makespan_us - g.total_work_us()).abs() < 1e-6);
        assert!((run.mean_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wide_graphs_scale_with_workers() {
        let g = TaskGraph::wide(32, 100.0, 0);
        let one = simulate(&g, &Worker::uniform_pool(1, 1.0), Policy::Heft).unwrap();
        let eight = simulate(&g, &Worker::uniform_pool(8, 1.0), Policy::Heft).unwrap();
        assert!(eight.makespan_us < one.makespan_us / 4.0);
        assert!(eight.speedup(&g) > 4.0);
    }

    #[test]
    fn deep_graphs_do_not_scale() {
        let g = TaskGraph::deep(16, 100.0, 0);
        let one = simulate(&g, &Worker::uniform_pool(1, 1.0), Policy::Heft).unwrap();
        let eight = simulate(&g, &Worker::uniform_pool(8, 1.0), Policy::Heft).unwrap();
        // A chain cannot go faster than its critical path.
        assert!(eight.makespan_us >= g.critical_path_us());
        assert!(eight.makespan_us <= one.makespan_us + 1e-9);
    }

    #[test]
    fn heft_beats_fifo_on_heterogeneous_pools() {
        let g = TaskGraph::random(3, 6, 8, 500.0);
        let workers = Worker::heterogeneous_pool(2, 6);
        let fifo = simulate(&g, &workers, Policy::Fifo).unwrap();
        let heft = simulate(&g, &workers, Policy::Heft).unwrap();
        assert!(
            heft.makespan_us <= fifo.makespan_us,
            "HEFT {} should not lose to FIFO {}",
            heft.makespan_us,
            fifo.makespan_us
        );
    }

    #[test]
    fn schedule_respects_dependencies_and_exclusivity() {
        let g = TaskGraph::random(9, 5, 6, 200.0);
        let workers = Worker::uniform_pool(3, 1.0);
        for policy in [Policy::Fifo, Policy::MinLoad, Policy::Heft] {
            let run = simulate(&g, &workers, policy).unwrap();
            // Dependencies.
            for (id, t) in g.tasks().iter().enumerate() {
                for d in &t.deps {
                    assert!(run.start[id] >= run.finish[*d] - 1e-9, "{policy}: dep violated");
                }
            }
            // Worker exclusivity: tasks on one worker do not overlap.
            for w in 0..workers.len() {
                let mut spans: Vec<(f64, f64)> =
                    run.tasks_on(w).iter().map(|t| (run.start[*t], run.finish[*t])).collect();
                spans.sort_by(|a, b| a.0.total_cmp(&b.0));
                for pair in spans.windows(2) {
                    assert!(pair[1].0 >= pair[0].1 - 1e-9, "{policy}: overlap on worker {w}");
                }
            }
        }
    }

    #[test]
    fn report_accessors() {
        let g = TaskGraph::diamond(3, 10.0, 100);
        let run = simulate(&g, &Worker::uniform_pool(2, 1.0), Policy::Heft).unwrap();
        let all: usize = (0..2).map(|w| run.tasks_on(w).len()).sum();
        assert_eq!(all, g.len());
        assert!(run.mean_utilization() > 0.0 && run.mean_utilization() <= 1.0);
    }
}
