//! The simulated distributed executor: applies a scheduling policy to a
//! task graph over a worker pool and reports the resulting timeline.

use crate::error::{WorkflowError, WorkflowResult};
use crate::graph::{TaskGraph, TaskId};
use crate::scheduler::{task_order, AssignState, Policy};
use crate::worker::Worker;

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Policy used.
    pub policy: Policy,
    /// Overall makespan in microseconds.
    pub makespan_us: f64,
    /// Worker index per task.
    pub assignment: Vec<usize>,
    /// Start time per task.
    pub start: Vec<f64>,
    /// Finish time per task.
    pub finish: Vec<f64>,
    /// Busy time per worker.
    pub worker_busy_us: Vec<f64>,
    /// Worker indices (into the full pool) that were excluded from this
    /// run — tripped devices the offload layer took out of rotation.
    pub excluded_workers: Vec<usize>,
    /// `true` when the run completed without its full worker pool (some
    /// workers were excluded), i.e. the system ran in degraded mode.
    pub degraded: bool,
}

impl RunReport {
    /// Parallel speedup versus serial execution on a speed-1 worker.
    pub fn speedup(&self, graph: &TaskGraph) -> f64 {
        if self.makespan_us <= 0.0 {
            return 1.0;
        }
        graph.total_work_us() / self.makespan_us
    }

    /// Mean worker utilization (busy / makespan).
    pub fn mean_utilization(&self) -> f64 {
        if self.makespan_us <= 0.0 || self.worker_busy_us.is_empty() {
            return 0.0;
        }
        let total: f64 = self.worker_busy_us.iter().sum();
        total / (self.makespan_us * self.worker_busy_us.len() as f64)
    }

    /// Tasks assigned to worker `w`.
    pub fn tasks_on(&self, w: usize) -> Vec<TaskId> {
        self.assignment.iter().enumerate().filter(|(_, a)| **a == w).map(|(t, _)| t).collect()
    }

    /// Partitions all tasks by worker in one pass over the assignment
    /// vector: `partition[w]` lists the tasks worker `w` ran. Tasks
    /// assigned beyond `workers` are skipped, mirroring [`Self::tasks_on`]
    /// returning an empty list for an out-of-range worker.
    pub fn worker_partition(&self, workers: usize) -> Vec<Vec<TaskId>> {
        let mut partition = vec![Vec::new(); workers];
        for (task, &w) in self.assignment.iter().enumerate() {
            if let Some(lane) = partition.get_mut(w) {
                lane.push(task);
            }
        }
        partition
    }

    /// Converts the timeline into Chrome trace events: exactly one `B`/`E`
    /// pair per task, on the tid of the worker that ran it, so a scheduled
    /// run renders as a per-worker Gantt chart in `chrome://tracing`.
    ///
    /// Emission walks a [`Self::worker_partition`] built in one pass —
    /// not one assignment scan per worker — with each lane's tasks sorted
    /// by start time. Because tasks on one worker never overlap, pushing
    /// each task's `E` before the next task's `B` already yields the
    /// per-lane timestamp order Chrome requires (end before begin on
    /// ties), so no global sort is needed.
    pub fn trace_events(&self, graph: &TaskGraph) -> Vec<everest_telemetry::TraceEvent> {
        let workers =
            self.worker_busy_us.len().max(self.assignment.iter().map(|w| w + 1).max().unwrap_or(0));
        let mut partition = self.worker_partition(workers);
        let mut events = Vec::with_capacity(self.assignment.len() * 2);
        for (worker, lane) in partition.iter_mut().enumerate() {
            lane.sort_by(|a, b| self.start[*a].total_cmp(&self.start[*b]));
            let tid = worker as u32;
            for &task in lane.iter() {
                let name = graph.tasks().get(task).map(|t| t.name.as_str()).unwrap_or("task");
                events.push(
                    everest_telemetry::TraceEvent::begin(
                        name,
                        "workflow",
                        self.start[task] as u64,
                        everest_telemetry::export::WORKFLOW_PID,
                        tid,
                    )
                    .with_arg("task", task)
                    .with_arg("worker", worker)
                    .with_arg("policy", self.policy),
                );
                events.push(everest_telemetry::TraceEvent::end(
                    name,
                    "workflow",
                    self.finish[task] as u64,
                    everest_telemetry::export::WORKFLOW_PID,
                    tid,
                ));
            }
        }
        events
    }
}

/// Simulates executing `graph` on `workers` under `policy`.
///
/// # Errors
///
/// Returns [`WorkflowError::NoWorkers`] for an empty pool.
pub fn simulate(
    graph: &TaskGraph,
    workers: &[Worker],
    policy: Policy,
) -> WorkflowResult<RunReport> {
    let available = vec![true; workers.len()];
    simulate_available(graph, workers, policy, &available)
}

/// Simulates executing `graph` on the subset of `workers` marked `true` in
/// `available`, rescheduling everything off the excluded ones. Task indices
/// in the report refer to the *full* pool, so callers can correlate a
/// degraded run with the healthy topology; excluded workers simply end up
/// with zero busy time and no tasks. This is how the runtime's offload
/// layer takes a tripped or lost device out of rotation (paper Fig. 2's
/// adaptation loop) without the scheduler learning about fault plans.
///
/// # Errors
///
/// Returns [`WorkflowError::NoWorkers`] for an empty pool, when
/// `available` does not cover the pool, or when every worker is excluded.
pub fn simulate_available(
    graph: &TaskGraph,
    workers: &[Worker],
    policy: Policy,
    available: &[bool],
) -> WorkflowResult<RunReport> {
    if workers.is_empty() || available.len() != workers.len() {
        return Err(WorkflowError::NoWorkers);
    }
    // Compact the pool to the available workers, keeping a map back to
    // full-pool indices so the report speaks the caller's language.
    let keep: Vec<usize> = (0..workers.len()).filter(|w| available[*w]).collect();
    if keep.is_empty() {
        return Err(WorkflowError::NoWorkers);
    }
    let excluded: Vec<usize> = (0..workers.len()).filter(|w| !available[*w]).collect();
    let pool: Vec<Worker> = keep.iter().map(|w| workers[*w].clone()).collect();

    let mut span = everest_telemetry::span("workflow.simulate", "workflow");
    span.attr("tasks", graph.len());
    span.attr("workers", pool.len());
    span.attr("excluded", excluded.len());
    span.attr("policy", policy);
    let mut st = AssignState::new(graph.len(), pool.len());
    for task in task_order(graph, policy) {
        let w = st.choose(graph, &pool, task, policy);
        st.place(graph, &pool, task, w);
    }
    let makespan = st.finish.iter().copied().fold(0.0, f64::max);
    let mut busy = vec![0.0; workers.len()];
    let assignment: Vec<usize> = st.assignment.iter().map(|w| keep[*w]).collect();
    for (t, w) in assignment.iter().enumerate() {
        busy[*w] += st.finish[t] - st.start[t];
    }
    Ok(RunReport {
        policy,
        makespan_us: makespan,
        assignment,
        start: st.start,
        finish: st.finish,
        worker_busy_us: busy,
        degraded: !excluded.is_empty(),
        excluded_workers: excluded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pool_is_an_error() {
        let g = TaskGraph::wide(4, 10.0, 0);
        assert_eq!(simulate(&g, &[], Policy::Fifo).unwrap_err(), WorkflowError::NoWorkers);
    }

    #[test]
    fn single_worker_makespan_is_total_work() {
        let g = TaskGraph::wide(8, 10.0, 0);
        let w = Worker::uniform_pool(1, 1.0);
        let run = simulate(&g, &w, Policy::MinLoad).unwrap();
        assert!((run.makespan_us - g.total_work_us()).abs() < 1e-6);
        assert!((run.mean_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wide_graphs_scale_with_workers() {
        let g = TaskGraph::wide(32, 100.0, 0);
        let one = simulate(&g, &Worker::uniform_pool(1, 1.0), Policy::Heft).unwrap();
        let eight = simulate(&g, &Worker::uniform_pool(8, 1.0), Policy::Heft).unwrap();
        assert!(eight.makespan_us < one.makespan_us / 4.0);
        assert!(eight.speedup(&g) > 4.0);
    }

    #[test]
    fn deep_graphs_do_not_scale() {
        let g = TaskGraph::deep(16, 100.0, 0);
        let one = simulate(&g, &Worker::uniform_pool(1, 1.0), Policy::Heft).unwrap();
        let eight = simulate(&g, &Worker::uniform_pool(8, 1.0), Policy::Heft).unwrap();
        // A chain cannot go faster than its critical path.
        assert!(eight.makespan_us >= g.critical_path_us());
        assert!(eight.makespan_us <= one.makespan_us + 1e-9);
    }

    #[test]
    fn heft_beats_fifo_on_heterogeneous_pools() {
        let g = TaskGraph::random(3, 6, 8, 500.0);
        let workers = Worker::heterogeneous_pool(2, 6);
        let fifo = simulate(&g, &workers, Policy::Fifo).unwrap();
        let heft = simulate(&g, &workers, Policy::Heft).unwrap();
        assert!(
            heft.makespan_us <= fifo.makespan_us,
            "HEFT {} should not lose to FIFO {}",
            heft.makespan_us,
            fifo.makespan_us
        );
    }

    #[test]
    fn schedule_respects_dependencies_and_exclusivity() {
        let g = TaskGraph::random(9, 5, 6, 200.0);
        let workers = Worker::uniform_pool(3, 1.0);
        for policy in [Policy::Fifo, Policy::MinLoad, Policy::Heft] {
            let run = simulate(&g, &workers, policy).unwrap();
            // Dependencies.
            for (id, t) in g.tasks().iter().enumerate() {
                for d in &t.deps {
                    assert!(run.start[id] >= run.finish[*d] - 1e-9, "{policy}: dep violated");
                }
            }
            // Worker exclusivity: tasks on one worker do not overlap.
            for w in 0..workers.len() {
                let mut spans: Vec<(f64, f64)> =
                    run.tasks_on(w).iter().map(|t| (run.start[*t], run.finish[*t])).collect();
                spans.sort_by(|a, b| a.0.total_cmp(&b.0));
                for pair in spans.windows(2) {
                    assert!(pair[1].0 >= pair[0].1 - 1e-9, "{policy}: overlap on worker {w}");
                }
            }
        }
    }

    #[test]
    fn zero_makespan_report_has_neutral_metrics() {
        // A degenerate report (no work scheduled) must not divide by zero.
        let report = RunReport {
            policy: Policy::Fifo,
            makespan_us: 0.0,
            assignment: vec![],
            start: vec![],
            finish: vec![],
            worker_busy_us: vec![0.0, 0.0],
            excluded_workers: vec![],
            degraded: false,
        };
        let g = TaskGraph::wide(2, 10.0, 0);
        assert_eq!(report.speedup(&g), 1.0);
        assert_eq!(report.mean_utilization(), 0.0);
        assert!(report.tasks_on(0).is_empty());
    }

    #[test]
    fn empty_worker_set_report_has_zero_utilization() {
        let report = RunReport {
            policy: Policy::Heft,
            makespan_us: 42.0,
            assignment: vec![],
            start: vec![],
            finish: vec![],
            worker_busy_us: vec![],
            excluded_workers: vec![],
            degraded: false,
        };
        assert_eq!(report.mean_utilization(), 0.0);
        assert!(report.tasks_on(3).is_empty());
    }

    #[test]
    fn full_pool_run_is_not_degraded() {
        let g = TaskGraph::wide(4, 10.0, 0);
        let run = simulate(&g, &Worker::uniform_pool(2, 1.0), Policy::Fifo).unwrap();
        assert!(!run.degraded);
        assert!(run.excluded_workers.is_empty());
    }

    #[test]
    fn excluded_workers_get_no_tasks_and_the_run_reports_degraded() {
        let g = TaskGraph::random(21, 5, 6, 250.0);
        let workers = Worker::uniform_pool(4, 1.0);
        let available = [true, false, true, false];
        let run = simulate_available(&g, &workers, Policy::Heft, &available).unwrap();
        assert!(run.degraded);
        assert_eq!(run.excluded_workers, vec![1, 3]);
        // Assignment indices still refer to the full pool, and excluded
        // workers stay idle.
        assert!(run.assignment.iter().all(|w| available[*w]));
        assert_eq!(run.worker_busy_us.len(), workers.len());
        assert_eq!(run.worker_busy_us[1], 0.0);
        assert_eq!(run.worker_busy_us[3], 0.0);
        assert!(run.tasks_on(1).is_empty());
        // Losing half the pool cannot speed the schedule up.
        let healthy = simulate(&g, &workers, Policy::Heft).unwrap();
        assert!(run.makespan_us >= healthy.makespan_us - 1e-9);
    }

    #[test]
    fn excluding_every_worker_is_an_error() {
        let g = TaskGraph::wide(4, 10.0, 0);
        let workers = Worker::uniform_pool(2, 1.0);
        assert_eq!(
            simulate_available(&g, &workers, Policy::Fifo, &[false, false]).unwrap_err(),
            WorkflowError::NoWorkers
        );
        // A mask that does not cover the pool is rejected too.
        assert_eq!(
            simulate_available(&g, &workers, Policy::Fifo, &[true]).unwrap_err(),
            WorkflowError::NoWorkers
        );
    }

    #[test]
    fn tasks_on_partitions_all_tasks() {
        let g = TaskGraph::random(5, 7, 4, 300.0);
        let workers = Worker::uniform_pool(3, 1.0);
        let run = simulate(&g, &workers, Policy::MinLoad).unwrap();
        let mut seen = vec![false; g.len()];
        for w in 0..workers.len() {
            for t in run.tasks_on(w) {
                assert!(!seen[t], "task {t} listed on two workers");
                seen[t] = true;
                assert_eq!(run.assignment[t], w);
            }
        }
        assert!(seen.iter().all(|s| *s));
        // Out-of-range worker indices are empty, not a panic.
        assert!(run.tasks_on(workers.len()).is_empty());
    }

    #[test]
    fn worker_partition_matches_tasks_on() {
        let g = TaskGraph::random(17, 6, 9, 350.0);
        let workers = Worker::uniform_pool(4, 1.0);
        let run = simulate(&g, &workers, Policy::Heft).unwrap();
        let partition = run.worker_partition(workers.len());
        assert_eq!(partition.len(), workers.len());
        for (w, lane) in partition.iter().enumerate() {
            assert_eq!(lane, &run.tasks_on(w));
        }
        assert_eq!(partition.iter().map(Vec::len).sum::<usize>(), g.len());
        // Asking for fewer lanes than workers drops the out-of-range tasks
        // rather than panicking, like `tasks_on` with an out-of-range index.
        let truncated = run.worker_partition(1);
        assert_eq!(truncated.len(), 1);
        assert_eq!(truncated[0], run.tasks_on(0));
    }

    #[test]
    fn trace_events_emit_one_begin_end_pair_per_task_on_its_worker_tid() {
        use everest_telemetry::export::{Phase, WORKFLOW_PID};
        let g = TaskGraph::random(11, 6, 8, 400.0);
        let workers = Worker::uniform_pool(3, 1.0);
        let run = simulate(&g, &workers, Policy::Heft).unwrap();
        let events = run.trace_events(&g);
        assert_eq!(events.len(), 2 * g.len());
        for (task, spec) in g.tasks().iter().enumerate() {
            let task_begins: Vec<_> = events
                .iter()
                .filter(|e| {
                    e.ph == Phase::Begin && e.args.contains(&("task".to_owned(), task.to_string()))
                })
                .collect();
            assert_eq!(task_begins.len(), 1, "task {task} must have exactly one B event");
            let begin = task_begins[0];
            assert_eq!(begin.name, spec.name);
            assert_eq!(begin.tid, run.assignment[task] as u32, "task {task} on wrong tid");
            assert_eq!(begin.pid, WORKFLOW_PID);
            assert_eq!(begin.ts_us, run.start[task] as u64);
        }
        // Globally: one E per B, and per tid the lane is well-nested
        // (non-overlapping tasks ⇒ depth alternates 0→1→0).
        let begins = events.iter().filter(|e| e.ph == Phase::Begin).count();
        let ends = events.iter().filter(|e| e.ph == Phase::End).count();
        assert_eq!(begins, g.len());
        assert_eq!(ends, g.len());
        for w in 0..workers.len() {
            let mut depth = 0i32;
            for e in events.iter().filter(|e| e.tid == w as u32) {
                match e.ph {
                    Phase::Begin => depth += 1,
                    Phase::End => depth -= 1,
                    _ => {}
                }
                assert!((0..=1).contains(&depth), "lane {w} is not well-nested");
            }
            assert_eq!(depth, 0);
        }
    }

    #[test]
    fn report_accessors() {
        let g = TaskGraph::diamond(3, 10.0, 100);
        let run = simulate(&g, &Worker::uniform_pool(2, 1.0), Policy::Heft).unwrap();
        let all: usize = (0..2).map(|w| run.tasks_on(w).len()).sum();
        assert_eq!(all, g.len());
        assert!(run.mean_utilization() > 0.0 && run.mean_utilization() <= 1.0);
    }
}
