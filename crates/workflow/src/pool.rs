//! A scoped thread-pool / parallel-map utility: evaluate a batch of
//! independent items on `jobs` worker threads with results written back
//! by input index, so the output order is identical to a sequential map
//! at any worker count.
//!
//! This is the building block the DSE engine uses to fan out design-point
//! evaluation; it reuses the same crossbeam channel + parking_lot shims
//! as [`crate::parallel`].

use crossbeam::channel;
use everest_telemetry::LogHistogram;
use parking_lot::Mutex;
use std::time::Instant;

/// Maps `f` over `items` on up to `jobs` worker threads.
///
/// Results land at the index of the item that produced them, so
/// `parallel_map(label, jobs, items, f)` returns exactly what the
/// sequential `items.into_iter().enumerate().map(f).collect()` would,
/// for any `jobs`. With `jobs <= 1` (or fewer than two items) the map
/// runs inline on the calling thread with no pool setup.
///
/// Each worker opens a telemetry span named `label` (category `pool`)
/// tagged with its worker index and the number of items it processed,
/// and records two histograms: `pool.queue_wait_us` (time from batch
/// start to an item's dequeue) and `pool.task_run_us` (time inside `f`).
/// Observations accumulate in per-worker [`LogHistogram`]s and merge
/// into the global registry once per worker, so the hot loop never
/// touches a shared lock for metrics.
pub fn parallel_map<T, R, F>(label: &str, jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        let mut span = everest_telemetry::span(label, "pool");
        span.attr("worker", 0);
        span.attr("items", n);
        let mut run_hist = LogHistogram::new();
        let out = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let t = Instant::now();
                let out = f(i, item);
                run_hist.observe(t.elapsed().as_secs_f64() * 1e6);
                out
            })
            .collect();
        everest_telemetry::metrics().merge_histogram("pool.task_run_us", &run_hist);
        return out;
    }

    // The whole batch is enqueued up front, so workers drain with
    // non-blocking receives and exit when the queue is empty.
    let (work_tx, work_rx) = channel::unbounded::<(usize, T)>();
    for pair in items.into_iter().enumerate() {
        assert!(work_tx.send(pair).is_ok(), "receiver alive");
    }
    drop(work_tx);

    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let batch_start = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let work_rx = work_rx.clone();
            let results = &results;
            let f = &f;
            scope.spawn(move || {
                let mut span = everest_telemetry::span(label, "pool");
                span.attr("worker", worker);
                everest_telemetry::flight().record(
                    everest_telemetry::EventKind::SpanBegin,
                    "pool.worker",
                    worker as f64,
                );
                let mut wait_hist = LogHistogram::new();
                let mut run_hist = LogHistogram::new();
                let mut done = 0usize;
                while let Some((i, item)) = work_rx.try_recv() {
                    // One clock read serves both sides: the end of the
                    // queue wait is the start of the run.
                    let t = Instant::now();
                    wait_hist.observe((t - batch_start).as_secs_f64() * 1e6);
                    let out = f(i, item);
                    run_hist.observe(t.elapsed().as_secs_f64() * 1e6);
                    results.lock()[i] = Some(out);
                    done += 1;
                }
                let registry = everest_telemetry::metrics();
                registry.merge_histogram("pool.queue_wait_us", &wait_hist);
                registry.merge_histogram("pool.task_run_us", &run_hist);
                everest_telemetry::flight().record(
                    everest_telemetry::EventKind::SpanEnd,
                    "pool.worker",
                    done as f64,
                );
                span.attr("items", done);
            });
        }
    });
    results.into_inner().into_iter().map(|slot| slot.expect("worker filled slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<usize> = (0..100).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let got = parallel_map("test.map", jobs, items.clone(), |_, x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let got = parallel_map("test.map", 4, vec!['a', 'b', 'c', 'd'], |i, c| (i, c));
        assert_eq!(got, vec![(0, 'a'), (1, 'b'), (2, 'c'), (3, 'd')]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let out = parallel_map("test.map", 8, (0..64).collect::<Vec<i32>>(), |_, x| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 64);
        assert_eq!(CALLS.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn workers_actually_overlap() {
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static CURRENT: AtomicUsize = AtomicUsize::new(0);
        parallel_map("test.map", 4, (0..8).collect::<Vec<i32>>(), |_, x| {
            let now = CURRENT.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(15));
            CURRENT.fetch_sub(1, Ordering::SeqCst);
            x
        });
        assert!(PEAK.load(Ordering::SeqCst) >= 2, "workers should overlap");
    }

    #[test]
    fn records_queue_wait_and_task_run_histograms() {
        let before = everest_telemetry::metrics()
            .snapshot()
            .histogram("pool.task_run_us")
            .map_or(0, |h| h.count);
        parallel_map("test.map", 4, (0..64).collect::<Vec<i32>>(), |_, x| x + 1);
        let snap = everest_telemetry::metrics().snapshot();
        let run = snap.histogram("pool.task_run_us").expect("task-run histogram recorded");
        // Other tests in this binary share the registry, so assert on
        // growth, not exact totals.
        assert!(run.count >= before + 64, "one task-run sample per item");
        let wait = snap.histogram("pool.queue_wait_us").expect("queue-wait histogram recorded");
        assert!(wait.count > 0);
        assert!(wait.p99() >= wait.p50());
    }

    #[test]
    fn empty_input_returns_empty() {
        let got: Vec<i32> = parallel_map("test.map", 4, Vec::<i32>::new(), |_, x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn results_can_carry_errors() {
        let got = parallel_map("test.map", 2, vec![1i32, -1, 2], |_, x| {
            if x < 0 {
                Err("negative".to_owned())
            } else {
                Ok(x * 10)
            }
        });
        assert_eq!(got, vec![Ok(10), Err("negative".to_owned()), Ok(20)]);
    }
}
