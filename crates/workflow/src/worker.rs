//! Worker descriptions for the distributed executor.

/// A worker: a (possibly remote, possibly accelerated) execution slot.
#[derive(Debug, Clone, PartialEq)]
pub struct Worker {
    /// Worker name.
    pub name: String,
    /// Relative speed: task time = `cost_us / speed`.
    pub speed: f64,
    /// Per-byte transfer cost to/from this worker, microseconds
    /// (models the worker's network attachment; 0 for co-located data).
    pub us_per_byte: f64,
    /// Fixed message latency for any inbound transfer, microseconds.
    pub latency_us: f64,
}

impl Worker {
    /// Creates a worker.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive.
    pub fn new(name: impl Into<String>, speed: f64, us_per_byte: f64, latency_us: f64) -> Worker {
        assert!(speed > 0.0, "worker speed must be positive");
        Worker { name: name.into(), speed, us_per_byte, latency_us }
    }

    /// A pool of `n` identical workers on a datacenter LAN.
    pub fn uniform_pool(n: usize, speed: f64) -> Vec<Worker> {
        (0..n).map(|i| Worker::new(format!("w{i}"), speed, 1.0 / (1.1 * 1e3), 25.0)).collect()
    }

    /// A heterogeneous pool: `fast` accelerated workers (speed 4.0) and
    /// `slow` baseline workers (speed 1.0).
    pub fn heterogeneous_pool(fast: usize, slow: usize) -> Vec<Worker> {
        let mut pool = Vec::new();
        for i in 0..fast {
            pool.push(Worker::new(format!("fpga{i}"), 4.0, 1.0 / (1.2 * 1e3), 4.0));
        }
        for i in 0..slow {
            pool.push(Worker::new(format!("cpu{i}"), 1.0, 1.0 / (1.1 * 1e3), 25.0));
        }
        pool
    }

    /// Time for this worker to execute a task of base cost `cost_us`.
    pub fn exec_time(&self, cost_us: f64) -> f64 {
        cost_us / self.speed
    }

    /// Time to pull `bytes` of input produced on another worker.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_us + bytes as f64 * self.us_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_time_scales_inversely_with_speed() {
        let w = Worker::new("w", 2.0, 0.0, 0.0);
        assert_eq!(w.exec_time(100.0), 50.0);
    }

    #[test]
    fn pools_have_requested_sizes() {
        assert_eq!(Worker::uniform_pool(8, 1.0).len(), 8);
        let h = Worker::heterogeneous_pool(2, 6);
        assert_eq!(h.len(), 8);
        assert!(h[0].speed > h[7].speed);
    }

    #[test]
    fn transfer_has_latency_floor() {
        let w = Worker::uniform_pool(1, 1.0).remove(0);
        assert!(w.transfer_time(0) >= 25.0);
        assert!(w.transfer_time(1_000_000) > w.transfer_time(1_000));
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        Worker::new("w", 0.0, 0.0, 0.0);
    }
}
