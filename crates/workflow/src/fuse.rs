//! Stream-fusion legality classification over workflow dataset edges.
//!
//! ROADMAP item 1 (FPGA-centric disaggregation) wants multi-kernel
//! workflows to stream device-to-device instead of round-tripping every
//! intermediate through the host. That is only legal for an edge when the
//! compiler can *prove* it: exactly one writer, exactly one downstream
//! reader, an ordering edge serializing them, and a byte footprint bounded
//! by the device BRAM stream budget. This module is that proof engine —
//! graph-only, like [`crate::race`], so any frontend (the `.ewf` DSL, the
//! `df` dialect) can bridge onto it:
//!
//! * [`DataEdge`] — one producer→consumer dataset hand-off with its byte
//!   bound (from `everest-ir`'s footprint analysis) and reader counts;
//! * [`classify`] — combines the task-graph ordering relation, the race
//!   detector, per-edge reader/writer multiplicity and the footprint
//!   bounds into one [`EdgeClass`] per edge;
//! * [`FusionPlan`] — the machine-checkable result consumed by
//!   `everestc fuse`, CI gates, and (eventually) the P2P transport layer,
//!   with a versioned JSON serialization.
//!
//! Every classification carries its evidence: fusable edges record the
//! ordering path and the bound-vs-budget comparison; spills name the exact
//! disqualifier; racy edges embed the [`Race`] counterexample with its
//! [`crate::race::OrderingEvidence`] witness.

use crate::race::{detect_races, Race};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Version of the JSON fusion plan emitted by [`FusionPlan::to_json`].
/// Bumped on any breaking field change; CI artifacts key on this.
pub const FUSION_SCHEMA_VERSION: u32 = 1;

/// The legality verdict for one dataset edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeClass {
    /// Single writer, single downstream reader, serialized by an ordering
    /// path, footprint bounded and within the BRAM stream budget: safe to
    /// stream FPGA→FPGA without touching the host.
    Fusable,
    /// Legal but not streamable — fan-out, re-read, host boundary, or a
    /// footprint that is unbounded or exceeds the budget. Must materialize
    /// on the host.
    MustSpill,
    /// Unordered conflicting access: an error, with a concrete
    /// counterexample attached.
    Racy,
}

impl std::fmt::Display for EdgeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EdgeClass::Fusable => "fusable",
            EdgeClass::MustSpill => "must-spill",
            EdgeClass::Racy => "racy",
        })
    }
}

/// What kind of node an edge endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointRole {
    /// External input feed.
    Source,
    /// A compute task (kernel).
    Task,
    /// External output store.
    Sink,
}

impl std::fmt::Display for EndpointRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EndpointRole::Source => "source",
            EndpointRole::Task => "task",
            EndpointRole::Sink => "sink",
        })
    }
}

/// One endpoint of a dataset edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeEnd {
    /// Node name (task name, or source/sink item name).
    pub name: String,
    /// Node kind.
    pub role: EndpointRole,
    /// External storage kind for sources/sinks (e.g. `"weather-ensemble-feed"`);
    /// empty for tasks. Races on external kinds attach to boundary edges.
    pub kind: String,
}

impl EdgeEnd {
    /// A task endpoint.
    pub fn task(name: impl Into<String>) -> EdgeEnd {
        EdgeEnd { name: name.into(), role: EndpointRole::Task, kind: String::new() }
    }

    /// A source endpoint with its external storage kind.
    pub fn source(name: impl Into<String>, kind: impl Into<String>) -> EdgeEnd {
        EdgeEnd { name: name.into(), role: EndpointRole::Source, kind: kind.into() }
    }

    /// A sink endpoint with its external storage kind.
    pub fn sink(name: impl Into<String>, kind: impl Into<String>) -> EdgeEnd {
        EdgeEnd { name: name.into(), role: EndpointRole::Sink, kind: kind.into() }
    }
}

/// One dataset hand-off to classify: `producer` writes `item` once,
/// `consumer` reads it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataEdge {
    /// Dataset (workflow item) name.
    pub item: String,
    /// The single writer.
    pub producer: EdgeEnd,
    /// One reader (an item with several readers contributes several edges).
    pub consumer: EdgeEnd,
    /// Byte bound on the data crossing the edge, from the IR footprint
    /// analysis; `None` when unknown or unbounded.
    pub bytes: Option<u64>,
    /// Total distinct downstream readers of `item` (≥ 2 means fan-out).
    pub readers: usize,
    /// How many times `consumer` reads `item` (> 1 means re-read).
    pub reads: usize,
}

/// One classified edge of a [`FusionPlan`], with its evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionEdge {
    /// The classified hand-off.
    pub edge: DataEdge,
    /// Verdict.
    pub class: EdgeClass,
    /// One-line machine-stable reason (e.g. `"fits-budget"`, `"fan-out"`,
    /// `"host-boundary"`, `"exceeds-budget"`, `"unbounded-footprint"`,
    /// `"re-read"`, `"unordered-conflict"`).
    pub reason: &'static str,
    /// Human proof sentence (bound vs budget, reader counts, witness).
    pub detail: String,
    /// For fusable edges: the ordering path that serializes the pair.
    pub ordering_path: Option<Vec<String>>,
    /// For racy edges: the conflicting-access counterexample.
    pub race: Option<Race>,
}

/// The machine-checkable result of classifying one workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionPlan {
    /// Workflow name.
    pub workflow: String,
    /// BRAM stream budget in bytes the fusable verdicts were proved
    /// against (minimum over the platform's FPGA inventory).
    pub budget_bytes: u64,
    /// Every dataset edge, sorted by (item, producer, consumer).
    pub edges: Vec<FusionEdge>,
}

impl FusionPlan {
    /// Count of edges with the given class.
    pub fn count(&self, class: EdgeClass) -> usize {
        self.edges.iter().filter(|e| e.class == class).count()
    }

    /// The racy edges (errors).
    pub fn racy(&self) -> impl Iterator<Item = &FusionEdge> {
        self.edges.iter().filter(|e| e.class == EdgeClass::Racy)
    }

    /// Serializes the plan as a versioned JSON object. Deterministic:
    /// edges are pre-sorted and all fields render in a fixed order.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema_version\": {FUSION_SCHEMA_VERSION}, \"workflow\": \"{}\", \
             \"budget_bytes\": {}, \"edges\": [",
            escape(&self.workflow),
            self.budget_bytes
        );
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"item\": \"{}\", \"producer\": \"{}\", \"consumer\": \"{}\", \
                 \"class\": \"{}\", \"reason\": \"{}\", \"detail\": \"{}\", \"bytes\": {}, \
                 \"readers\": {}, \"ordering_path\": {}, \"race\": {}}}",
                escape(&e.edge.item),
                escape(&e.edge.producer.name),
                escape(&e.edge.consumer.name),
                e.class,
                e.reason,
                escape(&e.detail),
                e.edge.bytes.map_or("null".to_string(), |b| b.to_string()),
                e.edge.readers,
                match &e.ordering_path {
                    Some(path) => format!(
                        "[{}]",
                        path.iter()
                            .map(|t| format!("\"{}\"", escape(t)))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    None => "null".to_string(),
                },
                match &e.race {
                    Some(r) => format!(
                        "{{\"kind\": \"{}\", \"first\": \"{}\", \"second\": \"{}\", \
                         \"dataset\": \"{}\", \"evidence\": \"{}\"}}",
                        r.kind,
                        escape(&r.first),
                        escape(&r.second),
                        escape(&r.dataset),
                        escape(&r.evidence.to_string()),
                    ),
                    None => "null".to_string(),
                },
            ));
        }
        out.push_str("]}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shortest *directed* path from `from` to `to` through the ordering
/// edges, as the full node chain (BFS, neighbours in sorted order).
fn ordering_path(from: &str, to: &str, edges: &[(String, String)]) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    prev.insert(from, from);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut chain = vec![to.to_string()];
            let mut cur = to;
            while prev[cur] != cur {
                cur = prev[cur];
                chain.push(cur.to_string());
            }
            chain.reverse();
            return Some(chain);
        }
        for &next in adj.get(node).into_iter().flatten() {
            if let std::collections::btree_map::Entry::Vacant(e) = prev.entry(next) {
                e.insert(node);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Classifies every dataset edge of one workflow.
///
/// * `edges` — the dataset hand-offs (byte bounds already attached);
/// * `accesses` + `ordering` — the same records the race detector takes:
///   external-kind accesses per task and the task ordering relation;
/// * `budget_bytes` — the BRAM stream budget fusable edges must fit.
///
/// Rules, in order of precedence per edge:
/// 1. an unordered conflicting access involving the edge's dataset or an
///    endpoint's external kind → [`EdgeClass::Racy`] (counterexample
///    attached);
/// 2. a source/sink endpoint → must-spill (`host-boundary`);
/// 3. ≥ 2 downstream readers → must-spill (`fan-out`);
/// 4. the consumer reads the item more than once → must-spill (`re-read`);
/// 5. no byte bound → must-spill (`unbounded-footprint`);
/// 6. bound exceeds the budget → must-spill (`exceeds-budget`);
/// 7. otherwise → [`EdgeClass::Fusable`] with the serializing ordering
///    path as proof.
///
/// Deterministic: result edges are sorted by (item, producer, consumer).
pub fn classify(
    workflow: impl Into<String>,
    edges: Vec<DataEdge>,
    accesses: &[crate::race::TaskAccess],
    ordering: &[(String, String)],
    budget_bytes: u64,
) -> FusionPlan {
    let races = detect_races(accesses, ordering);
    let mut out: Vec<FusionEdge> = Vec::with_capacity(edges.len());
    for edge in edges {
        let race = races.iter().find(|r| {
            let touches = |end: &EdgeEnd| {
                (r.first == end.name || r.second == end.name)
                    || (!end.kind.is_empty() && r.dataset == end.kind)
            };
            (r.dataset == edge.item || touches(&edge.producer) || touches(&edge.consumer))
                && (r.dataset == edge.item
                    || r.dataset == edge.producer.kind
                    || r.dataset == edge.consumer.kind)
        });
        let fe = if let Some(race) = race {
            FusionEdge {
                detail: format!(
                    "{} conflict on \"{}\" between '{}' and '{}' ({})",
                    race.kind, race.dataset, race.first, race.second, race.evidence
                ),
                edge,
                class: EdgeClass::Racy,
                reason: "unordered-conflict",
                ordering_path: None,
                race: Some(race.clone()),
            }
        } else if edge.producer.role != EndpointRole::Task
            || edge.consumer.role != EndpointRole::Task
        {
            let (end, dir) = if edge.producer.role == EndpointRole::Task {
                (&edge.consumer, "to")
            } else {
                (&edge.producer, "from")
            };
            FusionEdge {
                detail: format!("crosses the host boundary {dir} {} \"{}\"", end.role, end.kind),
                edge: edge.clone(),
                class: EdgeClass::MustSpill,
                reason: "host-boundary",
                ordering_path: None,
                race: None,
            }
        } else if edge.readers >= 2 {
            FusionEdge {
                detail: format!(
                    "{} downstream readers need the full buffer materialized",
                    edge.readers
                ),
                edge,
                class: EdgeClass::MustSpill,
                reason: "fan-out",
                ordering_path: None,
                race: None,
            }
        } else if edge.reads > 1 {
            FusionEdge {
                detail: format!(
                    "consumer '{}' reads \"{}\" {} times; a stream is single-pass",
                    edge.consumer.name, edge.item, edge.reads
                ),
                edge,
                class: EdgeClass::MustSpill,
                reason: "re-read",
                ordering_path: None,
                race: None,
            }
        } else if edge.bytes.is_none() {
            FusionEdge {
                detail: "footprint is not statically bounded".to_string(),
                edge,
                class: EdgeClass::MustSpill,
                reason: "unbounded-footprint",
                ordering_path: None,
                race: None,
            }
        } else if edge.bytes.unwrap() > budget_bytes {
            FusionEdge {
                detail: format!(
                    "footprint {} B exceeds the {} B BRAM stream budget",
                    edge.bytes.unwrap(),
                    budget_bytes
                ),
                edge,
                class: EdgeClass::MustSpill,
                reason: "exceeds-budget",
                ordering_path: None,
                race: None,
            }
        } else {
            let path = ordering_path(&edge.producer.name, &edge.consumer.name, ordering);
            FusionEdge {
                detail: format!(
                    "single reader, footprint {} B <= {} B budget, serialized by {}",
                    edge.bytes.unwrap(),
                    budget_bytes,
                    path.as_ref().map_or("the direct edge".to_string(), |p| p.join(" -> ")),
                ),
                edge,
                class: EdgeClass::Fusable,
                reason: "fits-budget",
                ordering_path: path,
                race: None,
            }
        };
        out.push(fe);
    }
    out.sort_by(|x, y| {
        (&x.edge.item, &x.edge.producer.name, &x.edge.consumer.name).cmp(&(
            &y.edge.item,
            &y.edge.producer.name,
            &y.edge.consumer.name,
        ))
    });
    FusionPlan { workflow: workflow.into(), budget_bytes, edges: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::race::TaskAccess;

    fn edge(a: &str, b: &str) -> (String, String) {
        (a.to_string(), b.to_string())
    }

    fn task_edge(item: &str, from: &str, to: &str, bytes: Option<u64>) -> DataEdge {
        DataEdge {
            item: item.to_string(),
            producer: EdgeEnd::task(from),
            consumer: EdgeEnd::task(to),
            bytes,
            readers: 1,
            reads: 1,
        }
    }

    #[test]
    fn bounded_single_reader_edge_is_fusable() {
        let edges = vec![task_edge("field", "a", "b", Some(1024))];
        let plan = classify("wf", edges, &[], &[edge("a", "b")], 4096);
        assert_eq!(plan.edges[0].class, EdgeClass::Fusable);
        assert_eq!(plan.edges[0].reason, "fits-budget");
        assert_eq!(plan.edges[0].ordering_path, Some(vec!["a".to_string(), "b".to_string()]));
        assert!(plan.edges[0].detail.contains("1024 B <= 4096 B"));
    }

    #[test]
    fn budget_overflow_and_unbounded_edges_spill() {
        let edges =
            vec![task_edge("big", "a", "b", Some(10_000)), task_edge("wild", "b", "c", None)];
        let plan = classify("wf", edges, &[], &[edge("a", "b"), edge("b", "c")], 4096);
        let by_item: BTreeMap<_, _> =
            plan.edges.iter().map(|e| (e.edge.item.as_str(), e)).collect();
        assert_eq!(by_item["big"].class, EdgeClass::MustSpill);
        assert_eq!(by_item["big"].reason, "exceeds-budget");
        assert_eq!(by_item["wild"].reason, "unbounded-footprint");
    }

    #[test]
    fn fan_out_and_re_read_spill() {
        let mut fan = task_edge("shared", "a", "b", Some(8));
        fan.readers = 2;
        let mut rr = task_edge("twice", "a", "b", Some(8));
        rr.reads = 2;
        let plan = classify("wf", vec![fan, rr], &[], &[edge("a", "b")], 4096);
        assert_eq!(
            plan.edges.iter().map(|e| e.reason).collect::<Vec<_>>(),
            vec!["fan-out", "re-read"]
        );
        assert!(plan.edges.iter().all(|e| e.class == EdgeClass::MustSpill));
    }

    #[test]
    fn boundary_edges_spill_as_host_boundary() {
        let src = DataEdge {
            item: "obs".to_string(),
            producer: EdgeEnd::source("obs", "feed"),
            consumer: EdgeEnd::task("a"),
            bytes: Some(8),
            readers: 1,
            reads: 1,
        };
        let plan = classify("wf", vec![src], &[], &[], 4096);
        assert_eq!(plan.edges[0].reason, "host-boundary");
        assert!(plan.edges[0].detail.contains("from source \"feed\""));
    }

    #[test]
    fn contested_external_kind_marks_the_edge_racy() {
        // blur and sharpen both write the "frame-store" kind, unordered.
        let accesses = [
            TaskAccess::new("blur", &[], &["frame-store"]),
            TaskAccess::new("sharpen", &[], &["frame-store"]),
        ];
        let sink_edge = DataEdge {
            item: "out1".to_string(),
            producer: EdgeEnd::task("blur"),
            consumer: EdgeEnd::sink("out1", "frame-store"),
            bytes: Some(8),
            readers: 1,
            reads: 1,
        };
        let plan = classify("wf", vec![sink_edge], &accesses, &[], 4096);
        assert_eq!(plan.edges[0].class, EdgeClass::Racy);
        assert_eq!(plan.edges[0].reason, "unordered-conflict");
        let race = plan.edges[0].race.as_ref().unwrap();
        assert_eq!(race.dataset, "frame-store");
        assert!(plan.edges[0].detail.contains("no ordering path links them"));
        assert_eq!(plan.count(EdgeClass::Racy), 1);
    }

    #[test]
    fn json_is_versioned_and_deterministic() {
        let edges = vec![task_edge("z", "a", "b", Some(16)), task_edge("a", "a", "b", Some(16))];
        let plan = classify("wf", edges, &[], &[edge("a", "b")], 4096);
        let json = plan.to_json();
        assert!(json.starts_with("{\"schema_version\": 1, \"workflow\": \"wf\""));
        // Sorted by item: "a" before "z".
        assert!(json.find("\"item\": \"a\"").unwrap() < json.find("\"item\": \"z\"").unwrap());
        assert_eq!(json, plan.to_json());
    }
}
