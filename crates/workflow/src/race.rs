//! Static race detection over workflow task graphs.
//!
//! Two tasks *race* on a dataset when both touch it, at least one writes,
//! and neither task is ordered before the other by the dependency edges.
//! The detector is graph-only — it knows nothing about the IR — so the
//! `core` crate can bridge any workflow frontend (the `.ewf` DSL, the `df`
//! dialect) onto [`TaskAccess`] records and reuse the same analysis.

use std::collections::{BTreeMap, BTreeSet};

/// The datasets one task reads and writes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskAccess {
    /// Task name (unique within the workflow).
    pub task: String,
    /// Datasets the task consumes.
    pub reads: BTreeSet<String>,
    /// Datasets the task produces or mutates.
    pub writes: BTreeSet<String>,
}

impl TaskAccess {
    /// Builds an access record from slices of dataset names.
    pub fn new(task: impl Into<String>, reads: &[&str], writes: &[&str]) -> TaskAccess {
        TaskAccess {
            task: task.into(),
            reads: reads.iter().map(|s| s.to_string()).collect(),
            writes: writes.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// The kind of conflicting access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// One task reads while the other writes.
    ReadWrite,
    /// Both tasks write.
    WriteWrite,
}

impl std::fmt::Display for RaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RaceKind::ReadWrite => "read-write",
            RaceKind::WriteWrite => "write-write",
        })
    }
}

/// Why the dependency edges fail to order a conflicting pair: the witness
/// attached to every [`Race`] so the diagnostic can say not just *that* the
/// pair is unordered but what an ordering fix would look like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderingEvidence {
    /// The tasks live in disconnected components of the ordering graph —
    /// no chain of edges links them in any direction.
    NoPath,
    /// The shortest undirected chain of tasks linking the pair. Since
    /// neither task reaches the other directionally, at least one edge of
    /// this chain points the wrong way; re-orienting the chain is the
    /// minimal edit that would have serialized the pair.
    MisdirectedPath(Vec<String>),
}

impl std::fmt::Display for OrderingEvidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderingEvidence::NoPath => f.write_str("no ordering path links them"),
            OrderingEvidence::MisdirectedPath(chain) => {
                write!(f, "nearest ordering chain {} fails to order them", chain.join(" -> "))
            }
        }
    }
}

/// One detected conflict: two unordered tasks touching the same dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Conflict class.
    pub kind: RaceKind,
    /// First task (lexicographically smaller name).
    pub first: String,
    /// Second task.
    pub second: String,
    /// The contested dataset.
    pub dataset: String,
    /// Witness for the missing ordering: the chain that would have
    /// serialized the pair, or proof that none exists.
    pub evidence: OrderingEvidence,
}

/// Canonical (first, second) orientation for an unordered task pair — the
/// single place symmetric pairs are normalized before reporting or
/// deduplication.
pub fn canonical_pair<'a>(a: &'a str, b: &'a str) -> (&'a str, &'a str) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Shortest undirected chain between `from` and `to` through the ordering
/// edges (BFS; deterministic because neighbours are visited in sorted
/// order). Returns the full node chain including both endpoints.
fn undirected_path(from: &str, to: &str, edges: &[(String, String)]) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
        adj.entry(b.as_str()).or_default().insert(a.as_str());
    }
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    prev.insert(from, from);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut chain = vec![to.to_string()];
            let mut cur = to;
            while prev[cur] != cur {
                cur = prev[cur];
                chain.push(cur.to_string());
            }
            chain.reverse();
            return Some(chain);
        }
        for &next in adj.get(node).into_iter().flatten() {
            if let std::collections::btree_map::Entry::Vacant(e) = prev.entry(next) {
                e.insert(node);
                queue.push_back(next);
            }
        }
    }
    None
}

/// The [`OrderingEvidence`] for an unordered pair: the shortest undirected
/// chain through the ordering edges, or [`OrderingEvidence::NoPath`].
pub fn ordering_evidence(a: &str, b: &str, edges: &[(String, String)]) -> OrderingEvidence {
    match undirected_path(a, b, edges) {
        Some(chain) => OrderingEvidence::MisdirectedPath(chain),
        None => OrderingEvidence::NoPath,
    }
}

/// Transitive reachability over the `edges` (from → to) relation,
/// restricted to the named tasks.
fn reachability(tasks: &[&str], edges: &[(String, String)]) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges {
        direct.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut reach = BTreeMap::new();
    for &start in tasks {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            for &next in direct.get(node).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(next.to_string()) {
                    stack.push(next);
                }
            }
        }
        reach.insert(start.to_string(), seen);
    }
    reach
}

/// Finds every unordered read-write / write-write dataset conflict.
///
/// `edges` are ordering edges `(before, after)`; ordering is transitive, so
/// `a → b → c` orders `a` against `c`. Results are deterministic: sorted by
/// task pair, then dataset, with write-write conflicts reported over
/// read-write when both apply to a pair+dataset.
pub fn detect_races(accesses: &[TaskAccess], edges: &[(String, String)]) -> Vec<Race> {
    let names: Vec<&str> = accesses.iter().map(|a| a.task.as_str()).collect();
    let reach = reachability(&names, edges);
    let ordered = |a: &str, b: &str| {
        reach.get(a).is_some_and(|r| r.contains(b)) || reach.get(b).is_some_and(|r| r.contains(a))
    };
    let mut races = Vec::new();
    for (i, a) in accesses.iter().enumerate() {
        for b in &accesses[i + 1..] {
            if a.task == b.task || ordered(&a.task, &b.task) {
                continue;
            }
            let (first, second) =
                if canonical_pair(&a.task, &b.task).0 == a.task.as_str() { (a, b) } else { (b, a) };
            let evidence = ordering_evidence(&first.task, &second.task, edges);
            let mut push = |kind, dataset: &String| {
                races.push(Race {
                    kind,
                    first: first.task.clone(),
                    second: second.task.clone(),
                    dataset: dataset.clone(),
                    evidence: evidence.clone(),
                });
            };
            for ds in first.writes.intersection(&second.writes) {
                push(RaceKind::WriteWrite, ds);
            }
            for ds in first.writes.intersection(&second.reads) {
                if !second.writes.contains(ds) {
                    push(RaceKind::ReadWrite, ds);
                }
            }
            for ds in first.reads.intersection(&second.writes) {
                if !first.writes.contains(ds) {
                    push(RaceKind::ReadWrite, ds);
                }
            }
        }
    }
    races.sort_by(|x, y| (&x.first, &x.second, &x.dataset).cmp(&(&y.first, &y.second, &y.dataset)));
    races.dedup();
    races
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(a: &str, b: &str) -> (String, String) {
        (a.to_string(), b.to_string())
    }

    #[test]
    fn unordered_write_write_is_a_race() {
        let accesses = [
            TaskAccess::new("clean", &["raw"], &["table"]),
            TaskAccess::new("enrich", &["extra"], &["table"]),
        ];
        let races = detect_races(&accesses, &[]);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::WriteWrite);
        assert_eq!(races[0].dataset, "table");
        assert_eq!((races[0].first.as_str(), races[0].second.as_str()), ("clean", "enrich"));
    }

    #[test]
    fn unordered_read_write_is_a_race() {
        let accesses = [
            TaskAccess::new("write", &[], &["model"]),
            TaskAccess::new("read", &["model"], &["report"]),
        ];
        let races = detect_races(&accesses, &[]);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::ReadWrite);
        assert_eq!(races[0].dataset, "model");
    }

    #[test]
    fn ordering_edge_silences_the_race() {
        let accesses =
            [TaskAccess::new("write", &[], &["model"]), TaskAccess::new("read", &["model"], &[])];
        assert!(detect_races(&accesses, &[edge("write", "read")]).is_empty());
    }

    #[test]
    fn ordering_is_transitive() {
        let accesses = [TaskAccess::new("a", &[], &["d"]), TaskAccess::new("c", &["d"], &[])];
        let edges = [edge("a", "b"), edge("b", "c")];
        assert!(detect_races(&accesses, &edges).is_empty());
        // The reverse direction alone does not order a before c.
        let back = [edge("c", "a")];
        assert!(detect_races(&accesses, &back).is_empty(), "ordered either way is fine");
        assert!(!detect_races(&accesses, &[edge("b", "c")]).is_empty());
    }

    #[test]
    fn read_read_never_races() {
        let accesses = [TaskAccess::new("a", &["d"], &[]), TaskAccess::new("b", &["d"], &[])];
        assert!(detect_races(&accesses, &[]).is_empty());
    }

    #[test]
    fn disconnected_pair_carries_no_path_evidence() {
        let accesses = [
            TaskAccess::new("clean", &["raw"], &["table"]),
            TaskAccess::new("enrich", &["extra"], &["table"]),
        ];
        let races = detect_races(&accesses, &[]);
        assert_eq!(races[0].evidence, OrderingEvidence::NoPath);
        assert_eq!(races[0].evidence.to_string(), "no ordering path links them");
    }

    #[test]
    fn misdirected_chain_is_reported_as_the_witness() {
        // a → hub and b → hub: the pair is connected through hub but
        // neither reaches the other, so the undirected chain witnesses
        // the missing ordering.
        let accesses = [TaskAccess::new("a", &[], &["d"]), TaskAccess::new("b", &["d"], &[])];
        let edges = [edge("a", "hub"), edge("b", "hub")];
        let races = detect_races(&accesses, &edges);
        assert_eq!(races.len(), 1);
        assert_eq!(
            races[0].evidence,
            OrderingEvidence::MisdirectedPath(vec![
                "a".to_string(),
                "hub".to_string(),
                "b".to_string()
            ])
        );
        assert_eq!(
            races[0].evidence.to_string(),
            "nearest ordering chain a -> hub -> b fails to order them"
        );
    }

    #[test]
    fn canonical_pair_orders_lexicographically() {
        assert_eq!(canonical_pair("z", "a"), ("a", "z"));
        assert_eq!(canonical_pair("a", "z"), ("a", "z"));
    }

    #[test]
    fn results_are_sorted_and_deduplicated() {
        let accesses =
            [TaskAccess::new("z", &["s"], &["s", "t"]), TaskAccess::new("a", &["s"], &["s"])];
        let races = detect_races(&accesses, &[]);
        // One write-write on s (the mutual read+write pair collapses).
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::WriteWrite);
        assert_eq!(races[0].first, "a");
    }
}
