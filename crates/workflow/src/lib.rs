//! # everest-workflow — the workflow execution platform
//!
//! EVEREST "will feature a scalable platform based on HyperLoom for
//! describing and executing complex workflows in large scale distributed
//! environments" (paper III-A, ref \[10\]). This crate is that substrate:
//!
//! * [`graph`] — task DAGs with costs, output sizes and dependency edges,
//!   plus generators for the canonical wide/deep/diamond/random topologies;
//! * [`worker`] — heterogeneous worker descriptions (speed factor + link);
//! * [`scheduler`] — FIFO, min-load and HEFT schedulers;
//! * [`exec`] — a deterministic distributed-execution simulator producing
//!   makespans, schedules and utilization;
//! * [`parallel`] — a real multi-threaded executor that runs closures as
//!   tasks with dependency-ordered hand-off;
//! * [`pool`] — a scoped parallel-map over independent items with
//!   index-stable result order (the DSE engine's fan-out primitive);
//! * [`race`] — a static detector for read-write/write-write dataset
//!   conflicts between tasks with no ordering edge;
//! * [`fuse`] — the stream-fusion legality classifier: every dataset edge
//!   gets a fusable/must-spill/racy verdict with a machine-checkable proof
//!   ([`fuse::FusionPlan`]), the contract the P2P transport layer consumes.
//!
//! ## Example
//!
//! ```
//! use everest_workflow::graph::TaskGraph;
//! use everest_workflow::worker::Worker;
//! use everest_workflow::scheduler::Policy;
//! use everest_workflow::exec::simulate;
//!
//! let mut g = TaskGraph::new("demo");
//! let a = g.add_task("load", 100.0, 1_000, &[]);
//! let b = g.add_task("clean", 200.0, 1_000, &[a]);
//! let _ = g.add_task("predict", 400.0, 100, &[b]);
//! let workers = Worker::uniform_pool(4, 1.0);
//! let run = simulate(&g, &workers, Policy::Heft).unwrap();
//! assert!(run.makespan_us >= 700.0);
//! ```

pub mod error;
pub mod exec;
pub mod fuse;
pub mod graph;
pub mod parallel;
pub mod pool;
pub mod race;
pub mod scheduler;
pub mod worker;

pub use error::{WorkflowError, WorkflowResult};
pub use exec::{simulate, simulate_available, RunReport};
pub use fuse::{
    classify, DataEdge, EdgeClass, EdgeEnd, EndpointRole, FusionEdge, FusionPlan,
    FUSION_SCHEMA_VERSION,
};
pub use graph::{TaskGraph, TaskId, TaskSpec};
pub use race::{
    canonical_pair, detect_races, ordering_evidence, OrderingEvidence, Race, RaceKind, TaskAccess,
};
pub use scheduler::Policy;
pub use worker::Worker;
