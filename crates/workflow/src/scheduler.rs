//! Scheduling policies for mapping task graphs onto workers.

use crate::graph::{TaskGraph, TaskId};
use crate::worker::Worker;

/// Available scheduling policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Tasks in id order, workers round-robin — the naive baseline.
    Fifo,
    /// Tasks in id order, each to the worker with the earliest finish time
    /// for it (greedy, ignores communication).
    MinLoad,
    /// Heterogeneous Earliest Finish Time: tasks by upward rank, each to
    /// the worker minimizing its finish time *including* data-arrival
    /// times.
    Heft,
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Policy::Fifo => "fifo",
            Policy::MinLoad => "min-load",
            Policy::Heft => "heft",
        };
        f.write_str(s)
    }
}

/// The order in which a policy considers tasks (always a topological
/// order).
pub fn task_order(graph: &TaskGraph, policy: Policy) -> Vec<TaskId> {
    match policy {
        Policy::Fifo | Policy::MinLoad => (0..graph.len()).collect(),
        Policy::Heft => {
            let ranks = graph.upward_ranks();
            let mut order: Vec<TaskId> = (0..graph.len()).collect();
            // Higher rank first; stable by id. Upward rank strictly
            // decreases along edges, so this is topological.
            order.sort_by(|a, b| ranks[*b].total_cmp(&ranks[*a]).then(a.cmp(b)));
            order
        }
    }
}

/// State carried while assigning: per-worker availability and per-task
/// placement/finish, shared by every policy.
#[derive(Debug, Clone)]
pub struct AssignState {
    /// Worker availability times.
    pub avail: Vec<f64>,
    /// Chosen worker per task.
    pub assignment: Vec<usize>,
    /// Start time per task.
    pub start: Vec<f64>,
    /// Finish time per task.
    pub finish: Vec<f64>,
    rr_cursor: usize,
}

impl AssignState {
    /// Fresh state for `tasks` tasks and `workers` workers.
    pub fn new(tasks: usize, workers: usize) -> AssignState {
        AssignState {
            avail: vec![0.0; workers],
            assignment: vec![usize::MAX; tasks],
            start: vec![0.0; tasks],
            finish: vec![0.0; tasks],
            rr_cursor: 0,
        }
    }

    /// Earliest time every input of `task` is present on `worker`.
    pub fn data_ready(
        &self,
        graph: &TaskGraph,
        workers: &[Worker],
        task: TaskId,
        worker: usize,
    ) -> f64 {
        graph
            .task(task)
            .deps
            .iter()
            .map(|d| {
                let produced = self.finish[*d];
                if self.assignment[*d] == worker {
                    produced
                } else {
                    produced + workers[worker].transfer_time(graph.task(*d).output_bytes)
                }
            })
            .fold(0.0, f64::max)
    }

    /// Places `task` on `worker`, updating the timelines.
    pub fn place(&mut self, graph: &TaskGraph, workers: &[Worker], task: TaskId, worker: usize) {
        let ready = self.data_ready(graph, workers, task, worker);
        let start = ready.max(self.avail[worker]);
        let finish = start + workers[worker].exec_time(graph.task(task).cost_us);
        self.assignment[task] = worker;
        self.start[task] = start;
        self.finish[task] = finish;
        self.avail[worker] = finish;
    }

    /// Picks the worker for `task` according to `policy` (without placing).
    pub fn choose(
        &mut self,
        graph: &TaskGraph,
        workers: &[Worker],
        task: TaskId,
        policy: Policy,
    ) -> usize {
        match policy {
            Policy::Fifo => {
                let w = self.rr_cursor % workers.len();
                self.rr_cursor += 1;
                w
            }
            Policy::MinLoad => {
                // Earliest finish ignoring communication.
                (0..workers.len())
                    .min_by(|a, b| {
                        let fa = self.avail[*a] + workers[*a].exec_time(graph.task(task).cost_us);
                        let fb = self.avail[*b] + workers[*b].exec_time(graph.task(task).cost_us);
                        fa.total_cmp(&fb)
                    })
                    .expect("non-empty worker pool")
            }
            Policy::Heft => (0..workers.len())
                .min_by(|a, b| {
                    let eft = |w: usize| {
                        let ready = self.data_ready(graph, workers, task, w);
                        ready.max(self.avail[w]) + workers[w].exec_time(graph.task(task).cost_us)
                    };
                    eft(*a).total_cmp(&eft(*b))
                })
                .expect("non-empty worker pool"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heft_order_is_topological() {
        let g = TaskGraph::random(11, 5, 4, 100.0);
        let order = task_order(&g, Policy::Heft);
        let mut pos = vec![0usize; g.len()];
        for (i, t) in order.iter().enumerate() {
            pos[*t] = i;
        }
        for (id, t) in g.tasks().iter().enumerate() {
            for d in &t.deps {
                assert!(pos[*d] < pos[id], "dep {d} scheduled after {id}");
            }
        }
    }

    #[test]
    fn fifo_round_robins() {
        let g = TaskGraph::wide(4, 10.0, 0);
        let workers = Worker::uniform_pool(2, 1.0);
        let mut st = AssignState::new(g.len(), workers.len());
        let w0 = st.choose(&g, &workers, 0, Policy::Fifo);
        let w1 = st.choose(&g, &workers, 1, Policy::Fifo);
        let w2 = st.choose(&g, &workers, 2, Policy::Fifo);
        assert_eq!((w0, w1, w2), (0, 1, 0));
    }

    #[test]
    fn minload_prefers_faster_worker() {
        let g = TaskGraph::deep(1, 100.0, 0);
        let workers = Worker::heterogeneous_pool(1, 1);
        let mut st = AssignState::new(g.len(), workers.len());
        let w = st.choose(&g, &workers, 0, Policy::MinLoad);
        assert_eq!(w, 0, "fast (fpga) worker should win");
    }

    #[test]
    fn heft_accounts_for_data_locality() {
        // chain a -> b with a large intermediate: HEFT should co-locate.
        let mut g = TaskGraph::new("g");
        let a = g.add_task("a", 10.0, 10_000_000, &[]);
        let _b = g.add_task("b", 10.0, 0, &[a]);
        let workers = Worker::uniform_pool(2, 1.0);
        let mut st = AssignState::new(g.len(), workers.len());
        let wa = st.choose(&g, &workers, 0, Policy::Heft);
        st.place(&g, &workers, 0, wa);
        let wb = st.choose(&g, &workers, 1, Policy::Heft);
        assert_eq!(wa, wb, "HEFT should keep the big intermediate local");
    }

    #[test]
    fn place_respects_dependencies() {
        let mut g = TaskGraph::new("g");
        let a = g.add_task("a", 50.0, 100, &[]);
        let b = g.add_task("b", 50.0, 0, &[a]);
        let workers = Worker::uniform_pool(2, 1.0);
        let mut st = AssignState::new(g.len(), workers.len());
        st.place(&g, &workers, a, 0);
        st.place(&g, &workers, b, 1);
        assert!(st.start[b] >= st.finish[a], "consumer waits for producer + transfer");
    }
}
