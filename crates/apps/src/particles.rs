//! The **particle** data-centric abstraction (paper III-B: "Tensors and
//! particles are two examples of EVEREST data-centric programming
//! abstractions"; the variants example is "layouts of particles as
//! array-of-structures or structure-of-arrays").
//!
//! This module provides both layouts behind one trait, a cell-list
//! neighbour search, a softened short-range force kernel and a leapfrog
//! integrator — enough to *measure* the layout effect the variants cost
//! model predicts (see `benches/particles.rs`).

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A 3-vector.
pub type Vec3 = [f64; 3];

fn add(a: Vec3, b: Vec3) -> Vec3 {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

fn scale(a: Vec3, s: f64) -> Vec3 {
    [a[0] * s, a[1] * s, a[2] * s]
}

fn sub(a: Vec3, b: Vec3) -> Vec3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn norm2(a: Vec3) -> f64 {
    a[0] * a[0] + a[1] * a[1] + a[2] * a[2]
}

/// Storage-layout-independent particle access.
pub trait ParticleStorage {
    /// Number of particles.
    fn len(&self) -> usize;
    /// `true` when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Position of particle `i`.
    fn position(&self, i: usize) -> Vec3;
    /// Velocity of particle `i`.
    fn velocity(&self, i: usize) -> Vec3;
    /// Mass of particle `i`.
    fn mass(&self, i: usize) -> f64;
    /// Overwrites position `i`.
    fn set_position(&mut self, i: usize, p: Vec3);
    /// Overwrites velocity `i`.
    fn set_velocity(&mut self, i: usize, v: Vec3);
}

/// Array-of-structures layout: one record per particle (locality per
/// particle; good for random access patterns).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AosParticles {
    records: Vec<Particle>,
}

/// One AoS record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Position.
    pub position: Vec3,
    /// Velocity.
    pub velocity: Vec3,
    /// Mass.
    pub mass: f64,
}

/// Structure-of-arrays layout: one array per component (streams well;
/// good for vectorized sweeps — the layout the SoA variant selects).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoaParticles {
    px: Vec<f64>,
    py: Vec<f64>,
    pz: Vec<f64>,
    vx: Vec<f64>,
    vy: Vec<f64>,
    vz: Vec<f64>,
    mass: Vec<f64>,
}

impl ParticleStorage for AosParticles {
    fn len(&self) -> usize {
        self.records.len()
    }

    fn position(&self, i: usize) -> Vec3 {
        self.records[i].position
    }

    fn velocity(&self, i: usize) -> Vec3 {
        self.records[i].velocity
    }

    fn mass(&self, i: usize) -> f64 {
        self.records[i].mass
    }

    fn set_position(&mut self, i: usize, p: Vec3) {
        self.records[i].position = p;
    }

    fn set_velocity(&mut self, i: usize, v: Vec3) {
        self.records[i].velocity = v;
    }
}

impl ParticleStorage for SoaParticles {
    fn len(&self) -> usize {
        self.px.len()
    }

    fn position(&self, i: usize) -> Vec3 {
        [self.px[i], self.py[i], self.pz[i]]
    }

    fn velocity(&self, i: usize) -> Vec3 {
        [self.vx[i], self.vy[i], self.vz[i]]
    }

    fn mass(&self, i: usize) -> f64 {
        self.mass[i]
    }

    fn set_position(&mut self, i: usize, p: Vec3) {
        self.px[i] = p[0];
        self.py[i] = p[1];
        self.pz[i] = p[2];
    }

    fn set_velocity(&mut self, i: usize, v: Vec3) {
        self.vx[i] = v[0];
        self.vy[i] = v[1];
        self.vz[i] = v[2];
    }
}

/// Seeds `n` particles uniformly in a `box_len`³ box with small random
/// velocities, identically for both layouts.
pub fn seed_particles(seed: u64, n: usize, box_len: f64) -> (AosParticles, SoaParticles) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut aos = AosParticles::default();
    let mut soa = SoaParticles::default();
    for _ in 0..n {
        let p =
            [rng.gen_range(0.0..box_len), rng.gen_range(0.0..box_len), rng.gen_range(0.0..box_len)];
        let v = [rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1)];
        let mass = rng.gen_range(0.5..2.0);
        aos.records.push(Particle { position: p, velocity: v, mass });
        soa.px.push(p[0]);
        soa.py.push(p[1]);
        soa.pz.push(p[2]);
        soa.vx.push(v[0]);
        soa.vy.push(v[1]);
        soa.vz.push(v[2]);
        soa.mass.push(mass);
    }
    (aos, soa)
}

/// A uniform-grid cell list for `cutoff`-range neighbour queries.
#[derive(Debug, Clone)]
pub struct CellList {
    cells: Vec<Vec<usize>>,
    per_edge: usize,
    cell_len: f64,
}

impl CellList {
    /// Builds a cell list over `storage` in a `box_len`³ box.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` or `box_len` is not positive.
    pub fn build(storage: &dyn ParticleStorage, box_len: f64, cutoff: f64) -> CellList {
        assert!(cutoff > 0.0 && box_len > 0.0, "positive dimensions required");
        let per_edge = ((box_len / cutoff).floor() as usize).max(1);
        let cell_len = box_len / per_edge as f64;
        let mut cells = vec![Vec::new(); per_edge * per_edge * per_edge];
        for i in 0..storage.len() {
            let p = storage.position(i);
            let idx = Self::cell_index_for(p, per_edge, cell_len);
            cells[idx].push(i);
        }
        CellList { cells, per_edge, cell_len }
    }

    fn cell_index_for(p: Vec3, per_edge: usize, cell_len: f64) -> usize {
        let clamp = |x: f64| ((x / cell_len) as usize).min(per_edge - 1);
        (clamp(p[2]) * per_edge + clamp(p[1])) * per_edge + clamp(p[0])
    }

    /// All particles within `cutoff` of particle `i` (excluding `i`).
    pub fn neighbours(&self, storage: &dyn ParticleStorage, i: usize, cutoff: f64) -> Vec<usize> {
        let p = storage.position(i);
        let c = |x: f64| ((x / self.cell_len) as isize).clamp(0, self.per_edge as isize - 1);
        let (cx, cy, cz) = (c(p[0]), c(p[1]), c(p[2]));
        let mut out = Vec::new();
        let r2 = cutoff * cutoff;
        for dz in -1..=1isize {
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    let (nx, ny, nz) = (cx + dx, cy + dy, cz + dz);
                    if nx < 0
                        || ny < 0
                        || nz < 0
                        || nx >= self.per_edge as isize
                        || ny >= self.per_edge as isize
                        || nz >= self.per_edge as isize
                    {
                        continue;
                    }
                    let cell = &self.cells[((nz as usize * self.per_edge) + ny as usize)
                        * self.per_edge
                        + nx as usize];
                    for &j in cell {
                        if j != i && norm2(sub(storage.position(j), p)) <= r2 {
                            out.push(j);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Computes softened short-range pair forces (repulsive inverse-square
/// with softening ε) using the cell list; returns one force vector per
/// particle. Newton's third law is applied pairwise, so total momentum
/// change is zero.
pub fn compute_forces(
    storage: &dyn ParticleStorage,
    cells: &CellList,
    cutoff: f64,
    strength: f64,
) -> Vec<Vec3> {
    let n = storage.len();
    let mut forces = vec![[0.0; 3]; n];
    let eps2 = 1e-4;
    for i in 0..n {
        for j in cells.neighbours(storage, i, cutoff) {
            if j <= i {
                continue; // each pair once
            }
            let d = sub(storage.position(i), storage.position(j));
            let r2 = norm2(d) + eps2;
            let f = strength * storage.mass(i) * storage.mass(j) / (r2 * r2.sqrt());
            let fv = scale(d, f);
            forces[i] = add(forces[i], fv);
            forces[j] = sub(forces[j], fv);
        }
    }
    forces
}

/// One leapfrog step: v += f/m · dt, x += v · dt. Positions are clamped to
/// the box (reflecting walls).
pub fn step(storage: &mut dyn ParticleStorage, forces: &[Vec3], dt: f64, box_len: f64) {
    for i in 0..storage.len() {
        let m = storage.mass(i);
        let mut v = add(storage.velocity(i), scale(forces[i], dt / m));
        let mut p = add(storage.position(i), scale(v, dt));
        for d in 0..3 {
            if p[d] < 0.0 {
                p[d] = -p[d];
                v[d] = -v[d];
            }
            if p[d] > box_len {
                p[d] = 2.0 * box_len - p[d];
                v[d] = -v[d];
            }
            p[d] = p[d].clamp(0.0, box_len);
        }
        storage.set_velocity(i, v);
        storage.set_position(i, p);
    }
}

/// Total momentum (Σ m·v) — conserved by pair forces away from walls.
pub fn total_momentum(storage: &dyn ParticleStorage) -> Vec3 {
    let mut p = [0.0; 3];
    for i in 0..storage.len() {
        p = add(p, scale(storage.velocity(i), storage.mass(i)));
    }
    p
}

/// Total kinetic energy (½ Σ m·v²) — the streaming sweep the SoA layout
/// accelerates.
pub fn kinetic_energy(storage: &dyn ParticleStorage) -> f64 {
    (0..storage.len()).map(|i| 0.5 * storage.mass(i) * norm2(storage.velocity(i))).sum()
}

/// Runs `steps` simulation steps and returns the final kinetic energy.
pub fn simulate(
    storage: &mut dyn ParticleStorage,
    box_len: f64,
    cutoff: f64,
    dt: f64,
    steps: usize,
) -> f64 {
    for _ in 0..steps {
        let cells = CellList::build(storage, box_len, cutoff);
        let forces = compute_forces(storage, &cells, cutoff, 0.01);
        step(storage, &forces, dt, box_len);
    }
    kinetic_energy(storage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_agree_exactly() {
        let (mut aos, mut soa) = seed_particles(1, 200, 10.0);
        let ea = simulate(&mut aos, 10.0, 1.5, 0.01, 5);
        let es = simulate(&mut soa, 10.0, 1.5, 0.01, 5);
        assert_eq!(ea, es, "AoS and SoA must be bit-identical");
        for i in 0..aos.len() {
            assert_eq!(aos.position(i), soa.position(i));
        }
    }

    #[test]
    fn cell_list_matches_brute_force() {
        let (aos, _) = seed_particles(2, 150, 8.0);
        let cutoff = 2.0;
        let cells = CellList::build(&aos, 8.0, cutoff);
        for i in (0..aos.len()).step_by(17) {
            let fast = cells.neighbours(&aos, i, cutoff);
            let mut brute: Vec<usize> = (0..aos.len())
                .filter(|j| {
                    *j != i && norm2(sub(aos.position(*j), aos.position(i))) <= cutoff * cutoff
                })
                .collect();
            brute.sort_unstable();
            assert_eq!(fast, brute, "particle {i}");
        }
    }

    #[test]
    fn momentum_conserved_by_pair_forces() {
        let (mut aos, _) = seed_particles(3, 100, 50.0); // big box: no wall hits
        let before = total_momentum(&aos);
        let cells = CellList::build(&aos, 50.0, 3.0);
        let forces = compute_forces(&aos, &cells, 3.0, 0.05);
        step(&mut aos, &forces, 0.01, 50.0);
        let after = total_momentum(&aos);
        for d in 0..3 {
            assert!((before[d] - after[d]).abs() < 1e-9, "axis {d}");
        }
    }

    #[test]
    fn forces_are_repulsive() {
        let mut aos = AosParticles::default();
        aos.records.push(Particle { position: [1.0, 0.0, 0.0], velocity: [0.0; 3], mass: 1.0 });
        aos.records.push(Particle { position: [1.4, 0.0, 0.0], velocity: [0.0; 3], mass: 1.0 });
        let cells = CellList::build(&aos, 4.0, 1.0);
        let f = compute_forces(&aos, &cells, 1.0, 1.0);
        assert!(f[0][0] < 0.0, "left particle pushed left");
        assert!(f[1][0] > 0.0, "right particle pushed right");
        assert!((f[0][0] + f[1][0]).abs() < 1e-12, "Newton's third law");
    }

    #[test]
    fn particles_stay_in_the_box() {
        let (mut aos, _) = seed_particles(4, 300, 5.0);
        simulate(&mut aos, 5.0, 1.0, 0.05, 20);
        for i in 0..aos.len() {
            let p = aos.position(i);
            for d in 0..3 {
                assert!((0.0..=5.0).contains(&p[d]), "particle {i} escaped: {p:?}");
            }
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let (a1, _) = seed_particles(9, 50, 10.0);
        let (a2, _) = seed_particles(9, 50, 10.0);
        assert_eq!(a1, a2);
    }

    #[test]
    fn kinetic_energy_positive_and_layout_independent() {
        let (aos, soa) = seed_particles(5, 500, 10.0);
        assert!(kinetic_energy(&aos) > 0.0);
        assert_eq!(kinetic_energy(&aos), kinetic_energy(&soa));
    }
}
