//! "Route calculation as a service" (paper §VI-C): a high-throughput
//! serving engine for probabilistic time-dependent routing.
//!
//! The scalar [`ptdr_travel_time`](super::ptdr_travel_time) kernel
//! re-derives per-edge data on every Monte-Carlo sample, allocates a
//! fresh sample vector per call, and sorts the whole vector to read one
//! percentile. This module restructures that kernel the way the EVEREST
//! design flow restructures kernels before offloading them:
//!
//! * [`PtdrEngine`] — route-local **SoA tables** (`length_km`,
//!   `clamp_hi`, flattened per-hour `mean`/`std`) prefetched once per
//!   route, a reusable scratch buffer (zero heap allocations per query
//!   once warm), and **block-wise sampling** over a lane-count-
//!   parameterized inner loop mirroring the 32-lane FPGA sampling engine
//!   modeled in E11. Normals come from a 128-layer ziggurat sampler (one
//!   RNG word and one multiply on the ~98% path, no transcendentals),
//!   and the result summary uses streaming Welford mean/variance plus a
//!   `select_nth_unstable` 95th percentile instead of a full sort.
//! * [`PtdrService`] — the batch front-end: fans a slice of
//!   [`RouteQuery`]s across [`everest_workflow::pool::parallel_map`]
//!   and answers repeated questions from an LRU response cache keyed by
//!   (route hash, departure bin, sample count). Departure times are
//!   quantized to 15-minute bins and the per-query RNG seed is derived
//!   from the cache key, so a cached answer is bit-identical to a
//!   recomputed one and `jobs = N` reproduces `jobs = 1` exactly.
//!   Mirroring the DSE engine, `jobs = 1` is the sequential *reference*
//!   path (no cache consulted); `jobs >= 2` enables the pooled, cached
//!   engine — outputs are identical either way.
//!
//! Telemetry: `ptdr.queries`, `ptdr.cache.hit`, `ptdr.cache.miss`
//! counters, and a `ptdr.batch` span per batch.

use super::{RoadNetwork, SpeedProfiles, TravelTimeStats, HOUR_BINS};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Slowest speed a sampled segment can fall to, km/h (matches the
/// reference kernel's clamp).
pub const MIN_SPEED_KMH: f64 = 3.0;

/// Lane count of the default engine, matching the "32-lane sampling
/// engine" modeled for the E11 accelerator estimate.
pub const DEFAULT_LANES: usize = 32;

/// Departure-time quantization of the response cache: 15-minute bins.
pub const DEPARTURE_BINS_PER_HOUR: usize = 4;

/// Total departure bins per day.
pub const DEPARTURE_BINS: usize = HOUR_BINS * DEPARTURE_BINS_PER_HOUR;

// ---------------------------------------------------------------------------
// Reference kernel
// ---------------------------------------------------------------------------

/// The pre-service scalar PTDR kernel, kept verbatim as the validation
/// and benchmark baseline: per-sample edge walk with Box-Muller normals,
/// a fresh `Vec` per call, and a full sort for the 95th percentile.
pub fn ptdr_travel_time_reference(
    network: &RoadNetwork,
    profiles: &SpeedProfiles,
    route: &[usize],
    depart_hour: f64,
    samples: usize,
    seed: u64,
) -> TravelTimeStats {
    assert!(samples > 0, "need at least one sample");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut t = 0.0f64;
        for &ei in route {
            let hour = ((depart_hour + t) as usize) % HOUR_BINS;
            let mean = profiles.mean_speed(ei, hour);
            let std = profiles.std_speed(ei, hour);
            // Box-Muller normal sample, truncated to plausible speeds.
            let u1: f64 = rng.gen_range(1e-9..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let speed =
                (mean + std * z).clamp(MIN_SPEED_KMH, network.edges[ei].free_speed_kmh * 1.1);
            t += network.edges[ei].length_km / speed;
        }
        times.push(t);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let n = times.len() as f64;
    let mean = times.iter().sum::<f64>() / n;
    let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n;
    let p95 = times[((0.95 * (times.len() - 1) as f64).round() as usize).min(times.len() - 1)];
    TravelTimeStats { mean_h: mean, p95_h: p95, std_h: var.sqrt() }
}

// ---------------------------------------------------------------------------
// Streaming summary
// ---------------------------------------------------------------------------

/// Summarizes a sample buffer without sorting it: Welford's streaming
/// mean/variance in one pass, then the 95th percentile via
/// `select_nth_unstable` (average O(n), versus O(n log n) for the sorted
/// reference). Produces the same percentile element the sorted reference
/// indexes at `round(0.95 * (n - 1))`.
///
/// The buffer is reordered in place by the selection.
///
/// # Panics
///
/// Panics on an empty buffer.
pub fn summarize(times: &mut [f64]) -> TravelTimeStats {
    assert!(!times.is_empty(), "need at least one sample");
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    for (i, &t) in times.iter().enumerate() {
        let delta = t - mean;
        mean += delta / (i + 1) as f64;
        m2 += delta * (t - mean);
    }
    let var = (m2 / times.len() as f64).max(0.0);
    let idx = ((0.95 * (times.len() - 1) as f64).round() as usize).min(times.len() - 1);
    let (_, p95, _) = times.select_nth_unstable_by(idx, |a, b| a.total_cmp(b));
    TravelTimeStats { mean_h: mean, p95_h: *p95, std_h: var.sqrt() }
}

// ---------------------------------------------------------------------------
// Batched SoA Monte-Carlo engine
// ---------------------------------------------------------------------------

/// Ziggurat tables for the standard normal (Marsaglia & Tsang, 128
/// layers): `x[i]` are the layer widths (descending, `x[1]` = the tail
/// cutoff `R`), `f[i] = exp(-x[i]²/2)` the layer heights. Built once per
/// process; stored inline in a `OnceLock`, so initialization performs no
/// heap allocation.
struct ZigTables {
    x: [f64; 129],
    f: [f64; 129],
}

/// Tail cutoff and per-layer area of the 128-layer normal ziggurat.
const ZIG_R: f64 = 3.442_619_855_899;
const ZIG_V: f64 = 9.912_563_035_262_17e-3;

fn zig_tables() -> &'static ZigTables {
    static TABLES: std::sync::OnceLock<ZigTables> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut x = [0.0f64; 129];
        let mut f = [0.0f64; 129];
        // Layer 0 is the base strip: a pseudo-rectangle of width V/f(R)
        // whose overhang past R is the tail. Each further layer satisfies
        // x_i * (f(x_{i+1}) - f(x_i)) = V.
        x[0] = ZIG_V / (-0.5 * ZIG_R * ZIG_R).exp();
        x[1] = ZIG_R;
        for i in 2..128 {
            let prev = x[i - 1];
            x[i] = (-2.0 * (ZIG_V / prev + (-0.5 * prev * prev).exp()).ln()).sqrt();
        }
        x[128] = 0.0;
        for i in 0..129 {
            f[i] = (-0.5 * x[i] * x[i]).exp();
        }
        ZigTables { x, f }
    })
}

/// One standard normal by the ziggurat method: the ~98% common path
/// spends a single RNG word, one table compare and one multiply — no
/// `ln`/`sqrt`/`cos` (the Box-Muller reference pays one of each per
/// draw). One u64 supplies the 7-bit layer index, the sign bit, and the
/// 53-bit mantissa.
#[inline]
fn normal(rng: &mut StdRng) -> f64 {
    let tables = zig_tables();
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0x7F) as usize;
        let sign = if bits & 0x80 != 0 { -1.0f64 } else { 1.0 };
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let x = u * tables.x[i];
        if x < tables.x[i + 1] {
            return sign * x;
        }
        if i == 0 {
            // Tail past R: Marsaglia's exponential-rejection sampler.
            loop {
                let u1 = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
                let u2 = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
                let xt = -u1.ln() / ZIG_R;
                let yt = -u2.ln();
                if yt + yt > xt * xt {
                    return sign * (ZIG_R + xt);
                }
            }
        }
        // Wedge between the layer's rectangle and the density.
        let y = tables.f[i]
            + (tables.f[i + 1] - tables.f[i])
                * ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64);
        if y < (-0.5 * x * x).exp() {
            return sign * x;
        }
    }
}

/// Hour bin for an absolute clock value (hours since midnight).
#[inline]
fn hour_bin(clock_h: f64) -> usize {
    (clock_h as usize) % HOUR_BINS
}

/// The restructured PTDR Monte-Carlo kernel.
///
/// Holds route-local SoA tables and a scratch sample buffer, both reused
/// across queries: estimating repeatedly over routes of bounded length
/// and sample counts performs **zero heap allocations** once the
/// high-water capacity is reached (enforced by the
/// `ptdr_no_alloc` integration test).
///
/// `LANES` parameterizes the block width of the inner sampling loop:
/// each block advances `LANES` Monte-Carlo walkers through the route
/// edge-by-edge, so per-edge table rows are loaded once per block
/// instead of once per sample. The default (32) matches the sampling
/// engine modeled in E11. Note that the lane count shapes the RNG draw
/// order, so estimates are reproducible per `(seed, LANES)` pair.
#[derive(Debug, Default)]
pub struct PtdrEngine<const LANES: usize = 32> {
    /// Edge ids of the currently prepared route (`prepare` fast-path).
    edges: Vec<usize>,
    /// Per route position: segment length, km.
    length_km: Vec<f64>,
    /// Per route position: upper speed clamp (1.1 × free-flow), km/h.
    clamp_hi: Vec<f64>,
    /// Per route position × hour: mean speed, km/h (row-major rows of
    /// [`HOUR_BINS`]).
    mean: Vec<f64>,
    /// Per route position × hour: speed spread, km/h.
    std: Vec<f64>,
    /// Reusable sample buffer.
    times: Vec<f64>,
}

impl<const LANES: usize> PtdrEngine<LANES> {
    /// An empty engine; tables are built on first use.
    pub fn new() -> PtdrEngine<LANES> {
        assert!(LANES >= 1, "need at least one lane");
        PtdrEngine {
            edges: Vec::new(),
            length_km: Vec::new(),
            clamp_hi: Vec::new(),
            mean: Vec::new(),
            std: Vec::new(),
            times: Vec::new(),
        }
    }

    /// Prefetches the SoA tables for `route`, reusing existing capacity.
    /// A repeated route is detected by comparison and skipped entirely.
    fn prepare(&mut self, network: &RoadNetwork, profiles: &SpeedProfiles, route: &[usize]) {
        if self.edges == route {
            return;
        }
        self.edges.clear();
        self.edges.extend_from_slice(route);
        self.length_km.clear();
        self.clamp_hi.clear();
        self.mean.clear();
        self.std.clear();
        for &ei in route {
            let e = &network.edges[ei];
            self.length_km.push(e.length_km);
            self.clamp_hi.push(e.free_speed_kmh * 1.1);
            for h in 0..HOUR_BINS {
                self.mean.push(profiles.mean_speed(ei, h));
                self.std.push(profiles.std_speed(ei, h));
            }
        }
    }

    /// Estimates the travel-time distribution of `route` departing at
    /// `depart_hour`, from `samples` Monte-Carlo walks seeded with
    /// `seed`. Statistically equivalent to
    /// [`ptdr_travel_time_reference`] (same speed distributions, clamps
    /// and clock advance) but not draw-for-draw identical to it.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is zero or `route` names an edge outside
    /// `network`.
    pub fn estimate(
        &mut self,
        network: &RoadNetwork,
        profiles: &SpeedProfiles,
        route: &[usize],
        depart_hour: f64,
        samples: usize,
        seed: u64,
    ) -> TravelTimeStats {
        assert!(samples > 0, "need at least one sample");
        self.prepare(network, profiles, route);
        let mut rng = StdRng::seed_from_u64(seed);
        self.times.clear();
        self.times.reserve(samples);
        let route_len = self.edges.len();
        let mut t = [0.0f64; LANES];
        let mut done = 0usize;
        while done < samples {
            let width = LANES.min(samples - done);
            t[..width].fill(0.0);
            for e in 0..route_len {
                let len = self.length_km[e];
                let hi = self.clamp_hi[e];
                let mean = &self.mean[e * HOUR_BINS..(e + 1) * HOUR_BINS];
                let std = &self.std[e * HOUR_BINS..(e + 1) * HOUR_BINS];
                for lane_t in t[..width].iter_mut() {
                    let z = normal(&mut rng);
                    let h = hour_bin(depart_hour + *lane_t);
                    let v = (mean[h] + std[h] * z).clamp(MIN_SPEED_KMH, hi);
                    *lane_t += len / v;
                }
            }
            self.times.extend_from_slice(&t[..width]);
            done += width;
        }
        summarize(&mut self.times)
    }
}

// ---------------------------------------------------------------------------
// Response cache
// ---------------------------------------------------------------------------

/// Cache identity of a PTDR query: structural route hash, quantized
/// departure bin, and sample count. Queries with equal keys receive
/// bit-identical answers (the per-query seed is derived from the key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Hash of the route's edge sequence.
    pub route_hash: u64,
    /// Departure bin, `0..DEPARTURE_BINS` (15-minute resolution).
    pub departure_bin: u32,
    /// Monte-Carlo sample count.
    pub samples: u64,
}

/// Sentinel slot index for the intrusive recency list.
const NIL: usize = usize::MAX;

/// One slab slot of the [`LruCache`]: the entry plus its intrusive
/// doubly-linked recency list neighbours.
#[derive(Debug)]
struct LruSlot {
    key: CacheKey,
    stats: TravelTimeStats,
    inserted: Instant,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map of finished responses:
/// a hash map from key to slot in a slab threaded with an intrusive
/// doubly-linked recency list. Lookups, inserts, *and eviction* are
/// O(1) — the previous stamp-scan eviction was O(capacity) per insert,
/// which dominated the serving tier's warm path whenever the small
/// per-shard edge caches churned. Shared with the sharded serving tier
/// ([`super::serve`]), which keeps one per shard per cache level.
#[derive(Debug)]
pub(crate) struct LruCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, usize>,
    slots: Vec<LruSlot>,
    /// Most-recently-used slot, `NIL` when empty.
    head: usize,
    /// Least-recently-used slot (the eviction victim), `NIL` when empty.
    tail: usize,
}

impl LruCache {
    pub(crate) fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Detaches `at` from the recency list.
    fn unlink(&mut self, at: usize) {
        let (prev, next) = (self.slots[at].prev, self.slots[at].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Attaches `at` at the most-recently-used end.
    fn link_front(&mut self, at: usize) {
        self.slots[at].prev = NIL;
        self.slots[at].next = self.head;
        match self.head {
            NIL => self.tail = at,
            h => self.slots[h].prev = at,
        }
        self.head = at;
    }

    /// Returns the cached stats and the entry's insertion stamp (the
    /// caller derives the age only when it samples — a clock read on
    /// every hit would tax the warm path).
    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<(TravelTimeStats, Instant)> {
        self.tick += 1;
        let at = *self.map.get(key)?;
        if self.head != at {
            self.unlink(at);
            self.link_front(at);
        }
        Some((self.slots[at].stats, self.slots[at].inserted))
    }

    pub(crate) fn insert(&mut self, key: CacheKey, stats: TravelTimeStats) {
        self.tick += 1;
        if let Some(&at) = self.map.get(&key) {
            self.slots[at].stats = stats;
            self.slots[at].inserted = Instant::now();
            if self.head != at {
                self.unlink(at);
                self.link_front(at);
            }
            return;
        }
        let at = if self.slots.len() < self.capacity {
            self.slots.push(LruSlot { key, stats, inserted: Instant::now(), prev: NIL, next: NIL });
            self.slots.len() - 1
        } else {
            // Full: reuse the least-recently-used slot in place.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.slots[victim] =
                LruSlot { key, stats, inserted: Instant::now(), prev: NIL, next: NIL };
            victim
        };
        self.map.insert(key, at);
        self.link_front(at);
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

/// The cache identity of a query: structural route hash, quantized
/// departure bin, sample count. Two queries with equal keys receive
/// bit-identical answers — the per-query seed is a pure function of
/// the key (see [`derive_seed`]).
pub fn cache_key(route: &[usize], depart_hour: f64, samples: usize) -> CacheKey {
    let mut hasher = DefaultHasher::new();
    route.hash(&mut hasher);
    let bin = (depart_hour * DEPARTURE_BINS_PER_HOUR as f64).floor();
    let bin = if bin.is_finite() && bin >= 0.0 { bin as usize % DEPARTURE_BINS } else { 0 };
    CacheKey { route_hash: hasher.finish(), departure_bin: bin as u32, samples: samples as u64 }
}

/// Deterministic per-query seed: a function of the cache key and the
/// serving seed only, so any two queries with the same key — and any
/// worker or shard interleaving — produce bit-identical statistics.
pub fn derive_seed(base_seed: u64, key: &CacheKey) -> u64 {
    let mut hasher = DefaultHasher::new();
    base_seed.hash(&mut hasher);
    key.hash(&mut hasher);
    hasher.finish()
}

/// The canonical departure hour of a key's bin (its center) — the hour
/// every query in the bin is actually estimated at.
pub fn bin_center_hour(key: &CacheKey) -> f64 {
    (key.departure_bin as f64 + 0.5) / DEPARTURE_BINS_PER_HOUR as f64
}

// ---------------------------------------------------------------------------
// The serving front-end
// ---------------------------------------------------------------------------

/// One routing request: an edge route (as produced by
/// [`shortest_route`](super::shortest_route)), a departure time, and the
/// Monte-Carlo budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteQuery {
    /// Edge indices from origin to destination.
    pub route: Vec<usize>,
    /// Departure time, hours since midnight. Quantized to
    /// [`DEPARTURE_BINS_PER_HOUR`] bins for caching and seeding, so two
    /// departures inside the same 15-minute bin return the same answer.
    pub depart_hour: f64,
    /// Monte-Carlo samples to draw.
    pub samples: usize,
}

thread_local! {
    /// One engine per serving thread, so table/scratch buffers amortize
    /// across the queries a worker handles.
    static ENGINE: RefCell<PtdrEngine> = RefCell::new(PtdrEngine::new());
}

/// The PTDR serving engine: owns the network and learned speed profiles,
/// fans batches across a worker pool, and caches finished responses.
pub struct PtdrService {
    network: RoadNetwork,
    profiles: SpeedProfiles,
    jobs: usize,
    seed: u64,
    cache: Mutex<LruCache>,
}

impl PtdrService {
    /// A service over `network`/`profiles` with `jobs = 1` (the
    /// sequential reference path) and a 4096-entry response cache.
    pub fn new(network: RoadNetwork, profiles: SpeedProfiles) -> PtdrService {
        PtdrService { network, profiles, jobs: 1, seed: 0, cache: Mutex::new(LruCache::new(4096)) }
    }

    /// Sets the worker count: `1` serves batches sequentially without
    /// consulting the response cache (the bit-identical reference), `2+`
    /// fans queries across the pool with caching enabled.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> PtdrService {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the base seed mixed into every per-query seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> PtdrService {
        self.seed = seed;
        self
    }

    /// Resizes the response cache (existing entries are kept up to the
    /// new capacity as they age out).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> PtdrService {
        self.cache = Mutex::new(LruCache::new(capacity));
        self
    }

    /// The road network served.
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }

    /// The learned speed profiles served.
    pub fn profiles(&self) -> &SpeedProfiles {
        &self.profiles
    }

    /// Number of cached responses.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }

    /// The cache identity of `query` (see [`cache_key`]).
    pub fn key(&self, query: &RouteQuery) -> CacheKey {
        cache_key(&query.route, query.depart_hour, query.samples)
    }

    /// Computes a query on this thread's engine, bypassing the cache.
    fn compute(&self, query: &RouteQuery, key: &CacheKey) -> TravelTimeStats {
        ENGINE.with(|engine| {
            engine.borrow_mut().estimate(
                &self.network,
                &self.profiles,
                &query.route,
                bin_center_hour(key),
                query.samples,
                derive_seed(self.seed, key),
            )
        })
    }

    /// Serves one query through the response cache.
    ///
    /// Latency telemetry: misses always observe
    /// `ptdr.query.latency_us`; hits observe it (plus
    /// `ptdr.cache.hit_age_us`) sampled one-in-sixteen on the cache
    /// tick, so the sub-µs warm path pays a couple of nanoseconds
    /// amortized while the percentile estimates stay representative.
    fn serve_cached(&self, query: &RouteQuery) -> TravelTimeStats {
        let telemetry = everest_telemetry::metrics();
        telemetry.counter_inc("ptdr.queries");
        let start = Instant::now();
        let key = self.key(query);
        let (hit, tick) = {
            let mut cache = self.cache.lock();
            (cache.get(&key), cache.tick)
        };
        if let Some((stats, inserted)) = hit {
            telemetry.counter_inc("ptdr.cache.hit");
            if tick % 16 == 0 {
                telemetry.observe("ptdr.cache.hit_age_us", inserted.elapsed().as_secs_f64() * 1e6);
                telemetry.observe("ptdr.query.latency_us", start.elapsed().as_secs_f64() * 1e6);
            }
            return stats;
        }
        telemetry.counter_inc("ptdr.cache.miss");
        everest_telemetry::flight().marker("ptdr.cache.miss", 1.0);
        let stats = self.compute(query, &key);
        self.cache.lock().insert(key, stats);
        telemetry.observe("ptdr.query.latency_us", start.elapsed().as_secs_f64() * 1e6);
        stats
    }

    /// Answers a single query (always cache-enabled). The warm path — a
    /// repeated key — is a pure lookup: no sampling, no heap allocation.
    pub fn query(&self, query: &RouteQuery) -> TravelTimeStats {
        self.serve_cached(query)
    }

    /// Answers a batch of queries. Results land in input order and are
    /// bit-identical for every `jobs` setting: `jobs = 1` recomputes
    /// every query sequentially (the reference), `jobs >= 2` fans the
    /// batch across [`everest_workflow::pool::parallel_map`] workers
    /// with the response cache deduplicating repeated keys.
    pub fn route_batch(&self, queries: &[RouteQuery]) -> Vec<TravelTimeStats> {
        let mut span = everest_telemetry::span("ptdr.batch", "traffic");
        span.attr("queries", queries.len());
        span.attr("jobs", self.jobs);
        if self.jobs <= 1 {
            queries
                .iter()
                .map(|query| {
                    let telemetry = everest_telemetry::metrics();
                    telemetry.counter_inc("ptdr.queries");
                    let start = Instant::now();
                    let out = self.compute(query, &self.key(query));
                    telemetry.observe("ptdr.query.latency_us", start.elapsed().as_secs_f64() * 1e6);
                    out
                })
                .collect()
        } else {
            everest_workflow::pool::parallel_map(
                "ptdr.batch.worker",
                self.jobs,
                queries.to_vec(),
                |_, query| self.serve_cached(&query),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{generate_fcd, shortest_route};
    use super::*;

    fn setup() -> (RoadNetwork, SpeedProfiles) {
        let net = RoadNetwork::grid(1, 8, 1.0);
        let fcd = generate_fcd(&net, 2, 60_000);
        let profiles = SpeedProfiles::learn(&net, &fcd);
        (net, profiles)
    }

    #[test]
    fn engine_matches_reference_statistically() {
        let (net, profiles) = setup();
        let route = shortest_route(&net, &profiles, 0, 63, 8).unwrap();
        let reference = ptdr_travel_time_reference(&net, &profiles, &route, 8.0, 60_000, 7);
        let mut engine: PtdrEngine = PtdrEngine::new();
        let fast = engine.estimate(&net, &profiles, &route, 8.0, 60_000, 7);
        let tol = reference.mean_h * 0.02;
        assert!((fast.mean_h - reference.mean_h).abs() < tol, "{fast:?} vs {reference:?}");
        assert!((fast.p95_h - reference.p95_h).abs() < reference.p95_h * 0.05);
        assert!((fast.std_h - reference.std_h).abs() < reference.std_h * 0.25);
    }

    #[test]
    fn engine_is_deterministic_per_seed() {
        let (net, profiles) = setup();
        let route = shortest_route(&net, &profiles, 0, 63, 17).unwrap();
        let mut a: PtdrEngine = PtdrEngine::new();
        let mut b: PtdrEngine = PtdrEngine::new();
        let x = a.estimate(&net, &profiles, &route, 17.0, 5_000, 42);
        let y = b.estimate(&net, &profiles, &route, 17.0, 5_000, 42);
        assert_eq!(x, y);
        assert_ne!(x, a.estimate(&net, &profiles, &route, 17.0, 5_000, 43));
    }

    #[test]
    fn engine_reuses_tables_across_routes() {
        let (net, profiles) = setup();
        let long = shortest_route(&net, &profiles, 0, 63, 8).unwrap();
        let short = shortest_route(&net, &profiles, 0, 9, 8).unwrap();
        let mut engine: PtdrEngine = PtdrEngine::new();
        let first = engine.estimate(&net, &profiles, &long, 8.0, 2_000, 1);
        let _ = engine.estimate(&net, &profiles, &short, 8.0, 2_000, 1);
        let again = engine.estimate(&net, &profiles, &long, 8.0, 2_000, 1);
        assert_eq!(first, again, "table rebuild must not change results");
    }

    #[test]
    fn lane_widths_cover_partial_blocks() {
        let (net, profiles) = setup();
        let route = shortest_route(&net, &profiles, 0, 27, 8).unwrap();
        // Sample counts around the block width exercise every remainder
        // path (full pairs, odd lane, width < LANES, width == 1).
        for samples in [1usize, 2, 3, 31, 32, 33, 63, 64, 65] {
            let mut engine: PtdrEngine = PtdrEngine::new();
            let stats = engine.estimate(&net, &profiles, &route, 9.0, samples, 5);
            assert!(stats.mean_h > 0.0 && stats.p95_h >= 0.0, "samples={samples}");
        }
        let mut narrow: PtdrEngine<4> = PtdrEngine::new();
        let stats = narrow.estimate(&net, &profiles, &route, 9.0, 100, 5);
        assert!(stats.mean_h > 0.0);
    }

    #[test]
    fn lru_cache_evicts_oldest() {
        let mut lru = LruCache::new(2);
        let stats = TravelTimeStats { mean_h: 1.0, p95_h: 2.0, std_h: 0.1 };
        let key = |n: u64| CacheKey { route_hash: n, departure_bin: 0, samples: 100 };
        lru.insert(key(1), stats);
        lru.insert(key(2), stats);
        assert!(lru.get(&key(1)).is_some()); // refresh 1 — 2 becomes LRU
        lru.insert(key(3), stats);
        assert_eq!(lru.len(), 2);
        assert!(lru.get(&key(2)).is_none(), "key 2 must have been evicted");
        assert!(lru.get(&key(1)).is_some() && lru.get(&key(3)).is_some());
    }

    #[test]
    fn lru_cache_holds_exactly_capacity_entries() {
        let mut lru = LruCache::new(3);
        let stats = TravelTimeStats { mean_h: 1.0, p95_h: 2.0, std_h: 0.1 };
        let key = |n: u64| CacheKey { route_hash: n, departure_bin: 0, samples: 100 };
        for n in 1..=3 {
            lru.insert(key(n), stats);
        }
        assert_eq!(lru.len(), 3, "filling to capacity must not evict");
        assert!(lru.get(&key(1)).is_some() && lru.get(&key(2)).is_some());
        // Re-inserting a resident key at full capacity updates in place.
        let updated = TravelTimeStats { mean_h: 9.0, p95_h: 9.5, std_h: 0.2 };
        lru.insert(key(3), updated);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.get(&key(3)).unwrap().0, updated);
        assert!(lru.get(&key(1)).is_some() && lru.get(&key(2)).is_some());
        // One past capacity evicts exactly one entry.
        lru.insert(key(4), stats);
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn lru_cache_evicts_in_full_recency_order() {
        let mut lru = LruCache::new(3);
        let stats = TravelTimeStats { mean_h: 1.0, p95_h: 2.0, std_h: 0.1 };
        let key = |n: u64| CacheKey { route_hash: n, departure_bin: 0, samples: 100 };
        for n in 1..=3 {
            lru.insert(key(n), stats);
        }
        // Touch order 2, 3, 1 — so evictions must come out 2, 3, 1.
        lru.get(&key(2));
        lru.get(&key(3));
        lru.get(&key(1));
        lru.insert(key(4), stats);
        assert!(lru.get(&key(2)).is_none(), "2 was least recent");
        lru.insert(key(5), stats);
        assert!(lru.get(&key(3)).is_none(), "3 was next");
        // The failed gets above touch nothing, so 1 (refreshed last
        // among the originals, but before 4 and 5 landed) goes next.
        lru.insert(key(6), stats);
        assert!(lru.get(&key(1)).is_none(), "1 evicts after 3");
        assert_eq!(lru.len(), 3);
        for survivor in [4u64, 5, 6] {
            assert!(lru.get(&key(survivor)).is_some(), "key {survivor} must survive");
        }
    }

    #[test]
    fn service_cache_len_respects_capacity_after_eviction() {
        let (net, profiles) = setup();
        let service = PtdrService::new(net, profiles).with_cache_capacity(2);
        let route = vec![0usize, 1, 2];
        let q = |h: f64| RouteQuery { route: route.clone(), depart_hour: h, samples: 64 };
        // Three distinct departure bins = three distinct cache keys.
        let first = service.query(&q(6.0));
        service.query(&q(12.0));
        assert_eq!(service.cache_len(), 2, "two keys fill the cache");
        service.query(&q(18.0));
        assert_eq!(service.cache_len(), 2, "eviction must hold the boundary");
        // Repeats never grow the cache, and the evicted key recomputes
        // to the same bit-identical answer (seed derives from the key).
        assert_eq!(service.query(&q(18.0)), service.query(&q(18.0)));
        assert_eq!(service.cache_len(), 2);
        assert_eq!(service.query(&q(6.0)), first, "recomputed answer must match the original");
    }

    #[test]
    fn cache_key_quantizes_departures_into_bins() {
        let (net, profiles) = setup();
        let service = PtdrService::new(net, profiles);
        let route = vec![0usize, 1, 2];
        let q = |h: f64| RouteQuery { route: route.clone(), depart_hour: h, samples: 100 };
        assert_eq!(service.key(&q(8.0)), service.key(&q(8.24)));
        assert_ne!(service.key(&q(8.0)), service.key(&q(8.30)));
        assert_ne!(
            service.key(&q(8.0)),
            service.key(&RouteQuery { route: vec![0, 1], depart_hour: 8.0, samples: 100 })
        );
        assert_ne!(
            service.key(&q(8.0)),
            service.key(&RouteQuery { route: route.clone(), depart_hour: 8.0, samples: 200 })
        );
        // Hours wrap at midnight; non-finite departures collapse to bin 0.
        assert_eq!(service.key(&q(25.0)).departure_bin, service.key(&q(1.0)).departure_bin);
        assert_eq!(service.key(&q(f64::NAN)).departure_bin, 0);
    }
}
