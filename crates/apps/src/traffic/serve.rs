//! City-scale sharded PTDR serving tier over the endpoint→edge→cloud
//! hierarchy (paper Fig. 3 + §VI-C, "route calculation as a service").
//!
//! [`PtdrService`](super::service::PtdrService) is a single-node pool
//! with one LRU cache. This module scales that design out the way the
//! paper's ecosystem does: end-point devices emit route queries, a rank
//! of **inner-edge shards** answers them from per-shard caches, and the
//! **cloud tier** backs every shard with a larger cache plus the
//! Monte-Carlo recompute path. The pieces:
//!
//! * [`HashRing`] — consistent-hash routing of [`CacheKey`] route
//!   hashes to shards, with virtual nodes so adding or removing a shard
//!   moves only ~1/N of the key space (and *every* moved key lands on
//!   the changed shard — the segment-claiming property the proptest
//!   suite pins down).
//! * [`ServeTier`] — N shards, each owning a small edge LRU, a larger
//!   cloud-partition LRU (the cloud tier is co-partitioned with the
//!   ring, as a real deployment does to keep fill affinity local), a
//!   [`PtdrEngine`] for recomputes, and a **bounded admission queue**:
//!   arrivals beyond `queue_depth` waiting queries are load-shed —
//!   [`ShedPolicy::RejectNew`] turns new arrivals away,
//!   [`ShedPolicy::ShedOldest`] drops the longest-waiting query to
//!   admit the new one. Shed work is counted, never silently lost.
//! * [`LoadGen`] — an open-loop synthetic workload: a diurnal
//!   (rush-hour double-peak) arrival-rate curve thinned from a Poisson
//!   stream, Zipf-distributed route popularity over millions of user
//!   ranks (each rank maps to a sub-route of a city route pool plus a
//!   per-rank sample budget), deterministic from a seed.
//!
//! **Determinism.** Queueing and shedding run in *virtual time*: each
//! shard is a single-server queue whose service costs come from the
//! platform's tier model ([`ServeCostModel`]) — a pure function of the
//! query shape and cache outcome, never the wall clock. Shards share no
//! mutable state, fan out on [`everest_workflow::pool::parallel_map`],
//! and per-query seeds derive from the cache key, so the same seed and
//! topology produce identical shard assignment, identical shed/admit
//! decisions, identical virtual latencies, and bit-identical statistics
//! at any `jobs` count. Wall-clock throughput is measured *around* the
//! run and reported separately.
//!
//! Telemetry: `serve.queries`, `serve.shard.{hit,miss,fill,shed,
//! rejected}` counters, per-shard `serve.shard<i>.queue_depth` peak
//! gauges, and `serve.query.latency_us` / `serve.queue.wait_us`
//! virtual-time histograms, all exported through `everestc stats`.

use super::service::RouteQuery;
use super::service::{bin_center_hour, cache_key, derive_seed, CacheKey, LruCache, PtdrEngine};
use super::{random_od, shortest_route, RoadNetwork, SpeedProfiles, TravelTimeStats};
use everest_platform::ecosystem::ServeCostModel;
use everest_telemetry::{HistogramSnapshot, LogHistogram};
use parking_lot::Mutex;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use std::time::Instant;

/// Shortest sub-route the load generator synthesizes, edges.
pub const MIN_ROUTE_EDGES: usize = 4;

/// Default virtual nodes per shard on the consistent-hash ring.
pub const DEFAULT_VNODES: usize = 64;

// ---------------------------------------------------------------------------
// Consistent-hash ring
// ---------------------------------------------------------------------------

/// SplitMix64 finalizer: decorrelates ring points and rank scatter from
/// their structured inputs.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring mapping 64-bit key hashes to shards.
///
/// Each shard owns `vnodes` pseudo-random points on the u64 ring; a key
/// belongs to the shard owning the first point at or clockwise-after the
/// key's (re-mixed) hash. Ring points depend only on `(shard, vnode)`,
/// so growing the ring from N to N+1 shards leaves every surviving
/// point in place: keys either keep their shard or move to the new one.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl HashRing {
    /// A ring of `shards` shards with `vnodes` points each.
    ///
    /// # Panics
    ///
    /// Panics when either count is zero.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        assert!(shards >= 1, "need at least one shard");
        assert!(vnodes >= 1, "need at least one virtual node per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards as u64 {
            for vnode in 0..vnodes as u64 {
                points.push((mix(shard << 32 | vnode), shard as u32));
            }
        }
        // Ties (64-bit collisions) resolve to the lower shard id so the
        // ring is a pure function of (shards, vnodes).
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key_hash` (e.g. a [`CacheKey::route_hash`]).
    pub fn shard_of(&self, key_hash: u64) -> usize {
        let h = mix(key_hash);
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[if at == self.points.len() { 0 } else { at }];
        shard as usize
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// What a shard does with an arrival once its admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Turn the new arrival away (tail drop); counted as `rejected`.
    RejectNew,
    /// Drop the longest-waiting query to admit the new one; counted as
    /// `shed`.
    ShedOldest,
}

impl std::str::FromStr for ShedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<ShedPolicy, String> {
        match s {
            "reject-new" => Ok(ShedPolicy::RejectNew),
            "shed-oldest" => Ok(ShedPolicy::ShedOldest),
            other => Err(format!("unknown shed policy '{other}' (reject-new, shed-oldest)")),
        }
    }
}

impl std::fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShedPolicy::RejectNew => "reject-new",
            ShedPolicy::ShedOldest => "shed-oldest",
        })
    }
}

/// Configuration of a [`ServeTier`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Edge shard count.
    pub shards: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Per-shard edge-cache capacity (the small hot set).
    pub edge_cache: usize,
    /// Per-shard cloud-partition capacity (the large backing cache).
    pub cloud_cache: usize,
    /// Bounded admission queue: maximum *waiting* queries per shard
    /// (clamped to at least 1).
    pub queue_depth: usize,
    /// What to do with arrivals once the queue is full.
    pub policy: ShedPolicy,
    /// Base seed mixed into every per-query seed.
    pub seed: u64,
    /// Worker threads the shard set fans out on (`1` = inline).
    pub jobs: usize,
    /// Virtual service-cost model (see [`ServeCostModel`]).
    pub cost: ServeCostModel,
}

impl ServeConfig {
    /// A tier of `shards` shards with the default knobs.
    pub fn new(shards: usize) -> ServeConfig {
        ServeConfig {
            shards: shards.max(1),
            vnodes: DEFAULT_VNODES,
            edge_cache: 2_048,
            cloud_cache: 65_536,
            queue_depth: 64,
            policy: ShedPolicy::RejectNew,
            seed: 0,
            jobs: 1,
            cost: ServeCostModel::edge_shard(),
        }
    }
}

// ---------------------------------------------------------------------------
// Open-loop load generator
// ---------------------------------------------------------------------------

/// One open-loop arrival: a virtual timestamp and its query.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Arrival time, virtual microseconds from stream start.
    pub at_us: f64,
    /// The route query.
    pub query: RouteQuery,
}

/// The diurnal arrival-rate shape: a base load plus morning and evening
/// rush-hour peaks. Dimensionless; [`LoadGen::generate`] rescales it so
/// the *mean* over a day equals the offered rate.
pub fn diurnal_shape(hour: f64) -> f64 {
    let peak = |center: f64, width: f64| {
        let d = (hour - center) / width;
        (-d * d).exp()
    };
    0.30 + peak(8.5, 1.7) + 1.15 * peak(17.5, 2.1)
}

/// Mean and max of [`diurnal_shape`] over a day (fixed fine grid, so the
/// thinning envelope is a pure constant).
fn diurnal_stats() -> (f64, f64) {
    let mut sum = 0.0;
    let mut max = 0.0f64;
    const STEPS: usize = 960;
    for i in 0..STEPS {
        let s = diurnal_shape(24.0 * (i as f64 + 0.5) / STEPS as f64);
        sum += s;
        max = max.max(s);
    }
    (sum / STEPS as f64, max)
}

/// Deterministic open-loop workload generator: Poisson arrivals thinned
/// to the diurnal curve, Zipf route popularity over `users` ranks.
///
/// Every rank deterministically names a *route identity*: a contiguous
/// sub-route of a pooled city route plus a per-rank Monte-Carlo budget.
/// With the default 2²¹-rank population over a pool of base routes,
/// ranks × departure bins yield millions of distinct cache keys while
/// popular commutes stay heavily shared — the shape a city-scale cache
/// hierarchy actually serves.
#[derive(Debug, Clone)]
pub struct LoadGen {
    pool: Vec<Vec<usize>>,
    /// Zipf user-rank population (default 2²¹ ≈ 2.1 M).
    pub users: u64,
    /// Base Monte-Carlo budget; each rank adds a deterministic jitter of
    /// up to 15 × 8 samples.
    pub base_samples: usize,
    seed: u64,
    longest_route: usize,
}

impl LoadGen {
    /// A generator over `pool_routes` shortest-path commutes of
    /// `network`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics when the network yields no route of at least
    /// [`MIN_ROUTE_EDGES`] edges.
    pub fn new(
        network: &RoadNetwork,
        profiles: &SpeedProfiles,
        pool_routes: usize,
        seed: u64,
    ) -> LoadGen {
        let od = random_od(network, mix(seed), pool_routes * 3, 700.0);
        let pool: Vec<Vec<usize>> = od
            .iter()
            .filter_map(|pair| shortest_route(network, profiles, pair.from, pair.to, 8))
            .filter(|route| route.len() >= MIN_ROUTE_EDGES)
            .take(pool_routes)
            .collect();
        assert!(!pool.is_empty(), "network too sparse for a route pool");
        let longest_route = pool.iter().map(Vec::len).max().unwrap_or(MIN_ROUTE_EDGES);
        LoadGen { pool, users: 1 << 21, base_samples: 192, seed, longest_route }
    }

    /// Longest route the generator can emit, edges.
    pub fn longest_route_edges(&self) -> usize {
        self.longest_route
    }

    /// Largest Monte-Carlo budget the generator can emit.
    pub fn max_samples(&self) -> usize {
        self.base_samples + 15 * 8
    }

    /// The query of user `rank` departing at `depart_hour`: a suffix of
    /// a pooled route plus a per-rank sample budget, all pure in `rank`.
    pub fn query_for_rank(&self, rank: u64, depart_hour: f64) -> RouteQuery {
        let base = &self.pool[(rank % self.pool.len() as u64) as usize];
        let max_trim = (base.len() - MIN_ROUTE_EDGES) as u64;
        let scatter = mix(rank);
        let trim = if max_trim == 0 { 0 } else { (scatter % (max_trim + 1)) as usize };
        RouteQuery {
            route: base[trim..].to_vec(),
            depart_hour,
            samples: self.base_samples + ((scatter >> 32) % 16) as usize * 8,
        }
    }

    /// Generates one *day* of open-loop arrivals offering `offered_qps`
    /// mean queries/second for `duration_s` virtual seconds (the full
    /// diurnal curve is compressed into the duration), truncated at
    /// `max_queries`. Arrivals are strictly time-ordered and the whole
    /// stream is a pure function of `(seed, day)`: the same day replays
    /// bit-identically, while successive days draw fresh users from the
    /// same diurnal/Zipf distribution — the stream a warm serving tier
    /// actually faces, where popular commutes recur but individual
    /// queries do not.
    pub fn generate(
        &self,
        day: u64,
        offered_qps: f64,
        duration_s: f64,
        max_queries: usize,
    ) -> Vec<Arrival> {
        assert!(offered_qps > 0.0, "offered rate must be positive");
        assert!(duration_s > 0.0, "duration must be positive");
        let (shape_mean, shape_max) = diurnal_stats();
        let lambda_max = offered_qps * shape_max / shape_mean;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ mix(day));
        let mut out = Vec::new();
        let mut t = 0.0f64;
        while out.len() < max_queries {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -u.ln() / lambda_max;
            if t >= duration_s {
                break;
            }
            let hour = t / duration_s * 24.0;
            // Thin the homogeneous stream down to the diurnal curve.
            let keep: f64 = rng.gen_range(0.0..1.0);
            if keep * shape_max > diurnal_shape(hour) {
                continue;
            }
            // Bounded Zipf(s=1) over `users` ranks by inverse CDF:
            // P(rank <= k) ~ ln(k+1)/ln(n+1), so rank = floor((n+1)^u).
            let zu: f64 = rng.gen_range(0.0..1.0);
            let rank = ((self.users as f64 + 1.0).powf(zu) as u64).clamp(1, self.users) - 1;
            out.push(Arrival { at_us: t * 1e6, query: self.query_for_rank(rank, hour) });
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The sharded tier
// ---------------------------------------------------------------------------

/// Per-shard cache + engine state, persistent across runs so a repeated
/// workload measures the warm path.
struct ShardState {
    edge: LruCache,
    cloud: LruCache,
    engine: PtdrEngine,
}

/// Deterministic per-shard accounting of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Queries routed to this shard.
    pub arrivals: u64,
    /// Queries actually served (admitted and completed).
    pub served: u64,
    /// Edge-cache hits.
    pub edge_hits: u64,
    /// Edge-cache misses (cloud-tier consultations).
    pub edge_misses: u64,
    /// Cloud misses: full Monte-Carlo recomputes filled back into both
    /// tiers. Cloud *hits* are `edge_misses - cloud_fills`.
    pub cloud_fills: u64,
    /// Queries dropped by [`ShedPolicy::ShedOldest`].
    pub shed: u64,
    /// Queries dropped by [`ShedPolicy::RejectNew`].
    pub rejected: u64,
    /// Peak waiting-queue depth observed.
    pub peak_queue: usize,
}

/// Virtual busy time is f64, so it rides outside the Eq-able counter
/// block.
struct ShardRun {
    report: ShardReport,
    busy_us: f64,
    latency: LogHistogram,
    wait: LogHistogram,
    results: Vec<(usize, Option<TravelTimeStats>)>,
}

/// Outcome of one [`ServeTier::run`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-arrival results in arrival order; `None` = shed/rejected.
    pub results: Vec<Option<TravelTimeStats>>,
    /// Per-shard accounting, shard order.
    pub shards: Vec<ShardReport>,
    /// Virtual sojourn latency (queue wait + service) of served
    /// queries, microseconds.
    pub latency: HistogramSnapshot,
    /// Virtual queue-wait component, microseconds.
    pub wait: HistogramSnapshot,
    /// Total virtual service time across shards, microseconds.
    pub busy_us: f64,
    /// Real wall-clock seconds the run took.
    pub wall_s: f64,
}

impl ServeReport {
    /// Total arrivals routed.
    pub fn arrivals(&self) -> u64 {
        self.shards.iter().map(|s| s.arrivals).sum()
    }

    /// Queries served (admitted and completed).
    pub fn served(&self) -> u64 {
        self.shards.iter().map(|s| s.served).sum()
    }

    /// Queries dropped (shed + rejected).
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.shed + s.rejected).sum()
    }

    /// Edge-cache hit count across shards.
    pub fn edge_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.edge_hits).sum()
    }

    /// Edge-cache miss count across shards.
    pub fn edge_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.edge_misses).sum()
    }

    /// Full recomputes (cloud misses) across shards.
    pub fn cloud_fills(&self) -> u64 {
        self.shards.iter().map(|s| s.cloud_fills).sum()
    }

    /// Mean virtual service cost of a served query, microseconds.
    pub fn mean_service_cost_us(&self) -> f64 {
        self.busy_us / self.served().max(1) as f64
    }

    /// Virtual serving capacity implied by this run's cache behaviour:
    /// one query per `mean_service_cost_us` per shard.
    pub fn capacity_qps(&self) -> f64 {
        self.shards.len() as f64 * 1e6 / self.mean_service_cost_us().max(1e-9)
    }

    /// Real wall-clock throughput of served queries.
    pub fn served_per_sec_wall(&self) -> f64 {
        self.served() as f64 / self.wall_s.max(1e-12)
    }

    /// Bit-exact digest of every per-query outcome plus the shard
    /// counters — equal digests mean equal serving behaviour.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for r in &self.results {
            match r {
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "{:016x}{:016x}{:016x}",
                        s.mean_h.to_bits(),
                        s.p95_h.to_bits(),
                        s.std_h.to_bits()
                    );
                }
                None => out.push_str("dropped\n"),
            }
        }
        for s in &self.shards {
            let _ = writeln!(out, "{s:?}");
        }
        out
    }
}

/// The sharded serving tier: consistent-hash routing onto edge shards,
/// cloud-tier fill on miss, bounded admission with load shedding. See
/// the module docs for the design and determinism argument.
pub struct ServeTier {
    network: RoadNetwork,
    profiles: SpeedProfiles,
    config: ServeConfig,
    ring: HashRing,
    states: Vec<Mutex<ShardState>>,
}

impl ServeTier {
    /// A tier over `network`/`profiles` with `config`.
    pub fn new(
        network: RoadNetwork,
        profiles: SpeedProfiles,
        mut config: ServeConfig,
    ) -> ServeTier {
        config.shards = config.shards.max(1);
        config.queue_depth = config.queue_depth.max(1);
        config.jobs = config.jobs.max(1);
        let ring = HashRing::new(config.shards, config.vnodes.max(1));
        let states = (0..config.shards)
            .map(|_| {
                Mutex::new(ShardState {
                    edge: LruCache::new(config.edge_cache),
                    cloud: LruCache::new(config.cloud_cache),
                    engine: PtdrEngine::new(),
                })
            })
            .collect();
        ServeTier { network, profiles, config, ring, states }
    }

    /// The tier's configuration (knobs clamped).
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The consistent-hash ring in use.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Drops every cached response (cold restart); the ring and
    /// configuration are untouched.
    pub fn reset(&self) {
        for state in &self.states {
            let mut state = state.lock();
            state.edge = LruCache::new(self.config.edge_cache);
            state.cloud = LruCache::new(self.config.cloud_cache);
        }
    }

    /// Entries currently cached across all shards `(edge, cloud)`.
    pub fn cache_len(&self) -> (usize, usize) {
        let mut edge = 0;
        let mut cloud = 0;
        for state in &self.states {
            let state = state.lock();
            edge += state.edge.len();
            cloud += state.cloud.len();
        }
        (edge, cloud)
    }

    /// Estimates the tier's serving capacity (queries/second) by
    /// running `queries` arrivals of generator day `day` at a
    /// deliberately low rate (half the worst-case all-miss capacity, so
    /// queueing is negligible) and reading the mean virtual service
    /// cost back. The estimate is deterministic and reflects the
    /// *current* cache contents: calibrate once on a cold tier for the
    /// all-miss floor, then again on a fresh day for the steady-state
    /// mixed-hit capacity (each calibration warms the caches as a side
    /// effect; [`ServeTier::reset`] drops them).
    pub fn calibrate(&self, gen: &LoadGen, day: u64, queries: usize) -> f64 {
        let worst = self.config.cost.worst_case_us(gen.longest_route_edges(), gen.max_samples());
        let safe_qps = self.config.shards as f64 * 1e6 / (2.0 * worst);
        let workload = gen.generate(day, safe_qps, queries as f64 / safe_qps, queries);
        self.run_inner(&workload, false).capacity_qps()
    }

    /// Serves an open-loop arrival stream (must be time-ordered) and
    /// reports per-query results, shard accounting, and virtual latency
    /// percentiles. Publishes `serve.*` telemetry to the global
    /// registry.
    ///
    /// # Panics
    ///
    /// Panics when `workload` is not sorted by arrival time.
    pub fn run(&self, workload: &[Arrival]) -> ServeReport {
        self.run_inner(workload, true)
    }

    fn run_inner(&self, workload: &[Arrival], publish: bool) -> ServeReport {
        assert!(
            workload.windows(2).all(|w| w[0].at_us <= w[1].at_us),
            "open-loop workload must be sorted by arrival time"
        );
        let mut span = everest_telemetry::span("serve.tier", "traffic");
        span.attr("arrivals", workload.len());
        span.attr("shards", self.config.shards);
        span.attr("jobs", self.config.jobs);
        let keys: Vec<CacheKey> = workload
            .iter()
            .map(|a| cache_key(&a.query.route, a.query.depart_hour, a.query.samples))
            .collect();
        let mut shard_idxs: Vec<Vec<usize>> = vec![Vec::new(); self.config.shards];
        for (i, key) in keys.iter().enumerate() {
            shard_idxs[self.ring.shard_of(key.route_hash)].push(i);
        }
        let work: Vec<(usize, Vec<usize>)> = shard_idxs.into_iter().enumerate().collect();

        let start = Instant::now();
        let runs = everest_workflow::pool::parallel_map(
            "serve.shard",
            self.config.jobs,
            work,
            |_, (shard, idxs)| self.run_shard(shard, &idxs, workload, &keys),
        );
        let wall_s = start.elapsed().as_secs_f64();

        // Single-threaded merge in shard order: counters, histograms and
        // the per-arrival result table are identical at any job count.
        let mut results: Vec<Option<TravelTimeStats>> = vec![None; workload.len()];
        let mut latency = LogHistogram::new();
        let mut wait = LogHistogram::new();
        let mut shards = Vec::with_capacity(runs.len());
        let mut busy_us = 0.0;
        for run in &runs {
            for &(i, stats) in &run.results {
                results[i] = stats;
            }
            latency.merge_from(&run.latency);
            wait.merge_from(&run.wait);
            busy_us += run.busy_us;
            shards.push(run.report);
        }
        let report = ServeReport {
            results,
            shards,
            latency: latency.snapshot("serve.query.latency_us"),
            wait: wait.snapshot("serve.queue.wait_us"),
            busy_us,
            wall_s,
        };
        if publish {
            self.publish(&report, &latency, &wait);
        }
        report
    }

    /// Exports one run's accounting into the global metrics registry.
    fn publish(&self, report: &ServeReport, latency: &LogHistogram, wait: &LogHistogram) {
        let m = everest_telemetry::metrics();
        m.counter_add("serve.queries", report.arrivals());
        m.counter_add("serve.shard.hit", report.edge_hits());
        m.counter_add("serve.shard.miss", report.edge_misses());
        m.counter_add("serve.shard.fill", report.cloud_fills());
        m.counter_add("serve.shard.shed", report.shards.iter().map(|s| s.shed).sum());
        m.counter_add("serve.shard.rejected", report.shards.iter().map(|s| s.rejected).sum());
        for s in &report.shards {
            m.gauge_max(&format!("serve.shard{}.queue_depth", s.shard), s.peak_queue as f64);
        }
        m.merge_histogram("serve.query.latency_us", latency);
        m.merge_histogram("serve.queue.wait_us", wait);
    }

    /// One shard's virtual-time single-server queue over its arrivals.
    fn run_shard(
        &self,
        shard: usize,
        idxs: &[usize],
        workload: &[Arrival],
        keys: &[CacheKey],
    ) -> ShardRun {
        let mut state = self.states[shard].lock();
        let state = &mut *state;
        let mut run = ShardRun {
            report: ShardReport {
                shard,
                arrivals: 0,
                served: 0,
                edge_hits: 0,
                edge_misses: 0,
                cloud_fills: 0,
                shed: 0,
                rejected: 0,
                peak_queue: 0,
            },
            busy_us: 0.0,
            latency: LogHistogram::new(),
            wait: LogHistogram::new(),
            results: Vec::with_capacity(idxs.len()),
        };
        let mut waiting: VecDeque<usize> = VecDeque::new();
        let mut busy_until = 0.0f64;

        let serve_front =
            |state: &mut ShardState, run: &mut ShardRun, gi: usize, busy_until: &mut f64| {
                let start = busy_until.max(workload[gi].at_us);
                let (stats, cost) = self.answer(state, &workload[gi], &keys[gi], &mut run.report);
                *busy_until = start + cost;
                run.busy_us += cost;
                run.latency.observe(*busy_until - workload[gi].at_us);
                run.wait.observe(start - workload[gi].at_us);
                run.report.served += 1;
                run.results.push((gi, Some(stats)));
            };

        for &gi in idxs {
            let t = workload[gi].at_us;
            // Serve every waiting query whose service starts before the
            // new arrival lands.
            while busy_until <= t {
                let Some(&front) = waiting.front() else { break };
                serve_front(state, &mut run, front, &mut busy_until);
                waiting.pop_front();
            }
            run.report.arrivals += 1;
            if waiting.len() >= self.config.queue_depth {
                match self.config.policy {
                    ShedPolicy::RejectNew => {
                        run.report.rejected += 1;
                        run.results.push((gi, None));
                        continue;
                    }
                    ShedPolicy::ShedOldest => {
                        let old = waiting.pop_front().expect("full queue is non-empty");
                        run.report.shed += 1;
                        run.results.push((old, None));
                        waiting.push_back(gi);
                    }
                }
            } else {
                waiting.push_back(gi);
            }
            run.report.peak_queue = run.report.peak_queue.max(waiting.len());
        }
        while let Some(&front) = waiting.front() {
            serve_front(state, &mut run, front, &mut busy_until);
            waiting.pop_front();
        }
        run
    }

    /// Answers one admitted query through the edge→cloud cache
    /// hierarchy, returning the stats and the virtual service cost.
    fn answer(
        &self,
        state: &mut ShardState,
        arrival: &Arrival,
        key: &CacheKey,
        report: &mut ShardReport,
    ) -> (TravelTimeStats, f64) {
        let cost = &self.config.cost;
        if let Some((stats, _)) = state.edge.get(key) {
            report.edge_hits += 1;
            return (stats, cost.hit_us);
        }
        report.edge_misses += 1;
        if let Some((stats, _)) = state.cloud.get(key) {
            state.edge.insert(*key, stats);
            return (stats, cost.fill_rtt_us + cost.hit_us);
        }
        report.cloud_fills += 1;
        let stats = state.engine.estimate(
            &self.network,
            &self.profiles,
            &arrival.query.route,
            bin_center_hour(key),
            arrival.query.samples,
            derive_seed(self.config.seed, key),
        );
        state.cloud.insert(*key, stats);
        state.edge.insert(*key, stats);
        (
            stats,
            cost.fill_rtt_us + cost.compute_us(arrival.query.route.len(), arrival.query.samples),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::generate_fcd;
    use super::super::service::PtdrService;
    use super::*;

    fn setup() -> (RoadNetwork, SpeedProfiles) {
        let net = RoadNetwork::grid(1, 8, 1.0);
        let fcd = generate_fcd(&net, 2, 40_000);
        let profiles = SpeedProfiles::learn(&net, &fcd);
        (net, profiles)
    }

    fn small_workload(gen: &LoadGen, queries: usize) -> Vec<Arrival> {
        // ~25k q/s offered over a short window: enough pressure to
        // exercise the queue without mass shedding at 2 shards.
        gen.generate(0, 25_000.0, queries as f64 / 25_000.0, queries)
    }

    #[test]
    fn ring_covers_all_shards_roughly_evenly() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for key in 0..10_000u64 {
            counts[ring.shard_of(mix(key))] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(
                (1_000..=4_500).contains(&n),
                "shard {shard} owns {n}/10000 keys — ring badly unbalanced"
            );
        }
    }

    #[test]
    fn growing_the_ring_only_moves_keys_to_the_new_shard() {
        for shards in 1..6usize {
            let old = HashRing::new(shards, 64);
            let new = HashRing::new(shards + 1, 64);
            let mut moved = 0usize;
            const KEYS: usize = 4_000;
            for key in 0..KEYS as u64 {
                let h = mix(key.wrapping_mul(0x2545_f491_4f6c_dd1d));
                let before = old.shard_of(h);
                let after = new.shard_of(h);
                if before != after {
                    moved += 1;
                    assert_eq!(after, shards, "moved key must land on the added shard");
                }
            }
            let expected = KEYS / (shards + 1);
            assert!(
                moved < expected * 2,
                "{shards}→{} shards moved {moved}/{KEYS} keys (expected ~{expected})",
                shards + 1
            );
            assert!(moved > 0, "adding a shard must claim some keys");
        }
    }

    #[test]
    fn tier_matches_single_node_service_bit_for_bit() {
        let (net, profiles) = setup();
        let gen = LoadGen::new(&net, &profiles, 8, 7);
        let workload = small_workload(&gen, 200);
        let mut config = ServeConfig::new(2);
        config.seed = 7;
        config.queue_depth = usize::MAX >> 1; // no shedding
        let tier = ServeTier::new(net.clone(), profiles.clone(), config);
        let report = tier.run(&workload);
        assert_eq!(report.dropped(), 0);
        let service = PtdrService::new(net, profiles).with_seed(7);
        for (arrival, served) in workload.iter().zip(&report.results) {
            let expected = service.query(&arrival.query);
            let got = served.expect("no shedding configured");
            assert_eq!(got, expected, "shard answer diverged from the single-node service");
        }
    }

    #[test]
    fn identical_runs_are_bit_identical_at_any_jobs() {
        let (net, profiles) = setup();
        let gen = LoadGen::new(&net, &profiles, 8, 11);
        let workload = small_workload(&gen, 300);
        let mut reference: Option<String> = None;
        for jobs in [1usize, 2, 4] {
            let mut config = ServeConfig::new(3);
            config.seed = 5;
            config.jobs = jobs;
            config.queue_depth = 8;
            let tier = ServeTier::new(net.clone(), profiles.clone(), config);
            let fp = tier.run(&workload).fingerprint();
            match &reference {
                None => reference = Some(fp),
                Some(r) => assert_eq!(r, &fp, "jobs={jobs} diverged"),
            }
        }
    }

    #[test]
    fn overload_sheds_instead_of_collapsing() {
        let (net, profiles) = setup();
        let gen = LoadGen::new(&net, &profiles, 8, 3);
        let mut config = ServeConfig::new(2);
        config.seed = 3;
        config.queue_depth = 4;
        let tier = ServeTier::new(net.clone(), profiles.clone(), config);
        let capacity = tier.calibrate(&gen, 0, 400);
        tier.reset();
        let workload = gen.generate(1, 3.0 * capacity, 0.05, 4_000);
        let report = tier.run(&workload);
        assert!(report.dropped() > 0, "3x overload must shed");
        assert!(report.served() > 0, "shedding must not starve the shard");
        // Bounded queue ⇒ bounded sojourn: wait is at most queue_depth
        // worst-case services, so p99 stays within a small multiple of
        // the worst-case single-query cost.
        let worst = config.cost.worst_case_us(gen.longest_route_edges(), gen.max_samples());
        let bound = (config.queue_depth + 2) as f64 * worst;
        assert!(
            report.latency.p99() <= bound,
            "p99 {}us exceeds the queue-implied bound {}us",
            report.latency.p99(),
            bound
        );
    }

    #[test]
    fn shed_policies_drop_different_ends_of_the_queue() {
        let (net, profiles) = setup();
        let gen = LoadGen::new(&net, &profiles, 8, 9);
        let workload = {
            // A burst: every query arrives at once, far more than fits.
            let mut w = small_workload(&gen, 64);
            for a in &mut w {
                a.at_us = 0.0;
            }
            w
        };
        let run = |policy: ShedPolicy| {
            let mut config = ServeConfig::new(1);
            config.queue_depth = 8;
            config.policy = policy;
            let tier = ServeTier::new(net.clone(), profiles.clone(), config);
            tier.run(&workload)
        };
        let reject = run(ShedPolicy::RejectNew);
        let shed = run(ShedPolicy::ShedOldest);
        assert_eq!(reject.shards[0].shed, 0);
        assert!(reject.shards[0].rejected > 0);
        assert_eq!(shed.shards[0].rejected, 0);
        assert!(shed.shards[0].shed > 0);
        // Tail drop keeps the earliest arrivals; shed-oldest keeps the
        // latest. With every arrival simultaneous, the first admitted
        // arrivals survive under reject-new and are exactly the ones
        // shed-oldest sacrifices.
        assert!(reject.results[1].is_some());
        assert!(shed.results[1].is_none());
        assert!(reject.results.last().unwrap().is_none());
        assert!(shed.results.last().unwrap().is_some());
    }

    #[test]
    fn caches_persist_across_runs_and_reset_clears_them() {
        let (net, profiles) = setup();
        let gen = LoadGen::new(&net, &profiles, 8, 13);
        let workload = small_workload(&gen, 200);
        let mut config = ServeConfig::new(2);
        config.queue_depth = usize::MAX >> 1;
        let tier = ServeTier::new(net, profiles, config);
        let cold = tier.run(&workload);
        let warm = tier.run(&workload);
        assert!(cold.cloud_fills() > 0);
        assert_eq!(warm.cloud_fills(), 0, "second pass must be all cache hits");
        assert!(warm.mean_service_cost_us() < cold.mean_service_cost_us());
        assert_eq!(
            warm.results, cold.results,
            "cached answers must be bit-identical to computed ones"
        );
        tier.reset();
        assert_eq!(tier.cache_len(), (0, 0));
        let again = tier.run(&workload);
        assert_eq!(again.cloud_fills(), cold.cloud_fills());
    }

    #[test]
    fn load_generator_is_deterministic_diurnal_and_zipfian() {
        let (net, profiles) = setup();
        let gen = LoadGen::new(&net, &profiles, 8, 21);
        let a = gen.generate(0, 50_000.0, 0.4, 50_000);
        let b = gen.generate(0, 50_000.0, 0.4, 50_000);
        assert_eq!(a, b, "same seed and day must give the same stream");
        let next_day = gen.generate(1, 50_000.0, 0.4, 50_000);
        assert_ne!(a, next_day, "successive days must draw fresh arrivals");
        assert!(a.len() > 5_000, "rate x duration should land near 20k arrivals, got {}", a.len());
        assert!(a.windows(2).all(|w| w[0].at_us <= w[1].at_us), "arrivals must be time-ordered");
        // Zipf skew: the single most popular route identity accounts
        // for a few percent of all traffic even over 2M ranks.
        use std::collections::{HashMap, HashSet};
        let mut by_route: HashMap<u64, usize> = HashMap::new();
        let mut keys: HashSet<CacheKey> = HashSet::new();
        for arr in &a {
            let key = cache_key(&arr.query.route, arr.query.depart_hour, arr.query.samples);
            *by_route.entry(key.route_hash).or_default() += 1;
            keys.insert(key);
        }
        let top = by_route.values().copied().max().unwrap();
        assert!(
            top * 50 > a.len(),
            "hottest route serves {top}/{} — popularity not heavy-tailed",
            a.len()
        );
        // Route × departure-bin × sample-budget fan-out: even this tiny
        // 8-route pool yields a long tail of distinct cache keys.
        assert!(keys.len() > 1_000, "only {} distinct cache keys", keys.len());
        // Diurnal: the evening rush quarter must out-arrive the night
        // quarter by a wide margin.
        let duration_us = 0.4e6;
        let quarter = |lo: f64, hi: f64| {
            a.iter().filter(|x| x.at_us >= lo * duration_us && x.at_us < hi * duration_us).count()
        };
        let night = quarter(0.0, 0.25); // hours 0..6
        let evening = quarter(0.625, 0.875); // hours 15..21
        assert!(evening > night * 2, "evening rush {evening} vs night {night}");
    }

    #[test]
    fn publishes_serve_counter_families() {
        let (net, profiles) = setup();
        let gen = LoadGen::new(&net, &profiles, 8, 5);
        let workload = small_workload(&gen, 100);
        let before = everest_telemetry::metrics().snapshot();
        let tier = ServeTier::new(net, profiles, ServeConfig::new(2));
        let report = tier.run(&workload);
        let after = everest_telemetry::metrics().snapshot();
        // Other tests publish serve.* concurrently into the global
        // registry, so assert the counters moved by *at least* this
        // run's contribution rather than exactly.
        let delta = |name: &str| after.counter(name) - before.counter(name);
        assert!(delta("serve.queries") >= report.arrivals());
        assert!(delta("serve.shard.hit") >= report.edge_hits());
        assert!(delta("serve.shard.miss") >= report.edge_misses());
        assert!(delta("serve.shard.fill") >= report.cloud_fills());
        assert!(after.counters.iter().any(|c| c.name == "serve.shard.shed"));
        assert!(after.counters.iter().any(|c| c.name == "serve.shard.rejected"));
        assert!(after.gauge("serve.shard0.queue_depth").is_some());
        assert!(after.gauge("serve.shard1.queue_depth").is_some());
        assert!(after.histogram("serve.query.latency_us").is_some());
    }
}
