//! Use case VI-B: air-quality monitoring of industrial sites.
//!
//! Plum'air "aims at forecasting the environmental impacts due to
//! atmospheric releases of an industrial site at local scale (within 10 km
//! from emission sources)" so the plant "can promptly delay production
//! activities ... or activate emission reduction treatments".
//!
//! Substitution: real emission inventories are proprietary; we implement
//! the standard **Gaussian plume** dispersion model with Pasquill-Gifford
//! stability classes over synthetic stacks, which is exactly the model
//! class such services run operationally.

use crate::synthetic::Grid2d;

/// Pasquill-Gifford atmospheric stability classes (A = very unstable,
/// F = very stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stability {
    /// Very unstable (strong daytime convection).
    A,
    /// Unstable.
    B,
    /// Slightly unstable.
    C,
    /// Neutral.
    D,
    /// Stable.
    E,
    /// Very stable (clear night, low wind).
    F,
}

/// Briggs rural coefficients in the unified form
/// `σy = ay·x / sqrt(1 + cy·x)` and
/// `σz = az·x / (sqrt(1 + cs·x) · (1 + cl·x))` — one branch-free formula
/// covering all six classes (absent factors have a zero coefficient),
/// which is what lets the grid kernel hoist the class dispatch out of
/// its inner loop.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Briggs {
    ay: f64,
    cy: f64,
    az: f64,
    cs: f64,
    cl: f64,
}

impl Briggs {
    /// `(σy, σz)` at downwind distance `x` metres (callers clamp `x`).
    #[inline]
    fn sigmas(&self, x: f64) -> (f64, f64) {
        let sy = self.ay * x / (1.0 + self.cy * x).sqrt();
        let sz = self.az * x / ((1.0 + self.cs * x).sqrt() * (1.0 + self.cl * x));
        (sy, sz)
    }
}

impl Stability {
    fn briggs(&self) -> Briggs {
        let b = |ay, az, cs, cl| Briggs { ay, cy: 0.0001, az, cs, cl };
        match self {
            Stability::A => b(0.22, 0.20, 0.0, 0.0),
            Stability::B => b(0.16, 0.12, 0.0, 0.0),
            Stability::C => b(0.11, 0.08, 0.0002, 0.0),
            Stability::D => b(0.08, 0.06, 0.0015, 0.0),
            Stability::E => b(0.06, 0.03, 0.0, 0.0003),
            Stability::F => b(0.04, 0.016, 0.0, 0.0003),
        }
    }

    /// Briggs rural dispersion coefficients: returns (σy, σz) in metres at
    /// downwind distance `x_m` (metres).
    pub fn sigmas(&self, x_m: f64) -> (f64, f64) {
        self.briggs().sigmas(x_m.max(1.0))
    }
}

/// A pollutant point source (stack).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stack {
    /// Position in metres (domain coordinates).
    pub x_m: f64,
    /// Position in metres.
    pub y_m: f64,
    /// Emission rate, grams per second.
    pub emission_g_s: f64,
    /// Effective release height, metres.
    pub height_m: f64,
}

/// Meteorological forcing for one forecast step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Meteo {
    /// Wind speed at stack height, m/s.
    pub wind_ms: f64,
    /// Wind direction in radians (0 = +x, counter-clockwise).
    pub wind_dir_rad: f64,
    /// Stability class.
    pub stability: Stability,
}

/// The plume model over a square domain.
#[derive(Debug, Clone)]
pub struct PlumeModel {
    /// Domain edge, metres (≤ 10 km per the use case).
    pub domain_m: f64,
    /// Grid cells per edge.
    pub cells: usize,
    /// Emission sources.
    pub stacks: Vec<Stack>,
}

impl PlumeModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if the domain or cell count is zero.
    pub fn new(domain_m: f64, cells: usize, stacks: Vec<Stack>) -> PlumeModel {
        assert!(domain_m > 0.0 && cells > 1, "invalid domain");
        PlumeModel { domain_m, cells, stacks }
    }

    /// Ground-level concentration (µg/m³) of one stack at receptor
    /// `(rx, ry)` metres under `met`.
    pub fn stack_concentration(stack: &Stack, met: &Meteo, rx: f64, ry: f64) -> f64 {
        // Rotate into plume coordinates: x downwind, y crosswind.
        let dx = rx - stack.x_m;
        let dy = ry - stack.y_m;
        let cosd = met.wind_dir_rad.cos();
        let sind = met.wind_dir_rad.sin();
        let downwind = dx * cosd + dy * sind;
        let crosswind = -dx * sind + dy * cosd;
        if downwind <= 1.0 {
            return 0.0; // no upwind dispersion in the steady-state model
        }
        let (sy, sz) = met.stability.sigmas(downwind);
        let u = met.wind_ms.max(0.5);
        let q = stack.emission_g_s * 1e6; // µg/s
        let h = stack.height_m;
        let base = q / (2.0 * std::f64::consts::PI * u * sy * sz);
        let lateral = (-crosswind * crosswind / (2.0 * sy * sy)).exp();
        // Ground-level with full reflection: z = 0.
        let vertical = 2.0 * (-h * h / (2.0 * sz * sz)).exp();
        base * lateral * vertical
    }

    /// Scalar reference for the concentration grid: sums
    /// [`PlumeModel::stack_concentration`] (libm `exp`) per receptor.
    /// The vectorized [`PlumeModel::concentration_grid`] is parity-tested
    /// against this at 1e-6.
    pub fn concentration_grid_scalar(&self, met: &Meteo) -> Grid2d {
        let mut grid = Grid2d::zeros(self.cells, self.cells);
        let step = self.domain_m / self.cells as f64;
        for gy in 0..self.cells {
            for gx in 0..self.cells {
                let rx = (gx as f64 + 0.5) * step;
                let ry = (gy as f64 + 0.5) * step;
                let c: f64 =
                    self.stacks.iter().map(|s| Self::stack_concentration(s, met, rx, ry)).sum();
                grid.set(gx, gy, c);
            }
        }
        grid
    }

    /// Computes the ground-level concentration grid (µg/m³).
    ///
    /// Vectorized hot path: per grid row and stack, all per-stack and
    /// per-row constants (rotation, Briggs coefficients, emission scale,
    /// the `dy` term of the rotation) are hoisted, and the inner loop
    /// over receptor columns runs branch-free in 8-lane chunks — the
    /// upwind cutoff becomes a multiply by a 0/1 mask and `exp` is the
    /// polynomial [`everest_ir::simd::exp_approx`] (~1e-12 relative).
    pub fn concentration_grid(&self, met: &Meteo) -> Grid2d {
        use everest_ir::simd::{exp_approx, LANES};
        let mut grid = Grid2d::zeros(self.cells, self.cells);
        let cells = self.cells;
        let step = self.domain_m / cells as f64;
        let cosd = met.wind_dir_rad.cos();
        let sind = met.wind_dir_rad.sin();
        let briggs = met.stability.briggs();
        let u = met.wind_ms.max(0.5);
        let data = grid.as_mut_slice();
        for stack in &self.stacks {
            let q = stack.emission_g_s * 1e6; // µg/s
            let h2 = stack.height_m * stack.height_m;
            let scale = q / (2.0 * std::f64::consts::PI * u);
            for gy in 0..cells {
                let ry = (gy as f64 + 0.5) * step;
                let dy = ry - stack.y_m;
                // Per-row pieces of the plume-coordinate rotation: the
                // column terms below add the dx contribution lane-wise.
                let down_row = dy * sind - stack.x_m * cosd;
                let cross_row = dy * cosd + stack.x_m * sind;
                let row = &mut data[gy * cells..(gy + 1) * cells];
                let one = |gx: usize| {
                    let rx = (gx as f64 + 0.5) * step;
                    let downwind = rx * cosd + down_row;
                    let crosswind = -rx * sind + cross_row;
                    let mask = if downwind > 1.0 { 1.0 } else { 0.0 };
                    let x = downwind.max(1.0);
                    let (sy, sz) = briggs.sigmas(x);
                    let base = scale / (sy * sz);
                    let lateral = exp_approx(-crosswind * crosswind / (2.0 * sy * sy));
                    let vertical = 2.0 * exp_approx(-h2 / (2.0 * sz * sz));
                    mask * base * lateral * vertical
                };
                let mut gx = 0;
                while gx + LANES <= cells {
                    let mut acc = [0.0f64; LANES];
                    for (l, a) in acc.iter_mut().enumerate() {
                        *a = one(gx + l);
                    }
                    for (slot, a) in row[gx..gx + LANES].iter_mut().zip(acc) {
                        *slot += a;
                    }
                    gx += LANES;
                }
                for gx in gx..cells {
                    row[gx] += one(gx);
                }
            }
        }
        grid
    }

    /// Fraction of the domain exceeding `threshold` µg/m³ and the peak
    /// concentration.
    pub fn exceedance(&self, met: &Meteo, threshold: f64) -> (f64, f64) {
        let grid = self.concentration_grid(met);
        let over = grid.as_slice().iter().filter(|c| **c > threshold).count();
        (over as f64 / (self.cells * self.cells) as f64, grid.max())
    }

    /// The operational decision the service supports: should production be
    /// delayed for the forecast meteo sequence? Returns the hours whose
    /// peak exceeds the limit.
    pub fn delay_hours(&self, forecast: &[Meteo], limit: f64) -> Vec<usize> {
        forecast
            .iter()
            .enumerate()
            .filter(|(_, met)| self.exceedance(met, limit).1 > limit)
            .map(|(h, _)| h)
            .collect()
    }
}

/// A representative two-stack industrial site on a 10-km domain.
pub fn reference_site(cells: usize) -> PlumeModel {
    PlumeModel::new(
        10_000.0,
        cells,
        vec![
            Stack { x_m: 2_000.0, y_m: 5_000.0, emission_g_s: 80.0, height_m: 50.0 },
            Stack { x_m: 2_500.0, y_m: 5_400.0, emission_g_s: 40.0, height_m: 30.0 },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn met(wind: f64, dir: f64, stab: Stability) -> Meteo {
        Meteo { wind_ms: wind, wind_dir_rad: dir, stability: stab }
    }

    #[test]
    fn no_concentration_upwind() {
        let s = Stack { x_m: 5_000.0, y_m: 5_000.0, emission_g_s: 100.0, height_m: 20.0 };
        let m = met(5.0, 0.0, Stability::D);
        assert_eq!(PlumeModel::stack_concentration(&s, &m, 4_000.0, 5_000.0), 0.0);
        assert!(PlumeModel::stack_concentration(&s, &m, 6_000.0, 5_000.0) > 0.0);
    }

    #[test]
    fn concentration_decays_off_axis() {
        let s = Stack { x_m: 0.0, y_m: 5_000.0, emission_g_s: 100.0, height_m: 20.0 };
        let m = met(5.0, 0.0, Stability::D);
        let on_axis = PlumeModel::stack_concentration(&s, &m, 2_000.0, 5_000.0);
        let off_axis = PlumeModel::stack_concentration(&s, &m, 2_000.0, 5_600.0);
        assert!(on_axis > 10.0 * off_axis, "on {on_axis} vs off {off_axis}");
    }

    #[test]
    fn stronger_wind_dilutes() {
        let s = Stack { x_m: 0.0, y_m: 0.0, emission_g_s: 100.0, height_m: 10.0 };
        let calm = PlumeModel::stack_concentration(&s, &met(2.0, 0.0, Stability::D), 1_500.0, 0.0);
        let windy =
            PlumeModel::stack_concentration(&s, &met(10.0, 0.0, Stability::D), 1_500.0, 0.0);
        assert!(calm > windy);
    }

    #[test]
    fn stable_atmosphere_keeps_plume_concentrated() {
        let s = Stack { x_m: 0.0, y_m: 0.0, emission_g_s: 100.0, height_m: 10.0 };
        let unstable =
            PlumeModel::stack_concentration(&s, &met(4.0, 0.0, Stability::A), 3_000.0, 0.0);
        let stable =
            PlumeModel::stack_concentration(&s, &met(4.0, 0.0, Stability::F), 3_000.0, 0.0);
        assert!(stable > unstable, "stable {stable} vs unstable {unstable}");
    }

    #[test]
    fn wind_direction_rotates_plume() {
        let model = reference_site(40);
        let east = model.concentration_grid(&met(5.0, 0.0, Stability::C));
        let north = model.concentration_grid(&met(5.0, std::f64::consts::FRAC_PI_2, Stability::C));
        // Receptor straight east of the stacks.
        let step = model.domain_m / model.cells as f64;
        let (ex, ey) = (((7_000.0 / step) as usize).min(39), ((5_000.0 / step) as usize).min(39));
        assert!(east.at(ex, ey) > north.at(ex, ey));
    }

    #[test]
    fn exceedance_fraction_behaves() {
        let model = reference_site(32);
        let m = met(3.0, 0.0, Stability::B);
        let (frac_low, peak) = model.exceedance(&m, 0.1);
        let (frac_high, _) = model.exceedance(&m, peak * 2.0);
        assert!(frac_low > 0.0);
        assert_eq!(frac_high, 0.0);
    }

    #[test]
    fn delay_decision_follows_meteo() {
        let model = reference_site(24);
        // Night: stable, light wind (bad dispersion). Day: unstable, windy.
        let forecast = vec![
            met(1.5, 0.0, Stability::F),
            met(1.5, 0.0, Stability::F),
            met(6.0, 0.0, Stability::B),
            met(8.0, 0.0, Stability::A),
        ];
        // Pick a limit between the calm-night peak and the windy-day peak.
        let night_peak = model.exceedance(&forecast[0], 0.0).1;
        let day_peak = model.exceedance(&forecast[3], 0.0).1;
        assert!(night_peak > day_peak);
        let limit = day_peak * 2.0;
        let hours = model.delay_hours(&forecast, limit);
        assert!(hours.contains(&0) && hours.contains(&1));
        assert!(!hours.contains(&3));
    }

    #[test]
    fn vectorized_grid_matches_scalar_reference_at_1e6() {
        let model = reference_site(53); // deliberately not a multiple of 8
        for met in [
            met(3.0, 0.3, Stability::A),
            met(5.0, 2.1, Stability::C),
            met(1.5, -0.7, Stability::F),
            met(8.0, std::f64::consts::PI, Stability::D),
        ] {
            let fast = model.concentration_grid(&met);
            let exact = model.concentration_grid_scalar(&met);
            let peak = exact.max().max(1e-30);
            for (i, (f, e)) in fast.as_slice().iter().zip(exact.as_slice()).enumerate() {
                let tol = 1e-6 * (1.0 + peak);
                assert!((f - e).abs() <= tol, "cell {i}: {f} vs {e} (peak {peak})");
            }
        }
    }

    #[test]
    fn grid_resolution_refines_peak_estimate() {
        let coarse = reference_site(16);
        let fine = reference_site(96);
        let m = met(3.0, 0.3, Stability::C);
        let peak_coarse = coarse.exceedance(&m, 0.0).1;
        let peak_fine = fine.exceedance(&m, 0.0).1;
        // Finer grids resolve the narrow plume core: peak must not shrink.
        assert!(peak_fine >= peak_coarse);
    }
}
