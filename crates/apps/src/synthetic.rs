//! Seeded synthetic-data primitives: smooth random 2-D fields (summed
//! randomized harmonics) and diurnal time profiles. Everything is
//! deterministic in the seed so experiments reproduce bit-for-bit.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A dense row-major 2-D grid of `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2d {
    /// Number of columns.
    pub nx: usize,
    /// Number of rows.
    pub ny: usize,
    data: Vec<f64>,
}

impl Grid2d {
    /// Creates a zero-filled grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(nx: usize, ny: usize) -> Grid2d {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        Grid2d { nx, ny, data: vec![0.0; nx * ny] }
    }

    /// Value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn at(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.nx && y < self.ny, "grid index out of bounds");
        self.data[y * self.nx + x]
    }

    /// Sets the value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        assert!(x < self.nx && y < self.ny, "grid index out of bounds");
        self.data[y * self.nx + x] = v;
    }

    /// Immutable access to the raw samples (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw samples (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Bilinear sample at fractional coordinates (clamped to the border).
    pub fn sample(&self, fx: f64, fy: f64) -> f64 {
        let fx = fx.clamp(0.0, (self.nx - 1) as f64);
        let fy = fy.clamp(0.0, (self.ny - 1) as f64);
        let (x0, y0) = (fx.floor() as usize, fy.floor() as usize);
        let (x1, y1) = ((x0 + 1).min(self.nx - 1), (y0 + 1).min(self.ny - 1));
        let (tx, ty) = (fx - x0 as f64, fy - y0 as f64);
        let a = self.at(x0, y0) * (1.0 - tx) + self.at(x1, y0) * tx;
        let b = self.at(x0, y1) * (1.0 - tx) + self.at(x1, y1) * tx;
        a * (1.0 - ty) + b * ty
    }

    /// Root-mean-square difference against another grid of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn rmse(&self, other: &Grid2d) -> f64 {
        assert_eq!((self.nx, self.ny), (other.nx, other.ny), "grid shapes differ");
        let sum: f64 = self.data.iter().zip(&other.data).map(|(a, b)| (a - b) * (a - b)).sum();
        (sum / self.data.len() as f64).sqrt()
    }
}

/// Generates a smooth random field in `[lo, hi]` by summing `octaves`
/// randomized harmonics: low frequencies dominate, like real
/// meteorological fields.
pub fn smooth_field(seed: u64, nx: usize, ny: usize, lo: f64, hi: f64, octaves: u32) -> Grid2d {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut grid = Grid2d::zeros(nx, ny);
    let mut components = Vec::new();
    for o in 0..octaves.max(1) {
        let freq = 2.0f64.powi(o as i32);
        let amp = 1.0 / freq;
        let kx = rng.gen_range(0.5..2.0) * freq * std::f64::consts::TAU / nx as f64;
        let ky = rng.gen_range(0.5..2.0) * freq * std::f64::consts::TAU / ny as f64;
        let phase_x: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let phase_y: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        components.push((amp, kx, ky, phase_x, phase_y));
    }
    let mut min_v = f64::INFINITY;
    let mut max_v = f64::NEG_INFINITY;
    for y in 0..ny {
        for x in 0..nx {
            let mut v = 0.0;
            for (amp, kx, ky, px, py) in &components {
                v += amp * ((x as f64 * kx + px).sin() + (y as f64 * ky + py).cos());
            }
            grid.set(x, y, v);
            min_v = min_v.min(v);
            max_v = max_v.max(v);
        }
    }
    // Normalize into [lo, hi].
    let span = (max_v - min_v).max(1e-12);
    for v in &mut grid.data {
        *v = lo + (hi - lo) * (*v - min_v) / span;
    }
    grid
}

/// A 24-hour diurnal profile: `base + amplitude * sin(peak-centred)` with
/// optional seeded jitter, sampled hourly.
pub fn diurnal_profile(
    seed: u64,
    base: f64,
    amplitude: f64,
    peak_hour: f64,
    jitter: f64,
) -> [f64; 24] {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = [0.0; 24];
    for (h, slot) in out.iter_mut().enumerate() {
        let phase = (h as f64 - peak_hour) / 24.0 * std::f64::consts::TAU;
        let noise: f64 = if jitter > 0.0 { rng.gen_range(-jitter..jitter) } else { 0.0 };
        *slot = base + amplitude * phase.cos() + noise;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_basics() {
        let mut g = Grid2d::zeros(4, 3);
        g.set(2, 1, 5.0);
        assert_eq!(g.at(2, 1), 5.0);
        assert_eq!(g.as_slice().len(), 12);
        assert!((g.mean() - 5.0 / 12.0).abs() < 1e-12);
        assert_eq!(g.max(), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn grid_bounds_checked() {
        Grid2d::zeros(2, 2).at(2, 0);
    }

    #[test]
    fn bilinear_sampling_interpolates() {
        let mut g = Grid2d::zeros(2, 2);
        g.set(0, 0, 0.0);
        g.set(1, 0, 10.0);
        g.set(0, 1, 20.0);
        g.set(1, 1, 30.0);
        assert!((g.sample(0.5, 0.0) - 5.0).abs() < 1e-12);
        assert!((g.sample(0.0, 0.5) - 10.0).abs() < 1e-12);
        assert!((g.sample(0.5, 0.5) - 15.0).abs() < 1e-12);
        // Clamped outside.
        assert_eq!(g.sample(-5.0, -5.0), 0.0);
    }

    #[test]
    fn smooth_field_respects_bounds_and_seed() {
        let a = smooth_field(1, 32, 32, -5.0, 40.0, 4);
        let b = smooth_field(1, 32, 32, -5.0, 40.0, 4);
        let c = smooth_field(2, 32, 32, -5.0, 40.0, 4);
        assert_eq!(a, b, "same seed reproduces");
        assert_ne!(a, c, "different seed differs");
        for v in a.as_slice() {
            assert!((-5.0..=40.0).contains(v));
        }
    }

    #[test]
    fn smooth_field_is_smooth() {
        let g = smooth_field(3, 64, 64, 0.0, 1.0, 3);
        // Neighbouring samples differ far less than the full range.
        let mut max_step: f64 = 0.0;
        for y in 0..64 {
            for x in 1..64 {
                max_step = max_step.max((g.at(x, y) - g.at(x - 1, y)).abs());
            }
        }
        assert!(max_step < 0.35, "max neighbour step {max_step}");
    }

    #[test]
    fn rmse_zero_for_identical() {
        let g = smooth_field(4, 16, 16, 0.0, 1.0, 3);
        assert_eq!(g.rmse(&g), 0.0);
    }

    #[test]
    fn diurnal_profile_peaks_near_requested_hour() {
        let p = diurnal_profile(5, 10.0, 4.0, 14.0, 0.0);
        let peak = p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(h, _)| h).unwrap();
        assert_eq!(peak, 14);
        assert!(p.iter().all(|v| (6.0..=14.0).contains(v)));
    }
}
