//! # everest-apps — the three EVEREST industrial use cases
//!
//! The project drives its research with three HPDA applications (paper
//! Section VI). The real deployments consume proprietary data (NWP
//! ensembles, Plum'air emissions, Sygic floating-car data); this crate
//! substitutes statistically-shaped synthetic generators so every
//! experiment is reproducible on a laptop:
//!
//! * [`weather`] — **renewable-energy prediction** (VI-A): synthetic NWP
//!   ensembles on coarse grids, downscaling, a wind-farm power curve and an
//!   MLP regressor, with the day-ahead imbalance-cost model the use case
//!   optimizes;
//! * [`airquality`] — **industrial air-quality monitoring** (VI-B):
//!   Gaussian-plume dispersion of point sources over a ≤10 km domain with
//!   exceedance detection for production-delay decisions;
//! * [`traffic`] — **intelligent transportation** (VI-C): synthetic road
//!   networks, floating-car-data generation, speed-profile learning,
//!   probabilistic time-dependent routing (PTDR, ref \[37\]) by Monte-Carlo
//!   sampling, and a macroscopic traffic simulator with O/D demand;
//! * [`mlp`] — a small from-scratch neural network shared by the use
//!   cases;
//! * [`synthetic`] — seeded smooth-field and time-series generators.

// Index arithmetic over flat buffers (strided weights, grids, particle
// arrays) reads better as explicit loops than as iterator chains here.
#![allow(clippy::needless_range_loop)]

pub mod airquality;
pub mod micro;
pub mod mlp;
pub mod particles;
pub mod synthetic;
pub mod traffic;
pub mod weather;
