//! A small multi-layer perceptron, from scratch: dense layers, ReLU
//! hidden activations, linear output, mean-squared-error SGD training.
//! This is the "deep learning model trying to characterize the complex
//! input/output relationship of the given power plant" (paper VI-A) at
//! laptop scale.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One dense layer: `y = act(W x + b)`.
#[derive(Debug, Clone)]
struct Dense {
    weights: Vec<f64>, // out x in, row-major
    bias: Vec<f64>,
    inputs: usize,
    outputs: usize,
    relu: bool,
}

impl Dense {
    fn new(rng: &mut ChaCha8Rng, inputs: usize, outputs: usize, relu: bool) -> Dense {
        let scale = (2.0 / inputs as f64).sqrt();
        let weights = (0..inputs * outputs).map(|_| rng.gen_range(-scale..scale)).collect();
        Dense { weights, bias: vec![0.0; outputs], inputs, outputs, relu }
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut pre = vec![0.0; self.outputs];
        for o in 0..self.outputs {
            let mut acc = self.bias[o];
            for i in 0..self.inputs {
                acc += self.weights[o * self.inputs + i] * x[i];
            }
            pre[o] = acc;
        }
        let post = if self.relu { pre.iter().map(|v| v.max(0.0)).collect() } else { pre.clone() };
        (pre, post)
    }
}

/// A feed-forward regressor with ReLU hidden layers and a linear output.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Creates an MLP with the given layer widths, e.g. `[4, 16, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn new(seed: u64, widths: &[usize]) -> Mlp {
        assert!(widths.len() >= 2, "need input and output widths");
        assert!(widths.iter().all(|w| *w > 0), "zero-width layer");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut layers = Vec::new();
        for w in widths.windows(2).enumerate() {
            let (idx, pair) = w;
            let last = idx + 2 == widths.len();
            layers.push(Dense::new(&mut rng, pair[0], pair[1], !last));
        }
        Mlp { layers }
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len() + l.bias.len()).sum()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the input width.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.layers[0].inputs, "input width mismatch");
        let mut cur = x.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur).1;
        }
        cur
    }

    /// One SGD step on a single sample; returns the sample's MSE loss
    /// before the update.
    pub fn train_step(&mut self, x: &[f64], target: &[f64], lr: f64) -> f64 {
        // Forward, caching activations.
        let mut activations: Vec<Vec<f64>> = vec![x.to_vec()];
        let mut pre_acts: Vec<Vec<f64>> = Vec::new();
        for layer in &self.layers {
            let (pre, post) = layer.forward(activations.last().expect("nonempty"));
            pre_acts.push(pre);
            activations.push(post);
        }
        let out = activations.last().expect("output layer ran");
        let loss: f64 =
            out.iter().zip(target).map(|(o, t)| (o - t) * (o - t)).sum::<f64>() / out.len() as f64;

        // Backward.
        let mut grad: Vec<f64> =
            out.iter().zip(target).map(|(o, t)| 2.0 * (o - t) / out.len() as f64).collect();
        for (li, layer) in self.layers.iter_mut().enumerate().rev() {
            // Through the activation.
            if layer.relu {
                for (g, pre) in grad.iter_mut().zip(&pre_acts[li]) {
                    if *pre <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            let input = &activations[li];
            let mut grad_in = vec![0.0; layer.inputs];
            for o in 0..layer.outputs {
                for i in 0..layer.inputs {
                    grad_in[i] += layer.weights[o * layer.inputs + i] * grad[o];
                    layer.weights[o * layer.inputs + i] -= lr * grad[o] * input[i];
                }
                layer.bias[o] -= lr * grad[o];
            }
            grad = grad_in;
        }
        loss
    }

    /// Trains for `epochs` passes over the dataset; returns the mean loss
    /// of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `targets` lengths differ or are empty.
    pub fn fit(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        epochs: usize,
        lr: f64,
    ) -> f64 {
        assert_eq!(inputs.len(), targets.len(), "dataset size mismatch");
        assert!(!inputs.is_empty(), "empty dataset");
        let mut last = f64::INFINITY;
        for _ in 0..epochs {
            let mut sum = 0.0;
            for (x, t) in inputs.iter().zip(targets) {
                sum += self.train_step(x, t, lr);
            }
            last = sum / inputs.len() as f64;
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_count() {
        let net = Mlp::new(0, &[3, 8, 2]);
        assert_eq!(net.num_params(), 3 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn learns_a_linear_function() {
        let mut net = Mlp::new(1, &[2, 8, 1]);
        let inputs: Vec<Vec<f64>> =
            (0..100).map(|i| vec![(i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0]).collect();
        let targets: Vec<Vec<f64>> =
            inputs.iter().map(|x| vec![3.0 * x[0] - 2.0 * x[1] + 0.5]).collect();
        let loss = net.fit(&inputs, &targets, 300, 0.05);
        assert!(loss < 1e-3, "final loss {loss}");
        let pred = net.predict(&[0.5, 0.5])[0];
        assert!((pred - (1.5 - 1.0 + 0.5)).abs() < 0.1, "prediction {pred}");
    }

    #[test]
    fn learns_a_nonlinear_function() {
        let mut net = Mlp::new(2, &[1, 16, 16, 1]);
        let inputs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0]).collect();
        let targets: Vec<Vec<f64>> =
            inputs.iter().map(|x| vec![(x[0] * std::f64::consts::PI).sin()]).collect();
        let loss = net.fit(&inputs, &targets, 800, 0.05);
        assert!(loss < 5e-3, "final loss {loss}");
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = Mlp::new(3, &[2, 6, 1]);
        let inputs = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0], vec![0.0, 0.0]];
        let targets = vec![vec![1.0], vec![1.0], vec![0.0], vec![0.0]];
        let first = net.fit(&inputs, &targets, 1, 0.1);
        let last = net.fit(&inputs, &targets, 200, 0.1);
        assert!(last < first);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Mlp::new(7, &[2, 4, 1]).predict(&[0.3, 0.7]);
        let b = Mlp::new(7, &[2, 4, 1]).predict(&[0.3, 0.7]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        Mlp::new(0, &[2, 1]).predict(&[1.0]);
    }
}
