//! Use case VI-A: weather-based prediction for renewable-energy trading.
//!
//! "Renewable energy production forecasting systems currently rely on an
//! ensemble of meteorological predictions provided by global circulation
//! models with grid spacing between 15 and 25 km and hourly temporal
//! resolution ... EVEREST \[will\] increase the resolution of weather
//! forecast ensembles to better predict high-localized meteorological
//! variations" and "forecast the energy produced by a wind farm in the
//! next day with a 24-hour prediction on a hourly basis".
//!
//! Substitution: real NWP ensembles are proprietary; we synthesize a
//! high-resolution "truth" wind field with realistic spatial smoothness
//! and a diurnal cycle, derive coarse ensembles from it (block-averaging +
//! member perturbations), and evaluate the forecast pipeline end to end.

use crate::mlp::Mlp;
use crate::synthetic::{diurnal_profile, smooth_field, Grid2d};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Hours in the day-ahead forecast window.
pub const HOURS: usize = 24;

/// A 24-hour sequence of wind-speed fields (m/s) at some resolution.
#[derive(Debug, Clone)]
pub struct WindSeries {
    /// Hourly fields.
    pub hourly: Vec<Grid2d>,
    /// Grid spacing in km.
    pub resolution_km: f64,
}

impl WindSeries {
    /// Grid cells per field.
    pub fn cells(&self) -> usize {
        self.hourly.first().map(|g| g.nx * g.ny).unwrap_or(0)
    }
}

/// Generates the synthetic ground-truth wind field: `domain_km` square at
/// `resolution_km` spacing, hourly, with a diurnal breeze cycle and
/// small-scale evolution.
pub fn generate_truth(seed: u64, domain_km: f64, resolution_km: f64) -> WindSeries {
    let n = (domain_km / resolution_km).round().max(2.0) as usize;
    let cycle = diurnal_profile(seed ^ 0x5eed, 8.0, 3.0, 15.0, 0.0);
    let mut hourly = Vec::with_capacity(HOURS);
    for h in 0..HOURS {
        // The spatial pattern evolves slowly: blend two seeded fields.
        let a = smooth_field(seed.wrapping_add(h as u64 / 6), n, n, 0.0, 1.0, 4);
        let b = smooth_field(seed.wrapping_add(h as u64 / 6 + 1), n, n, 0.0, 1.0, 4);
        let t = (h % 6) as f64 / 6.0;
        let mut field = Grid2d::zeros(n, n);
        for y in 0..n {
            for x in 0..n {
                let blended = a.at(x, y) * (1.0 - t) + b.at(x, y) * t;
                // Scale pattern into m/s around the diurnal mean.
                field.set(x, y, (cycle[h] * (0.6 + 0.8 * blended)).max(0.0));
            }
        }
        hourly.push(field);
    }
    WindSeries { hourly, resolution_km }
}

/// Block-averages a fine field down to `n` x `n`.
fn coarsen(fine: &Grid2d, n: usize) -> Grid2d {
    let mut coarse = Grid2d::zeros(n, n);
    let fx = fine.nx as f64 / n as f64;
    let fy = fine.ny as f64 / n as f64;
    for cy in 0..n {
        for cx in 0..n {
            let (x0, x1) =
                ((cx as f64 * fx) as usize, (((cx + 1) as f64 * fx) as usize).min(fine.nx));
            let (y0, y1) =
                ((cy as f64 * fy) as usize, (((cy + 1) as f64 * fy) as usize).min(fine.ny));
            let mut sum = 0.0;
            let mut count = 0.0;
            for y in y0..y1.max(y0 + 1) {
                for x in x0..x1.max(x0 + 1) {
                    sum += fine.at(x.min(fine.nx - 1), y.min(fine.ny - 1));
                    count += 1.0;
                }
            }
            coarse.set(cx, cy, sum / count);
        }
    }
    coarse
}

/// An ensemble of perturbed coarse forecasts derived from the truth.
#[derive(Debug, Clone)]
pub struct Ensemble {
    /// Member forecasts (all at the same coarse resolution).
    pub members: Vec<WindSeries>,
}

impl Ensemble {
    /// Builds a `members`-strong ensemble at `resolution_km` from the
    /// fine-resolution `truth`: block-average then add member-specific
    /// correlated errors (bias + amplitude).
    ///
    /// # Panics
    ///
    /// Panics if `resolution_km` is coarser than the whole domain or
    /// `members == 0`.
    pub fn from_truth(
        truth: &WindSeries,
        resolution_km: f64,
        members: usize,
        seed: u64,
    ) -> Ensemble {
        assert!(members > 0, "ensemble needs members");
        let domain_km = truth.hourly[0].nx as f64 * truth.resolution_km;
        let n = (domain_km / resolution_km).round().max(1.0) as usize;
        assert!(n >= 1, "resolution coarser than domain");
        let mut out = Vec::with_capacity(members);
        for member in 0..members as u64 {
            // Member characteristics come from a stream that does not
            // depend on the grid size, so the *same* physical ensemble is
            // compared across resolutions (only the sampling differs).
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(member));
            let bias: f64 = rng.gen_range(-0.8..0.8);
            let gain: f64 = rng.gen_range(0.85..1.15);
            let hourly = truth
                .hourly
                .iter()
                .map(|fine| {
                    let mut c = coarsen(fine, n);
                    for y in 0..c.ny {
                        for x in 0..c.nx {
                            let noisy =
                                (c.at(x, y) * gain + bias + rng.gen_range(-0.4..0.4)).max(0.0);
                            c.set(x, y, noisy);
                        }
                    }
                    c
                })
                .collect();
            out.push(WindSeries { hourly, resolution_km });
        }
        Ensemble { members: out }
    }

    /// Ensemble-mean wind at fractional truth-grid coordinates, per hour.
    pub fn mean_wind_at(&self, fx: f64, fy: f64, truth_nx: usize) -> Vec<f64> {
        let mut out = vec![0.0; HOURS];
        for member in &self.members {
            let n = member.hourly[0].nx;
            let scale = n as f64 / truth_nx as f64;
            for (h, field) in member.hourly.iter().enumerate() {
                out[h] += field.sample(fx * scale, fy * scale);
            }
        }
        for v in &mut out {
            *v /= self.members.len() as f64;
        }
        out
    }
}

/// A wind farm: turbine positions on the truth grid plus rated power.
#[derive(Debug, Clone)]
pub struct WindFarm {
    /// Turbine coordinates in truth-grid cells.
    pub turbines: Vec<(f64, f64)>,
    /// Rated power per turbine, MW.
    pub rated_mw: f64,
}

impl WindFarm {
    /// A clustered farm of `n` turbines around the domain centre.
    pub fn clustered(seed: u64, n: usize, grid_n: usize) -> WindFarm {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let c = grid_n as f64 / 2.0;
        let spread = grid_n as f64 / 6.0;
        let turbines = (0..n)
            .map(|_| {
                (
                    (c + rng.gen_range(-spread..spread)).clamp(0.0, (grid_n - 1) as f64),
                    (c + rng.gen_range(-spread..spread)).clamp(0.0, (grid_n - 1) as f64),
                )
            })
            .collect();
        WindFarm { turbines, rated_mw: 3.0 }
    }

    /// IEC-style power curve: 0 below cut-in (3 m/s), cubic ramp to rated
    /// (12 m/s), flat to cut-out (25 m/s), then 0.
    pub fn power_fraction(wind_ms: f64) -> f64 {
        const CUT_IN: f64 = 3.0;
        const RATED: f64 = 12.0;
        const CUT_OUT: f64 = 25.0;
        if !(CUT_IN..CUT_OUT).contains(&wind_ms) {
            0.0
        } else if wind_ms >= RATED {
            1.0
        } else {
            let x = (wind_ms.powi(3) - CUT_IN.powi(3)) / (RATED.powi(3) - CUT_IN.powi(3));
            x.clamp(0.0, 1.0)
        }
    }

    /// Farm output in MW for one wind field (sampled at each turbine).
    pub fn power_mw(&self, field: &Grid2d) -> f64 {
        self.turbines
            .iter()
            .map(|(x, y)| Self::power_fraction(field.sample(*x, *y)) * self.rated_mw)
            .sum()
    }

    /// Hourly farm output for a full series.
    pub fn hourly_power_mw(&self, series: &WindSeries) -> Vec<f64> {
        series.hourly.iter().map(|f| self.power_mw(f)).collect()
    }
}

/// Day-ahead forecast evaluation: per-hour predicted vs actual power.
#[derive(Debug, Clone)]
pub struct ForecastReport {
    /// Predicted MW per hour.
    pub predicted_mw: Vec<f64>,
    /// Actual MW per hour.
    pub actual_mw: Vec<f64>,
}

impl ForecastReport {
    /// Root-mean-square error in MW.
    pub fn rmse_mw(&self) -> f64 {
        let n = self.predicted_mw.len() as f64;
        let sum: f64 =
            self.predicted_mw.iter().zip(&self.actual_mw).map(|(p, a)| (p - a) * (p - a)).sum();
        (sum / n).sqrt()
    }

    /// Imbalance cost: €/MWh penalty per MWh of absolute deviation
    /// ("reducing the cost of imbalance" is the use case's business goal).
    pub fn imbalance_cost_eur(&self, penalty_eur_per_mwh: f64) -> f64 {
        self.predicted_mw
            .iter()
            .zip(&self.actual_mw)
            .map(|(p, a)| (p - a).abs() * penalty_eur_per_mwh)
            .sum()
    }
}

/// Forecasts day-ahead farm power by averaging per-member power (the
/// standard ensemble approach).
pub fn ensemble_power_forecast(ensemble: &Ensemble, farm: &WindFarm, truth_nx: usize) -> Vec<f64> {
    let mut out = vec![0.0; HOURS];
    for member in &ensemble.members {
        let n = member.hourly[0].nx;
        let scale = n as f64 / truth_nx as f64;
        for (h, field) in member.hourly.iter().enumerate() {
            let p: f64 = farm
                .turbines
                .iter()
                .map(|(x, y)| {
                    WindFarm::power_fraction(field.sample(x * scale, y * scale)) * farm.rated_mw
                })
                .sum();
            out[h] += p;
        }
    }
    for v in &mut out {
        *v /= ensemble.members.len() as f64;
    }
    out
}

/// Runs the full pipeline at one ensemble resolution and reports accuracy.
pub fn evaluate_resolution(
    seed: u64,
    domain_km: f64,
    truth_res_km: f64,
    ensemble_res_km: f64,
    members: usize,
) -> ForecastReport {
    let truth = generate_truth(seed, domain_km, truth_res_km);
    let grid_n = truth.hourly[0].nx;
    let farm = WindFarm::clustered(seed ^ 0xfa53, 12, grid_n);
    let ensemble = Ensemble::from_truth(&truth, ensemble_res_km, members, seed ^ 0xe5);
    ForecastReport {
        predicted_mw: ensemble_power_forecast(&ensemble, &farm, grid_n),
        actual_mw: farm.hourly_power_mw(&truth),
    }
}

/// Trains an MLP corrector on historical days and applies it to a new day
/// ("thanks to AI tools, we will combine the resulting weather models with
/// historical data"). Returns (raw, corrected) reports for the test day.
pub fn mlp_corrected_forecast(
    seed: u64,
    training_days: usize,
    ensemble_res_km: f64,
) -> (ForecastReport, ForecastReport) {
    let domain_km = 50.0;
    let truth_res = 2.0;
    // Larger ensembles suppress the random member bias so the *systematic*
    // error (coarse averaging through the convex power curve) dominates —
    // that is the signal the corrector learns.
    let members = 12;
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    for day in 0..training_days as u64 {
        let report =
            evaluate_resolution(seed + day, domain_km, truth_res, ensemble_res_km, members);
        for h in 0..HOURS {
            inputs.push(vec![report.predicted_mw[h] / 40.0, h as f64 / 24.0]);
            targets.push(vec![report.actual_mw[h] / 40.0]);
        }
    }
    let mut net = Mlp::new(seed, &[2, 12, 1]);
    net.fit(&inputs, &targets, 300, 0.03);

    let test = evaluate_resolution(seed + 10_000, domain_km, truth_res, ensemble_res_km, members);
    let corrected: Vec<f64> = test
        .predicted_mw
        .iter()
        .enumerate()
        .map(|(h, p)| (net.predict(&[p / 40.0, h as f64 / 24.0])[0] * 40.0).max(0.0))
        .collect();
    let corrected_report =
        ForecastReport { predicted_mw: corrected, actual_mw: test.actual_mw.clone() };
    (test, corrected_report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_has_diurnal_structure() {
        let truth = generate_truth(1, 50.0, 2.0);
        assert_eq!(truth.hourly.len(), HOURS);
        assert_eq!(truth.hourly[0].nx, 25);
        let afternoon = truth.hourly[15].mean();
        let night = truth.hourly[3].mean();
        assert!(afternoon > night, "afternoon breeze {afternoon} vs night {night}");
    }

    #[test]
    fn power_curve_shape() {
        assert_eq!(WindFarm::power_fraction(1.0), 0.0);
        assert_eq!(WindFarm::power_fraction(30.0), 0.0);
        assert_eq!(WindFarm::power_fraction(15.0), 1.0);
        let half = WindFarm::power_fraction(8.0);
        assert!(half > 0.1 && half < 0.9);
        // Monotone between cut-in and rated.
        assert!(WindFarm::power_fraction(6.0) < WindFarm::power_fraction(9.0));
    }

    #[test]
    fn finer_ensembles_forecast_better() {
        // Paper claim: higher-resolution ensembles better capture localized
        // variations. Sweep 25 km -> 3 km and expect RMSE to shrink.
        let coarse = evaluate_resolution(7, 100.0, 2.0, 25.0, 5);
        let fine = evaluate_resolution(7, 100.0, 2.0, 3.0, 5);
        assert!(
            fine.rmse_mw() < coarse.rmse_mw(),
            "fine {} vs coarse {}",
            fine.rmse_mw(),
            coarse.rmse_mw()
        );
    }

    #[test]
    fn imbalance_cost_tracks_rmse() {
        let report = evaluate_resolution(3, 50.0, 2.0, 12.0, 5);
        assert!(report.imbalance_cost_eur(50.0) > 0.0);
        let perfect = ForecastReport {
            predicted_mw: report.actual_mw.clone(),
            actual_mw: report.actual_mw.clone(),
        };
        assert_eq!(perfect.imbalance_cost_eur(50.0), 0.0);
        assert_eq!(perfect.rmse_mw(), 0.0);
    }

    #[test]
    fn more_members_reduce_noise() {
        let few = evaluate_resolution(11, 50.0, 2.0, 10.0, 2);
        let many = evaluate_resolution(11, 50.0, 2.0, 10.0, 16);
        // Not guaranteed per-seed, but with matched seeds the ensemble mean
        // should not get worse by a large margin.
        assert!(many.rmse_mw() <= few.rmse_mw() * 1.2);
    }

    #[test]
    fn mlp_correction_helps() {
        let (raw, corrected) = mlp_corrected_forecast(5, 20, 20.0);
        assert!(
            corrected.rmse_mw() < raw.rmse_mw(),
            "corrected {} vs raw {}",
            corrected.rmse_mw(),
            raw.rmse_mw()
        );
    }

    #[test]
    fn ensemble_is_reproducible() {
        let t = generate_truth(9, 40.0, 2.0);
        let a = Ensemble::from_truth(&t, 10.0, 3, 1);
        let b = Ensemble::from_truth(&t, 10.0, 3, 1);
        assert_eq!(a.members[0].hourly[0], b.members[0].hourly[0]);
    }
}
