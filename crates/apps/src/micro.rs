//! Microscopic traffic simulation: the paper's traffic ecosystem combines
//! "both macro and microscopic approaches" (VI-C). This module implements
//! the Intelligent Driver Model (IDM) on a ring road — the canonical
//! microscopic setup — which reproduces the emergent stop-and-go waves
//! that make macroscopic speed profiles heavy-tailed, and provides the
//! "boosted" training sequences the prediction model learns from.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// IDM parameters (standard highway calibration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdmParams {
    /// Desired speed, m/s.
    pub v0: f64,
    /// Safe time headway, s.
    pub time_headway: f64,
    /// Maximum acceleration, m/s².
    pub a_max: f64,
    /// Comfortable deceleration, m/s².
    pub b_comf: f64,
    /// Minimum gap, m.
    pub s0: f64,
    /// Vehicle length, m.
    pub length: f64,
}

impl Default for IdmParams {
    fn default() -> IdmParams {
        IdmParams { v0: 30.0, time_headway: 1.5, a_max: 1.0, b_comf: 2.0, s0: 2.0, length: 5.0 }
    }
}

/// A ring-road microscopic simulation.
#[derive(Debug, Clone)]
pub struct RingRoad {
    /// Ring circumference, m.
    pub circumference: f64,
    params: IdmParams,
    positions: Vec<f64>,
    speeds: Vec<f64>,
}

impl RingRoad {
    /// Places `vehicles` equally spaced with small seeded speed
    /// perturbations (the perturbation nucleates the jam).
    ///
    /// # Panics
    ///
    /// Panics if the vehicles do not fit the ring.
    pub fn new(seed: u64, circumference: f64, vehicles: usize, params: IdmParams) -> RingRoad {
        assert!(vehicles as f64 * (params.length + params.s0) < circumference, "ring over-packed");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let spacing = circumference / vehicles as f64;
        let positions = (0..vehicles).map(|i| i as f64 * spacing).collect();
        let speeds =
            (0..vehicles).map(|_| (params.v0 * 0.5 + rng.gen_range(-1.0..1.0)).max(0.0)).collect();
        RingRoad { circumference, params, positions, speeds }
    }

    /// Number of vehicles.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when no vehicles are present.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// IDM acceleration of vehicle `i` given its leader.
    fn acceleration(&self, i: usize) -> f64 {
        let p = &self.params;
        let n = self.len();
        let leader = (i + 1) % n;
        let mut gap = self.positions[leader] - self.positions[i] - p.length;
        if gap < 0.0 {
            gap += self.circumference;
        }
        let gap = gap.max(0.01);
        let v = self.speeds[i];
        let dv = v - self.speeds[leader];
        let s_star =
            p.s0 + (v * p.time_headway + v * dv / (2.0 * (p.a_max * p.b_comf).sqrt())).max(0.0);
        p.a_max * (1.0 - (v / p.v0).powi(4) - (s_star / gap).powi(2))
    }

    /// Advances the simulation by `dt` seconds (ballistic update).
    pub fn step(&mut self, dt: f64) {
        let acc: Vec<f64> = (0..self.len()).map(|i| self.acceleration(i)).collect();
        for i in 0..self.len() {
            let v = (self.speeds[i] + acc[i] * dt).max(0.0);
            self.positions[i] = (self.positions[i] + v * dt).rem_euclid(self.circumference);
            self.speeds[i] = v;
        }
    }

    /// Mean speed across vehicles, m/s.
    pub fn mean_speed(&self) -> f64 {
        self.speeds.iter().sum::<f64>() / self.len() as f64
    }

    /// Speed standard deviation (stop-and-go waves show up here).
    pub fn speed_std(&self) -> f64 {
        let mean = self.mean_speed();
        let var =
            self.speeds.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / self.len() as f64;
        var.sqrt()
    }

    /// Current speeds (m/s), one per vehicle.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// Vehicle density, veh/km.
    pub fn density(&self) -> f64 {
        self.len() as f64 / (self.circumference / 1000.0)
    }

    /// Traffic flow (veh/h) at the current state: density × mean speed.
    pub fn flow_veh_h(&self) -> f64 {
        self.density() * self.mean_speed() * 3.6
    }
}

/// Simulates `seconds` of a ring at the given density and returns
/// `(mean_speed, speed_std, flow)` after the transient.
pub fn equilibrium(
    seed: u64,
    vehicles: usize,
    circumference: f64,
    seconds: f64,
) -> (f64, f64, f64) {
    let mut ring = RingRoad::new(seed, circumference, vehicles, IdmParams::default());
    let dt = 0.25;
    let steps = (seconds / dt) as usize;
    for _ in 0..steps {
        ring.step(dt);
    }
    (ring.mean_speed(), ring.speed_std(), ring.flow_veh_h())
}

/// Generates the fundamental diagram — flow vs density — by sweeping the
/// vehicle count on a fixed ring. This is the "boosted" training data the
/// macroscopic profiles consume.
pub fn fundamental_diagram(seed: u64, circumference: f64, counts: &[usize]) -> Vec<(f64, f64)> {
    counts
        .iter()
        .map(|n| {
            let mut ring = RingRoad::new(seed, circumference, *n, IdmParams::default());
            let dt = 0.25;
            for _ in 0..1200 {
                ring.step(dt);
            }
            (ring.density(), ring.flow_veh_h())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_traffic_reaches_free_flow() {
        // 10 vehicles on 2 km: plenty of room, everyone near v0.
        let (mean, std, _) = equilibrium(1, 10, 2_000.0, 300.0);
        assert!(mean > 0.9 * IdmParams::default().v0, "mean {mean}");
        assert!(std < 1.0, "free flow is homogeneous, std {std}");
    }

    #[test]
    fn dense_traffic_jams() {
        // 180 vehicles on 2 km (90 veh/km): congested regime.
        let (mean, _, _) = equilibrium(1, 180, 2_000.0, 300.0);
        assert!(mean < 0.35 * IdmParams::default().v0, "jammed mean {mean}");
    }

    #[test]
    fn fundamental_diagram_rises_then_falls() {
        let fd = fundamental_diagram(3, 2_000.0, &[10, 40, 80, 140, 200]);
        let flows: Vec<f64> = fd.iter().map(|(_, f)| *f).collect();
        let peak = flows.iter().copied().fold(0.0, f64::max);
        // Capacity is interior: both extremes below the peak.
        assert!(flows[0] < peak, "free-flow branch rises");
        assert!(*flows.last().unwrap() < peak, "congested branch falls");
        // Capacity of a single lane is ~1800-2600 veh/h for IDM.
        assert!(peak > 1_200.0 && peak < 3_200.0, "peak {peak}");
    }

    #[test]
    fn vehicles_never_collide() {
        let mut ring = RingRoad::new(5, 1_000.0, 60, IdmParams::default());
        for _ in 0..2_000 {
            ring.step(0.25);
        }
        // Check pairwise gaps along the ring order.
        let n = ring.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|a, b| ring.positions[*a].total_cmp(&ring.positions[*b]));
        for w in 0..n {
            let i = order[w];
            let j = order[(w + 1) % n];
            let mut gap = ring.positions[j] - ring.positions[i];
            if gap < 0.0 {
                gap += ring.circumference;
            }
            assert!(gap >= ring.params.length * 0.5, "vehicles {i} and {j} overlap: gap {gap}");
        }
    }

    #[test]
    fn speeds_stay_bounded() {
        let mut ring = RingRoad::new(7, 2_000.0, 100, IdmParams::default());
        for _ in 0..1_000 {
            ring.step(0.25);
            for v in ring.speeds() {
                assert!(*v >= 0.0 && *v <= IdmParams::default().v0 * 1.2);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = equilibrium(11, 50, 1_500.0, 60.0);
        let b = equilibrium(11, 50, 1_500.0, 60.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "over-packed")]
    fn overpacked_ring_rejected() {
        RingRoad::new(1, 100.0, 50, IdmParams::default());
    }
}
