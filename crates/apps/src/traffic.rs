//! Use case VI-C: traffic modeling for intelligent transportation.
//!
//! The paper's ecosystem combines "reading big sensory data" (floating car
//! data, FCD), "a traffic simulator which boosts the raw sensory data
//! dataset into rich training sequences", "a traffic prediction model",
//! and "route calculation as a service exploiting \[the\] traffic prediction
//! model" — with probabilistic time-dependent routing (PTDR, ref \[37\])
//! computed by Monte-Carlo sampling.
//!
//! Substitution: Sygic's FCD (millions of devices) is proprietary; we
//! generate synthetic FCD over synthetic road networks with realistic
//! rush-hour congestion and heavy-tailed speed noise.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BinaryHeap;

pub mod serve;
pub mod service;

/// Hour bins per day for the speed profiles.
pub const HOUR_BINS: usize = 24;

/// A directed road segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Source node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Length in km.
    pub length_km: f64,
    /// Free-flow speed, km/h.
    pub free_speed_kmh: f64,
    /// Capacity, vehicles/hour.
    pub capacity_veh_h: f64,
}

/// A directed road network.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoadNetwork {
    /// Node positions (km coordinates), for distance heuristics.
    pub nodes: Vec<(f64, f64)>,
    /// Directed edges.
    pub edges: Vec<Edge>,
}

impl RoadNetwork {
    /// Generates an `n` x `n` Manhattan-style grid with bidirectional
    /// streets, randomized speed classes and a few missing links.
    pub fn grid(seed: u64, n: usize, spacing_km: f64) -> RoadNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = RoadNetwork::default();
        for y in 0..n {
            for x in 0..n {
                net.nodes.push((x as f64 * spacing_km, y as f64 * spacing_km));
            }
        }
        let idx = |x: usize, y: usize| y * n + x;
        let add = |net: &mut RoadNetwork, a: usize, b: usize, rng: &mut ChaCha8Rng| {
            if rng.gen_bool(0.06) {
                return; // missing link
            }
            let class = rng.gen_range(0..3);
            let (speed, cap) = match class {
                0 => (50.0, 900.0),   // urban street
                1 => (70.0, 1_500.0), // arterial
                _ => (90.0, 2_200.0), // expressway
            };
            net.edges.push(Edge {
                from: a,
                to: b,
                length_km: spacing_km * rng.gen_range(1.0..1.3),
                free_speed_kmh: speed,
                capacity_veh_h: cap,
            });
        };
        for y in 0..n {
            for x in 0..n {
                if x + 1 < n {
                    add(&mut net, idx(x, y), idx(x + 1, y), &mut rng);
                    add(&mut net, idx(x + 1, y), idx(x, y), &mut rng);
                }
                if y + 1 < n {
                    add(&mut net, idx(x, y), idx(x, y + 1), &mut rng);
                    add(&mut net, idx(x, y + 1), idx(x, y), &mut rng);
                }
            }
        }
        net
    }

    /// Outgoing edge indices per node.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for (ei, e) in self.edges.iter().enumerate() {
            adj[e.from].push(ei);
        }
        adj
    }

    /// Free-flow travel time of edge `ei` in hours.
    pub fn free_time_h(&self, ei: usize) -> f64 {
        let e = &self.edges[ei];
        e.length_km / e.free_speed_kmh
    }
}

/// One floating-car-data observation: a vehicle's speed on an edge at an
/// hour of day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FcdPoint {
    /// Edge index.
    pub edge: usize,
    /// Hour of day, 0..24.
    pub hour: usize,
    /// Observed speed, km/h.
    pub speed_kmh: f64,
}

/// The (hidden) congestion multiplier used to synthesize FCD: rush hours
/// slow traffic down, expressways less than streets.
fn congestion_factor(hour: usize, capacity: f64) -> f64 {
    let rush = match hour {
        7..=9 => 0.55,
        16..=18 => 0.5,
        10..=15 => 0.8,
        _ => 0.95,
    };
    // High-capacity roads degrade less.
    let resilience = (capacity / 2_200.0).clamp(0.4, 1.0);
    rush + (1.0 - rush) * (1.0 - resilience) * 0.3
}

/// Generates `points` FCD observations across the network over `points`
/// samples (vehicle-edge-hour triples), with heavy-tailed slowdowns
/// (incidents).
pub fn generate_fcd(network: &RoadNetwork, seed: u64, points: usize) -> Vec<FcdPoint> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(points);
    for _ in 0..points {
        let edge = rng.gen_range(0..network.edges.len());
        let hour = rng.gen_range(0..HOUR_BINS);
        let e = &network.edges[edge];
        let base = e.free_speed_kmh * congestion_factor(hour, e.capacity_veh_h);
        let noise: f64 = rng.gen_range(-0.15..0.15);
        // 3% incident probability: drastic slowdown (heavy tail).
        let incident = if rng.gen_bool(0.03) { rng.gen_range(0.2..0.5) } else { 1.0 };
        let speed = (base * (1.0 + noise) * incident).clamp(3.0, e.free_speed_kmh);
        out.push(FcdPoint { edge, hour, speed_kmh: speed });
    }
    out
}

/// Learned per-edge, per-hour speed distributions (mean + std, km/h).
#[derive(Debug, Clone)]
pub struct SpeedProfiles {
    mean: Vec<[f64; HOUR_BINS]>,
    std: Vec<[f64; HOUR_BINS]>,
}

impl SpeedProfiles {
    /// Learns profiles from FCD; edges/hours without data fall back to
    /// free-flow speed with 10% spread.
    pub fn learn(network: &RoadNetwork, fcd: &[FcdPoint]) -> SpeedProfiles {
        let ne = network.edges.len();
        let mut sum = vec![[0.0f64; HOUR_BINS]; ne];
        let mut sum2 = vec![[0.0f64; HOUR_BINS]; ne];
        let mut count = vec![[0usize; HOUR_BINS]; ne];
        for p in fcd {
            sum[p.edge][p.hour] += p.speed_kmh;
            sum2[p.edge][p.hour] += p.speed_kmh * p.speed_kmh;
            count[p.edge][p.hour] += 1;
        }
        let mut mean = vec![[0.0f64; HOUR_BINS]; ne];
        let mut std = vec![[0.0f64; HOUR_BINS]; ne];
        for ei in 0..ne {
            for h in 0..HOUR_BINS {
                if count[ei][h] >= 2 {
                    let m = sum[ei][h] / count[ei][h] as f64;
                    let v = (sum2[ei][h] / count[ei][h] as f64 - m * m).max(0.0);
                    mean[ei][h] = m;
                    std[ei][h] = v.sqrt();
                } else {
                    mean[ei][h] = network.edges[ei].free_speed_kmh;
                    std[ei][h] = network.edges[ei].free_speed_kmh * 0.1;
                }
            }
        }
        SpeedProfiles { mean, std }
    }

    /// Expected speed of `edge` at `hour`.
    pub fn mean_speed(&self, edge: usize, hour: usize) -> f64 {
        self.mean[edge][hour % HOUR_BINS]
    }

    /// Speed spread of `edge` at `hour`.
    pub fn std_speed(&self, edge: usize, hour: usize) -> f64 {
        self.std[edge][hour % HOUR_BINS]
    }
}

/// Min-heap entry for [`dijkstra_route`]: (distance, node), ordered so
/// [`BinaryHeap::pop`] yields the closest frontier node first.
#[derive(PartialEq)]
struct HeapItem(f64, usize);

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.total_cmp(&self.0) // min-heap
    }
}

/// Dijkstra over an arbitrary non-negative per-edge cost, shared by the
/// profile-based and load-based routers. `adj` is the network's
/// [`RoadNetwork::adjacency`] table (passed in so callers routing many
/// pairs build it once). Returns the edge sequence from `from` to `to`,
/// or `None` when unreachable.
fn dijkstra_route(
    network: &RoadNetwork,
    adj: &[Vec<usize>],
    from: usize,
    to: usize,
    edge_cost: impl Fn(usize) -> f64,
) -> Option<Vec<usize>> {
    let mut dist = vec![f64::INFINITY; network.nodes.len()];
    let mut pred_edge = vec![usize::MAX; network.nodes.len()];
    let mut heap = BinaryHeap::new();
    dist[from] = 0.0;
    heap.push(HeapItem(0.0, from));
    while let Some(HeapItem(d, node)) = heap.pop() {
        if node == to {
            break;
        }
        if d > dist[node] {
            continue;
        }
        for &ei in &adj[node] {
            let e = &network.edges[ei];
            let nd = d + edge_cost(ei);
            if nd < dist[e.to] {
                dist[e.to] = nd;
                pred_edge[e.to] = ei;
                heap.push(HeapItem(nd, e.to));
            }
        }
    }
    if dist[to].is_infinite() {
        return None;
    }
    let mut route = Vec::new();
    let mut cur = to;
    while cur != from {
        let ei = pred_edge[cur];
        route.push(ei);
        cur = network.edges[ei].from;
    }
    route.reverse();
    Some(route)
}

/// Dijkstra over expected travel times at a fixed departure hour; returns
/// the edge sequence, or `None` when unreachable.
pub fn shortest_route(
    network: &RoadNetwork,
    profiles: &SpeedProfiles,
    from: usize,
    to: usize,
    hour: usize,
) -> Option<Vec<usize>> {
    let adj = network.adjacency();
    dijkstra_route(network, &adj, from, to, |ei| {
        network.edges[ei].length_km / profiles.mean_speed(ei, hour).max(3.0)
    })
}

/// Travel-time distribution estimated by PTDR Monte-Carlo sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TravelTimeStats {
    /// Mean travel time, hours.
    pub mean_h: f64,
    /// 95th percentile, hours.
    pub p95_h: f64,
    /// Standard deviation, hours.
    pub std_h: f64,
}

/// Probabilistic time-dependent routing (ref \[37\]): samples segment speeds
/// from the learned distributions, advancing the clock along the route so
/// later segments see the hour they are actually traversed.
///
/// Delegates to the batched SoA engine in [`service`]; the original
/// scalar implementation survives as
/// [`service::ptdr_travel_time_reference`] for validation and as the
/// benchmark baseline.
pub fn ptdr_travel_time(
    network: &RoadNetwork,
    profiles: &SpeedProfiles,
    route: &[usize],
    depart_hour: f64,
    samples: usize,
    seed: u64,
) -> TravelTimeStats {
    let mut engine: service::PtdrEngine = service::PtdrEngine::new();
    engine.estimate(network, profiles, route, depart_hour, samples, seed)
}

/// An origin/destination demand entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdPair {
    /// Origin node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Demand, vehicles per hour.
    pub vehicles_h: f64,
}

/// Generates a random O/D matrix with `pairs` entries.
pub fn random_od(network: &RoadNetwork, seed: u64, pairs: usize, demand_veh_h: f64) -> Vec<OdPair> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..pairs)
        .map(|_| {
            let from = rng.gen_range(0..network.nodes.len());
            let mut to = rng.gen_range(0..network.nodes.len());
            if to == from {
                to = (to + 1) % network.nodes.len();
            }
            OdPair { from, to, vehicles_h: demand_veh_h * rng.gen_range(0.5..1.5) }
        })
        .collect()
}

/// Result of one macroscopic assignment.
#[derive(Debug, Clone)]
pub struct AssignmentReport {
    /// Flow per edge, veh/h.
    pub flows: Vec<f64>,
    /// Travel time per edge under load, hours (BPR).
    pub times_h: Vec<f64>,
    /// Total vehicle-hours across the demand.
    pub total_vehicle_hours: f64,
    /// Demand pairs that could not be routed.
    pub unrouted: usize,
}

/// Macroscopic traffic assignment with BPR congestion feedback, iterated
/// with the method of successive averages — the "traffic simulator
/// \[that\] calculates \[the\] traffic model in near-real time".
pub fn assign_traffic(
    network: &RoadNetwork,
    profiles: &SpeedProfiles,
    od: &[OdPair],
    hour: usize,
    iterations: usize,
) -> AssignmentReport {
    let ne = network.edges.len();
    let adj = network.adjacency();
    let mut flows = vec![0.0f64; ne];
    let mut times: Vec<f64> = (0..ne).map(|ei| network.free_time_h(ei)).collect();
    let mut unrouted = 0;
    for it in 0..iterations.max(1) {
        // All-or-nothing assignment under current times.
        let mut new_flows = vec![0.0f64; ne];
        unrouted = 0;
        for pair in od {
            match dijkstra_route(network, &adj, pair.from, pair.to, |ei| times[ei]) {
                Some(route) => {
                    for ei in route {
                        new_flows[ei] += pair.vehicles_h;
                    }
                }
                None => unrouted += 1,
            }
        }
        // Successive averages.
        let alpha = 1.0 / (it as f64 + 1.0);
        for ei in 0..ne {
            flows[ei] = (1.0 - alpha) * flows[ei] + alpha * new_flows[ei];
        }
        // BPR: t = t0 * (1 + 0.15 (v/c)^4), with t0 from learned profiles.
        for ei in 0..ne {
            let e = &network.edges[ei];
            let t0 = e.length_km / profiles.mean_speed(ei, hour).max(3.0);
            let ratio = flows[ei] / e.capacity_veh_h;
            times[ei] = t0 * (1.0 + 0.15 * ratio.powi(4));
        }
    }
    let total: f64 = flows.iter().zip(&times).map(|(f, t)| f * t).sum();
    AssignmentReport { flows, times_h: times, total_vehicle_hours: total, unrouted }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (RoadNetwork, SpeedProfiles) {
        let net = RoadNetwork::grid(1, 8, 1.0);
        let fcd = generate_fcd(&net, 2, 60_000);
        let profiles = SpeedProfiles::learn(&net, &fcd);
        (net, profiles)
    }

    #[test]
    fn grid_network_is_connected_enough() {
        let net = RoadNetwork::grid(1, 6, 1.0);
        assert_eq!(net.nodes.len(), 36);
        // ~4 directed edges per interior node minus missing links.
        assert!(net.edges.len() > 90, "{} edges", net.edges.len());
    }

    #[test]
    fn profiles_capture_rush_hour() {
        let (net, profiles) = setup();
        // Average across edges: 8am must be slower than 3am.
        let ne = net.edges.len();
        let rush: f64 = (0..ne).map(|e| profiles.mean_speed(e, 8)).sum::<f64>() / ne as f64;
        let night: f64 = (0..ne).map(|e| profiles.mean_speed(e, 3)).sum::<f64>() / ne as f64;
        assert!(rush < night * 0.8, "rush {rush} vs night {night}");
    }

    #[test]
    fn dijkstra_finds_reasonable_route() {
        let (net, profiles) = setup();
        let route = shortest_route(&net, &profiles, 0, 63, 12).expect("route exists");
        assert!(!route.is_empty());
        // Route is connected: consecutive edges share nodes.
        for pair in route.windows(2) {
            assert_eq!(net.edges[pair[0]].to, net.edges[pair[1]].from);
        }
        assert_eq!(net.edges[route[0]].from, 0);
        assert_eq!(net.edges[*route.last().unwrap()].to, 63);
    }

    #[test]
    fn ptdr_converges_with_samples() {
        let (net, profiles) = setup();
        let route = shortest_route(&net, &profiles, 0, 63, 8).unwrap();
        let reference = ptdr_travel_time(&net, &profiles, &route, 8.0, 50_000, 999);
        // Average the estimator error over independent seeds so the 1/sqrt(N)
        // trend is visible through sampling luck.
        let mean_abs_err = |samples: usize| -> f64 {
            (0..20)
                .map(|seed| {
                    let est = ptdr_travel_time(&net, &profiles, &route, 8.0, samples, seed);
                    (est.mean_h - reference.mean_h).abs()
                })
                .sum::<f64>()
                / 20.0
        };
        let e10 = mean_abs_err(10);
        let e1000 = mean_abs_err(1_000);
        assert!(e1000 < e10 / 3.0, "error must shrink roughly as 1/sqrt(N): {e10} -> {e1000}");
    }

    #[test]
    fn ptdr_p95_exceeds_mean() {
        let (net, profiles) = setup();
        let route = shortest_route(&net, &profiles, 0, 63, 17).unwrap();
        let stats = ptdr_travel_time(&net, &profiles, &route, 17.0, 2_000, 5);
        assert!(stats.p95_h >= stats.mean_h);
        assert!(stats.std_h > 0.0);
    }

    #[test]
    fn rush_hour_departures_take_longer() {
        let (net, profiles) = setup();
        let route = shortest_route(&net, &profiles, 0, 63, 8).unwrap();
        let rush = ptdr_travel_time(&net, &profiles, &route, 8.0, 4_000, 3);
        let night = ptdr_travel_time(&net, &profiles, &route, 3.0, 4_000, 3);
        assert!(rush.mean_h > night.mean_h, "rush {} night {}", rush.mean_h, night.mean_h);
    }

    #[test]
    fn assignment_congests_popular_edges() {
        let (net, profiles) = setup();
        let od = random_od(&net, 4, 30, 800.0);
        let report = assign_traffic(&net, &profiles, &od, 8, 6);
        assert!(report.total_vehicle_hours > 0.0);
        // Some edge must be loaded beyond free flow.
        let congested =
            report.flows.iter().zip(&net.edges).any(|(f, e)| *f > 0.5 * e.capacity_veh_h);
        assert!(congested, "no congestion with 30 OD pairs at 800 veh/h");
    }

    #[test]
    fn iterating_assignment_spreads_load() {
        let (net, profiles) = setup();
        let od = random_od(&net, 4, 40, 1_000.0);
        let one = assign_traffic(&net, &profiles, &od, 8, 1);
        let many = assign_traffic(&net, &profiles, &od, 8, 8);
        let peak_one = one.flows.iter().copied().fold(0.0, f64::max);
        let peak_many = many.flows.iter().copied().fold(0.0, f64::max);
        assert!(
            peak_many <= peak_one + 1e-9,
            "equilibration must not increase the peak ({peak_one} -> {peak_many})"
        );
    }

    #[test]
    fn fcd_is_reproducible() {
        let net = RoadNetwork::grid(1, 4, 1.0);
        assert_eq!(generate_fcd(&net, 3, 100), generate_fcd(&net, 3, 100));
    }
}
