//! Determinism suite for the PTDR serving front-end: any worker count
//! reproduces the sequential reference bit-for-bit, a cache hit
//! short-circuits to the identical struct, and the telemetry counters
//! account for every lookup.
//!
//! The telemetry counters are process-global, so every test serializes
//! on one lock and measures deltas between snapshots.

use everest_apps::traffic::service::{PtdrService, RouteQuery};
use everest_apps::traffic::{generate_fcd, random_od, shortest_route, RoadNetwork, SpeedProfiles};
use std::sync::Mutex;

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn counter_lock() -> std::sync::MutexGuard<'static, ()> {
    COUNTER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn setup() -> (RoadNetwork, SpeedProfiles) {
    let net = RoadNetwork::grid(3, 8, 1.0);
    let fcd = generate_fcd(&net, 5, 60_000);
    let profiles = SpeedProfiles::learn(&net, &fcd);
    (net, profiles)
}

fn build_queries(net: &RoadNetwork, profiles: &SpeedProfiles) -> Vec<RouteQuery> {
    let od = random_od(net, 13, 24, 700.0);
    let routes: Vec<Vec<usize>> = od
        .iter()
        .filter_map(|pair| shortest_route(net, profiles, pair.from, pair.to, 8))
        .filter(|route| !route.is_empty())
        .take(8)
        .collect();
    assert!(routes.len() >= 4, "grid too sparse");
    let mut queries = Vec::new();
    for rep in 0..3 {
        for route in &routes {
            queries.push(RouteQuery {
                route: route.clone(),
                // Same 15-minute bin across reps — repeated keys.
                depart_hour: 8.0 + rep as f64 * 0.03,
                samples: 500,
            });
        }
    }
    queries
}

#[test]
fn any_job_count_reproduces_the_sequential_reference() {
    let _guard = counter_lock();
    let (net, profiles) = setup();
    let queries = build_queries(&net, &profiles);
    let reference = PtdrService::new(net.clone(), profiles.clone())
        .with_jobs(1)
        .with_seed(99)
        .route_batch(&queries);
    for jobs in [2usize, 8] {
        let pooled = PtdrService::new(net.clone(), profiles.clone())
            .with_jobs(jobs)
            .with_seed(99)
            .route_batch(&queries);
        assert_eq!(reference.len(), pooled.len());
        for (i, (r, p)) in reference.iter().zip(&pooled).enumerate() {
            assert_eq!(r.mean_h.to_bits(), p.mean_h.to_bits(), "jobs={jobs} query {i} mean");
            assert_eq!(r.p95_h.to_bits(), p.p95_h.to_bits(), "jobs={jobs} query {i} p95");
            assert_eq!(r.std_h.to_bits(), p.std_h.to_bits(), "jobs={jobs} query {i} std");
        }
    }
}

#[test]
fn cache_hit_short_circuits_to_the_identical_struct() {
    let _guard = counter_lock();
    let (net, profiles) = setup();
    let route = shortest_route(&net, &profiles, 0, net.nodes.len() - 1, 8).unwrap();
    let service = PtdrService::new(net, profiles).with_seed(3);
    let query = RouteQuery { route, depart_hour: 17.1, samples: 1_000 };

    let before = everest_telemetry::metrics().snapshot();
    let cold = service.query(&query);
    let mid = everest_telemetry::metrics().snapshot();
    // Same bin, different in-bin departure: the key matches, so the
    // cache answers without recomputing.
    let warm = service.query(&RouteQuery { depart_hour: 17.2, ..query.clone() });
    let after = everest_telemetry::metrics().snapshot();

    assert_eq!(cold.mean_h.to_bits(), warm.mean_h.to_bits());
    assert_eq!(cold.p95_h.to_bits(), warm.p95_h.to_bits());
    assert_eq!(cold.std_h.to_bits(), warm.std_h.to_bits());
    assert_eq!(service.cache_len(), 1, "one key, one entry");

    let miss_cold = mid.counter("ptdr.cache.miss") - before.counter("ptdr.cache.miss");
    let hit_cold = mid.counter("ptdr.cache.hit") - before.counter("ptdr.cache.hit");
    assert_eq!((miss_cold, hit_cold), (1, 0), "cold query must miss");
    let miss_warm = after.counter("ptdr.cache.miss") - mid.counter("ptdr.cache.miss");
    let hit_warm = after.counter("ptdr.cache.hit") - mid.counter("ptdr.cache.hit");
    assert_eq!((miss_warm, hit_warm), (0, 1), "warm query must hit");
}

#[test]
fn batch_counters_account_for_every_query() {
    let _guard = counter_lock();
    let (net, profiles) = setup();
    let queries = build_queries(&net, &profiles);
    let unique = queries.len() / 3; // three reps share each key

    // jobs = 1: the sequential reference path counts queries but never
    // consults the cache.
    let reference = PtdrService::new(net.clone(), profiles.clone()).with_jobs(1);
    let before = everest_telemetry::metrics().snapshot();
    reference.route_batch(&queries);
    let after = everest_telemetry::metrics().snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(delta("ptdr.queries"), queries.len() as u64);
    assert_eq!(delta("ptdr.cache.hit"), 0);
    assert_eq!(delta("ptdr.cache.miss"), 0);
    assert_eq!(reference.cache_len(), 0, "jobs=1 must not populate the cache");

    // jobs = 4, cold cache: at least one miss per unique key (two
    // workers may race a cold key and both miss — harmless, since the
    // per-key seed makes their answers identical), every lookup counted.
    let pooled = PtdrService::new(net, profiles).with_jobs(4);
    let before = everest_telemetry::metrics().snapshot();
    pooled.route_batch(&queries);
    let after = everest_telemetry::metrics().snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(delta("ptdr.queries"), queries.len() as u64);
    assert!(delta("ptdr.cache.miss") >= unique as u64);
    assert_eq!(delta("ptdr.cache.hit") + delta("ptdr.cache.miss"), queries.len() as u64);
    assert_eq!(pooled.cache_len(), unique);

    // Warm rerun: every lookup hits.
    let before = everest_telemetry::metrics().snapshot();
    pooled.route_batch(&queries);
    let after = everest_telemetry::metrics().snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(delta("ptdr.cache.miss"), 0);
    assert_eq!(delta("ptdr.cache.hit"), queries.len() as u64);
}

#[test]
fn per_query_latency_and_hit_age_are_recorded() {
    let _guard = counter_lock();
    let (net, profiles) = setup();
    let queries = build_queries(&net, &profiles);
    let service = PtdrService::new(net, profiles).with_jobs(2);

    let before = everest_telemetry::metrics().snapshot();
    service.route_batch(&queries); // cold: one miss per unique key
    for _ in 0..4 {
        service.route_batch(&queries); // warm: sampled hit observations
    }
    let after = everest_telemetry::metrics().snapshot();

    let count = |snap: &everest_telemetry::MetricsSnapshot, name: &str| {
        snap.histogram(name).map_or(0, |h| h.count)
    };
    let latency = count(&after, "ptdr.query.latency_us") - count(&before, "ptdr.query.latency_us");
    // Every miss observes latency; warm hits are sampled one-in-sixteen
    // on the cache tick, so with 5×24 lookups some samples must land.
    assert!(latency > 0, "per-query latency histogram populated");
    let h = after.histogram("ptdr.query.latency_us").unwrap();
    assert!(h.p99() >= h.p50(), "percentiles are ordered");
    let age = count(&after, "ptdr.cache.hit_age_us") - count(&before, "ptdr.cache.hit_age_us");
    assert!(age > 0, "cache hit age histogram populated");
}
