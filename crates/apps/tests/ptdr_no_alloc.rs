//! Enforces the PTDR engine's zero-allocation acceptance criterion:
//! once the SoA tables and scratch buffer reach their high-water
//! capacity, repeated queries — fresh seeds, departures, and
//! already-seen routes alike — perform no heap allocation, and neither
//! does the service's cache-hit path. Lives in its own integration-test
//! binary because it swaps in a counting global allocator (the same
//! technique as the telemetry crate's `no_alloc` test).

use everest_apps::traffic::service::{PtdrEngine, PtdrService, RouteQuery};
use everest_apps::traffic::{generate_fcd, shortest_route, RoadNetwork, SpeedProfiles};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

// Const-initialized Cell<u64> TLS: the access itself never allocates
// and registers no destructor, so it is safe inside the allocator.
// Per-thread counting keeps the libtest harness's main thread (and any
// sibling test) from perturbing the measured window.
std::thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn setup() -> (RoadNetwork, SpeedProfiles) {
    let net = RoadNetwork::grid(9, 8, 1.0);
    let fcd = generate_fcd(&net, 4, 60_000);
    let profiles = SpeedProfiles::learn(&net, &fcd);
    (net, profiles)
}

#[test]
fn warm_engine_queries_allocate_nothing() {
    let (net, profiles) = setup();
    let long = shortest_route(&net, &profiles, 0, net.nodes.len() - 1, 8).unwrap();
    let short = shortest_route(&net, &profiles, 0, 9, 8).unwrap();
    let mut engine: PtdrEngine = PtdrEngine::new();

    // Warm-up: reach the high-water capacity on the longest route and
    // the largest sample count, and touch both routes once so the
    // table-switch path has capacity too.
    engine.estimate(&net, &profiles, &long, 8.0, 4_000, 1);
    engine.estimate(&net, &profiles, &short, 8.0, 4_000, 1);
    engine.estimate(&net, &profiles, &long, 8.0, 4_000, 1);

    let before = ALLOCATIONS.with(Cell::get);
    for round in 0..50u64 {
        // Vary seed, departure, sample count (≤ high water), and route
        // — everything a steady-state request stream varies.
        engine.estimate(&net, &profiles, &long, (round % 24) as f64, 4_000, round);
        engine.estimate(&net, &profiles, &short, 17.25, 1_000, round);
    }
    let after = ALLOCATIONS.with(Cell::get);
    assert_eq!(after - before, 0, "warm engine queries must not allocate");
}

#[test]
fn service_cache_hits_allocate_nothing() {
    let (net, profiles) = setup();
    let route = shortest_route(&net, &profiles, 0, net.nodes.len() - 1, 8).unwrap();
    let service = PtdrService::new(net, profiles).with_seed(5);
    let query = RouteQuery { route, depart_hour: 8.1, samples: 2_000 };

    // In-bin departure wobble: four distinct departures, one cache key.
    // Built before the measured window — the hit path itself must not
    // touch the allocator.
    let warm: Vec<RouteQuery> = (0..4)
        .map(|i| RouteQuery { depart_hour: 8.0 + f64::from(i) * 0.05, ..query.clone() })
        .collect();

    // Warm-up: populate the cache entry and auto-register the telemetry
    // counters and histograms (first use allocates the name and bucket
    // storage). Hit-path observations are sampled on the cache tick, so
    // enough warm hits are needed to cross a sampling point.
    service.query(&query);
    for _ in 0..32 {
        service.query(&query);
    }

    let before = ALLOCATIONS.with(Cell::get);
    for i in 0..1_000usize {
        std::hint::black_box(service.query(&warm[i % warm.len()]));
    }
    let after = ALLOCATIONS.with(Cell::get);
    assert_eq!(after - before, 0, "cache hits must not allocate");
}
