//! Property tests for the sharded PTDR serving tier: the consistent-hash
//! ring must assign every key a valid shard deterministically, growing
//! the ring may move keys only onto the new shard, and a full tier run —
//! routing, admission, shedding, cache fills, Monte-Carlo recomputes —
//! must be bit-identical at any `jobs` count for any seed, topology,
//! queue depth, and shed policy.

use everest_apps::traffic::serve::{HashRing, LoadGen, ServeConfig, ServeTier, ShedPolicy};
use everest_apps::traffic::{generate_fcd, RoadNetwork, SpeedProfiles};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One synthetic city + learned profiles + route-pool generator, shared
/// across cases (building speed profiles dominates otherwise).
fn fixture() -> &'static (RoadNetwork, SpeedProfiles, LoadGen) {
    static FIXTURE: OnceLock<(RoadNetwork, SpeedProfiles, LoadGen)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let network = RoadNetwork::grid(1, 8, 1.0);
        let fcd = generate_fcd(&network, 2, 40_000);
        let profiles = SpeedProfiles::learn(&network, &fcd);
        let generator = LoadGen::new(&network, &profiles, 8, 3);
        (network, profiles, generator)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ring_assignment_is_total_and_deterministic(
        shards in 1usize..8,
        vnodes in 1usize..64,
        keys in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let ring = HashRing::new(shards, vnodes);
        let again = HashRing::new(shards, vnodes);
        for &key in &keys {
            let shard = ring.shard_of(key);
            prop_assert!(shard < shards, "shard {shard} out of range for {shards} shards");
            prop_assert_eq!(shard, again.shard_of(key), "same topology must route identically");
        }
    }

    #[test]
    fn growing_the_ring_moves_keys_only_to_the_new_shard(
        shards in 1usize..7,
        vnodes in 8usize..64,
        keys in prop::collection::vec(any::<u64>(), 1..128),
    ) {
        // The consistent-hashing contract: adding shard N+1 leaves every
        // surviving ring point in place, so a key either keeps its shard
        // or lands on the newcomer — never migrates between survivors.
        let old = HashRing::new(shards, vnodes);
        let new = HashRing::new(shards + 1, vnodes);
        for &key in &keys {
            let before = old.shard_of(key);
            let after = new.shard_of(key);
            if before != after {
                prop_assert_eq!(
                    after, shards,
                    "key {} moved from shard {} to {} instead of the new shard",
                    key, before, after
                );
            }
        }
    }
}

proptest! {
    // Each case runs the tier twice end-to-end (including real
    // Monte-Carlo recomputes), so fewer, fatter cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tier_runs_are_bit_identical_at_any_jobs(
        seed in any::<u32>(),
        day in any::<u64>(),
        shards in 1usize..5,
        queue_depth in 1usize..24,
        shed_oldest in any::<bool>(),
        offered_qps in 10_000.0f64..80_000.0,
    ) {
        let (network, profiles, generator) = fixture();
        let workload = generator.generate(day, offered_qps, 150.0 / offered_qps, 150);
        prop_assume!(!workload.is_empty());
        let run = |jobs: usize| {
            let mut config = ServeConfig::new(shards);
            config.seed = seed as u64;
            config.jobs = jobs;
            config.queue_depth = queue_depth;
            config.policy =
                if shed_oldest { ShedPolicy::ShedOldest } else { ShedPolicy::RejectNew };
            let tier = ServeTier::new(network.clone(), profiles.clone(), config);
            tier.run(&workload).fingerprint()
        };
        // The fingerprint covers every per-query result bit-for-bit plus
        // the per-shard admit/shed/hit counters, so equal fingerprints
        // mean identical shard assignment and serving behaviour.
        let sequential = run(1);
        prop_assert_eq!(&sequential, &run(4), "jobs=4 diverged from jobs=1");
        prop_assert_eq!(&sequential, &run(3), "jobs=3 diverged from jobs=1");
    }
}
