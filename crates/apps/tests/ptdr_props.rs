//! Property tests for the PTDR streaming summary: Welford
//! mean/variance plus `select_nth_unstable` percentile must match the
//! sorted-Vec reference the scalar kernel uses, within 1e-9, on
//! arbitrary, duplicate-heavy, and single-sample inputs.

use everest_apps::traffic::service::summarize;
use everest_apps::traffic::TravelTimeStats;
use proptest::prelude::*;

/// The reference summary: full sort, two-pass moments, indexed p95 —
/// exactly what `ptdr_travel_time_reference` computes.
fn summarize_sorted(times: &[f64]) -> TravelTimeStats {
    let mut sorted = times.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let mean = sorted.iter().sum::<f64>() / n;
    let var = sorted.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n;
    let p95 = sorted[((0.95 * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)];
    TravelTimeStats { mean_h: mean, p95_h: p95, std_h: var.sqrt() }
}

fn assert_close(streaming: &TravelTimeStats, reference: &TravelTimeStats) {
    assert!(
        (streaming.mean_h - reference.mean_h).abs() <= 1e-9,
        "mean {} vs {}",
        streaming.mean_h,
        reference.mean_h
    );
    assert!(
        (streaming.std_h - reference.std_h).abs() <= 1e-9,
        "std {} vs {}",
        streaming.std_h,
        reference.std_h
    );
    // The selected percentile element is an input value, so the match is
    // exact, not approximate.
    assert_eq!(streaming.p95_h.to_bits(), reference.p95_h.to_bits(), "p95 diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn streaming_summary_matches_sorted_reference(
        times in prop::collection::vec(0.001f64..10.0, 1..200),
    ) {
        let reference = summarize_sorted(&times);
        let mut buf = times.clone();
        let streaming = summarize(&mut buf);
        assert_close(&streaming, &reference);
    }

    #[test]
    fn duplicate_heavy_inputs_agree(
        value in 0.5f64..1.5,
        copies in 1usize..50,
        extras in prop::collection::vec(0.5f64..1.5, 0..5),
    ) {
        // Mostly one repeated value, with a few distinct stragglers —
        // the worst case for pivot-based selection.
        let mut times = vec![value; copies];
        times.extend_from_slice(&extras);
        let reference = summarize_sorted(&times);
        let streaming = summarize(&mut times);
        assert_close(&streaming, &reference);
    }

    #[test]
    fn single_sample_is_its_own_summary(value in 0.001f64..100.0) {
        let mut times = [value];
        let stats = summarize(&mut times);
        assert_eq!(stats.mean_h.to_bits(), value.to_bits());
        assert_eq!(stats.p95_h.to_bits(), value.to_bits());
        assert!(stats.std_h.abs() <= 1e-12);
        assert_close(&stats, &summarize_sorted(&[value]));
    }
}
