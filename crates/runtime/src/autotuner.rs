//! The mARGOt-style dynamic autotuner (paper IV, ref \[11\]).
//!
//! mARGOt selects, for each kernel invocation, one of the operating points
//! generated at compile time, by (1) filtering points through constraints,
//! (2) ranking the survivors with an objective, and (3) correcting the
//! design-time predictions with runtime feedback (an EWMA of
//! observed/predicted ratios per point) — "the selection will generalize
//! the concept of affinity between the code variants and the available
//! system configurations".

use crate::error::{RuntimeError, RuntimeResult};
use everest_variants::Variant;
use std::collections::HashMap;

/// Which predicted metric a constraint bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// End-to-end time per invocation (µs).
    TotalTimeUs,
    /// Energy per invocation (mJ).
    EnergyMj,
    /// FPGA LUT footprint.
    AreaLuts,
}

/// An upper-bound constraint on a metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint {
    /// Bounded metric.
    pub metric: Metric,
    /// Inclusive upper bound.
    pub max: f64,
}

/// Ranking objective for feasible points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize corrected end-to-end time.
    #[default]
    MinLatency,
    /// Minimize energy.
    MinEnergy,
    /// Minimize energy-delay product.
    MinEnergyDelay,
}

/// Dynamic system conditions the selector reacts to
/// ("based on the workload and data conditions").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemState {
    /// FPGA LUTs currently free (0 = accelerators unavailable).
    pub free_luts: u64,
    /// Multiplier on data-transfer time (congestion on the attachment).
    pub link_congestion: f64,
    /// When `true`, only DIFT-hardened or software points are eligible
    /// (the data-protection layer raised an alarm).
    pub require_hardened: bool,
}

impl Default for SystemState {
    fn default() -> SystemState {
        SystemState { free_luts: u64::MAX, link_congestion: 1.0, require_hardened: false }
    }
}

/// The autotuner: operating points + constraints + feedback state.
#[derive(Debug, Clone)]
pub struct Autotuner {
    points: Vec<Variant>,
    constraints: Vec<Constraint>,
    objective: Objective,
    /// EWMA of observed/predicted latency ratio per point id.
    correction: HashMap<String, f64>,
    alpha: f64,
    /// Index of the point returned by the previous [`Autotuner::select`],
    /// used to count variant switches in telemetry.
    last_selected: std::cell::Cell<Option<usize>>,
}

impl Autotuner {
    /// Creates a tuner over the given operating points.
    pub fn new(points: Vec<Variant>) -> Autotuner {
        Autotuner {
            points,
            constraints: Vec::new(),
            objective: Objective::default(),
            correction: HashMap::new(),
            alpha: 0.3,
            last_selected: std::cell::Cell::new(None),
        }
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, constraint: Constraint) -> &mut Self {
        self.constraints.push(constraint);
        self
    }

    /// Sets the ranking objective.
    pub fn set_objective(&mut self, objective: Objective) -> &mut Self {
        self.objective = objective;
        self
    }

    /// The operating points.
    pub fn points(&self) -> &[Variant] {
        &self.points
    }

    /// Feeds back an observed latency for point `id`, updating its
    /// correction factor.
    pub fn observe(&mut self, id: &str, observed_us: f64) {
        let Some(point) = self.points.iter().find(|p| p.id == id) else {
            return;
        };
        let predicted = point.metrics.total_us().max(1e-9);
        let ratio = observed_us / predicted;
        let entry = self.correction.entry(id.to_owned()).or_insert(1.0);
        *entry = (1.0 - self.alpha) * *entry + self.alpha * ratio;
    }

    /// The corrected expected time of a point under `state`.
    pub fn corrected_time_us(&self, point: &Variant, state: &SystemState) -> f64 {
        let corr = self.correction.get(&point.id).copied().unwrap_or(1.0);
        let transfer = point.metrics.transfer_us
            * if point.is_hardware() { state.link_congestion } else { 1.0 };
        point.metrics.latency_us * corr + transfer
    }

    fn feasible(&self, point: &Variant, state: &SystemState) -> bool {
        if point.is_hardware() && point.metrics.area_luts > state.free_luts {
            return false;
        }
        if state.require_hardened
            && point.is_hardware()
            && !point
                .transforms
                .iter()
                .any(|t| matches!(t, everest_variants::Transform::Dift(true)))
        {
            return false;
        }
        for c in &self.constraints {
            let value = match c.metric {
                Metric::TotalTimeUs => self.corrected_time_us(point, state),
                Metric::EnergyMj => point.metrics.energy_mj,
                Metric::AreaLuts => point.metrics.area_luts as f64,
            };
            if value > c.max {
                return false;
            }
        }
        true
    }

    fn rank(&self, point: &Variant, state: &SystemState) -> f64 {
        let t = self.corrected_time_us(point, state);
        match self.objective {
            Objective::MinLatency => t,
            Objective::MinEnergy => point.metrics.energy_mj,
            Objective::MinEnergyDelay => t * point.metrics.energy_mj,
        }
    }

    /// Selects the best feasible operating point for the current state.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoFeasiblePoint`] when every point violates
    /// a constraint or the state.
    pub fn select(&self, state: &SystemState) -> RuntimeResult<&Variant> {
        let (index, point) = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| self.feasible(p, state))
            .min_by(|(_, a), (_, b)| self.rank(a, state).total_cmp(&self.rank(b, state)))
            .ok_or(RuntimeError::NoFeasiblePoint)?;
        let previous = self.last_selected.replace(Some(index));
        everest_telemetry::metrics().counter_inc("runtime.autotuner.selections");
        if previous.is_some_and(|prev| prev != index) {
            everest_telemetry::metrics().counter_inc("runtime.variant_switches");
        }
        Ok(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_variants::{Metrics, Target, Transform};

    fn point(id: &str, latency: f64, transfer: f64, energy: f64, luts: u64, dift: bool) -> Variant {
        let mut transforms = Vec::new();
        if luts > 0 {
            transforms.push(Transform::OnTarget(Target::FpgaBus));
            transforms.push(Transform::Dift(dift));
        }
        Variant {
            id: id.into(),
            kernel: "k".into(),
            transforms,
            metrics: Metrics {
                latency_us: latency,
                transfer_us: transfer,
                energy_mj: energy,
                area_luts: luts,
                area_brams: 0,
            },
        }
    }

    fn sample_points() -> Vec<Variant> {
        vec![
            point("sw-1t", 1000.0, 0.0, 5.0, 0, false),
            point("sw-8t", 250.0, 0.0, 9.0, 0, false),
            point("hw", 40.0, 20.0, 1.0, 50_000, false),
            point("hw-dift", 45.0, 20.0, 1.2, 62_000, true),
        ]
    }

    #[test]
    fn selects_fastest_by_default() {
        let tuner = Autotuner::new(sample_points());
        assert_eq!(tuner.select(&SystemState::default()).unwrap().id, "hw");
    }

    #[test]
    fn falls_back_to_software_when_fabric_full() {
        let tuner = Autotuner::new(sample_points());
        let state = SystemState { free_luts: 10_000, ..Default::default() };
        assert_eq!(tuner.select(&state).unwrap().id, "sw-8t");
    }

    #[test]
    fn congestion_flips_the_choice() {
        let tuner = Autotuner::new(sample_points());
        // 40 + 20*c vs 250: hardware loses once 20*c > 210.
        let state = SystemState { link_congestion: 12.0, ..Default::default() };
        assert_eq!(tuner.select(&state).unwrap().id, "sw-8t");
    }

    #[test]
    fn security_alarm_requires_hardened_points() {
        let tuner = Autotuner::new(sample_points());
        let state = SystemState { require_hardened: true, ..Default::default() };
        assert_eq!(tuner.select(&state).unwrap().id, "hw-dift");
    }

    #[test]
    fn energy_objective_changes_ranking() {
        let mut tuner = Autotuner::new(sample_points());
        tuner.set_objective(Objective::MinEnergy);
        assert_eq!(tuner.select(&SystemState::default()).unwrap().id, "hw");
        // Disable hardware: among software points, sw-1t is more frugal.
        let state = SystemState { free_luts: 0, ..Default::default() };
        assert_eq!(tuner.select(&state).unwrap().id, "sw-1t");
    }

    #[test]
    fn constraints_filter_points() {
        let mut tuner = Autotuner::new(sample_points());
        tuner.add_constraint(Constraint { metric: Metric::AreaLuts, max: 0.0 });
        assert_eq!(tuner.select(&SystemState::default()).unwrap().id, "sw-8t");
        tuner.add_constraint(Constraint { metric: Metric::TotalTimeUs, max: 100.0 });
        assert_eq!(tuner.select(&SystemState::default()), Err(RuntimeError::NoFeasiblePoint));
    }

    #[test]
    fn feedback_corrects_optimistic_predictions() {
        let mut tuner = Autotuner::new(sample_points());
        // The hardware point consistently runs 10x slower than predicted
        // (e.g. the model missed contention).
        for _ in 0..20 {
            tuner.observe("hw", 600.0);
        }
        // Corrections are per point: "hw" is now known slow and must not
        // be picked again (its sibling points keep their predictions).
        assert_ne!(tuner.select(&SystemState::default()).unwrap().id, "hw");
    }

    #[test]
    fn observe_unknown_id_is_ignored() {
        let mut tuner = Autotuner::new(sample_points());
        tuner.observe("ghost", 1.0);
        assert_eq!(tuner.select(&SystemState::default()).unwrap().id, "hw");
    }

    #[test]
    fn empty_tuner_has_no_feasible_point() {
        let tuner = Autotuner::new(Vec::new());
        assert_eq!(tuner.select(&SystemState::default()), Err(RuntimeError::NoFeasiblePoint));
    }
}
