//! Runtime-layer errors.

use std::fmt;

/// Result alias for runtime operations.
pub type RuntimeResult<T> = Result<T, RuntimeError>;

/// Errors raised by the virtualized runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// No operating point satisfies the active constraints.
    NoFeasiblePoint,
    /// A named VM/device/variant does not exist.
    Unknown(String),
    /// A vFPGA request could not be satisfied.
    Allocation(String),
    /// No device could host a role: every candidate device is listed with
    /// the reason it refused, so callers see *which* fabric was full.
    Exhausted {
        /// The role that could not be placed.
        role: String,
        /// LUTs the role needs.
        luts: u64,
        /// `(device name, refusal reason)` for every device tried.
        refusals: Vec<(String, String)>,
    },
    /// Every target in an offload fallback chain failed for an invocation.
    OffloadFailed {
        /// Kernel being offloaded.
        kernel: String,
        /// Total attempts made across the whole chain.
        attempts: u32,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoFeasiblePoint => {
                write!(f, "no operating point satisfies the constraints")
            }
            RuntimeError::Unknown(what) => write!(f, "unknown runtime entity '{what}'"),
            RuntimeError::Allocation(msg) => write!(f, "vFPGA allocation failed: {msg}"),
            RuntimeError::Exhausted { role, luts, refusals } => {
                write!(f, "no device can host '{role}' ({luts} LUTs)")?;
                for (device, reason) in refusals {
                    write!(f, "; {device}: {reason}")?;
                }
                Ok(())
            }
            RuntimeError::OffloadFailed { kernel, attempts } => {
                write!(f, "offload of '{kernel}' failed after {attempts} attempts on every target")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            RuntimeError::NoFeasiblePoint.to_string(),
            "no operating point satisfies the constraints"
        );
        assert_eq!(RuntimeError::Unknown("vm0".into()).to_string(), "unknown runtime entity 'vm0'");
    }

    #[test]
    fn exhausted_lists_every_device() {
        let e = RuntimeError::Exhausted {
            role: "gemm".into(),
            luts: 9_000,
            refusals: vec![
                ("capi0".into(), "no free PR slot".into()),
                ("cf0".into(), "only 1000 LUTs free".into()),
            ],
        };
        let msg = e.to_string();
        assert!(msg.contains("'gemm' (9000 LUTs)"));
        assert!(msg.contains("capi0: no free PR slot"));
        assert!(msg.contains("cf0: only 1000 LUTs free"));
    }

    #[test]
    fn offload_failure_names_the_kernel() {
        let e = RuntimeError::OffloadFailed { kernel: "fft".into(), attempts: 12 };
        assert_eq!(e.to_string(), "offload of 'fft' failed after 12 attempts on every target");
    }
}
