//! Runtime-layer errors.

use std::fmt;

/// Result alias for runtime operations.
pub type RuntimeResult<T> = Result<T, RuntimeError>;

/// Errors raised by the virtualized runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// No operating point satisfies the active constraints.
    NoFeasiblePoint,
    /// A named VM/device/variant does not exist.
    Unknown(String),
    /// A vFPGA request could not be satisfied.
    Allocation(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoFeasiblePoint => {
                write!(f, "no operating point satisfies the constraints")
            }
            RuntimeError::Unknown(what) => write!(f, "unknown runtime entity '{what}'"),
            RuntimeError::Allocation(msg) => write!(f, "vFPGA allocation failed: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            RuntimeError::NoFeasiblePoint.to_string(),
            "no operating point satisfies the constraints"
        );
        assert_eq!(RuntimeError::Unknown("vm0".into()).to_string(), "unknown runtime entity 'vm0'");
    }
}
