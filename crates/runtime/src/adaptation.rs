//! The closed dynamic-adaptation loop: workload phases, variant selection
//! per invocation, and the comparison between static, adaptive and oracle
//! strategies (paper IV: "an intelligent policy to select the code variant
//! or hardware configuration to execute ... based on the system status").

use crate::autotuner::{Autotuner, SystemState};
use crate::monitor::RuntimeMonitor;
use everest_variants::Variant;

/// One phase of a workload scenario: `invocations` kernel calls under
/// fixed system conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase label.
    pub name: String,
    /// Number of kernel invocations in this phase.
    pub invocations: usize,
    /// Link congestion multiplier on hardware transfer times.
    pub congestion: f64,
    /// FPGA LUTs free during this phase (other tenants come and go).
    pub free_luts: u64,
    /// Extra slowdown on hardware compute (e.g. clock throttling), ≥ 1.
    pub hw_slowdown: f64,
    /// Whether the data-protection layer raises an access alarm here.
    pub security_alarm: bool,
}

impl Phase {
    /// A benign phase with everything available.
    pub fn calm(name: &str, invocations: usize) -> Phase {
        Phase {
            name: name.into(),
            invocations,
            congestion: 1.0,
            free_luts: u64::MAX,
            hw_slowdown: 1.0,
            security_alarm: false,
        }
    }
}

/// Selection strategies compared by the adaptation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Always run the point with this index (chosen offline).
    Static(usize),
    /// The mARGOt loop: monitor feedback + per-invocation selection.
    Adaptive,
    /// Clairvoyant per-phase best (lower bound).
    Oracle,
}

/// Result of running one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Total execution time across all phases, microseconds.
    pub total_us: f64,
    /// Per-phase `(name, time_us, chosen_point)` summary (the point chosen
    /// for the majority of the phase).
    pub phases: Vec<(String, f64, String)>,
    /// Invocations that had to fall back because the chosen point was
    /// infeasible at runtime.
    pub fallbacks: usize,
    /// Partial reconfigurations performed (hardware role switches).
    pub reconfigs: usize,
}

/// The "ground-truth" time of running `point` once under `phase`
/// conditions (what the hardware would actually deliver).
pub fn actual_time_us(point: &Variant, phase: &Phase) -> f64 {
    if point.is_hardware() {
        point.metrics.latency_us * phase.hw_slowdown + point.metrics.transfer_us * phase.congestion
    } else {
        point.metrics.total_us()
    }
}

fn feasible_now(point: &Variant, phase: &Phase) -> bool {
    !point.is_hardware() || point.metrics.area_luts <= phase.free_luts
}

fn best_software_fallback(points: &[Variant]) -> Option<&Variant> {
    points
        .iter()
        .filter(|p| !p.is_hardware())
        .min_by(|a, b| a.metrics.total_us().total_cmp(&b.metrics.total_us()))
}

/// Runs a scenario with the chosen strategy (no reconfiguration cost).
///
/// # Panics
///
/// Panics if `points` is empty, or `Strategy::Static` indexes out of
/// bounds.
pub fn run_scenario(points: &[Variant], phases: &[Phase], strategy: Strategy) -> ScenarioReport {
    run_scenario_with_costs(points, phases, strategy, 0.0)
}

/// Runs a scenario charging `reconfig_us` every time a *different*
/// hardware role must be loaded (partial reconfiguration of the vFPGA
/// slot). Software points never pay it; re-running the already-loaded
/// role is free.
///
/// # Panics
///
/// Panics if `points` is empty, or `Strategy::Static` indexes out of
/// bounds.
pub fn run_scenario_with_costs(
    points: &[Variant],
    phases: &[Phase],
    strategy: Strategy,
    reconfig_us: f64,
) -> ScenarioReport {
    assert!(!points.is_empty(), "scenario needs operating points");
    let mut tuner = Autotuner::new(points.to_vec());
    let mut monitor = RuntimeMonitor::new(u64::MAX);
    let mut total = 0.0;
    let mut fallbacks = 0usize;
    let mut phase_rows = Vec::new();
    let mut loaded_role: Option<String> = None;
    let mut reconfigs = 0usize;

    for phase in phases {
        let mut phase_time = 0.0;
        let mut last_choice = String::new();
        for inv in 0..phase.invocations {
            let chosen: Variant = match strategy {
                Strategy::Static(i) => points[i].clone(),
                Strategy::Oracle => points
                    .iter()
                    .filter(|p| feasible_now(p, phase))
                    .min_by(|a, b| actual_time_us(a, phase).total_cmp(&actual_time_us(b, phase)))
                    .expect("at least one feasible point")
                    .clone(),
                Strategy::Adaptive => {
                    // Monitors observe conditions with a small lag: the
                    // state snapshot reflects the current phase after the
                    // first invocation reported it.
                    if inv == 0 {
                        monitor.set_congestion(phase.congestion);
                        monitor.set_free_luts(phase.free_luts);
                    }
                    let state: SystemState = monitor.system_state();
                    tuner
                        .select(&state)
                        .unwrap_or_else(|_| {
                            best_software_fallback(points).expect("a software point exists")
                        })
                        .clone()
                }
            };
            // Feasibility at execution time: an infeasible static choice
            // falls back to software with a reconfiguration-thrash penalty.
            let (run_point, penalty) = if feasible_now(&chosen, phase) {
                (&chosen, 1.0)
            } else {
                fallbacks += 1;
                (best_software_fallback(points).expect("a software point exists"), 1.2)
            };
            let mut t = actual_time_us(run_point, phase) * penalty;
            // Partial-reconfiguration cost on hardware role changes.
            if run_point.is_hardware() && loaded_role.as_deref() != Some(run_point.id.as_str()) {
                t += reconfig_us;
                loaded_role = Some(run_point.id.clone());
                reconfigs += 1;
            }
            phase_time += t;
            if matches!(strategy, Strategy::Adaptive) {
                tuner.observe(&run_point.id, t);
                monitor.record(t, phase.security_alarm && inv == 0, false);
            }
            last_choice = run_point.id.clone();
        }
        total += phase_time;
        phase_rows.push((phase.name.clone(), phase_time, last_choice));
    }
    ScenarioReport { total_us: total, phases: phase_rows, fallbacks, reconfigs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_variants::{Metrics, Target, Transform};

    fn point(id: &str, latency: f64, transfer: f64, luts: u64) -> Variant {
        let transforms = if luts > 0 { vec![Transform::OnTarget(Target::FpgaBus)] } else { vec![] };
        Variant {
            id: id.into(),
            kernel: "k".into(),
            transforms,
            metrics: Metrics {
                latency_us: latency,
                transfer_us: transfer,
                energy_mj: 1.0,
                area_luts: luts,
                area_brams: 0,
            },
        }
    }

    fn points() -> Vec<Variant> {
        vec![point("sw", 300.0, 0.0, 0), point("hw", 50.0, 25.0, 40_000)]
    }

    fn phases() -> Vec<Phase> {
        vec![
            Phase::calm("steady", 50),
            // Congestion spike: hardware transfers cost 20x.
            Phase { congestion: 20.0, ..Phase::calm("congested", 50) },
            // Fabric taken by another tenant.
            Phase { free_luts: 10_000, ..Phase::calm("fabric-busy", 50) },
            Phase::calm("recovered", 50),
        ]
    }

    #[test]
    fn oracle_is_a_lower_bound() {
        let pts = points();
        let ph = phases();
        let oracle = run_scenario(&pts, &ph, Strategy::Oracle);
        for strategy in [Strategy::Static(0), Strategy::Static(1), Strategy::Adaptive] {
            let r = run_scenario(&pts, &ph, strategy);
            assert!(
                r.total_us >= oracle.total_us - 1e-6,
                "{strategy:?} beat the oracle: {} < {}",
                r.total_us,
                oracle.total_us
            );
        }
    }

    #[test]
    fn adaptive_beats_every_static_choice_under_phase_changes() {
        let pts = points();
        let ph = phases();
        let adaptive = run_scenario(&pts, &ph, Strategy::Adaptive);
        let static_sw = run_scenario(&pts, &ph, Strategy::Static(0));
        let static_hw = run_scenario(&pts, &ph, Strategy::Static(1));
        assert!(adaptive.total_us < static_sw.total_us, "adaptive vs static-sw");
        assert!(adaptive.total_us < static_hw.total_us, "adaptive vs static-hw");
    }

    #[test]
    fn adaptive_tracks_oracle_closely() {
        let pts = points();
        let ph = phases();
        let adaptive = run_scenario(&pts, &ph, Strategy::Adaptive);
        let oracle = run_scenario(&pts, &ph, Strategy::Oracle);
        assert!(
            adaptive.total_us <= oracle.total_us * 1.25,
            "adaptive {} vs oracle {}",
            adaptive.total_us,
            oracle.total_us
        );
    }

    #[test]
    fn static_hardware_pays_fallbacks_when_fabric_busy() {
        let pts = points();
        let ph = phases();
        let r = run_scenario(&pts, &ph, Strategy::Static(1));
        assert_eq!(r.fallbacks, 50, "every fabric-busy invocation falls back");
    }

    #[test]
    fn adaptive_switches_choices_across_phases() {
        let pts = points();
        let ph = phases();
        let r = run_scenario(&pts, &ph, Strategy::Adaptive);
        let choices: Vec<&str> = r.phases.iter().map(|(_, _, c)| c.as_str()).collect();
        assert_eq!(choices[0], "hw");
        assert_eq!(choices[1], "sw", "congestion must push selection to software");
        assert_eq!(choices[2], "sw", "missing fabric must push selection to software");
    }

    #[test]
    fn reconfiguration_costs_are_charged_per_role_switch() {
        let pts = points();
        let ph = phases();
        // Oracle has no feedback loop, so the cost delta is exact.
        let free = run_scenario_with_costs(&pts, &ph, Strategy::Oracle, 0.0);
        let costly = run_scenario_with_costs(&pts, &ph, Strategy::Oracle, 10_000.0);
        assert!(costly.total_us > free.total_us);
        assert_eq!(costly.reconfigs, free.reconfigs);
        let delta = costly.total_us - free.total_us;
        assert!((delta - costly.reconfigs as f64 * 10_000.0).abs() < 1e-6);
        // Adaptive (whose feedback sees the reconfig spikes) still pays.
        let ad_free = run_scenario_with_costs(&pts, &ph, Strategy::Adaptive, 0.0);
        let ad_costly = run_scenario_with_costs(&pts, &ph, Strategy::Adaptive, 10_000.0);
        assert!(ad_costly.total_us >= ad_free.total_us);
        // Static hardware loads its role exactly once.
        let static_hw = run_scenario_with_costs(&pts, &ph, Strategy::Static(1), 10_000.0);
        assert_eq!(static_hw.reconfigs, 1);
    }

    #[test]
    fn software_only_scenarios_never_reconfigure() {
        let pts = vec![point("sw", 300.0, 0.0, 0)];
        let r =
            run_scenario_with_costs(&pts, &[Phase::calm("p", 10)], Strategy::Static(0), 5_000.0);
        assert_eq!(r.reconfigs, 0);
    }

    #[test]
    fn report_phase_rows_match_input() {
        let r = run_scenario(&points(), &phases(), Strategy::Adaptive);
        assert_eq!(r.phases.len(), 4);
        let sum: f64 = r.phases.iter().map(|(_, t, _)| t).sum();
        assert!((sum - r.total_us).abs() < 1e-6);
    }
}
