//! Multi-tenant device sharing: "the runtime layer optimizes the use of
//! heterogeneous and distributed resources by parallel application
//! instances running in different virtual machines" (paper IV).
//!
//! Each tenant VM issues kernel invocations periodically; invocations are
//! dispatched to the least-loaded of the shared accelerator slots. The
//! simulator reports per-tenant response times and slot utilization, which
//! is the evidence behind consolidation decisions (how many vFPGAs does a
//! given co-location need?).

use everest_platform::Sim;

/// One tenant VM's invocation pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Tenant (VM) name.
    pub name: String,
    /// Kernel execution time per invocation, µs.
    pub kernel_us: f64,
    /// Inter-arrival period, µs.
    pub period_us: f64,
    /// Number of invocations to simulate.
    pub invocations: usize,
}

impl Tenant {
    /// Creates a tenant.
    ///
    /// # Panics
    ///
    /// Panics on non-positive times or zero invocations.
    pub fn new(
        name: impl Into<String>,
        kernel_us: f64,
        period_us: f64,
        invocations: usize,
    ) -> Tenant {
        assert!(kernel_us > 0.0 && period_us > 0.0, "positive times required");
        assert!(invocations > 0, "at least one invocation");
        Tenant { name: name.into(), kernel_us, period_us, invocations }
    }

    /// Offered load of this tenant (fraction of one slot).
    pub fn offered_load(&self) -> f64 {
        self.kernel_us / self.period_us
    }
}

/// Result of one co-location simulation.
#[derive(Debug, Clone)]
pub struct ContentionReport {
    /// Per tenant: mean response time (queueing + service), µs.
    pub mean_response_us: Vec<(String, f64)>,
    /// Per tenant: worst response time, µs.
    pub max_response_us: Vec<(String, f64)>,
    /// Mean utilization across the shared slots.
    pub slot_utilization: f64,
    /// Total makespan, µs.
    pub makespan_us: f64,
}

impl ContentionReport {
    /// The mean response time of `tenant`, if simulated.
    pub fn response_of(&self, tenant: &str) -> Option<f64> {
        self.mean_response_us.iter().find(|(n, _)| n == tenant).map(|(_, r)| *r)
    }
}

/// Simulates `tenants` sharing `slots` accelerator slots with
/// least-loaded dispatch.
///
/// # Panics
///
/// Panics if `slots == 0` or `tenants` is empty.
pub fn share_slots(tenants: &[Tenant], slots: usize) -> ContentionReport {
    assert!(slots > 0, "need at least one slot");
    assert!(!tenants.is_empty(), "need at least one tenant");
    // Gather all arrivals, globally ordered (stable by tenant for ties).
    let mut arrivals: Vec<(f64, usize, usize)> = Vec::new(); // (time, tenant, seq)
    for (ti, t) in tenants.iter().enumerate() {
        for i in 0..t.invocations {
            arrivals.push((i as f64 * t.period_us, ti, i));
        }
    }
    arrivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut sim = Sim::new();
    let slot_names: Vec<String> = (0..slots).map(|i| format!("slot{i}")).collect();
    let mut sums = vec![0.0f64; tenants.len()];
    let mut maxes = vec![0.0f64; tenants.len()];
    for (arrival, ti, seq) in arrivals {
        // Least-loaded dispatch: the slot that frees up first.
        let slot = slot_names
            .iter()
            .min_by(|a, b| sim.available_at(a).total_cmp(&sim.available_at(b)))
            .expect("slots exist");
        let finish =
            sim.run(slot, &format!("{}#{}", tenants[ti].name, seq), arrival, tenants[ti].kernel_us);
        let response = finish - arrival;
        sums[ti] += response;
        maxes[ti] = maxes[ti].max(response);
    }
    let mean_response_us = tenants
        .iter()
        .enumerate()
        .map(|(ti, t)| (t.name.clone(), sums[ti] / t.invocations as f64))
        .collect();
    let max_response_us =
        tenants.iter().enumerate().map(|(ti, t)| (t.name.clone(), maxes[ti])).collect();
    let utilization = slot_names.iter().map(|s| sim.utilization(s)).sum::<f64>() / slots as f64;
    ContentionReport {
        mean_response_us,
        max_response_us,
        slot_utilization: utilization,
        makespan_us: sim.makespan(),
    }
}

/// The smallest slot count for which every tenant's mean response stays
/// within `slo_factor` × its isolated kernel time (a consolidation sizing
/// helper). Returns `None` if even `max_slots` cannot meet it.
pub fn slots_for_slo(tenants: &[Tenant], slo_factor: f64, max_slots: usize) -> Option<usize> {
    for slots in 1..=max_slots {
        let report = share_slots(tenants, slots);
        let ok = tenants
            .iter()
            .all(|t| report.response_of(&t.name).is_some_and(|r| r <= slo_factor * t.kernel_us));
        if ok {
            return Some(slots);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_tenant_sees_pure_service_time() {
        let t = Tenant::new("vm0", 100.0, 1_000.0, 20);
        let r = share_slots(&[t], 1);
        assert_eq!(r.response_of("vm0"), Some(100.0));
        assert!((r.slot_utilization - 100.0 * 20.0 / r.makespan_us).abs() < 1e-9);
    }

    #[test]
    fn overload_grows_response_time() {
        // Two tenants each offering 0.8 of a slot: one slot saturates.
        let tenants = vec![Tenant::new("a", 80.0, 100.0, 50), Tenant::new("b", 80.0, 100.0, 50)];
        let shared = share_slots(&tenants, 1);
        let dedicated = share_slots(&tenants, 2);
        assert!(
            shared.response_of("a").unwrap() > 3.0 * dedicated.response_of("a").unwrap(),
            "saturation must queue: {} vs {}",
            shared.response_of("a").unwrap(),
            dedicated.response_of("a").unwrap()
        );
        assert_eq!(dedicated.response_of("a"), Some(80.0));
    }

    #[test]
    fn light_tenants_consolidate_without_harm() {
        // Three tenants at 10% load each share one slot comfortably.
        let tenants: Vec<Tenant> =
            (0..3).map(|i| Tenant::new(format!("vm{i}"), 50.0, 500.0, 40)).collect();
        let r = share_slots(&tenants, 1);
        for t in &tenants {
            let resp = r.response_of(&t.name).unwrap();
            assert!(resp <= 3.0 * t.kernel_us, "{}: {resp}", t.name);
        }
    }

    #[test]
    fn slo_sizing_finds_the_knee() {
        let tenants = vec![
            Tenant::new("a", 90.0, 100.0, 60),
            Tenant::new("b", 90.0, 100.0, 60),
            Tenant::new("c", 90.0, 100.0, 60),
        ];
        // Each tenant needs ~0.9 slots: 3 slots meet a tight SLO, 2 do not.
        let needed = slots_for_slo(&tenants, 1.5, 8).expect("feasible");
        assert_eq!(needed, 3);
        // Impossible SLO reports None.
        assert_eq!(slots_for_slo(&tenants, 0.5, 8), None);
    }

    #[test]
    fn utilization_bounded() {
        let tenants = vec![Tenant::new("x", 10.0, 20.0, 100)];
        let r = share_slots(&tenants, 4);
        assert!(r.slot_utilization > 0.0 && r.slot_utilization <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        share_slots(&[Tenant::new("x", 1.0, 1.0, 1)], 0);
    }
}
