//! Runtime monitors: the bridge between the hardware monitors of the
//! data-protection layer and the autotuner's [`SystemState`].
//!
//! "Hardware monitors will collect the information to make the selection"
//! (paper IV): this module aggregates per-invocation measurements into the
//! dynamic state the selector consumes.

use crate::autotuner::SystemState;
use everest_security::{AutoProtect, ProtectAction, TimingMonitor};

/// Aggregated runtime monitor for one kernel.
#[derive(Debug, Clone)]
pub struct RuntimeMonitor {
    timing: TimingMonitor,
    protect: AutoProtect,
    free_luts: u64,
    congestion: f64,
    hardened_mode: bool,
    isolations: usize,
}

impl RuntimeMonitor {
    /// Creates a monitor with the given initially-free fabric.
    pub fn new(free_luts: u64) -> RuntimeMonitor {
        RuntimeMonitor {
            timing: TimingMonitor::new(0.1, 5.0),
            protect: AutoProtect::new(),
            free_luts,
            congestion: 1.0,
            hardened_mode: false,
            isolations: 0,
        }
    }

    /// Records one invocation: observed latency plus monitor alarms from
    /// the data-protection layer.
    pub fn record(&mut self, latency_us: f64, access_alarm: bool, range_alarm: bool) {
        let telemetry = everest_telemetry::metrics();
        let flight = everest_telemetry::flight();
        telemetry.observe("runtime.latency_us", latency_us);
        let timing_alarm = self.timing.observe(latency_us);
        // Each alarm also snapshots the flight recorder, so the events
        // *leading up to* the alarm survive for post-hoc inspection
        // (everest_telemetry::flight().take_alarm_dump()).
        if timing_alarm {
            telemetry.counter_inc("runtime.alarm.timing");
            flight.alarm("runtime.alarm.timing", latency_us);
        }
        if access_alarm {
            telemetry.counter_inc("runtime.alarm.access");
            flight.alarm("runtime.alarm.access", latency_us);
        }
        if range_alarm {
            telemetry.counter_inc("runtime.alarm.range");
            flight.alarm("runtime.alarm.range", latency_us);
        }
        match self.protect.step(timing_alarm, access_alarm, range_alarm) {
            ProtectAction::None | ProtectAction::Audit => {}
            ProtectAction::SwitchHardenedVariant => {
                telemetry.counter_inc("runtime.hardened_switches");
                self.hardened_mode = true;
            }
            ProtectAction::Isolate => {
                telemetry.counter_inc("runtime.isolations");
                self.hardened_mode = true;
                self.isolations += 1;
            }
        }
    }

    /// Updates resource availability (fabric reclaimed or consumed).
    pub fn set_free_luts(&mut self, free: u64) {
        self.free_luts = free;
        everest_telemetry::metrics().gauge_set("runtime.free_luts", free as f64);
    }

    /// Updates the observed link congestion factor (≥ 1).
    pub fn set_congestion(&mut self, factor: f64) {
        self.congestion = factor.max(1.0);
        everest_telemetry::metrics().gauge_set("runtime.congestion", self.congestion);
    }

    /// Clears the hardened-mode latch (after an operator all-clear).
    pub fn reset_protection(&mut self) {
        self.hardened_mode = false;
    }

    /// Number of isolate-level escalations so far.
    pub fn isolations(&self) -> usize {
        self.isolations
    }

    /// The [`SystemState`] snapshot the autotuner consumes.
    pub fn system_state(&self) -> SystemState {
        SystemState {
            free_luts: self.free_luts,
            link_congestion: self.congestion,
            require_hardened: self.hardened_mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_history_keeps_default_state() {
        let mut m = RuntimeMonitor::new(100_000);
        for _ in 0..50 {
            m.record(100.0, false, false);
        }
        let s = m.system_state();
        assert!(!s.require_hardened);
        assert_eq!(s.free_luts, 100_000);
    }

    #[test]
    fn access_alarms_latch_hardened_mode() {
        let mut m = RuntimeMonitor::new(100_000);
        for _ in 0..20 {
            m.record(100.0, false, false);
        }
        m.record(100.0, true, false);
        assert!(m.system_state().require_hardened);
        m.reset_protection();
        assert!(!m.system_state().require_hardened);
    }

    #[test]
    fn combined_alarms_escalate_to_isolation() {
        let mut m = RuntimeMonitor::new(100_000);
        for _ in 0..20 {
            m.record(100.0, false, false);
        }
        m.record(100.0, true, true);
        assert_eq!(m.isolations(), 1);
    }

    #[test]
    fn alarms_capture_a_flight_dump() {
        let mut m = RuntimeMonitor::new(100_000);
        for _ in 0..20 {
            m.record(100.0, false, false);
        }
        m.record(100.0, true, false);
        // Other tests in this binary may fire alarms concurrently (the
        // recorder is process-global), so assert on presence and shape
        // rather than on the exact alarm name.
        let dump = everest_telemetry::flight().take_alarm_dump().expect("alarm captured dump");
        assert!(dump.reason.starts_with("runtime.alarm."));
        assert!(dump.events.iter().any(|e| e.kind == everest_telemetry::EventKind::Alarm));
    }

    #[test]
    fn congestion_clamped_to_one() {
        let mut m = RuntimeMonitor::new(0);
        m.set_congestion(0.2);
        assert_eq!(m.system_state().link_congestion, 1.0);
        m.set_congestion(3.0);
        assert_eq!(m.system_state().link_congestion, 3.0);
    }

    #[test]
    fn fabric_updates_propagate() {
        let mut m = RuntimeMonitor::new(10);
        m.set_free_luts(999);
        assert_eq!(m.system_state().free_luts, 999);
    }
}
