//! Fault-tolerant network offload: deterministic fault injection and
//! recovery for remote kernel execution.
//!
//! The paper's runtime promises *dynamic adaptation* (Fig. 2) over a
//! target system whose cloudFPGAs are reached over plain TCP/UDP
//! (Fig. 4) — network peers that fail independently. This module closes
//! that loop for the simulated stack:
//!
//! * [`FaultPlan`] — a seeded plan of per-device / per-link-profile
//!   probabilities for dropped transfers, timeouts, corrupted results and
//!   permanent device loss. Outcomes are a pure function of
//!   `(seed, device, invocation, attempt)`, so a plan replays identically
//!   at any thread count.
//! * [`CircuitBreaker`] — the per-device Closed → Open → HalfOpen state
//!   machine that stops hammering a failing device and probes it again
//!   after a cooldown.
//! * [`RetryPolicy`] — capped exponential backoff with deterministic
//!   jitter derived from the same seed.
//! * [`OffloadManager`] — wraps every remote invocation with retry,
//!   breaker and graceful degradation down a fallback chain (network
//!   FPGA → bus-attached FPGA → host CPU reference kernel), feeding the
//!   [`RuntimeMonitor`] and the `offload.*` telemetry counters, and
//!   recording an [`OffloadEvent`] trace that is bit-identical for a
//!   given seed at any `jobs` count.
//!
//! # Lane-partitioned parallel fold
//!
//! The fallback chain is partitioned once, at construction, into
//! *lanes*: every FPGA roots its own lane (maximizing the fold's
//! parallel width), and the host CPU terminal is shared by every lane
//! (it is stateless: it never faults, so its breaker never transitions
//! and no mutable state is shared between lanes). A device that trips
//! therefore slows only its own lane — its calls degrade straight to
//! the CPU reference kernel. Invocation `task` folds on lane
//! `task % lanes`, and
//! each lane owns its breakers, loss flags and virtual clock, so
//! [`OffloadManager::run_batch`] folds all lanes concurrently on a
//! worker pool and then merges lane-local events, monitor records and
//! outcomes back into invocation order. Fault outcomes and backoff
//! jitter are pure in `(seed, device, invocation, attempt)`, so the
//! merged trace is bit-identical at any `jobs` count — `jobs = 1`
//! simply folds the lanes inline.

use crate::error::{RuntimeError, RuntimeResult};
use crate::monitor::RuntimeMonitor;
use everest_platform::{Attachment, Link, LinkProfile, System};
use everest_telemetry::LogHistogram;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// One injected failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The transfer was dropped on the wire (detected by timeout).
    Drop,
    /// The call exceeded its deadline.
    Timeout,
    /// The device answered, but the result failed its integrity check.
    Corrupt,
    /// The device disappeared for good (node loss, shell crash).
    DeviceLoss,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Drop => "drop",
            FaultKind::Timeout => "timeout",
            FaultKind::Corrupt => "corrupt",
            FaultKind::DeviceLoss => "device-loss",
        })
    }
}

/// Per-key fault probabilities. Each is in `[0, 1]` and their sum must
/// not exceed 1 (they partition the outcome space of one attempt).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a transfer is dropped.
    pub drop: f64,
    /// Probability a call times out.
    pub timeout: f64,
    /// Probability the result comes back corrupted.
    pub corrupt: f64,
    /// Probability the device is lost permanently.
    pub device_loss: f64,
}

impl FaultRates {
    /// No injected faults.
    pub const NONE: FaultRates =
        FaultRates { drop: 0.0, timeout: 0.0, corrupt: 0.0, device_loss: 0.0 };

    fn validate(&self) -> RuntimeResult<()> {
        let parts = [self.drop, self.timeout, self.corrupt, self.device_loss];
        if parts.iter().any(|p| !(0.0..=1.0).contains(p)) || parts.iter().sum::<f64>() > 1.0 {
            return Err(RuntimeError::Unknown(format!("invalid fault rates {self:?}")));
        }
        Ok(())
    }
}

/// FNV-1a, used to fold string keys into the outcome seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates the combined seed words.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, deterministic fault-injection plan.
///
/// Rates resolve per key, most specific first: an exact device override,
/// then the device's [`LinkProfile`] name, then the plan default. The
/// outcome of any attempt is a pure function of
/// `(seed, device, invocation, attempt)` — independent of wall clock,
/// thread interleaving and evaluation order.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    default_rates: FaultRates,
    overrides: BTreeMap<String, FaultRates>,
}

impl FaultPlan {
    /// The named profiles [`FaultPlan::from_profile`] understands.
    pub const PROFILES: [&'static str; 4] = ["none", "lossy", "flaky", "meltdown"];

    /// A plan applying `default_rates` to every target.
    ///
    /// # Errors
    ///
    /// Rejects rates outside `[0, 1]` or summing above 1.
    pub fn new(seed: u64, default_rates: FaultRates) -> RuntimeResult<FaultPlan> {
        default_rates.validate()?;
        Ok(FaultPlan { seed, default_rates, overrides: BTreeMap::new() })
    }

    /// A plan that injects nothing (the healthy baseline).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan { seed, default_rates: FaultRates::NONE, overrides: BTreeMap::new() }
    }

    /// A named scenario, parseable from the CLI:
    ///
    /// * `none` — no faults;
    /// * `lossy` — moderate drop/timeout/corruption on datacenter
    ///   TCP/UDP links, bus attachments clean;
    /// * `flaky` — heavy network faults including occasional device
    ///   loss, and a whiff of bus errors;
    /// * `meltdown` — every FPGA dies on first contact, forcing the CPU
    ///   fallback.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unknown`] for an unrecognized name.
    pub fn from_profile(name: &str, seed: u64) -> RuntimeResult<FaultPlan> {
        let network = |drop, timeout, corrupt, device_loss| FaultRates {
            drop,
            timeout,
            corrupt,
            device_loss,
        };
        match name.trim().to_ascii_lowercase().as_str() {
            "none" => Ok(FaultPlan::none(seed)),
            "lossy" => FaultPlan::none(seed)
                .with_rates(LinkProfile::TcpDatacenter.name(), network(0.15, 0.10, 0.05, 0.0))?
                .with_rates(LinkProfile::UdpDatacenter.name(), network(0.20, 0.05, 0.05, 0.0)),
            "flaky" => FaultPlan::none(seed)
                .with_rates(LinkProfile::TcpDatacenter.name(), network(0.30, 0.20, 0.10, 0.02))?
                .with_rates(LinkProfile::UdpDatacenter.name(), network(0.35, 0.15, 0.10, 0.02))?
                .with_rates(LinkProfile::OpenCapi.name(), network(0.02, 0.0, 0.01, 0.0)),
            "meltdown" => FaultPlan::new(seed, FaultRates { device_loss: 1.0, ..FaultRates::NONE }),
            other => Err(RuntimeError::Unknown(format!(
                "fault profile '{other}' (expected one of: {})",
                FaultPlan::PROFILES.join(", ")
            ))),
        }
    }

    /// Overrides the rates for one key (a device name or a
    /// [`LinkProfile`] name).
    ///
    /// # Errors
    ///
    /// Rejects invalid rates, like [`FaultPlan::new`].
    pub fn with_rates(mut self, key: &str, rates: FaultRates) -> RuntimeResult<FaultPlan> {
        rates.validate()?;
        self.overrides.insert(key.to_owned(), rates);
        Ok(self)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resolves the rates for a device, most specific key first.
    pub fn rates_for(&self, device: &str, profile: Option<LinkProfile>) -> FaultRates {
        if let Some(rates) = self.overrides.get(device) {
            return *rates;
        }
        if let Some(rates) = profile.and_then(|p| self.overrides.get(p.name())) {
            return *rates;
        }
        self.default_rates
    }

    /// Samples the outcome of one attempt: `None` is success. Pure in
    /// `(seed, device, invocation, attempt)`.
    pub fn outcome(
        &self,
        device: &str,
        profile: Option<LinkProfile>,
        invocation: u64,
        attempt: u32,
    ) -> Option<FaultKind> {
        let rates = self.rates_for(device, profile);
        let seed = mix(self.seed ^ fnv1a(device))
            ^ mix(invocation.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(u64::from(attempt)));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let draw: f64 = rng.gen_range(0.0..1.0);
        let mut edge = rates.device_loss;
        if draw < edge {
            return Some(FaultKind::DeviceLoss);
        }
        edge += rates.drop;
        if draw < edge {
            return Some(FaultKind::Drop);
        }
        edge += rates.timeout;
        if draw < edge {
            return Some(FaultKind::Timeout);
        }
        edge += rates.corrupt;
        if draw < edge {
            return Some(FaultKind::Corrupt);
        }
        None
    }
}

/// Retry/backoff configuration for one offload target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per target before falling back (>= 1).
    pub max_attempts: u32,
    /// Deadline charged to a dropped or timed-out attempt, microseconds.
    pub timeout_us: f64,
    /// First backoff, microseconds.
    pub base_us: f64,
    /// Multiplier between consecutive backoffs.
    pub factor: f64,
    /// Backoff ceiling, microseconds.
    pub cap_us: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            timeout_us: 2_000.0,
            base_us: 200.0,
            factor: 2.0,
            cap_us: 5_000.0,
        }
    }
}

impl RetryPolicy {
    /// The un-jittered backoff before retry number `attempt` (1-based):
    /// `base * factor^(attempt-1)`, capped. Non-decreasing in `attempt`.
    pub fn nominal_backoff_us(&self, attempt: u32) -> f64 {
        (self.base_us * self.factor.powi(attempt.saturating_sub(1) as i32)).min(self.cap_us)
    }

    /// The jittered backoff: deterministic "equal jitter" in
    /// `[nominal/2, nominal)`, derived from `(seed, device, invocation,
    /// attempt)` so schedules replay bit-identically per seed.
    pub fn backoff_us(&self, seed: u64, device: &str, invocation: u64, attempt: u32) -> f64 {
        let nominal = self.nominal_backoff_us(attempt);
        let word = mix(seed ^ fnv1a(device).rotate_left(17))
            ^ mix(invocation.wrapping_mul(0x9e37_79b9).wrapping_add(u64::from(attempt)));
        let mut rng = ChaCha8Rng::seed_from_u64(word);
        let unit: f64 = rng.gen_range(0.0..1.0);
        nominal * (0.5 + 0.5 * unit)
    }
}

/// Circuit-breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow, consecutive failures are counted.
    Closed,
    /// Tripped: calls are rejected until the cooldown elapses.
    Open,
    /// Probing: a limited number of trial calls decide re-close vs re-open.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub trip_after: u32,
    /// Time the breaker stays Open before probing, microseconds.
    pub cooldown_us: f64,
    /// Consecutive half-open successes that re-close the breaker.
    pub close_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig { trip_after: 3, cooldown_us: 10_000.0, close_after: 2 }
    }
}

/// Per-device circuit breaker over simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    open_until_us: f64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            half_open_successes: 0,
            open_until_us: 0.0,
        }
    }

    /// The current state *without* advancing time.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The state at simulated time `now_us`, transitioning Open →
    /// HalfOpen once the cooldown has elapsed.
    pub fn poll(&mut self, now_us: f64) -> BreakerState {
        if self.state == BreakerState::Open && now_us >= self.open_until_us {
            self.state = BreakerState::HalfOpen;
            self.half_open_successes = 0;
        }
        self.state
    }

    /// Records a successful call. Returns `true` when this success
    /// re-closes a half-open breaker.
    pub fn on_success(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                false
            }
            BreakerState::HalfOpen => {
                self.half_open_successes += 1;
                if self.half_open_successes >= self.cfg.close_after {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    true
                } else {
                    false
                }
            }
            // A success while Open cannot happen (calls are rejected);
            // tolerate it as a no-op for robustness.
            BreakerState::Open => false,
        }
    }

    /// Records a failed call at simulated time `now_us`. Returns `true`
    /// when this failure trips the breaker open (from either Closed, on
    /// reaching the threshold, or HalfOpen, immediately).
    pub fn on_failure(&mut self, now_us: f64) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.trip_after {
                    self.state = BreakerState::Open;
                    self.open_until_us = now_us + self.cfg.cooldown_us;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.open_until_us = now_us + self.cfg.cooldown_us;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// Latches the breaker open forever (device loss).
    pub fn force_open(&mut self) {
        self.state = BreakerState::Open;
        self.open_until_us = f64::INFINITY;
    }
}

/// Where in the fallback chain a target sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetClass {
    /// Disaggregated cloudFPGA reached over the datacenter network.
    NetworkFpga,
    /// Cache-coherent bus-attached FPGA on the host node.
    BusFpga,
    /// The host CPU running the reference software kernel.
    HostCpu,
}

impl fmt::Display for TargetClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TargetClass::NetworkFpga => "network-fpga",
            TargetClass::BusFpga => "bus-fpga",
            TargetClass::HostCpu => "host-cpu",
        })
    }
}

/// One rung of the fallback chain.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadTarget {
    /// `node/device` name (`cloud-p9/cpu` for the software fallback).
    pub device: String,
    /// Target class.
    pub class: TargetClass,
    /// Link the payload crosses to reach the target.
    pub link: Link,
    /// The link's named profile, used to resolve fault rates.
    pub profile: Option<LinkProfile>,
    /// Kernel speedup relative to the CPU reference.
    pub speedup: f64,
}

/// One kernel invocation to offload.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadCall {
    /// Kernel name (for the trace and error messages).
    pub kernel: String,
    /// Payload moved to (and from) the target, bytes.
    pub payload_bytes: u64,
    /// Kernel work at CPU-reference speed, microseconds.
    pub work_us: f64,
}

/// How one invocation ended.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadOutcome {
    /// Invocation index (assignment order).
    pub task: u64,
    /// Device that completed the call.
    pub device: String,
    /// Its class.
    pub class: TargetClass,
    /// Attempts made across the whole chain.
    pub attempts: u32,
    /// Simulated end-to-end time, microseconds (transfers, timeouts,
    /// backoffs, compute).
    pub elapsed_us: f64,
    /// `true` when the call did not complete on the chain's first rung.
    pub degraded: bool,
}

/// One entry of the deterministic retry/fallback trace.
#[derive(Debug, Clone, PartialEq)]
pub enum OffloadEvent {
    /// An attempt started on a device.
    Attempt {
        /// Invocation index.
        task: u64,
        /// Target device.
        device: String,
        /// Attempt number on this device (0-based).
        attempt: u32,
    },
    /// An attempt failed.
    Fault {
        /// Invocation index.
        task: u64,
        /// Target device.
        device: String,
        /// Attempt number on this device.
        attempt: u32,
        /// Failure mode.
        kind: FaultKind,
    },
    /// The manager backed off before retrying.
    Backoff {
        /// Invocation index.
        task: u64,
        /// Target device.
        device: String,
        /// The retry this wait precedes (1-based).
        attempt: u32,
        /// Jittered wait, microseconds.
        wait_us: f64,
    },
    /// A target was skipped without an attempt.
    Skip {
        /// Invocation index.
        task: u64,
        /// Skipped device.
        device: String,
        /// Why (`breaker-open` or `device-lost`).
        reason: &'static str,
    },
    /// A device's breaker tripped open.
    BreakerOpened {
        /// Invocation index that tripped it.
        task: u64,
        /// Device.
        device: String,
    },
    /// A breaker began half-open probing.
    BreakerHalfOpen {
        /// Invocation index probing it.
        task: u64,
        /// Device.
        device: String,
    },
    /// A half-open breaker re-closed after successful probes.
    BreakerClosed {
        /// Invocation index that closed it.
        task: u64,
        /// Device.
        device: String,
    },
    /// A device was lost permanently.
    DeviceLost {
        /// Invocation index that observed the loss.
        task: u64,
        /// Device.
        device: String,
    },
    /// The call moved down the fallback chain.
    Fallback {
        /// Invocation index.
        task: u64,
        /// Abandoned device.
        from: String,
        /// Next device in the chain.
        to: String,
    },
    /// The call completed.
    Completed {
        /// Invocation index.
        task: u64,
        /// Completing device.
        device: String,
        /// Its class.
        class: TargetClass,
        /// Attempts across the whole chain.
        attempts: u32,
        /// Simulated end-to-end time, microseconds.
        elapsed_us: f64,
    },
}

impl fmt::Display for OffloadEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadEvent::Attempt { task, device, attempt } => {
                write!(f, "task {task}: attempt {attempt} on {device}")
            }
            OffloadEvent::Fault { task, device, attempt, kind } => {
                write!(f, "task {task}: {kind} on {device} (attempt {attempt})")
            }
            OffloadEvent::Backoff { task, device, attempt, wait_us } => {
                write!(f, "task {task}: backoff {wait_us:.1} us before retry {attempt} on {device}")
            }
            OffloadEvent::Skip { task, device, reason } => {
                write!(f, "task {task}: skip {device} ({reason})")
            }
            OffloadEvent::BreakerOpened { task, device } => {
                write!(f, "task {task}: breaker OPEN on {device}")
            }
            OffloadEvent::BreakerHalfOpen { task, device } => {
                write!(f, "task {task}: breaker HALF-OPEN on {device}")
            }
            OffloadEvent::BreakerClosed { task, device } => {
                write!(f, "task {task}: breaker CLOSED on {device}")
            }
            OffloadEvent::DeviceLost { task, device } => {
                write!(f, "task {task}: device LOST: {device}")
            }
            OffloadEvent::Fallback { task, from, to } => {
                write!(f, "task {task}: fallback {from} -> {to}")
            }
            OffloadEvent::Completed { task, device, class, attempts, elapsed_us } => {
                write!(
                    f,
                    "task {task}: completed on {device} [{class}] after {attempts} attempts, {elapsed_us:.1} us"
                )
            }
        }
    }
}

impl OffloadEvent {
    /// The invocation index this event belongs to (used by the merge
    /// phase to re-interleave lane-local traces in invocation order).
    fn task(&self) -> u64 {
        match self {
            OffloadEvent::Attempt { task, .. }
            | OffloadEvent::Fault { task, .. }
            | OffloadEvent::Backoff { task, .. }
            | OffloadEvent::Skip { task, .. }
            | OffloadEvent::BreakerOpened { task, .. }
            | OffloadEvent::BreakerHalfOpen { task, .. }
            | OffloadEvent::BreakerClosed { task, .. }
            | OffloadEvent::DeviceLost { task, .. }
            | OffloadEvent::Fallback { task, .. }
            | OffloadEvent::Completed { task, .. } => *task,
        }
    }
}

/// One fold lane: a disjoint slice of the fallback chain rooted at a
/// primary device, ending in the shared (stateless) CPU terminal. The
/// lane owns all mutable recovery state — breakers, loss flags and the
/// virtual clock — for its rungs, so lanes fold concurrently without
/// sharing anything mutable.
#[derive(Debug, Clone)]
struct Lane {
    /// Chain indices this lane tries, in preference order.
    targets: Vec<usize>,
    /// Breaker per rung (parallel to `targets`).
    breakers: Vec<CircuitBreaker>,
    /// Permanent-loss flag per rung (parallel to `targets`).
    lost: Vec<bool>,
    /// The lane's simulated clock, microseconds.
    clock_us: f64,
}

impl Lane {
    fn new(targets: Vec<usize>, cfg: BreakerConfig) -> Lane {
        let n = targets.len();
        Lane {
            targets,
            breakers: vec![CircuitBreaker::new(cfg); n],
            lost: vec![false; n],
            clock_us: 0.0,
        }
    }

    fn push(&mut self, idx: usize, cfg: BreakerConfig) {
        self.targets.push(idx);
        self.breakers.push(CircuitBreaker::new(cfg));
        self.lost.push(false);
    }
}

/// Partitions a fallback chain into lanes: one lane per device (every
/// FPGA rung roots its own lane), with the stateless CPU terminal
/// appended to each. Per-device lanes maximize the fold's parallel
/// width — a tripped device slows only its own lane instead of
/// serializing behind a shared secondary — at the cost of skipping
/// cross-device fallback: a call whose device is unavailable degrades
/// straight to the CPU reference kernel. A chain with no FPGA rungs
/// collapses to a single lane over everything.
fn partition_lanes(chain: &[OffloadTarget], cfg: BreakerConfig) -> Vec<Lane> {
    if !chain.iter().any(|t| t.class != TargetClass::HostCpu) {
        return vec![Lane::new((0..chain.len()).collect(), cfg)];
    }
    let mut lanes: Vec<Lane> = chain
        .iter()
        .enumerate()
        .filter(|(_, t)| t.class != TargetClass::HostCpu)
        .map(|(i, _)| Lane::new(vec![i], cfg))
        .collect();
    for (i, t) in chain.iter().enumerate() {
        if t.class == TargetClass::HostCpu {
            for lane in &mut lanes {
                lane.push(i, cfg);
            }
        }
    }
    lanes
}

/// Lane-local telemetry, flushed to the global registry once per lane
/// fold so the hot loop never takes the registry lock.
struct LaneStats {
    completed: u64,
    faults: u64,
    retries: u64,
    fallbacks: u64,
    device_loss: u64,
    breaker_open: u64,
    latency: LogHistogram,
    sim: LogHistogram,
    attempts: LogHistogram,
}

impl LaneStats {
    fn new() -> LaneStats {
        LaneStats {
            completed: 0,
            faults: 0,
            retries: 0,
            fallbacks: 0,
            device_loss: 0,
            breaker_open: 0,
            latency: LogHistogram::new(),
            sim: LogHistogram::new(),
            attempts: LogHistogram::new(),
        }
    }

    fn flush(&self) {
        let telemetry = everest_telemetry::metrics();
        for (name, value) in [
            ("offload.completed", self.completed),
            ("offload.faults", self.faults),
            ("offload.retries", self.retries),
            ("offload.fallbacks", self.fallbacks),
            ("offload.device_loss", self.device_loss),
            ("offload.breaker.open", self.breaker_open),
        ] {
            if value > 0 {
                telemetry.counter_add(name, value);
            }
        }
        telemetry.merge_histogram("offload.latency_us", &self.latency);
        telemetry.merge_histogram("offload.call.sim_us", &self.sim);
        telemetry.merge_histogram("offload.call.attempts", &self.attempts);
    }
}

/// A monitor observation deferred until the merge phase:
/// `(task, latency_us, access_alarm, range_alarm)`. The EWMA monitor is
/// order-sensitive, so lanes queue observations and the merge replays
/// them in invocation order.
type MonitorRecord = (u64, f64, bool, bool);

/// Everything one lane fold produces, merged back on the caller thread.
struct LaneReport {
    lane: Lane,
    results: Vec<RuntimeResult<OffloadOutcome>>,
    events: Vec<OffloadEvent>,
    records: Vec<MonitorRecord>,
    fold_us: f64,
}

/// Emits the `Fallback` trace event (and counts it, when the abandoned
/// rung was actually attempted) for a call moving down its lane.
#[allow(clippy::too_many_arguments)]
fn push_fallback(
    lane: &Lane,
    li: usize,
    chain: &[OffloadTarget],
    task: u64,
    from: &str,
    events: &mut Vec<OffloadEvent>,
    stats: &mut LaneStats,
    tried: bool,
) {
    if li + 1 < lane.targets.len() {
        let to = chain[lane.targets[li + 1]].device.clone();
        events.push(OffloadEvent::Fallback { task, from: from.to_owned(), to });
        if tried {
            stats.fallbacks += 1;
            everest_telemetry::flight().marker("offload.fallback", task as f64);
        }
    }
}

/// Folds one call through its lane: retry, breaker and fallback, with
/// fault outcomes and backoff jitter sampled inline (they are pure in
/// `(seed, device, task, attempt)`, so inline sampling is identical to
/// pre-sampling). Mutates only lane-local state; trace events and
/// monitor observations queue into the caller's buffers for the merge.
#[allow(clippy::too_many_arguments)]
fn fold_call(
    plan: &FaultPlan,
    retry: &RetryPolicy,
    chain: &[OffloadTarget],
    lane: &mut Lane,
    task: u64,
    call: &OffloadCall,
    events: &mut Vec<OffloadEvent>,
    records: &mut Vec<MonitorRecord>,
    stats: &mut LaneStats,
) -> RuntimeResult<OffloadOutcome> {
    let flight = everest_telemetry::flight();
    let clock_start = lane.clock_us;
    let mut attempts_total: u32 = 0;

    // Causal context: attempt spans opened below nest under this call
    // span, so a recorded trace links every retry/backoff/fallback to
    // the call that caused it.
    let mut call_span = everest_telemetry::span("offload.call", "offload");
    call_span.attr("task", task);
    call_span.attr("kernel", &call.kernel);
    flight.record(everest_telemetry::EventKind::SpanBegin, "offload.call", task as f64);

    for li in 0..lane.targets.len() {
        let target = &chain[lane.targets[li]];
        let device = target.device.clone();

        if lane.lost[li] {
            events.push(OffloadEvent::Skip { task, device: device.clone(), reason: "device-lost" });
            push_fallback(lane, li, chain, task, &device, events, stats, false);
            continue;
        }
        match lane.breakers[li].poll(lane.clock_us) {
            BreakerState::Open => {
                events.push(OffloadEvent::Skip {
                    task,
                    device: device.clone(),
                    reason: "breaker-open",
                });
                push_fallback(lane, li, chain, task, &device, events, stats, false);
                continue;
            }
            BreakerState::HalfOpen => {
                events.push(OffloadEvent::BreakerHalfOpen { task, device: device.clone() });
            }
            BreakerState::Closed => {}
        }

        let transfer_us = target.link.transfer_us(call.payload_bytes);
        let compute_us = call.work_us / target.speedup;
        let mut abandoned = false;
        for attempt in 0..retry.max_attempts.max(1) {
            events.push(OffloadEvent::Attempt { task, device: device.clone(), attempt });
            attempts_total += 1;
            let mut attempt_span = everest_telemetry::span("offload.attempt", "offload");
            attempt_span.attr("task", task);
            attempt_span.attr("device", &device);
            attempt_span.attr("attempt", attempt);
            flight.marker("offload.attempt", attempt as f64);
            let outcome = if target.class == TargetClass::HostCpu {
                // The reference kernel is local: no injected faults.
                None
            } else {
                plan.outcome(&device, target.profile, task, attempt)
            };
            match outcome {
                None => {
                    let latency = transfer_us + compute_us;
                    lane.clock_us += latency;
                    records.push((task, latency, false, false));
                    stats.latency.observe(latency);
                    stats.completed += 1;
                    if lane.breakers[li].on_success() {
                        events.push(OffloadEvent::BreakerClosed { task, device: device.clone() });
                    }
                    events.push(OffloadEvent::Completed {
                        task,
                        device: device.clone(),
                        class: target.class,
                        attempts: attempts_total,
                        elapsed_us: lane.clock_us,
                    });
                    let sim_us = lane.clock_us - clock_start;
                    stats.sim.observe(sim_us);
                    stats.attempts.observe(f64::from(attempts_total));
                    flight.record(everest_telemetry::EventKind::SpanEnd, "offload.call", sim_us);
                    return Ok(OffloadOutcome {
                        task,
                        device,
                        class: target.class,
                        attempts: attempts_total,
                        elapsed_us: lane.clock_us,
                        degraded: li != 0,
                    });
                }
                Some(kind) => {
                    stats.faults += 1;
                    flight.record(everest_telemetry::EventKind::CounterAdd, "offload.faults", 1.0);
                    events.push(OffloadEvent::Fault {
                        task,
                        device: device.clone(),
                        attempt,
                        kind,
                    });
                    // Cost of the failed attempt: a corrupt result came
                    // back (full round trip, checksum reject);
                    // everything else burns the deadline.
                    let penalty = match kind {
                        FaultKind::Corrupt => transfer_us + compute_us,
                        _ => retry.timeout_us,
                    };
                    lane.clock_us += penalty;
                    records.push((task, penalty, false, kind == FaultKind::Corrupt));
                    if kind == FaultKind::DeviceLoss {
                        lane.lost[li] = true;
                        lane.breakers[li].force_open();
                        stats.device_loss += 1;
                        flight.marker("offload.device_loss", task as f64);
                        events.push(OffloadEvent::DeviceLost { task, device: device.clone() });
                        abandoned = true;
                        break;
                    }
                    if lane.breakers[li].on_failure(lane.clock_us) {
                        stats.breaker_open += 1;
                        flight.marker("offload.breaker_open", task as f64);
                        events.push(OffloadEvent::BreakerOpened { task, device: device.clone() });
                        abandoned = true;
                        break;
                    }
                    let retry_no = attempt + 1;
                    if retry_no >= retry.max_attempts {
                        abandoned = true;
                        break;
                    }
                    let wait_us = retry.backoff_us(plan.seed(), &device, task, retry_no);
                    lane.clock_us += wait_us;
                    stats.retries += 1;
                    flight.marker("offload.backoff_us", wait_us);
                    events.push(OffloadEvent::Backoff {
                        task,
                        device: device.clone(),
                        attempt: retry_no,
                        wait_us,
                    });
                }
            }
        }
        debug_assert!(abandoned, "loop only exits via success or abandonment");
        push_fallback(lane, li, chain, task, &device, events, stats, true);
    }
    let sim_us = lane.clock_us - clock_start;
    stats.attempts.observe(f64::from(attempts_total));
    flight.record(everest_telemetry::EventKind::SpanEnd, "offload.call", sim_us);
    Err(RuntimeError::OffloadFailed { kernel: call.kernel.clone(), attempts: attempts_total })
}

/// Below this, a pacing lag is carried to the next call instead of
/// slept: timer slack makes micro-sleeps overshoot badly.
const PACING_QUANTUM_US: f64 = 200.0;

/// Folds every task assigned to one lane, in task order, on the calling
/// pool worker. Telemetry counters/histograms flush once at the end.
///
/// With `pacing = Some(scale)` the lane replays its virtual clock at
/// `scale` simulated microseconds per real microsecond, sleeping off any
/// accumulated lag after each call (hardware-in-the-loop style
/// emulation). Pacing never touches a computed value — outcomes, traces
/// and breaker transitions are bit-identical with pacing on or off — it
/// only makes the wall clock reflect per-device occupancy, so lanes
/// folding in parallel overlap their device waits like real offload
/// queues do.
fn fold_lane(
    plan: &FaultPlan,
    retry: &RetryPolicy,
    chain: &[OffloadTarget],
    mut lane: Lane,
    tasks: &[(u64, &OffloadCall)],
    pacing: Option<f64>,
) -> LaneReport {
    let t = Instant::now();
    let clock_start = lane.clock_us;
    let mut results = Vec::with_capacity(tasks.len());
    let mut events = Vec::new();
    let mut records = Vec::new();
    let mut stats = LaneStats::new();
    for &(task, call) in tasks {
        results.push(fold_call(
            plan,
            retry,
            chain,
            &mut lane,
            task,
            call,
            &mut events,
            &mut records,
            &mut stats,
        ));
        if let Some(scale) = pacing {
            let owed_us = (lane.clock_us - clock_start) / scale;
            let lag_us = owed_us - t.elapsed().as_secs_f64() * 1e6;
            if lag_us > PACING_QUANTUM_US {
                std::thread::sleep(std::time::Duration::from_secs_f64(lag_us / 1e6));
            }
        }
    }
    stats.flush();
    let fold_us = t.elapsed().as_secs_f64() * 1e6;
    LaneReport { lane, results, events, records, fold_us }
}

/// Wraps remote kernel invocations with retry, circuit breaking and
/// graceful degradation. See the module docs for the full contract.
#[derive(Debug, Clone)]
pub struct OffloadManager {
    plan: FaultPlan,
    retry: RetryPolicy,
    chain: Vec<OffloadTarget>,
    lanes: Vec<Lane>,
    monitor: RuntimeMonitor,
    events: Vec<OffloadEvent>,
    invocations: u64,
    pacing: Option<f64>,
}

impl OffloadManager {
    /// A manager over an explicit fallback chain.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unknown`] for an empty chain.
    pub fn new(chain: Vec<OffloadTarget>, plan: FaultPlan) -> RuntimeResult<OffloadManager> {
        if chain.is_empty() {
            return Err(RuntimeError::Unknown("empty offload chain".to_owned()));
        }
        let lanes = partition_lanes(&chain, BreakerConfig::default());
        Ok(OffloadManager {
            plan,
            retry: RetryPolicy::default(),
            lanes,
            chain,
            monitor: RuntimeMonitor::new(0),
            events: Vec::new(),
            invocations: 0,
            pacing: None,
        })
    }

    /// Builds the paper's fallback chain from a system model: every
    /// network-attached FPGA (preferred — disaggregated capacity), then
    /// every bus-attached FPGA, then the host CPU reference kernel.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unknown`] when the system has no nodes.
    pub fn for_system(system: &System, plan: FaultPlan) -> RuntimeResult<OffloadManager> {
        let host = system
            .nodes()
            .first()
            .ok_or_else(|| RuntimeError::Unknown("system has no nodes".to_owned()))?;
        let mut network = Vec::new();
        let mut bus = Vec::new();
        for node in system.nodes() {
            for device in &node.devices {
                let link = *device.attachment.link();
                let target = OffloadTarget {
                    device: format!("{}/{}", node.name, device.name),
                    class: if device.attachment.is_disaggregated() {
                        TargetClass::NetworkFpga
                    } else {
                        TargetClass::BusFpga
                    },
                    link,
                    profile: LinkProfile::of(&link),
                    speedup: 4.0,
                };
                match device.attachment {
                    Attachment::Network(_) => network.push(target),
                    Attachment::Bus(_) => bus.push(target),
                }
            }
        }
        let mut chain = network;
        chain.extend(bus);
        chain.push(OffloadTarget {
            device: format!("{}/cpu", host.name),
            class: TargetClass::HostCpu,
            // Host DRAM: effectively free for payloads at this granularity.
            link: Link::new(0.0, 1_000.0, 0),
            profile: None,
            speedup: 1.0,
        });
        OffloadManager::new(chain, plan)
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> OffloadManager {
        self.retry = retry;
        self
    }

    /// Replaces every breaker's thresholds (breakers reset to Closed).
    #[must_use]
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> OffloadManager {
        for lane in &mut self.lanes {
            lane.breakers = vec![CircuitBreaker::new(cfg); lane.targets.len()];
        }
        self
    }

    /// Enables hardware-in-the-loop style pacing for batch folds: each
    /// lane replays its virtual clock at `scale` simulated microseconds
    /// per real microsecond, sleeping off the difference. Pacing never
    /// changes a computed value — outcomes, traces and breaker
    /// transitions stay bit-identical — it makes the wall clock track
    /// per-device occupancy, so parallel lanes overlap their device
    /// waits the way real offload queues do (including on a single-core
    /// host, where the bookkeeping itself cannot parallelize).
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    #[must_use]
    pub fn with_pacing(mut self, scale: f64) -> OffloadManager {
        assert!(scale > 0.0 && scale.is_finite(), "pacing scale must be positive");
        self.pacing = Some(scale);
        self
    }

    /// The number of independent fold lanes (one per primary device;
    /// a chain with no FPGA rungs collapses to one lane). Invocation
    /// `task` folds on lane `task % lane_count()`.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The fallback chain, in preference order.
    pub fn chain(&self) -> &[OffloadTarget] {
        &self.chain
    }

    /// The event trace so far, in invocation order.
    pub fn events(&self) -> &[OffloadEvent] {
        &self.events
    }

    /// The monitor fed by completed invocations.
    pub fn monitor(&self) -> &RuntimeMonitor {
        &self.monitor
    }

    /// The breaker guarding `device`, if it is in the chain. The shared
    /// CPU terminal sits on every lane; its first lane's (never-tripped)
    /// breaker is returned.
    pub fn breaker(&self, device: &str) -> Option<&CircuitBreaker> {
        let idx = self.chain.iter().position(|t| t.device == device)?;
        self.lanes.iter().find_map(|lane| {
            lane.targets.iter().position(|&t| t == idx).map(|li| &lane.breakers[li])
        })
    }

    /// Devices currently unusable: lost, or breaker not Closed.
    /// Reported in chain order.
    pub fn tripped_devices(&self) -> Vec<String> {
        self.chain
            .iter()
            .enumerate()
            .filter(|(idx, _)| {
                self.lanes.iter().any(|lane| {
                    lane.targets.iter().position(|&t| t == *idx).is_some_and(|li| {
                        lane.lost[li] || lane.breakers[li].state() != BreakerState::Closed
                    })
                })
            })
            .map(|(_, t)| t.device.clone())
            .collect()
    }

    /// The trace as one line per event (what `everestc offload` prints
    /// and what the determinism contract compares).
    pub fn trace(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }

    /// Executes one call on its lane (`task % lane_count()`), with the
    /// monitor fed immediately. Interleaving `execute` calls with
    /// [`OffloadManager::run_batch`] produces the same trace as one big
    /// batch — both fold each task on the same lane in task order.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::OffloadFailed`] when every target in the
    /// lane fails — impossible while the chain ends in a host CPU.
    pub fn execute(&mut self, call: &OffloadCall) -> RuntimeResult<OffloadOutcome> {
        let task = self.invocations;
        self.invocations += 1;
        let lane_idx = (task % self.lanes.len() as u64) as usize;
        let OffloadManager { plan, retry, chain, lanes, monitor, events, .. } = self;
        let mut records = Vec::new();
        let mut stats = LaneStats::new();
        let result = fold_call(
            plan,
            retry,
            chain,
            &mut lanes[lane_idx],
            task,
            call,
            events,
            &mut records,
            &mut stats,
        );
        stats.flush();
        for (_, latency, access, range) in records {
            monitor.record(latency, access, range);
        }
        result
    }

    /// Executes a batch as a parallel reduction over the lanes: calls
    /// are dealt round-robin to lanes (phase 1, `partition`), each lane
    /// folds its tasks on a pool worker (phase 2, `fold` — lanes share
    /// no mutable state, and fault/backoff sampling is pure in the
    /// invocation index), and lane-local traces, monitor observations
    /// and outcomes merge back in invocation order (phase 3, `merge`).
    /// The merged trace, outcomes and counters are bit-identical at any
    /// `jobs` count; `jobs <= 1` folds the lanes inline and is the
    /// sequential reference.
    ///
    /// Phase wall-clocks land in the `offload.phase.partition_us` /
    /// `offload.phase.fold_us` (one observation per lane) /
    /// `offload.phase.merge_us` histograms.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeError::OffloadFailed`] in
    /// invocation order.
    pub fn run_batch(
        &mut self,
        calls: &[OffloadCall],
        jobs: usize,
    ) -> RuntimeResult<Vec<OffloadOutcome>> {
        let mut span = everest_telemetry::span("offload.run_batch", "offload");
        span.attr("calls", calls.len());
        span.attr("jobs", jobs);
        if calls.is_empty() {
            return Ok(Vec::new());
        }
        let telemetry = everest_telemetry::metrics();
        let flight = everest_telemetry::flight();
        let first_task = self.invocations;
        self.invocations += calls.len() as u64;
        let nlanes = self.lanes.len() as u64;

        // Phase 1: deal invocations round-robin onto the lanes.
        let t_partition = Instant::now();
        let mut lane_tasks: Vec<Vec<(u64, &OffloadCall)>> =
            (0..nlanes).map(|_| Vec::with_capacity(calls.len() / nlanes as usize + 1)).collect();
        for (i, call) in calls.iter().enumerate() {
            let task = first_task + i as u64;
            lane_tasks[(task % nlanes) as usize].push((task, call));
        }
        let lanes = std::mem::take(&mut self.lanes);
        let items: Vec<(Lane, Vec<(u64, &OffloadCall)>)> =
            lanes.into_iter().zip(lane_tasks).collect();
        let partition_us = t_partition.elapsed().as_secs_f64() * 1e6;
        telemetry.observe("offload.phase.partition_us", partition_us);
        flight.marker("offload.phase.partition_us", partition_us);

        // Phase 2: fold every lane, concurrently on up to `jobs` pool
        // workers. Each lane's fold time is its own observation, so the
        // phase histogram accumulates lanes × batches samples.
        let plan = &self.plan;
        let retry = &self.retry;
        let chain = &self.chain;
        let pacing = self.pacing;
        let reports: Vec<LaneReport> = everest_workflow::pool::parallel_map(
            "offload.lane",
            jobs,
            items,
            |_, (lane, tasks)| fold_lane(plan, retry, chain, lane, &tasks, pacing),
        );
        for report in &reports {
            telemetry.observe("offload.phase.fold_us", report.fold_us);
            flight.marker("offload.phase.fold_us", report.fold_us);
        }

        // Phase 3: merge lane-local results back into invocation order.
        // Each lane's buffers are already task-ordered, so the merge is
        // a linear interleave steered by `task % nlanes`.
        let t_merge = Instant::now();
        let mut results = Vec::with_capacity(reports.len());
        let mut events = Vec::with_capacity(reports.len());
        let mut records = Vec::with_capacity(reports.len());
        let mut lanes_back = Vec::with_capacity(reports.len());
        for report in reports {
            lanes_back.push(report.lane);
            results.push(report.results.into_iter());
            events.push(report.events.into_iter().peekable());
            records.push(report.records.into_iter().peekable());
        }
        self.lanes = lanes_back;
        let mut outcomes = Vec::with_capacity(calls.len());
        for i in 0..calls.len() {
            let task = first_task + i as u64;
            let lane = (task % nlanes) as usize;
            while records[lane].peek().is_some_and(|r| r.0 == task) {
                let (_, latency, access, range) = records[lane].next().expect("peeked");
                self.monitor.record(latency, access, range);
            }
            while events[lane].peek().is_some_and(|e| e.task() == task) {
                self.events.push(events[lane].next().expect("peeked"));
            }
            outcomes.push(results[lane].next().expect("one result per task"));
        }
        let merge_us = t_merge.elapsed().as_secs_f64() * 1e6;
        telemetry.observe("offload.phase.merge_us", merge_us);
        flight.marker("offload.phase.merge_us", merge_us);
        outcomes.into_iter().collect()
    }

    #[cfg(test)]
    fn lane_devices(&self) -> Vec<Vec<&str>> {
        self.lanes
            .iter()
            .map(|l| l.targets.iter().map(|&i| self.chain[i].device.as_str()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(kernel: &str) -> OffloadCall {
        OffloadCall { kernel: kernel.into(), payload_bytes: 64 << 10, work_us: 400.0 }
    }

    fn manager(profile: &str, seed: u64) -> OffloadManager {
        let plan = FaultPlan::from_profile(profile, seed).unwrap();
        OffloadManager::for_system(&System::everest_reference(), plan).unwrap()
    }

    #[test]
    fn chain_orders_network_then_bus_then_cpu() {
        let mgr = manager("none", 1);
        let classes: Vec<TargetClass> = mgr.chain().iter().map(|t| t.class).collect();
        assert_eq!(classes.len(), 8, "7 FPGAs + CPU");
        let first_bus = classes.iter().position(|c| *c == TargetClass::BusFpga).unwrap();
        assert!(classes[..first_bus].iter().all(|c| *c == TargetClass::NetworkFpga));
        assert_eq!(*classes.last().unwrap(), TargetClass::HostCpu);
        // Network FPGAs resolve their link profile for rate lookup.
        assert_eq!(mgr.chain()[0].profile, Some(LinkProfile::UdpDatacenter));
    }

    #[test]
    fn healthy_plan_completes_on_first_rung_without_degradation() {
        let mut mgr = manager("none", 42);
        let outcome = mgr.execute(&call("fft")).unwrap();
        assert_eq!(outcome.attempts, 1);
        assert!(!outcome.degraded);
        assert_eq!(outcome.class, TargetClass::NetworkFpga);
        assert!(mgr.tripped_devices().is_empty());
    }

    #[test]
    fn meltdown_falls_back_to_cpu_and_reports_degraded() {
        let mut mgr = manager("meltdown", 7);
        // One call per lane kills every FPGA in that lane on first
        // contact; after a full round of the lanes all 7 are dead.
        for _ in 0..mgr.lane_count() {
            let outcome = mgr.execute(&call("fft")).unwrap();
            assert_eq!(outcome.class, TargetClass::HostCpu);
            assert!(outcome.degraded);
        }
        assert_eq!(mgr.tripped_devices().len(), 7);
        let next = mgr.execute(&call("fft")).unwrap();
        assert_eq!(next.class, TargetClass::HostCpu);
        // Dead devices are skipped, not re-attempted.
        assert_eq!(next.attempts, 1);
    }

    #[test]
    fn lanes_partition_fpgas_disjointly_and_share_the_cpu() {
        let mgr = manager("none", 1);
        let lanes = mgr.lane_devices();
        assert_eq!(lanes.len(), 7, "one lane per FPGA");
        // Every lane is one FPGA plus the shared CPU terminal.
        for lane in &lanes {
            assert_eq!(lane.len(), 2, "lane is [device, cpu]: {lane:?}");
            assert_eq!(*lane.last().unwrap(), "cloud-p9/cpu");
        }
        // The 7 FPGAs appear in exactly one lane each.
        let mut fpgas: Vec<&str> =
            lanes.iter().flatten().copied().filter(|d| *d != "cloud-p9/cpu").collect();
        fpgas.sort_unstable();
        let before = fpgas.len();
        fpgas.dedup();
        assert_eq!(before, 7);
        assert_eq!(fpgas.len(), 7, "no FPGA is shared between lanes");
    }

    #[test]
    fn fault_outcomes_are_pure_functions_of_their_inputs() {
        let plan = FaultPlan::from_profile("flaky", 99).unwrap();
        for invocation in 0..50 {
            for attempt in 0..4 {
                let a =
                    plan.outcome("rack/cf0", Some(LinkProfile::UdpDatacenter), invocation, attempt);
                let b =
                    plan.outcome("rack/cf0", Some(LinkProfile::UdpDatacenter), invocation, attempt);
                assert_eq!(a, b);
            }
        }
        // Different seeds decorrelate.
        let other = FaultPlan::from_profile("flaky", 100).unwrap();
        let same = (0..200).all(|i| {
            plan.outcome("d", Some(LinkProfile::TcpDatacenter), i, 0)
                == other.outcome("d", Some(LinkProfile::TcpDatacenter), i, 0)
        });
        assert!(!same);
    }

    #[test]
    fn rates_resolve_most_specific_key_first() {
        let lossy = FaultRates { drop: 0.5, ..FaultRates::NONE };
        let clean = FaultRates::NONE;
        let plan = FaultPlan::new(3, FaultRates { timeout: 0.1, ..FaultRates::NONE })
            .unwrap()
            .with_rates("udp-datacenter", lossy)
            .unwrap()
            .with_rates("rack/cf0", clean)
            .unwrap();
        assert_eq!(plan.rates_for("rack/cf0", Some(LinkProfile::UdpDatacenter)), clean);
        assert_eq!(plan.rates_for("rack/cf1", Some(LinkProfile::UdpDatacenter)), lossy);
        assert_eq!(plan.rates_for("p9/capi0", None).timeout, 0.1);
    }

    #[test]
    fn invalid_rates_and_unknown_profiles_rejected() {
        assert!(FaultPlan::new(0, FaultRates { drop: 1.2, ..FaultRates::NONE }).is_err());
        assert!(FaultPlan::new(
            0,
            FaultRates { drop: 0.6, timeout: 0.6, corrupt: 0.0, device_loss: 0.0 }
        )
        .is_err());
        let err = FaultPlan::from_profile("apocalypse", 0).unwrap_err();
        assert!(err.to_string().contains("apocalypse"));
        assert!(err.to_string().contains("meltdown"), "lists the valid profiles");
    }

    #[test]
    fn breaker_trips_probes_and_recloses() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            trip_after: 3,
            cooldown_us: 100.0,
            close_after: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure(0.0));
        assert!(!b.on_failure(1.0));
        assert!(b.on_failure(2.0), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        // Still open inside the cooldown window.
        assert_eq!(b.poll(50.0), BreakerState::Open);
        assert_eq!(b.poll(102.0), BreakerState::HalfOpen);
        assert!(!b.on_success(), "first probe success is not enough");
        assert!(b.on_success(), "second probe success re-closes");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens_and_success_resets_closed_count() {
        let mut b =
            CircuitBreaker::new(BreakerConfig { trip_after: 2, cooldown_us: 10.0, close_after: 1 });
        b.on_failure(0.0);
        b.on_failure(0.0);
        assert_eq!(b.poll(20.0), BreakerState::HalfOpen);
        assert!(b.on_failure(20.0), "half-open failure re-trips immediately");
        assert_eq!(b.state(), BreakerState::Open);
        // A closed-state success clears the consecutive-failure count.
        let mut c = CircuitBreaker::new(BreakerConfig::default());
        c.on_failure(0.0);
        c.on_failure(0.0);
        c.on_success();
        assert!(!c.on_failure(1.0));
        assert!(!c.on_failure(2.0), "count restarted after the success");
    }

    #[test]
    fn force_open_is_permanent() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        b.force_open();
        assert_eq!(b.poll(f64::MAX / 2.0), BreakerState::Open);
    }

    #[test]
    fn backoff_is_jittered_bounded_and_deterministic() {
        let retry = RetryPolicy::default();
        for attempt in 1..=8 {
            let nominal = retry.nominal_backoff_us(attempt);
            assert!(nominal <= retry.cap_us);
            let jittered = retry.backoff_us(5, "rack/cf0", 3, attempt);
            assert!(jittered >= 0.5 * nominal && jittered < nominal);
            assert_eq!(jittered, retry.backoff_us(5, "rack/cf0", 3, attempt));
        }
        assert!(retry.nominal_backoff_us(2) > retry.nominal_backoff_us(1));
    }

    #[test]
    fn batch_trace_is_identical_at_any_job_count() {
        let calls: Vec<OffloadCall> = (0..24).map(|i| call(&format!("k{i}"))).collect();
        let mut serial = manager("flaky", 1234);
        let serial_out = serial.run_batch(&calls, 1).unwrap();
        for jobs in [2, 4, 8] {
            let mut parallel = manager("flaky", 1234);
            let out = parallel.run_batch(&calls, jobs).unwrap();
            assert_eq!(out, serial_out, "outcomes diverge at jobs={jobs}");
            assert_eq!(parallel.trace(), serial.trace(), "trace diverges at jobs={jobs}");
        }
        // The flaky profile actually exercises the recovery machinery.
        assert!(serial.trace().contains("backoff"), "expected retries in the trace");
    }

    #[test]
    fn pacing_changes_nothing_but_the_wall_clock() {
        let calls: Vec<OffloadCall> = (0..16).map(|i| call(&format!("k{i}"))).collect();
        let mut plain = manager("flaky", 77);
        let plain_out = plain.run_batch(&calls, 1).unwrap();
        // A huge scale keeps the owed real time under the sleep quantum,
        // so the test stays fast; the pacing arithmetic still runs.
        let mut paced = manager("flaky", 77).with_pacing(1e9);
        let paced_out = paced.run_batch(&calls, 4).unwrap();
        assert_eq!(paced_out, plain_out);
        assert_eq!(paced.trace(), plain.trace());
        assert_eq!(paced.tripped_devices(), plain.tripped_devices());
    }

    #[test]
    fn interleaved_execute_matches_batch() {
        let calls: Vec<OffloadCall> = (0..6).map(|i| call(&format!("k{i}"))).collect();
        let mut batch = manager("lossy", 9);
        batch.run_batch(&calls, 4).unwrap();
        let mut one_by_one = manager("lossy", 9);
        for c in &calls {
            one_by_one.execute(c).unwrap();
        }
        assert_eq!(one_by_one.trace(), batch.trace());
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(OffloadManager::new(vec![], FaultPlan::none(0)).is_err());
    }
}
