//! Fault-tolerant network offload: deterministic fault injection and
//! recovery for remote kernel execution.
//!
//! The paper's runtime promises *dynamic adaptation* (Fig. 2) over a
//! target system whose cloudFPGAs are reached over plain TCP/UDP
//! (Fig. 4) — network peers that fail independently. This module closes
//! that loop for the simulated stack:
//!
//! * [`FaultPlan`] — a seeded plan of per-device / per-link-profile
//!   probabilities for dropped transfers, timeouts, corrupted results and
//!   permanent device loss. Outcomes are a pure function of
//!   `(seed, device, invocation, attempt)`, so a plan replays identically
//!   at any thread count.
//! * [`CircuitBreaker`] — the per-device Closed → Open → HalfOpen state
//!   machine that stops hammering a failing device and probes it again
//!   after a cooldown.
//! * [`RetryPolicy`] — capped exponential backoff with deterministic
//!   jitter derived from the same seed.
//! * [`OffloadManager`] — wraps every remote invocation with retry,
//!   breaker and graceful degradation down a fallback chain (network
//!   FPGA → bus-attached FPGA → host CPU reference kernel), feeding the
//!   [`RuntimeMonitor`] and the `offload.*` telemetry counters, and
//!   recording an [`OffloadEvent`] trace that is bit-identical for a
//!   given seed at any `jobs` count.

use crate::error::{RuntimeError, RuntimeResult};
use crate::monitor::RuntimeMonitor;
use everest_platform::{Attachment, Link, LinkProfile, System};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::fmt;

/// One injected failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The transfer was dropped on the wire (detected by timeout).
    Drop,
    /// The call exceeded its deadline.
    Timeout,
    /// The device answered, but the result failed its integrity check.
    Corrupt,
    /// The device disappeared for good (node loss, shell crash).
    DeviceLoss,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Drop => "drop",
            FaultKind::Timeout => "timeout",
            FaultKind::Corrupt => "corrupt",
            FaultKind::DeviceLoss => "device-loss",
        })
    }
}

/// Per-key fault probabilities. Each is in `[0, 1]` and their sum must
/// not exceed 1 (they partition the outcome space of one attempt).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a transfer is dropped.
    pub drop: f64,
    /// Probability a call times out.
    pub timeout: f64,
    /// Probability the result comes back corrupted.
    pub corrupt: f64,
    /// Probability the device is lost permanently.
    pub device_loss: f64,
}

impl FaultRates {
    /// No injected faults.
    pub const NONE: FaultRates =
        FaultRates { drop: 0.0, timeout: 0.0, corrupt: 0.0, device_loss: 0.0 };

    fn validate(&self) -> RuntimeResult<()> {
        let parts = [self.drop, self.timeout, self.corrupt, self.device_loss];
        if parts.iter().any(|p| !(0.0..=1.0).contains(p)) || parts.iter().sum::<f64>() > 1.0 {
            return Err(RuntimeError::Unknown(format!("invalid fault rates {self:?}")));
        }
        Ok(())
    }
}

/// FNV-1a, used to fold string keys into the outcome seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates the combined seed words.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, deterministic fault-injection plan.
///
/// Rates resolve per key, most specific first: an exact device override,
/// then the device's [`LinkProfile`] name, then the plan default. The
/// outcome of any attempt is a pure function of
/// `(seed, device, invocation, attempt)` — independent of wall clock,
/// thread interleaving and evaluation order.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    default_rates: FaultRates,
    overrides: BTreeMap<String, FaultRates>,
}

impl FaultPlan {
    /// The named profiles [`FaultPlan::from_profile`] understands.
    pub const PROFILES: [&'static str; 4] = ["none", "lossy", "flaky", "meltdown"];

    /// A plan applying `default_rates` to every target.
    ///
    /// # Errors
    ///
    /// Rejects rates outside `[0, 1]` or summing above 1.
    pub fn new(seed: u64, default_rates: FaultRates) -> RuntimeResult<FaultPlan> {
        default_rates.validate()?;
        Ok(FaultPlan { seed, default_rates, overrides: BTreeMap::new() })
    }

    /// A plan that injects nothing (the healthy baseline).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan { seed, default_rates: FaultRates::NONE, overrides: BTreeMap::new() }
    }

    /// A named scenario, parseable from the CLI:
    ///
    /// * `none` — no faults;
    /// * `lossy` — moderate drop/timeout/corruption on datacenter
    ///   TCP/UDP links, bus attachments clean;
    /// * `flaky` — heavy network faults including occasional device
    ///   loss, and a whiff of bus errors;
    /// * `meltdown` — every FPGA dies on first contact, forcing the CPU
    ///   fallback.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unknown`] for an unrecognized name.
    pub fn from_profile(name: &str, seed: u64) -> RuntimeResult<FaultPlan> {
        let network = |drop, timeout, corrupt, device_loss| FaultRates {
            drop,
            timeout,
            corrupt,
            device_loss,
        };
        match name.trim().to_ascii_lowercase().as_str() {
            "none" => Ok(FaultPlan::none(seed)),
            "lossy" => FaultPlan::none(seed)
                .with_rates(LinkProfile::TcpDatacenter.name(), network(0.15, 0.10, 0.05, 0.0))?
                .with_rates(LinkProfile::UdpDatacenter.name(), network(0.20, 0.05, 0.05, 0.0)),
            "flaky" => FaultPlan::none(seed)
                .with_rates(LinkProfile::TcpDatacenter.name(), network(0.30, 0.20, 0.10, 0.02))?
                .with_rates(LinkProfile::UdpDatacenter.name(), network(0.35, 0.15, 0.10, 0.02))?
                .with_rates(LinkProfile::OpenCapi.name(), network(0.02, 0.0, 0.01, 0.0)),
            "meltdown" => FaultPlan::new(seed, FaultRates { device_loss: 1.0, ..FaultRates::NONE }),
            other => Err(RuntimeError::Unknown(format!(
                "fault profile '{other}' (expected one of: {})",
                FaultPlan::PROFILES.join(", ")
            ))),
        }
    }

    /// Overrides the rates for one key (a device name or a
    /// [`LinkProfile`] name).
    ///
    /// # Errors
    ///
    /// Rejects invalid rates, like [`FaultPlan::new`].
    pub fn with_rates(mut self, key: &str, rates: FaultRates) -> RuntimeResult<FaultPlan> {
        rates.validate()?;
        self.overrides.insert(key.to_owned(), rates);
        Ok(self)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resolves the rates for a device, most specific key first.
    pub fn rates_for(&self, device: &str, profile: Option<LinkProfile>) -> FaultRates {
        if let Some(rates) = self.overrides.get(device) {
            return *rates;
        }
        if let Some(rates) = profile.and_then(|p| self.overrides.get(p.name())) {
            return *rates;
        }
        self.default_rates
    }

    /// Samples the outcome of one attempt: `None` is success. Pure in
    /// `(seed, device, invocation, attempt)`.
    pub fn outcome(
        &self,
        device: &str,
        profile: Option<LinkProfile>,
        invocation: u64,
        attempt: u32,
    ) -> Option<FaultKind> {
        let rates = self.rates_for(device, profile);
        let seed = mix(self.seed ^ fnv1a(device))
            ^ mix(invocation.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(u64::from(attempt)));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let draw: f64 = rng.gen_range(0.0..1.0);
        let mut edge = rates.device_loss;
        if draw < edge {
            return Some(FaultKind::DeviceLoss);
        }
        edge += rates.drop;
        if draw < edge {
            return Some(FaultKind::Drop);
        }
        edge += rates.timeout;
        if draw < edge {
            return Some(FaultKind::Timeout);
        }
        edge += rates.corrupt;
        if draw < edge {
            return Some(FaultKind::Corrupt);
        }
        None
    }
}

/// Retry/backoff configuration for one offload target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per target before falling back (>= 1).
    pub max_attempts: u32,
    /// Deadline charged to a dropped or timed-out attempt, microseconds.
    pub timeout_us: f64,
    /// First backoff, microseconds.
    pub base_us: f64,
    /// Multiplier between consecutive backoffs.
    pub factor: f64,
    /// Backoff ceiling, microseconds.
    pub cap_us: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            timeout_us: 2_000.0,
            base_us: 200.0,
            factor: 2.0,
            cap_us: 5_000.0,
        }
    }
}

impl RetryPolicy {
    /// The un-jittered backoff before retry number `attempt` (1-based):
    /// `base * factor^(attempt-1)`, capped. Non-decreasing in `attempt`.
    pub fn nominal_backoff_us(&self, attempt: u32) -> f64 {
        (self.base_us * self.factor.powi(attempt.saturating_sub(1) as i32)).min(self.cap_us)
    }

    /// The jittered backoff: deterministic "equal jitter" in
    /// `[nominal/2, nominal)`, derived from `(seed, device, invocation,
    /// attempt)` so schedules replay bit-identically per seed.
    pub fn backoff_us(&self, seed: u64, device: &str, invocation: u64, attempt: u32) -> f64 {
        let nominal = self.nominal_backoff_us(attempt);
        let word = mix(seed ^ fnv1a(device).rotate_left(17))
            ^ mix(invocation.wrapping_mul(0x9e37_79b9).wrapping_add(u64::from(attempt)));
        let mut rng = ChaCha8Rng::seed_from_u64(word);
        let unit: f64 = rng.gen_range(0.0..1.0);
        nominal * (0.5 + 0.5 * unit)
    }
}

/// Circuit-breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow, consecutive failures are counted.
    Closed,
    /// Tripped: calls are rejected until the cooldown elapses.
    Open,
    /// Probing: a limited number of trial calls decide re-close vs re-open.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub trip_after: u32,
    /// Time the breaker stays Open before probing, microseconds.
    pub cooldown_us: f64,
    /// Consecutive half-open successes that re-close the breaker.
    pub close_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig { trip_after: 3, cooldown_us: 10_000.0, close_after: 2 }
    }
}

/// Per-device circuit breaker over simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    open_until_us: f64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            half_open_successes: 0,
            open_until_us: 0.0,
        }
    }

    /// The current state *without* advancing time.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The state at simulated time `now_us`, transitioning Open →
    /// HalfOpen once the cooldown has elapsed.
    pub fn poll(&mut self, now_us: f64) -> BreakerState {
        if self.state == BreakerState::Open && now_us >= self.open_until_us {
            self.state = BreakerState::HalfOpen;
            self.half_open_successes = 0;
        }
        self.state
    }

    /// Records a successful call. Returns `true` when this success
    /// re-closes a half-open breaker.
    pub fn on_success(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                false
            }
            BreakerState::HalfOpen => {
                self.half_open_successes += 1;
                if self.half_open_successes >= self.cfg.close_after {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    true
                } else {
                    false
                }
            }
            // A success while Open cannot happen (calls are rejected);
            // tolerate it as a no-op for robustness.
            BreakerState::Open => false,
        }
    }

    /// Records a failed call at simulated time `now_us`. Returns `true`
    /// when this failure trips the breaker open (from either Closed, on
    /// reaching the threshold, or HalfOpen, immediately).
    pub fn on_failure(&mut self, now_us: f64) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.trip_after {
                    self.state = BreakerState::Open;
                    self.open_until_us = now_us + self.cfg.cooldown_us;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.open_until_us = now_us + self.cfg.cooldown_us;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// Latches the breaker open forever (device loss).
    pub fn force_open(&mut self) {
        self.state = BreakerState::Open;
        self.open_until_us = f64::INFINITY;
    }
}

/// Where in the fallback chain a target sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetClass {
    /// Disaggregated cloudFPGA reached over the datacenter network.
    NetworkFpga,
    /// Cache-coherent bus-attached FPGA on the host node.
    BusFpga,
    /// The host CPU running the reference software kernel.
    HostCpu,
}

impl fmt::Display for TargetClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TargetClass::NetworkFpga => "network-fpga",
            TargetClass::BusFpga => "bus-fpga",
            TargetClass::HostCpu => "host-cpu",
        })
    }
}

/// One rung of the fallback chain.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadTarget {
    /// `node/device` name (`cloud-p9/cpu` for the software fallback).
    pub device: String,
    /// Target class.
    pub class: TargetClass,
    /// Link the payload crosses to reach the target.
    pub link: Link,
    /// The link's named profile, used to resolve fault rates.
    pub profile: Option<LinkProfile>,
    /// Kernel speedup relative to the CPU reference.
    pub speedup: f64,
}

/// One kernel invocation to offload.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadCall {
    /// Kernel name (for the trace and error messages).
    pub kernel: String,
    /// Payload moved to (and from) the target, bytes.
    pub payload_bytes: u64,
    /// Kernel work at CPU-reference speed, microseconds.
    pub work_us: f64,
}

/// How one invocation ended.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadOutcome {
    /// Invocation index (assignment order).
    pub task: u64,
    /// Device that completed the call.
    pub device: String,
    /// Its class.
    pub class: TargetClass,
    /// Attempts made across the whole chain.
    pub attempts: u32,
    /// Simulated end-to-end time, microseconds (transfers, timeouts,
    /// backoffs, compute).
    pub elapsed_us: f64,
    /// `true` when the call did not complete on the chain's first rung.
    pub degraded: bool,
}

/// One entry of the deterministic retry/fallback trace.
#[derive(Debug, Clone, PartialEq)]
pub enum OffloadEvent {
    /// An attempt started on a device.
    Attempt {
        /// Invocation index.
        task: u64,
        /// Target device.
        device: String,
        /// Attempt number on this device (0-based).
        attempt: u32,
    },
    /// An attempt failed.
    Fault {
        /// Invocation index.
        task: u64,
        /// Target device.
        device: String,
        /// Attempt number on this device.
        attempt: u32,
        /// Failure mode.
        kind: FaultKind,
    },
    /// The manager backed off before retrying.
    Backoff {
        /// Invocation index.
        task: u64,
        /// Target device.
        device: String,
        /// The retry this wait precedes (1-based).
        attempt: u32,
        /// Jittered wait, microseconds.
        wait_us: f64,
    },
    /// A target was skipped without an attempt.
    Skip {
        /// Invocation index.
        task: u64,
        /// Skipped device.
        device: String,
        /// Why (`breaker-open` or `device-lost`).
        reason: &'static str,
    },
    /// A device's breaker tripped open.
    BreakerOpened {
        /// Invocation index that tripped it.
        task: u64,
        /// Device.
        device: String,
    },
    /// A breaker began half-open probing.
    BreakerHalfOpen {
        /// Invocation index probing it.
        task: u64,
        /// Device.
        device: String,
    },
    /// A half-open breaker re-closed after successful probes.
    BreakerClosed {
        /// Invocation index that closed it.
        task: u64,
        /// Device.
        device: String,
    },
    /// A device was lost permanently.
    DeviceLost {
        /// Invocation index that observed the loss.
        task: u64,
        /// Device.
        device: String,
    },
    /// The call moved down the fallback chain.
    Fallback {
        /// Invocation index.
        task: u64,
        /// Abandoned device.
        from: String,
        /// Next device in the chain.
        to: String,
    },
    /// The call completed.
    Completed {
        /// Invocation index.
        task: u64,
        /// Completing device.
        device: String,
        /// Its class.
        class: TargetClass,
        /// Attempts across the whole chain.
        attempts: u32,
        /// Simulated end-to-end time, microseconds.
        elapsed_us: f64,
    },
}

impl fmt::Display for OffloadEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadEvent::Attempt { task, device, attempt } => {
                write!(f, "task {task}: attempt {attempt} on {device}")
            }
            OffloadEvent::Fault { task, device, attempt, kind } => {
                write!(f, "task {task}: {kind} on {device} (attempt {attempt})")
            }
            OffloadEvent::Backoff { task, device, attempt, wait_us } => {
                write!(f, "task {task}: backoff {wait_us:.1} us before retry {attempt} on {device}")
            }
            OffloadEvent::Skip { task, device, reason } => {
                write!(f, "task {task}: skip {device} ({reason})")
            }
            OffloadEvent::BreakerOpened { task, device } => {
                write!(f, "task {task}: breaker OPEN on {device}")
            }
            OffloadEvent::BreakerHalfOpen { task, device } => {
                write!(f, "task {task}: breaker HALF-OPEN on {device}")
            }
            OffloadEvent::BreakerClosed { task, device } => {
                write!(f, "task {task}: breaker CLOSED on {device}")
            }
            OffloadEvent::DeviceLost { task, device } => {
                write!(f, "task {task}: device LOST: {device}")
            }
            OffloadEvent::Fallback { task, from, to } => {
                write!(f, "task {task}: fallback {from} -> {to}")
            }
            OffloadEvent::Completed { task, device, class, attempts, elapsed_us } => {
                write!(
                    f,
                    "task {task}: completed on {device} [{class}] after {attempts} attempts, {elapsed_us:.1} us"
                )
            }
        }
    }
}

/// Pre-sampled fault outcomes and backoffs for one call: per chain rung,
/// per attempt. Pure data — phase 1 of [`OffloadManager::run_batch`]
/// computes these in parallel, phase 2 consumes them sequentially.
#[derive(Debug, Clone)]
struct CallSchedule {
    outcomes: Vec<Vec<Option<FaultKind>>>,
    backoffs: Vec<Vec<f64>>,
}

/// Wraps remote kernel invocations with retry, circuit breaking and
/// graceful degradation. See the module docs for the full contract.
#[derive(Debug, Clone)]
pub struct OffloadManager {
    plan: FaultPlan,
    retry: RetryPolicy,
    chain: Vec<OffloadTarget>,
    breakers: Vec<CircuitBreaker>,
    lost: Vec<bool>,
    monitor: RuntimeMonitor,
    events: Vec<OffloadEvent>,
    clock_us: f64,
    invocations: u64,
}

impl OffloadManager {
    /// A manager over an explicit fallback chain.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unknown`] for an empty chain.
    pub fn new(chain: Vec<OffloadTarget>, plan: FaultPlan) -> RuntimeResult<OffloadManager> {
        if chain.is_empty() {
            return Err(RuntimeError::Unknown("empty offload chain".to_owned()));
        }
        let breakers = vec![CircuitBreaker::new(BreakerConfig::default()); chain.len()];
        let lost = vec![false; chain.len()];
        Ok(OffloadManager {
            plan,
            retry: RetryPolicy::default(),
            breakers,
            lost,
            chain,
            monitor: RuntimeMonitor::new(0),
            events: Vec::new(),
            clock_us: 0.0,
            invocations: 0,
        })
    }

    /// Builds the paper's fallback chain from a system model: every
    /// network-attached FPGA (preferred — disaggregated capacity), then
    /// every bus-attached FPGA, then the host CPU reference kernel.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unknown`] when the system has no nodes.
    pub fn for_system(system: &System, plan: FaultPlan) -> RuntimeResult<OffloadManager> {
        let host = system
            .nodes()
            .first()
            .ok_or_else(|| RuntimeError::Unknown("system has no nodes".to_owned()))?;
        let mut network = Vec::new();
        let mut bus = Vec::new();
        for node in system.nodes() {
            for device in &node.devices {
                let link = *device.attachment.link();
                let target = OffloadTarget {
                    device: format!("{}/{}", node.name, device.name),
                    class: if device.attachment.is_disaggregated() {
                        TargetClass::NetworkFpga
                    } else {
                        TargetClass::BusFpga
                    },
                    link,
                    profile: LinkProfile::of(&link),
                    speedup: 4.0,
                };
                match device.attachment {
                    Attachment::Network(_) => network.push(target),
                    Attachment::Bus(_) => bus.push(target),
                }
            }
        }
        let mut chain = network;
        chain.extend(bus);
        chain.push(OffloadTarget {
            device: format!("{}/cpu", host.name),
            class: TargetClass::HostCpu,
            // Host DRAM: effectively free for payloads at this granularity.
            link: Link::new(0.0, 1_000.0, 0),
            profile: None,
            speedup: 1.0,
        });
        OffloadManager::new(chain, plan)
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> OffloadManager {
        self.retry = retry;
        self
    }

    /// Replaces every breaker's thresholds (breakers reset to Closed).
    #[must_use]
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> OffloadManager {
        self.breakers = vec![CircuitBreaker::new(cfg); self.chain.len()];
        self
    }

    /// The fallback chain, in preference order.
    pub fn chain(&self) -> &[OffloadTarget] {
        &self.chain
    }

    /// The event trace so far, in invocation order.
    pub fn events(&self) -> &[OffloadEvent] {
        &self.events
    }

    /// The monitor fed by completed invocations.
    pub fn monitor(&self) -> &RuntimeMonitor {
        &self.monitor
    }

    /// The breaker guarding `device`, if it is in the chain.
    pub fn breaker(&self, device: &str) -> Option<&CircuitBreaker> {
        self.chain.iter().position(|t| t.device == device).map(|i| &self.breakers[i])
    }

    /// Devices currently unusable: lost, or breaker not Closed.
    pub fn tripped_devices(&self) -> Vec<String> {
        self.chain
            .iter()
            .zip(&self.breakers)
            .zip(&self.lost)
            .filter(|((_, b), lost)| **lost || b.state() != BreakerState::Closed)
            .map(|((t, _), _)| t.device.clone())
            .collect()
    }

    /// The trace as one line per event (what `everestc offload` prints
    /// and what the determinism contract compares).
    pub fn trace(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }

    /// Pre-samples the fault outcomes and backoffs for one call. Pure:
    /// depends only on the plan seed, the chain and the invocation index.
    fn sample_schedule(&self, task: u64) -> CallSchedule {
        let attempts = self.retry.max_attempts.max(1);
        let mut outcomes = Vec::with_capacity(self.chain.len());
        let mut backoffs = Vec::with_capacity(self.chain.len());
        for target in &self.chain {
            let per_target: Vec<Option<FaultKind>> = (0..attempts)
                .map(|attempt| {
                    if target.class == TargetClass::HostCpu {
                        // The reference kernel is local: no injected faults.
                        None
                    } else {
                        self.plan.outcome(&target.device, target.profile, task, attempt)
                    }
                })
                .collect();
            let waits: Vec<f64> = (1..=attempts)
                .map(|attempt| {
                    self.retry.backoff_us(self.plan.seed(), &target.device, task, attempt)
                })
                .collect();
            outcomes.push(per_target);
            backoffs.push(waits);
        }
        CallSchedule { outcomes, backoffs }
    }

    /// Executes one call with retry, breaker and fallback, consuming a
    /// pre-sampled schedule. This is the *sequential fold*: it mutates
    /// breakers, the virtual clock and the event trace, and must run in
    /// invocation order for the determinism contract to hold.
    fn execute_scheduled(
        &mut self,
        call: &OffloadCall,
        schedule: &CallSchedule,
    ) -> RuntimeResult<OffloadOutcome> {
        let task = self.invocations;
        self.invocations += 1;
        let telemetry = everest_telemetry::metrics();
        let flight = everest_telemetry::flight();
        let clock_start = self.clock_us;
        let mut attempts_total: u32 = 0;
        let last = self.chain.len() - 1;

        // Causal context: attempt spans opened below nest under this
        // call span, so a recorded trace links every retry/backoff/
        // fallback to the call that caused it.
        let mut call_span = everest_telemetry::span("offload.call", "offload");
        call_span.attr("task", task);
        call_span.attr("kernel", &call.kernel);
        flight.record(everest_telemetry::EventKind::SpanBegin, "offload.call", task as f64);

        for idx in 0..self.chain.len() {
            let device = self.chain[idx].device.clone();
            let fallthrough = |mgr: &mut OffloadManager, tried: bool| {
                if idx < last {
                    let to = mgr.chain[idx + 1].device.clone();
                    mgr.events.push(OffloadEvent::Fallback { task, from: device.clone(), to });
                    if tried {
                        telemetry.counter_inc("offload.fallbacks");
                        everest_telemetry::flight().marker("offload.fallback", task as f64);
                    }
                }
            };

            if self.lost[idx] {
                self.events.push(OffloadEvent::Skip {
                    task,
                    device: device.clone(),
                    reason: "device-lost",
                });
                fallthrough(self, false);
                continue;
            }
            match self.breakers[idx].poll(self.clock_us) {
                BreakerState::Open => {
                    self.events.push(OffloadEvent::Skip {
                        task,
                        device: device.clone(),
                        reason: "breaker-open",
                    });
                    fallthrough(self, false);
                    continue;
                }
                BreakerState::HalfOpen => {
                    self.events
                        .push(OffloadEvent::BreakerHalfOpen { task, device: device.clone() });
                }
                BreakerState::Closed => {}
            }

            let target = self.chain[idx].clone();
            let transfer_us = target.link.transfer_us(call.payload_bytes);
            let compute_us = call.work_us / target.speedup;
            let mut abandoned = false;
            for attempt in 0..self.retry.max_attempts.max(1) {
                self.events.push(OffloadEvent::Attempt { task, device: device.clone(), attempt });
                attempts_total += 1;
                let mut attempt_span = everest_telemetry::span("offload.attempt", "offload");
                attempt_span.attr("task", task);
                attempt_span.attr("device", &device);
                attempt_span.attr("attempt", attempt);
                flight.marker("offload.attempt", attempt as f64);
                match schedule.outcomes[idx][attempt as usize] {
                    None => {
                        let latency = transfer_us + compute_us;
                        self.clock_us += latency;
                        self.monitor.record(latency, false, false);
                        telemetry.observe("offload.latency_us", latency);
                        telemetry.counter_inc("offload.completed");
                        if self.breakers[idx].on_success() {
                            self.events
                                .push(OffloadEvent::BreakerClosed { task, device: device.clone() });
                        }
                        self.events.push(OffloadEvent::Completed {
                            task,
                            device: device.clone(),
                            class: target.class,
                            attempts: attempts_total,
                            elapsed_us: self.clock_us,
                        });
                        let sim_us = self.clock_us - clock_start;
                        telemetry.observe("offload.call.sim_us", sim_us);
                        telemetry.observe("offload.call.attempts", f64::from(attempts_total));
                        flight.record(
                            everest_telemetry::EventKind::SpanEnd,
                            "offload.call",
                            sim_us,
                        );
                        return Ok(OffloadOutcome {
                            task,
                            device,
                            class: target.class,
                            attempts: attempts_total,
                            elapsed_us: self.clock_us,
                            degraded: idx != 0,
                        });
                    }
                    Some(kind) => {
                        telemetry.counter_inc("offload.faults");
                        flight.record(
                            everest_telemetry::EventKind::CounterAdd,
                            "offload.faults",
                            1.0,
                        );
                        self.events.push(OffloadEvent::Fault {
                            task,
                            device: device.clone(),
                            attempt,
                            kind,
                        });
                        // Cost of the failed attempt: a corrupt result
                        // came back (full round trip, checksum reject);
                        // everything else burns the deadline.
                        let penalty = match kind {
                            FaultKind::Corrupt => transfer_us + compute_us,
                            _ => self.retry.timeout_us,
                        };
                        self.clock_us += penalty;
                        self.monitor.record(penalty, false, kind == FaultKind::Corrupt);
                        if kind == FaultKind::DeviceLoss {
                            self.lost[idx] = true;
                            self.breakers[idx].force_open();
                            telemetry.counter_inc("offload.device_loss");
                            flight.marker("offload.device_loss", task as f64);
                            self.events
                                .push(OffloadEvent::DeviceLost { task, device: device.clone() });
                            abandoned = true;
                            break;
                        }
                        if self.breakers[idx].on_failure(self.clock_us) {
                            telemetry.counter_inc("offload.breaker.open");
                            flight.marker("offload.breaker_open", task as f64);
                            self.events
                                .push(OffloadEvent::BreakerOpened { task, device: device.clone() });
                            abandoned = true;
                            break;
                        }
                        let retry_no = attempt + 1;
                        if retry_no >= self.retry.max_attempts {
                            abandoned = true;
                            break;
                        }
                        let wait_us = schedule.backoffs[idx][retry_no as usize - 1];
                        self.clock_us += wait_us;
                        telemetry.counter_inc("offload.retries");
                        flight.marker("offload.backoff_us", wait_us);
                        self.events.push(OffloadEvent::Backoff {
                            task,
                            device: device.clone(),
                            attempt: retry_no,
                            wait_us,
                        });
                    }
                }
            }
            debug_assert!(abandoned, "loop only exits via success or abandonment");
            fallthrough(self, true);
        }
        let sim_us = self.clock_us - clock_start;
        telemetry.observe("offload.call.attempts", f64::from(attempts_total));
        flight.record(everest_telemetry::EventKind::SpanEnd, "offload.call", sim_us);
        Err(RuntimeError::OffloadFailed { kernel: call.kernel.clone(), attempts: attempts_total })
    }

    /// Executes one call (samples its schedule inline).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::OffloadFailed`] when every target in the
    /// chain fails — impossible while the chain ends in a host CPU.
    pub fn execute(&mut self, call: &OffloadCall) -> RuntimeResult<OffloadOutcome> {
        let schedule = self.sample_schedule(self.invocations);
        self.execute_scheduled(call, &schedule)
    }

    /// Executes a batch: fault outcomes and backoff schedules are
    /// pre-sampled on up to `jobs` threads (phase 1, pure), then the
    /// retry/breaker/fallback fold runs sequentially in invocation order
    /// (phase 2). Because phase 1 is a pure function of the seed and the
    /// invocation index, the event trace, outcomes and counters are
    /// bit-identical at any `jobs` count.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeError::OffloadFailed`].
    pub fn run_batch(
        &mut self,
        calls: &[OffloadCall],
        jobs: usize,
    ) -> RuntimeResult<Vec<OffloadOutcome>> {
        let mut span = everest_telemetry::span("offload.run_batch", "offload");
        span.attr("calls", calls.len());
        span.attr("jobs", jobs);
        let telemetry = everest_telemetry::metrics();
        let flight = everest_telemetry::flight();
        let first_task = self.invocations;

        // Phase 1: pure parallel pre-sampling. Wall-clock per phase is
        // recorded so jobs-scaling anomalies arrive with a breakdown of
        // which phase moved (see BENCH_offload.json).
        let t_schedule = std::time::Instant::now();
        let schedules = self.parallel_schedules(calls.len(), first_task, jobs);
        let schedule_us = t_schedule.elapsed().as_secs_f64() * 1e6;
        telemetry.observe("offload.phase.schedule_us", schedule_us);
        flight.marker("offload.phase.schedule_us", schedule_us);

        // Phase 2: the sequential fold, in invocation order.
        let t_fold = std::time::Instant::now();
        let out = calls
            .iter()
            .zip(&schedules)
            .map(|(call, schedule)| self.execute_scheduled(call, schedule))
            .collect();
        let fold_us = t_fold.elapsed().as_secs_f64() * 1e6;
        telemetry.observe("offload.phase.fold_us", fold_us);
        flight.marker("offload.phase.fold_us", fold_us);
        out
    }

    /// Phase 1: samples `count` schedules for tasks starting at
    /// `first_task`, fanning contiguous chunks out to scoped threads.
    fn parallel_schedules(&self, count: usize, first_task: u64, jobs: usize) -> Vec<CallSchedule> {
        let jobs = jobs.max(1).min(count.max(1));
        if jobs <= 1 {
            return (0..count).map(|i| self.sample_schedule(first_task + i as u64)).collect();
        }
        let chunk = count.div_ceil(jobs);
        let mut chunks: Vec<Vec<CallSchedule>> = Vec::with_capacity(jobs);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(count);
                    scope.spawn(move || {
                        (lo..hi)
                            .map(|i| self.sample_schedule(first_task + i as u64))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                chunks.push(handle.join().expect("schedule sampler panicked"));
            }
        });
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(kernel: &str) -> OffloadCall {
        OffloadCall { kernel: kernel.into(), payload_bytes: 64 << 10, work_us: 400.0 }
    }

    fn manager(profile: &str, seed: u64) -> OffloadManager {
        let plan = FaultPlan::from_profile(profile, seed).unwrap();
        OffloadManager::for_system(&System::everest_reference(), plan).unwrap()
    }

    #[test]
    fn chain_orders_network_then_bus_then_cpu() {
        let mgr = manager("none", 1);
        let classes: Vec<TargetClass> = mgr.chain().iter().map(|t| t.class).collect();
        assert_eq!(classes.len(), 8, "7 FPGAs + CPU");
        let first_bus = classes.iter().position(|c| *c == TargetClass::BusFpga).unwrap();
        assert!(classes[..first_bus].iter().all(|c| *c == TargetClass::NetworkFpga));
        assert_eq!(*classes.last().unwrap(), TargetClass::HostCpu);
        // Network FPGAs resolve their link profile for rate lookup.
        assert_eq!(mgr.chain()[0].profile, Some(LinkProfile::UdpDatacenter));
    }

    #[test]
    fn healthy_plan_completes_on_first_rung_without_degradation() {
        let mut mgr = manager("none", 42);
        let outcome = mgr.execute(&call("fft")).unwrap();
        assert_eq!(outcome.attempts, 1);
        assert!(!outcome.degraded);
        assert_eq!(outcome.class, TargetClass::NetworkFpga);
        assert!(mgr.tripped_devices().is_empty());
    }

    #[test]
    fn meltdown_falls_back_to_cpu_and_reports_degraded() {
        let mut mgr = manager("meltdown", 7);
        let outcome = mgr.execute(&call("fft")).unwrap();
        assert_eq!(outcome.class, TargetClass::HostCpu);
        assert!(outcome.degraded);
        // Every FPGA died on first contact and stays dead.
        assert_eq!(mgr.tripped_devices().len(), 7);
        let second = mgr.execute(&call("fft")).unwrap();
        assert_eq!(second.class, TargetClass::HostCpu);
        // Dead devices are skipped, not re-attempted.
        assert_eq!(second.attempts, 1);
    }

    #[test]
    fn fault_outcomes_are_pure_functions_of_their_inputs() {
        let plan = FaultPlan::from_profile("flaky", 99).unwrap();
        for invocation in 0..50 {
            for attempt in 0..4 {
                let a =
                    plan.outcome("rack/cf0", Some(LinkProfile::UdpDatacenter), invocation, attempt);
                let b =
                    plan.outcome("rack/cf0", Some(LinkProfile::UdpDatacenter), invocation, attempt);
                assert_eq!(a, b);
            }
        }
        // Different seeds decorrelate.
        let other = FaultPlan::from_profile("flaky", 100).unwrap();
        let same = (0..200).all(|i| {
            plan.outcome("d", Some(LinkProfile::TcpDatacenter), i, 0)
                == other.outcome("d", Some(LinkProfile::TcpDatacenter), i, 0)
        });
        assert!(!same);
    }

    #[test]
    fn rates_resolve_most_specific_key_first() {
        let lossy = FaultRates { drop: 0.5, ..FaultRates::NONE };
        let clean = FaultRates::NONE;
        let plan = FaultPlan::new(3, FaultRates { timeout: 0.1, ..FaultRates::NONE })
            .unwrap()
            .with_rates("udp-datacenter", lossy)
            .unwrap()
            .with_rates("rack/cf0", clean)
            .unwrap();
        assert_eq!(plan.rates_for("rack/cf0", Some(LinkProfile::UdpDatacenter)), clean);
        assert_eq!(plan.rates_for("rack/cf1", Some(LinkProfile::UdpDatacenter)), lossy);
        assert_eq!(plan.rates_for("p9/capi0", None).timeout, 0.1);
    }

    #[test]
    fn invalid_rates_and_unknown_profiles_rejected() {
        assert!(FaultPlan::new(0, FaultRates { drop: 1.2, ..FaultRates::NONE }).is_err());
        assert!(FaultPlan::new(
            0,
            FaultRates { drop: 0.6, timeout: 0.6, corrupt: 0.0, device_loss: 0.0 }
        )
        .is_err());
        let err = FaultPlan::from_profile("apocalypse", 0).unwrap_err();
        assert!(err.to_string().contains("apocalypse"));
        assert!(err.to_string().contains("meltdown"), "lists the valid profiles");
    }

    #[test]
    fn breaker_trips_probes_and_recloses() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            trip_after: 3,
            cooldown_us: 100.0,
            close_after: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure(0.0));
        assert!(!b.on_failure(1.0));
        assert!(b.on_failure(2.0), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        // Still open inside the cooldown window.
        assert_eq!(b.poll(50.0), BreakerState::Open);
        assert_eq!(b.poll(102.0), BreakerState::HalfOpen);
        assert!(!b.on_success(), "first probe success is not enough");
        assert!(b.on_success(), "second probe success re-closes");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens_and_success_resets_closed_count() {
        let mut b =
            CircuitBreaker::new(BreakerConfig { trip_after: 2, cooldown_us: 10.0, close_after: 1 });
        b.on_failure(0.0);
        b.on_failure(0.0);
        assert_eq!(b.poll(20.0), BreakerState::HalfOpen);
        assert!(b.on_failure(20.0), "half-open failure re-trips immediately");
        assert_eq!(b.state(), BreakerState::Open);
        // A closed-state success clears the consecutive-failure count.
        let mut c = CircuitBreaker::new(BreakerConfig::default());
        c.on_failure(0.0);
        c.on_failure(0.0);
        c.on_success();
        assert!(!c.on_failure(1.0));
        assert!(!c.on_failure(2.0), "count restarted after the success");
    }

    #[test]
    fn force_open_is_permanent() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        b.force_open();
        assert_eq!(b.poll(f64::MAX / 2.0), BreakerState::Open);
    }

    #[test]
    fn backoff_is_jittered_bounded_and_deterministic() {
        let retry = RetryPolicy::default();
        for attempt in 1..=8 {
            let nominal = retry.nominal_backoff_us(attempt);
            assert!(nominal <= retry.cap_us);
            let jittered = retry.backoff_us(5, "rack/cf0", 3, attempt);
            assert!(jittered >= 0.5 * nominal && jittered < nominal);
            assert_eq!(jittered, retry.backoff_us(5, "rack/cf0", 3, attempt));
        }
        assert!(retry.nominal_backoff_us(2) > retry.nominal_backoff_us(1));
    }

    #[test]
    fn batch_trace_is_identical_at_any_job_count() {
        let calls: Vec<OffloadCall> = (0..24).map(|i| call(&format!("k{i}"))).collect();
        let mut serial = manager("flaky", 1234);
        let serial_out = serial.run_batch(&calls, 1).unwrap();
        for jobs in [2, 4, 7] {
            let mut parallel = manager("flaky", 1234);
            let out = parallel.run_batch(&calls, jobs).unwrap();
            assert_eq!(out, serial_out, "outcomes diverge at jobs={jobs}");
            assert_eq!(parallel.trace(), serial.trace(), "trace diverges at jobs={jobs}");
        }
        // The flaky profile actually exercises the recovery machinery.
        assert!(serial.trace().contains("backoff"), "expected retries in the trace");
    }

    #[test]
    fn interleaved_execute_matches_batch() {
        let calls: Vec<OffloadCall> = (0..6).map(|i| call(&format!("k{i}"))).collect();
        let mut batch = manager("lossy", 9);
        batch.run_batch(&calls, 4).unwrap();
        let mut one_by_one = manager("lossy", 9);
        for c in &calls {
            one_by_one.execute(c).unwrap();
        }
        assert_eq!(one_by_one.trace(), batch.trace());
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(OffloadManager::new(vec![], FaultPlan::none(0)).is_err());
    }
}
