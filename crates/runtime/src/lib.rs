//! # everest-runtime — virtualization-based runtime optimization
//!
//! Implements the EVEREST virtualized runtime environment (paper Section
//! IV, Fig. 2): hypervisor and guest-OS extensions that manage, optimize
//! and monitor hardware access from guest applications, with three pillars:
//!
//! 1. **Data-protection layer** — monitors execution and reacts to
//!    anomalies ([`monitor`], backed by [`everest_security`]);
//! 2. **Dynamic hardware-software adaptation** — a mARGOt-style
//!    autotuner ([`autotuner`]) selecting among the pre-generated variants
//!    of [`everest_variants`], plus the closed adaptation loop in
//!    [`adaptation`];
//! 3. **Virtualization support** — VMs, the vFPGA manager with
//!    partial-reconfiguration slots and the API-remoting cost model in
//!    [`vm`].
//!
//! ## Example
//!
//! ```
//! use everest_runtime::autotuner::{Autotuner, Objective};
//! use everest_variants::{Metrics, Variant};
//!
//! let mk = |id: &str, t: f64| Variant {
//!     id: id.into(), kernel: "k".into(), transforms: vec![],
//!     metrics: Metrics { latency_us: t, transfer_us: 0.0, energy_mj: t / 10.0,
//!                        area_luts: 0, area_brams: 0 },
//! };
//! let mut tuner = Autotuner::new(vec![mk("fast", 10.0), mk("slow", 100.0)]);
//! tuner.set_objective(Objective::MinLatency);
//! let chosen = tuner.select(&Default::default()).unwrap();
//! assert_eq!(chosen.id, "fast");
//! ```

pub mod adaptation;
pub mod autotuner;
pub mod contention;
pub mod error;
pub mod monitor;
pub mod offload;
pub mod vm;

pub use autotuner::{Autotuner, Constraint, Objective, SystemState};
pub use error::{RuntimeError, RuntimeResult};
pub use monitor::RuntimeMonitor;
pub use offload::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultKind, FaultPlan, FaultRates, OffloadCall,
    OffloadEvent, OffloadManager, OffloadOutcome, OffloadTarget, RetryPolicy, TargetClass,
};
pub use vm::{Hypervisor, VfpgaManager, Vm};
