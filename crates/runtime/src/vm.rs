//! Virtualization support: VMs, hypervisor extensions, the vFPGA manager
//! and the API-remoting cost model (paper IV, refs \[32\], \[33\]).
//!
//! "Hardware configurable parameters, including accelerator APIs, are
//! exposed directly to the applications inside the VMs" — guests hold
//! *virtual FPGA handles* granted by the [`VfpgaManager`], which maps them
//! onto physical partial-reconfiguration slots.

use crate::error::{RuntimeError, RuntimeResult};
use everest_hls::AreaReport;
use everest_platform::fpga::{FpgaDevice, Role};
use std::collections::HashMap;

/// A guest virtual machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Vm {
    /// VM name.
    pub name: String,
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Guest OS label (e.g. `"linux-arm64"`).
    pub guest_os: String,
    /// vFPGA handles granted to this guest.
    pub vfpgas: Vec<String>,
}

/// A grant record: which physical device/slot backs a handle.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Grant {
    device: usize,
    slot: usize,
    vm: String,
}

/// Manages physical FPGA devices and grants virtual handles to VMs.
#[derive(Debug, Clone, Default)]
pub struct VfpgaManager {
    devices: Vec<FpgaDevice>,
    grants: HashMap<String, Grant>,
    next_handle: usize,
}

impl VfpgaManager {
    /// Creates a manager over the given physical devices.
    pub fn new(devices: Vec<FpgaDevice>) -> VfpgaManager {
        VfpgaManager { devices, grants: HashMap::new(), next_handle: 0 }
    }

    /// Total free LUTs across all devices (what the autotuner sees).
    pub fn free_luts(&self) -> u64 {
        self.devices.iter().map(|d| d.available_fabric().luts).sum()
    }

    /// Grants a vFPGA running `role_name` with the given area to `vm`.
    /// Deploys into the first device with room (first-fit).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Exhausted`] when no device can host the
    /// role, naming every device tried and why it refused.
    pub fn request(
        &mut self,
        vm: &str,
        role_name: &str,
        area: AreaReport,
    ) -> RuntimeResult<String> {
        let mut refusals = Vec::with_capacity(self.devices.len());
        for (di, device) in self.devices.iter_mut().enumerate() {
            let role = Role { name: role_name.to_owned(), area };
            match device.deploy(role) {
                Ok(slot) => {
                    let handle = format!("vfpga{}", self.next_handle);
                    self.next_handle += 1;
                    self.grants
                        .insert(handle.clone(), Grant { device: di, slot, vm: vm.to_owned() });
                    return Ok(handle);
                }
                Err(e) => refusals.push((device.name.clone(), e.to_string())),
            }
        }
        Err(RuntimeError::Exhausted { role: role_name.to_owned(), luts: area.luts, refusals })
    }

    /// Releases a handle, freeing the PR slot.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unknown`] for a bogus handle.
    pub fn release(&mut self, handle: &str) -> RuntimeResult<()> {
        let grant =
            self.grants.remove(handle).ok_or_else(|| RuntimeError::Unknown(handle.to_owned()))?;
        self.devices[grant.device]
            .undeploy(grant.slot)
            .map_err(|e| RuntimeError::Allocation(e.to_string()))?;
        Ok(())
    }

    /// The physical `(device, slot)` backing a handle.
    pub fn backing(&self, handle: &str) -> Option<(usize, usize)> {
        self.grants.get(handle).map(|g| (g.device, g.slot))
    }

    /// Handles granted to a VM.
    pub fn handles_of(&self, vm: &str) -> Vec<&str> {
        let mut hs: Vec<&str> =
            self.grants.iter().filter(|(_, g)| g.vm == vm).map(|(h, _)| h.as_str()).collect();
        hs.sort_unstable();
        hs
    }
}

/// API-remoting cost model: guest accelerator calls trap to the hypervisor;
/// batching amortizes the exit cost ("API remoting techniques will improve
/// data exchanges").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemotingCost {
    /// Cost of one VM exit + hypercall, microseconds.
    pub vmexit_us: f64,
    /// Marshalling cost per call, microseconds.
    pub per_call_us: f64,
}

impl Default for RemotingCost {
    fn default() -> RemotingCost {
        RemotingCost { vmexit_us: 6.0, per_call_us: 1.5 }
    }
}

impl RemotingCost {
    /// Overhead per accelerator invocation when `batch` calls share one
    /// exit.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn overhead_per_call_us(&self, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be positive");
        self.vmexit_us / batch as f64 + self.per_call_us
    }
}

/// The hypervisor of one node: VMs plus the vFPGA manager.
#[derive(Debug, Clone, Default)]
pub struct Hypervisor {
    /// Host node name.
    pub node: String,
    vms: Vec<Vm>,
    /// The vFPGA manager.
    pub vfpga: VfpgaManager,
    /// Remoting cost model.
    pub remoting: RemotingCost,
}

impl Hypervisor {
    /// Creates a hypervisor managing `devices` on `node`.
    pub fn new(node: impl Into<String>, devices: Vec<FpgaDevice>) -> Hypervisor {
        Hypervisor {
            node: node.into(),
            vms: Vec::new(),
            vfpga: VfpgaManager::new(devices),
            remoting: RemotingCost::default(),
        }
    }

    /// Boots a VM.
    pub fn create_vm(&mut self, name: impl Into<String>, vcpus: u32, guest_os: &str) -> &Vm {
        self.vms.push(Vm {
            name: name.into(),
            vcpus,
            guest_os: guest_os.to_owned(),
            vfpgas: Vec::new(),
        });
        self.vms.last().expect("just pushed")
    }

    /// Looks up a VM.
    pub fn vm(&self, name: &str) -> Option<&Vm> {
        self.vms.iter().find(|v| v.name == name)
    }

    /// All VMs.
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Grants a vFPGA to a VM (deploys the role and records the handle).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unknown`] for a missing VM;
    /// [`RuntimeError::Exhausted`] when no device fits.
    pub fn attach_vfpga(
        &mut self,
        vm_name: &str,
        role: &str,
        area: AreaReport,
    ) -> RuntimeResult<String> {
        if !self.vms.iter().any(|v| v.name == vm_name) {
            return Err(RuntimeError::Unknown(vm_name.to_owned()));
        }
        let handle = self.vfpga.request(vm_name, role, area)?;
        if let Some(vm) = self.vms.iter_mut().find(|v| v.name == vm_name) {
            vm.vfpgas.push(handle.clone());
        }
        Ok(handle)
    }

    /// Migrates every grant of `vm` away (releases them), modeling a VM
    /// migration between nodes; returns the released role count.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unknown`] for a missing VM.
    pub fn detach_all(&mut self, vm_name: &str) -> RuntimeResult<usize> {
        let vm = self
            .vms
            .iter_mut()
            .find(|v| v.name == vm_name)
            .ok_or_else(|| RuntimeError::Unknown(vm_name.to_owned()))?;
        let handles = std::mem::take(&mut vm.vfpgas);
        let n = handles.len();
        for h in handles {
            self.vfpga.release(&h)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_area(luts: u64) -> AreaReport {
        AreaReport { luts, ffs: luts, dsps: 2, brams: 4 }
    }

    fn hypervisor() -> Hypervisor {
        Hypervisor::new(
            "cloud-p9",
            vec![FpgaDevice::bus_attached("capi0"), FpgaDevice::network_attached("cf0", true)],
        )
    }

    #[test]
    fn vm_lifecycle_and_attachment() {
        let mut h = hypervisor();
        h.create_vm("guest0", 4, "linux-ppc64le");
        let handle = h.attach_vfpga("guest0", "gemm", small_area(10_000)).unwrap();
        assert!(h.vfpga.backing(&handle).is_some());
        assert_eq!(h.vm("guest0").unwrap().vfpgas, vec![handle.clone()]);
        assert_eq!(h.vfpga.handles_of("guest0"), vec![handle.as_str()]);
    }

    #[test]
    fn attach_to_missing_vm_fails() {
        let mut h = hypervisor();
        assert!(matches!(
            h.attach_vfpga("ghost", "gemm", small_area(1_000)),
            Err(RuntimeError::Unknown(_))
        ));
    }

    #[test]
    fn allocation_exhaustion_reported() {
        let mut h = hypervisor();
        h.create_vm("g", 2, "linux");
        // capi0 and cf0 expose two PR slots each: the fifth role has
        // nowhere to go.
        for i in 0..4 {
            h.attach_vfpga("g", &format!("r{i}"), small_area(1_000)).unwrap();
        }
        let err = h.attach_vfpga("g", "r4", small_area(1_000)).unwrap_err();
        let RuntimeError::Exhausted { role, refusals, .. } = err else {
            panic!("expected Exhausted, got {err:?}");
        };
        assert_eq!(role, "r4");
        // Both devices are named with their refusal reason.
        assert_eq!(refusals.len(), 2);
        assert_eq!(refusals[0].0, "capi0");
        assert_eq!(refusals[1].0, "cf0");
        assert!(refusals.iter().all(|(_, reason)| reason.contains("PR slots")));
    }

    #[test]
    fn free_luts_shrink_and_recover() {
        let mut h = hypervisor();
        h.create_vm("g", 2, "linux");
        let before = h.vfpga.free_luts();
        let handle = h.attach_vfpga("g", "big", small_area(50_000)).unwrap();
        assert_eq!(h.vfpga.free_luts(), before - 50_000);
        h.vfpga.release(&handle).unwrap();
        assert_eq!(h.vfpga.free_luts(), before);
    }

    #[test]
    fn detach_all_releases_everything() {
        let mut h = hypervisor();
        h.create_vm("g", 2, "linux");
        h.attach_vfpga("g", "a", small_area(1_000)).unwrap();
        h.attach_vfpga("g", "b", small_area(1_000)).unwrap();
        let before = h.vfpga.free_luts();
        assert_eq!(h.detach_all("g").unwrap(), 2);
        assert!(h.vfpga.free_luts() > before);
        assert!(h.vm("g").unwrap().vfpgas.is_empty());
    }

    #[test]
    fn release_unknown_handle_fails() {
        let mut m = VfpgaManager::new(vec![FpgaDevice::bus_attached("d")]);
        assert!(matches!(m.release("vfpga99"), Err(RuntimeError::Unknown(_))));
    }

    #[test]
    fn batching_amortizes_remoting_overhead() {
        let cost = RemotingCost::default();
        let single = cost.overhead_per_call_us(1);
        let batched = cost.overhead_per_call_us(16);
        assert!(batched < single / 2.0);
        assert!(batched >= cost.per_call_us);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        RemotingCost::default().overhead_per_call_us(0);
    }
}
