//! Integration tests for the offload recovery layer: circuit-breaker
//! state machine transitions, deterministic bounded backoff schedules,
//! and end-to-end batch recovery over the reference system.

use everest_platform::System;
use everest_runtime::offload::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultPlan, OffloadCall, OffloadManager,
    RetryPolicy, TargetClass,
};
use proptest::prelude::*;

fn call(i: usize) -> OffloadCall {
    OffloadCall { kernel: format!("k{i}"), payload_bytes: 32 << 10, work_us: 250.0 }
}

#[test]
fn breaker_walks_the_full_state_machine() {
    let cfg = BreakerConfig { trip_after: 2, cooldown_us: 50.0, close_after: 2 };
    let mut b = CircuitBreaker::new(cfg);

    // Closed: failures below the threshold stay closed.
    assert_eq!(b.state(), BreakerState::Closed);
    assert!(!b.on_failure(0.0));
    assert_eq!(b.state(), BreakerState::Closed);

    // Trip: the threshold failure opens it.
    assert!(b.on_failure(10.0));
    assert_eq!(b.state(), BreakerState::Open);

    // Open: rejects until the cooldown elapses, then probes.
    assert_eq!(b.poll(40.0), BreakerState::Open);
    assert_eq!(b.poll(60.0), BreakerState::HalfOpen);

    // Half-open probe failure re-opens with a fresh cooldown.
    assert!(b.on_failure(60.0));
    assert_eq!(b.poll(100.0), BreakerState::Open);
    assert_eq!(b.poll(111.0), BreakerState::HalfOpen);

    // Two probe successes re-close; the failure counter starts fresh.
    assert!(!b.on_success());
    assert!(b.on_success());
    assert_eq!(b.state(), BreakerState::Closed);
    assert!(!b.on_failure(200.0));
    assert!(b.on_failure(201.0), "threshold counts only post-close failures");
}

#[test]
fn flaky_batch_recovers_and_replays_identically() {
    let calls: Vec<OffloadCall> = (0..32).map(call).collect();
    let reference = {
        let plan = FaultPlan::from_profile("flaky", 2024).unwrap();
        let mut mgr = OffloadManager::for_system(&System::everest_reference(), plan).unwrap();
        let outcomes = mgr.run_batch(&calls, 1).unwrap();
        assert_eq!(outcomes.len(), calls.len(), "every call completes despite faults");
        (outcomes, mgr.trace())
    };
    for jobs in [2, 4, 8] {
        let plan = FaultPlan::from_profile("flaky", 2024).unwrap();
        let mut mgr = OffloadManager::for_system(&System::everest_reference(), plan).unwrap();
        let outcomes = mgr.run_batch(&calls, jobs).unwrap();
        assert_eq!(outcomes, reference.0, "outcomes diverge at jobs={jobs}");
        assert_eq!(mgr.trace(), reference.1, "trace diverges at jobs={jobs}");
    }
}

#[test]
fn meltdown_still_completes_every_call_on_the_cpu() {
    let plan = FaultPlan::from_profile("meltdown", 1).unwrap();
    let mut mgr = OffloadManager::for_system(&System::everest_reference(), plan).unwrap();
    let calls: Vec<OffloadCall> = (0..10).map(call).collect();
    let outcomes = mgr.run_batch(&calls, 4).unwrap();
    assert!(outcomes.iter().all(|o| o.class == TargetClass::HostCpu));
    assert!(outcomes.iter().all(|o| o.degraded));
    // All seven FPGAs of the reference system are gone for good.
    assert_eq!(mgr.tripped_devices().len(), 7);
    assert!(mgr.trace().contains("device LOST"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Backoff schedules are deterministic per seed and monotonically
    /// bounded: the jittered wait always lands in `[nominal/2, nominal)`
    /// of a non-decreasing, capped nominal curve.
    #[test]
    fn backoff_schedules_are_deterministic_and_bounded(
        seed in any::<u64>(),
        invocation in any::<u64>(),
        base_us in 1.0f64..1_000.0,
        factor in 1.0f64..4.0,
        cap_mult in 1.0f64..64.0,
    ) {
        let retry = RetryPolicy {
            max_attempts: 8,
            timeout_us: 1_000.0,
            base_us,
            factor,
            cap_us: base_us * cap_mult,
        };
        let mut prev_nominal = 0.0f64;
        for attempt in 1..=retry.max_attempts {
            let nominal = retry.nominal_backoff_us(attempt);
            // Monotone, non-decreasing, capped.
            prop_assert!(nominal >= prev_nominal);
            prop_assert!(nominal <= retry.cap_us + 1e-9);
            prev_nominal = nominal;

            let wait = retry.backoff_us(seed, "node/dev", invocation, attempt);
            prop_assert!(wait >= 0.5 * nominal - 1e-9, "jitter below floor");
            prop_assert!(wait < nominal + 1e-9, "jitter above nominal");
            // Bit-identical replay for the same inputs.
            prop_assert_eq!(wait, retry.backoff_us(seed, "node/dev", invocation, attempt));
        }
    }

    /// Fault outcomes replay bit-identically for the same plan inputs and
    /// the no-fault profile never injects anything.
    #[test]
    fn fault_plans_replay_per_seed(seed in any::<u64>(), invocation in any::<u64>()) {
        let udp = Some(everest_platform::LinkProfile::UdpDatacenter);
        let plan = FaultPlan::from_profile("lossy", seed).unwrap();
        let twin = FaultPlan::from_profile("lossy", seed).unwrap();
        for attempt in 0..4 {
            prop_assert_eq!(
                plan.outcome("rack/cf0", udp, invocation, attempt),
                twin.outcome("rack/cf0", udp, invocation, attempt)
            );
        }
        let clean = FaultPlan::from_profile("none", seed).unwrap();
        prop_assert_eq!(clean.outcome("rack/cf0", udp, invocation, 0), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The load-bearing invariant of the lane-partitioned parallel fold:
    /// for any fault profile, seed, and batch size, `run_batch` at
    /// jobs ∈ {1, 2, 4, 8} produces byte-identical traces (which embed
    /// every retry, fallback, breaker transition, and device loss in
    /// invocation order), identical outcomes, and identical breaker
    /// state sequences across the device chain.
    #[test]
    fn run_batch_is_jobs_invariant_over_random_fault_profiles(
        profile_idx in 0usize..FaultPlan::PROFILES.len(),
        seed in any::<u64>(),
        n_calls in 1usize..48,
    ) {
        let profile = FaultPlan::PROFILES[profile_idx];
        let calls: Vec<OffloadCall> = (0..n_calls).map(call).collect();

        let run = |jobs: usize| {
            let plan = FaultPlan::from_profile(profile, seed).unwrap();
            let mut mgr =
                OffloadManager::for_system(&System::everest_reference(), plan).unwrap();
            let outcomes = mgr.run_batch(&calls, jobs).unwrap();
            let breakers: Vec<(String, BreakerState)> = mgr
                .chain()
                .iter()
                .map(|t| {
                    (t.device.clone(), mgr.breaker(&t.device).map_or(BreakerState::Closed, |b| b.state()))
                })
                .collect();
            (outcomes, mgr.trace(), breakers, mgr.tripped_devices())
        };

        let reference = run(1);
        for jobs in [2usize, 4, 8] {
            let (outcomes, trace, breakers, tripped) = run(jobs);
            prop_assert_eq!(&outcomes, &reference.0, "outcomes diverge at jobs={}", jobs);
            prop_assert_eq!(&trace, &reference.1, "trace diverges at jobs={}", jobs);
            prop_assert_eq!(&breakers, &reference.2, "breakers diverge at jobs={}", jobs);
            prop_assert_eq!(&tripped, &reference.3, "tripped set diverges at jobs={}", jobs);
        }
    }
}
