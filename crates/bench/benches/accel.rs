//! E5: HLS synthesis runtime and the accelerator-vs-software comparison
//! across PE counts (the spatial-parallelism knob).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use everest::hls::accel::{synthesize, HlsConfig};

fn gemm(n: usize) -> everest::ir::Func {
    let src = format!(
        "kernel k(a: tensor<{n}x{n}xf64>, b: tensor<{n}x{n}xf64>) -> tensor<{n}x{n}xf64> {{ return a @ b; }}"
    );
    everest::dsl::compile_kernels(&src).unwrap().func("k").unwrap().clone()
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_hls_synthesis");
    for n in [8usize, 16, 32, 64] {
        let func = gemm(n);
        group.bench_with_input(BenchmarkId::new("gemm", n), &func, |b, f| {
            b.iter(|| synthesize(std::hint::black_box(f), &HlsConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_pe_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_pe_sweep");
    let func = gemm(32);
    for pe in [1usize, 4, 16] {
        let config = HlsConfig { pe, banks: 16, ..HlsConfig::default() };
        group.bench_with_input(BenchmarkId::new("synthesize_pe", pe), &config, |b, cfg| {
            b.iter(|| synthesize(std::hint::black_box(&func), cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full-workspace bench run within
    // CI budgets; pass your own -- flags for high-precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_synthesis, bench_pe_sweep
}
criterion_main!(benches);
