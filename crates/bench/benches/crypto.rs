//! E8: software crypto throughput (the reference the near-memory engines
//! are generated from).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use everest::security::modes::{AesCtr, AesGcm};
use everest::security::{hmac_sha256, sha256, Aes128};

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_crypto");
    for size in [1usize << 10, 64 << 10, 1 << 20] {
        let payload = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        let gcm = AesGcm::new(&[7u8; 16]);
        group.bench_with_input(BenchmarkId::new("aes_gcm_seal", size), &payload, |b, p| {
            b.iter(|| gcm.seal(&[1u8; 12], std::hint::black_box(p), b""))
        });
        let ctr = AesCtr::new(&[7u8; 16]);
        group.bench_with_input(BenchmarkId::new("aes_ctr", size), &payload, |b, p| {
            b.iter(|| {
                let mut buf = p.clone();
                ctr.apply(&[1u8; 12], 1, &mut buf);
                buf
            })
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &payload, |b, p| {
            b.iter(|| sha256(std::hint::black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("hmac_sha256", size), &payload, |b, p| {
            b.iter(|| hmac_sha256(b"key", std::hint::black_box(p)))
        });
    }
    group.finish();
}

fn bench_block(c: &mut Criterion) {
    let aes = Aes128::new(&[9u8; 16]);
    let block = [0x42u8; 16];
    c.bench_function("e8_aes_block", |b| {
        b.iter(|| aes.encrypt_block(std::hint::black_box(&block)))
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full-workspace bench run within
    // CI budgets; pass your own -- flags for high-precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_crypto, bench_block
}
criterion_main!(benches);
