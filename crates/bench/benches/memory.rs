//! E6: memory-partitioning analysis cost and the banks x scheme ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use everest::hls::memory::{Partitioning, Scheme};

fn bench_conflict_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_conflict_analysis");
    let offsets: Vec<i64> = (-4..=4).collect();
    for banks in [2usize, 8, 32] {
        for scheme in [Scheme::Block, Scheme::Cyclic] {
            let p = Partitioning::new(4096, banks, scheme, 2).unwrap();
            group.bench_with_input(BenchmarkId::new(format!("{scheme}"), banks), &p, |b, p| {
                b.iter(|| p.min_ii(std::hint::black_box(&offsets)))
            });
        }
    }
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let p = Partitioning::new(1 << 16, 16, Scheme::Cyclic, 2).unwrap();
    c.bench_function("e6_map_64k_elements", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..(1usize << 16) {
                acc ^= p.map(std::hint::black_box(i)).0;
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full-workspace bench run within
    // CI budgets; pass your own -- flags for high-precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_conflict_analysis, bench_mapping
}
criterion_main!(benches);
