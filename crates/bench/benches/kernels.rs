//! E23 (kernel arm): SIMD kernel microbenchmarks. Times the vectorized tensor
//! kernels (`everest_ir::simd`) and the Gaussian-plume grid against
//! their scalar references, asserting parity inline (bit-identical for
//! matmul/stencil, 1e-6 for the `exp`-based kernels), and writes the
//! element throughputs to `BENCH_kernels.json` at the repository root.
//! The `*_per_sec` leaves feed the `bench_diff` regression gate, so a
//! vectorization regression (e.g. a refactor that breaks
//! auto-vectorization) trips CI just like a scheduler slowdown would.
//!
//! Run with `cargo bench -p everest-bench --bench kernels`.

use everest_apps::airquality::{reference_site, Meteo, Stability};
use everest_ir::simd;
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-RUNS timing rounds. Each round visits every kernel's scalar
/// and SIMD arm back to back (matmul scalar, matmul simd, stencil
/// scalar, …), so each arm's samples are spread across the whole bench
/// window instead of packed into one contiguous burst. Slow drift and
/// multi-second load spikes — thermal throttling, a background daemon
/// waking up — then have to cover *every* round to bias an arm's
/// best-of, and they hit both arms of a ratio alike. Together with
/// `ITERS` calls per timed sample this brought the run-to-run spread of
/// the gated `*_per_sec` leaves from ~13% to low single digits on a
/// quiet machine (see EXPERIMENTS.md, E23).
const RUNS: usize = 25;

/// Kernel invocations per timed sample. The fastest arms finish a single
/// call in tens of microseconds, where `Instant` jitter and a single
/// scheduler preemption swamp the signal; timing a short batch and
/// dividing amortizes both.
const ITERS: usize = 4;

/// Deterministic pseudo-random doubles in [-scale, scale).
fn noise(n: usize, seed: u64, scale: f64) -> Vec<f64> {
    let mut z = seed;
    (0..n)
        .map(|_| {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut w = z;
            w = (w ^ (w >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            w = (w ^ (w >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            w ^= w >> 31;
            (w as f64 / u64::MAX as f64 * 2.0 - 1.0) * scale
        })
        .collect()
}

/// One timed sample: `ITERS` back-to-back calls, seconds per call.
fn sample(work: &mut dyn FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..ITERS {
        work();
    }
    start.elapsed().as_secs_f64() / ITERS as f64
}

/// One kernel's scalar/SIMD arm pair plus its best-observed sample times.
struct Arm {
    name: &'static str,
    /// Elements processed per call (the `*_per_sec` denominator).
    elems: usize,
    scalar: Box<dyn FnMut()>,
    fast: Box<dyn FnMut()>,
    best_scalar: f64,
    best_fast: f64,
}

impl Arm {
    fn new(
        name: &'static str,
        elems: usize,
        scalar: impl FnMut() + 'static,
        fast: impl FnMut() + 'static,
    ) -> Self {
        Arm {
            name,
            elems,
            scalar: Box::new(scalar),
            fast: Box::new(fast),
            best_scalar: f64::INFINITY,
            best_fast: f64::INFINITY,
        }
    }

    fn entry(&self) -> Value {
        let scalar_per_sec = self.elems as f64 / self.best_scalar;
        let simd_per_sec = self.elems as f64 / self.best_fast;
        println!(
            "{:<10} scalar {:>12.3e} elem/s   simd {:>12.3e} elem/s   speedup {:>5.2}x",
            self.name,
            scalar_per_sec,
            simd_per_sec,
            simd_per_sec / scalar_per_sec
        );
        Value::Object(vec![
            ("kernel".to_owned(), Value::Str(self.name.to_owned())),
            ("scalar_elems_per_sec".to_owned(), Value::Float(scalar_per_sec)),
            ("simd_elems_per_sec".to_owned(), Value::Float(simd_per_sec)),
            ("speedup".to_owned(), Value::Float(simd_per_sec / scalar_per_sec)),
        ])
    }
}

fn main() {
    let mut arms = Vec::new();

    // Matmul: 96³ — every output element does 96 multiply-adds.
    {
        let (m, k, n) = (96, 96, 96);
        let a = noise(m * k, 11, 2.0);
        let b = noise(k * n, 13, 2.0);
        assert_eq!(
            simd::matmul(&a, &b, m, k, n),
            simd::matmul_scalar(&a, &b, m, k, n),
            "matmul parity"
        );
        let elems = m * k * n; // fused multiply-add count
        let (a2, b2) = (a.clone(), b.clone());
        arms.push(Arm::new(
            "matmul",
            elems,
            move || {
                black_box(simd::matmul_scalar(&a, &b, m, k, n));
            },
            move || {
                black_box(simd::matmul(&a2, &b2, m, k, n));
            },
        ));
    }

    // Stencil: 64 rows × 4096, 5-tap.
    {
        let (rows, last) = (64, 4096);
        let weights = [0.1, 0.25, 0.3, 0.25, 0.1];
        let x = noise(rows * last, 17, 3.0);
        assert_eq!(
            simd::stencil_rows(&x, rows, last, &weights),
            simd::stencil_rows_scalar(&x, rows, last, &weights),
            "stencil parity"
        );
        let x2 = x.clone();
        arms.push(Arm::new(
            "stencil",
            rows * last,
            move || {
                black_box(simd::stencil_rows_scalar(&x, rows, last, &weights));
            },
            move || {
                black_box(simd::stencil_rows(&x2, rows, last, &weights));
            },
        ));
    }

    // Sigmoid: 256 Ki elements, the exp-bound kernel.
    {
        let x = noise(256 * 1024, 19, 20.0);
        let fast_out = simd::sigmoid(&x);
        for (f, e) in fast_out.iter().zip(simd::sigmoid_scalar(&x)) {
            assert!((f - e).abs() < 1e-6, "sigmoid parity");
        }
        let x2 = x.clone();
        let elems = x.len();
        arms.push(Arm::new(
            "sigmoid",
            elems,
            move || {
                black_box(simd::sigmoid_scalar(&x));
            },
            move || {
                black_box(simd::sigmoid(&x2));
            },
        ));
    }

    // Gaussian plume: the air-quality use case's 128×128 receptor grid,
    // two stacks, neutral stability.
    {
        let model = reference_site(128);
        let met = Meteo { wind_ms: 4.0, wind_dir_rad: 0.6, stability: Stability::D };
        let reference = model.concentration_grid_scalar(&met);
        let fast_grid = model.concentration_grid(&met);
        let tol = 1e-6 * (1.0 + reference.max());
        for (f, e) in fast_grid.as_slice().iter().zip(reference.as_slice()) {
            assert!((f - e).abs() < tol, "plume parity");
        }
        let elems = model.cells * model.cells;
        let model2 = model.clone();
        arms.push(Arm::new(
            "plume",
            elems,
            move || {
                black_box(model.concentration_grid_scalar(&met));
            },
            move || {
                black_box(model2.concentration_grid(&met));
            },
        ));
    }

    // Warm every arm once outside the timed window (page-in, branch
    // predictors, frequency ramp) so round 0 is not an outlier, then
    // interleave: each round times every arm once.
    for arm in &mut arms {
        (arm.scalar)();
        (arm.fast)();
    }
    for _ in 0..RUNS {
        for arm in &mut arms {
            arm.best_scalar = arm.best_scalar.min(sample(&mut arm.scalar));
            arm.best_fast = arm.best_fast.min(sample(&mut arm.fast));
        }
    }

    let kernels: Vec<Value> = arms.iter().map(Arm::entry).collect();
    let json = Value::Object(vec![
        ("bench".to_owned(), Value::Str("kernels".to_owned())),
        ("experiment".to_owned(), Value::Str("E23".to_owned())),
        ("runs".to_owned(), Value::UInt(RUNS as u64)),
        ("iters_per_sample".to_owned(), Value::UInt(ITERS as u64)),
        ("kernels".to_owned(), Value::Array(kernels)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("serializes"))
        .expect("writes BENCH_kernels.json");
    println!("wrote {path}");
}
