//! E23 (kernel arm): SIMD kernel microbenchmarks. Times the vectorized tensor
//! kernels (`everest_ir::simd`) and the Gaussian-plume grid against
//! their scalar references, asserting parity inline (bit-identical for
//! matmul/stencil, 1e-6 for the `exp`-based kernels), and writes the
//! element throughputs to `BENCH_kernels.json` at the repository root.
//! The `*_per_sec` leaves feed the `bench_diff` regression gate, so a
//! vectorization regression (e.g. a refactor that breaks
//! auto-vectorization) trips CI just like a scheduler slowdown would.
//!
//! Run with `cargo bench -p everest-bench --bench kernels`.

use everest_apps::airquality::{reference_site, Meteo, Stability};
use everest_ir::simd;
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-RUNS timing repetitions per kernel arm.
const RUNS: usize = 7;

/// Deterministic pseudo-random doubles in [-scale, scale).
fn noise(n: usize, seed: u64, scale: f64) -> Vec<f64> {
    let mut z = seed;
    (0..n)
        .map(|_| {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut w = z;
            w = (w ^ (w >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            w = (w ^ (w >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            w ^= w >> 31;
            (w as f64 / u64::MAX as f64 * 2.0 - 1.0) * scale
        })
        .collect()
}

/// Best-of-RUNS elements/second for `work`, which processes `elems`
/// elements per call and returns a value to keep alive.
fn throughput<T>(elems: usize, mut work: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let start = Instant::now();
        black_box(work());
        best = best.min(start.elapsed().as_secs_f64());
    }
    elems as f64 / best
}

fn kernel_entry(name: &str, scalar_per_sec: f64, simd_per_sec: f64) -> Value {
    println!(
        "{name:<10} scalar {:>12.3e} elem/s   simd {:>12.3e} elem/s   speedup {:>5.2}x",
        scalar_per_sec,
        simd_per_sec,
        simd_per_sec / scalar_per_sec
    );
    Value::Object(vec![
        ("kernel".to_owned(), Value::Str(name.to_owned())),
        ("scalar_elems_per_sec".to_owned(), Value::Float(scalar_per_sec)),
        ("simd_elems_per_sec".to_owned(), Value::Float(simd_per_sec)),
        ("speedup".to_owned(), Value::Float(simd_per_sec / scalar_per_sec)),
    ])
}

fn main() {
    let mut kernels = Vec::new();

    // Matmul: 96³ — every output element does 96 multiply-adds.
    {
        let (m, k, n) = (96, 96, 96);
        let a = noise(m * k, 11, 2.0);
        let b = noise(k * n, 13, 2.0);
        assert_eq!(
            simd::matmul(&a, &b, m, k, n),
            simd::matmul_scalar(&a, &b, m, k, n),
            "matmul parity"
        );
        let elems = m * k * n; // fused multiply-add count
        let scalar = throughput(elems, || simd::matmul_scalar(&a, &b, m, k, n));
        let fast = throughput(elems, || simd::matmul(&a, &b, m, k, n));
        kernels.push(kernel_entry("matmul", scalar, fast));
    }

    // Stencil: 64 rows × 4096, 5-tap.
    {
        let (rows, last) = (64, 4096);
        let weights = [0.1, 0.25, 0.3, 0.25, 0.1];
        let x = noise(rows * last, 17, 3.0);
        assert_eq!(
            simd::stencil_rows(&x, rows, last, &weights),
            simd::stencil_rows_scalar(&x, rows, last, &weights),
            "stencil parity"
        );
        let elems = rows * last;
        let scalar = throughput(elems, || simd::stencil_rows_scalar(&x, rows, last, &weights));
        let fast = throughput(elems, || simd::stencil_rows(&x, rows, last, &weights));
        kernels.push(kernel_entry("stencil", scalar, fast));
    }

    // Sigmoid: 256 Ki elements, the exp-bound kernel.
    {
        let x = noise(256 * 1024, 19, 20.0);
        let fast_out = simd::sigmoid(&x);
        for (f, e) in fast_out.iter().zip(simd::sigmoid_scalar(&x)) {
            assert!((f - e).abs() < 1e-6, "sigmoid parity");
        }
        let scalar = throughput(x.len(), || simd::sigmoid_scalar(&x));
        let fast = throughput(x.len(), || simd::sigmoid(&x));
        kernels.push(kernel_entry("sigmoid", scalar, fast));
    }

    // Gaussian plume: the air-quality use case's 128×128 receptor grid,
    // two stacks, neutral stability.
    {
        let model = reference_site(128);
        let met = Meteo { wind_ms: 4.0, wind_dir_rad: 0.6, stability: Stability::D };
        let reference = model.concentration_grid_scalar(&met);
        let fast_grid = model.concentration_grid(&met);
        let tol = 1e-6 * (1.0 + reference.max());
        for (f, e) in fast_grid.as_slice().iter().zip(reference.as_slice()) {
            assert!((f - e).abs() < tol, "plume parity");
        }
        let elems = model.cells * model.cells;
        let scalar = throughput(elems, || model.concentration_grid_scalar(&met));
        let fast = throughput(elems, || model.concentration_grid(&met));
        kernels.push(kernel_entry("plume", scalar, fast));
    }

    let json = Value::Object(vec![
        ("bench".to_owned(), Value::Str("kernels".to_owned())),
        ("experiment".to_owned(), Value::Str("E23".to_owned())),
        ("runs".to_owned(), Value::UInt(RUNS as u64)),
        ("kernels".to_owned(), Value::Array(kernels)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("serializes"))
        .expect("writes BENCH_kernels.json");
    println!("wrote {path}");
}
