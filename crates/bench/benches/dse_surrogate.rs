//! E25: surrogate-pruned design-space exploration. Sweeps four
//! structurally distinct kernels over a deliberately large hardware knob
//! grid twice — exhaustively, and pruned by the learned cost model — at
//! `jobs = 1`, `2` and `4`. Checks that both engines are bit-identical
//! across worker counts, that the pruned Pareto front's hypervolume stays
//! within 1% of the exhaustive front's, and writes the throughput
//! trajectory to `BENCH_dse_surrogate.json` (gated by `bench_diff`) plus
//! a `surrogate` section inside `BENCH_dse.json`.
//!
//! Run with `cargo bench -p everest-bench --bench dse_surrogate`.

use everest::variants::space::DesignSpace;
use everest::variants::{generate_all, generate_all_pruned, pareto, ExploreReport, PruneConfig};
use everest::Variant;
use serde_json::Value;
use std::time::Instant;

/// Four structurally distinct kernels — dense matmul, stencil, streaming
/// triad, pointwise scale — so the synthesis cache cannot share results
/// across kernels and the surrogate has to generalize across workloads.
const SRC: &str = "
    kernel gemm(a: tensor<24x24xf64>, b: tensor<24x24xf64>) -> tensor<24x24xf64> {
        return a @ b;
    }
    kernel smooth(x: tensor<256xf64>) -> tensor<256xf64> {
        return stencil(x, [0.25, 0.5, 0.25]);
    }
    kernel axpy(a: tensor<256xf64>, b: tensor<256xf64>) -> tensor<256xf64> {
        return 2.0 * a + b;
    }
    kernel scale(x: tensor<48x48xf64>) -> tensor<48x48xf64> {
        return 3.0 * x;
    }
";

const RUNS: usize = 3;

/// The swept space: the default software knobs crossed with a 7×9×2×2
/// hardware grid per attachment target — 504 hardware (point, target)
/// pairs per kernel, the "extreme-scale" regime exhaustive synthesis
/// cannot keep up with. Banks stop at 64, under every kernel's buffer
/// element count, so the synthesizer's buffer clamp (invisible to the
/// model's features) never folds distinct bank counts together.
fn space() -> DesignSpace {
    DesignSpace {
        banks: vec![1, 2, 4, 8, 16, 32, 64],
        pes: vec![1, 2, 4, 8, 16, 32, 64, 128, 256],
        pipeline: vec![true, false],
        dift: vec![false, true],
        ..DesignSpace::default()
    }
}

/// The pruning configuration under test: a 2% exact training sample, a
/// tight margin band and a coarse near-duplicate collapse — the settings
/// the 10× headline is claimed at.
fn prune_config() -> PruneConfig {
    PruneConfig {
        margin: 0.05,
        train_fraction: 0.02,
        min_train: 48,
        dedup_eps: 0.2,
        ..PruneConfig::default()
    }
}

fn fingerprint(sets: &[Vec<Variant>]) -> String {
    let mut out = String::new();
    for set in sets {
        for v in set {
            out.push_str(&serde_json::to_string(v).expect("variant serializes"));
            out.push('\n');
        }
    }
    out
}

struct Run {
    jobs: usize,
    wall_ms: f64,
    points_per_sec: f64,
}

/// Times `f` over the full (kernel × point) batch with a cold synthesis
/// cache, keeping the fastest of [`RUNS`] attempts.
fn measure<T>(
    funcs: &[&everest::ir::Func],
    space: &DesignSpace,
    jobs: usize,
    f: impl Fn(usize) -> T,
    fp: impl Fn(&T) -> String,
) -> (Run, T) {
    everest::hls::cache::global().clear();
    let first = f(jobs);
    let reference = fp(&first);
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        everest::hls::cache::global().clear();
        let start = Instant::now();
        let out = f(jobs);
        let wall = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(reference, fp(&out), "jobs={jobs} output drifted between runs");
        best = best.min(wall);
    }
    let points = funcs.len() * space.size();
    let run = Run { jobs, wall_ms: best, points_per_sec: points as f64 / (best / 1e3) };
    (run, first)
}

/// Hypervolume of each kernel's pruned front relative to its exhaustive
/// front, both measured against the exhaustive reference point. Returns
/// the worst per-kernel ratio.
fn front_quality(full: &[Vec<Variant>], pruned: &[Vec<Variant>]) -> f64 {
    let mut worst = f64::INFINITY;
    for (full_set, pruned_set) in full.iter().zip(pruned) {
        let reference = pareto::reference_point(full_set);
        let hv_full = pareto::hypervolume(&pareto::pareto_front(full_set), reference);
        let hv_pruned = pareto::hypervolume(&pareto::pareto_front(pruned_set), reference);
        worst = worst.min(if hv_full > 0.0 { hv_pruned / hv_full } else { 1.0 });
    }
    worst
}

fn main() {
    let module = everest::dsl::compile_kernels(SRC).expect("bench corpus compiles");
    let funcs: Vec<&everest::ir::Func> = module.iter().collect();
    let space = space();
    let cfg = prune_config();
    let total_points = funcs.len() * space.size();
    println!(
        "sweep: {} kernels x {} points = {} design points",
        funcs.len(),
        space.size(),
        total_points
    );

    let mut exhaustive_runs = Vec::new();
    let mut pruned_runs = Vec::new();
    let mut full_sets: Option<Vec<Vec<Variant>>> = None;
    let mut pruned_sets: Option<Vec<Vec<Variant>>> = None;
    let mut report: Option<ExploreReport> = None;
    let mut exhaustive_fp: Option<String> = None;
    let mut pruned_fp: Option<String> = None;

    for jobs in [1usize, 2, 4] {
        let (run, sets) = measure(
            &funcs,
            &space,
            jobs,
            |jobs| generate_all(&funcs, &space, jobs).expect("exhaustive sweep succeeds"),
            |sets| fingerprint(sets),
        );
        let fp = fingerprint(&sets);
        match &exhaustive_fp {
            None => {
                exhaustive_fp = Some(fp);
                full_sets = Some(sets);
            }
            Some(reference) => assert_eq!(reference, &fp, "exhaustive jobs={jobs} diverged"),
        }
        println!(
            "exhaustive jobs={:<2} wall={:>9.2} ms  {:>9.0} points/s",
            run.jobs, run.wall_ms, run.points_per_sec
        );
        exhaustive_runs.push(run);

        let (run, out) = measure(
            &funcs,
            &space,
            jobs,
            |jobs| generate_all_pruned(&funcs, &space, jobs, &cfg).expect("pruned sweep succeeds"),
            |(sets, _)| fingerprint(sets),
        );
        let (sets, jobs_report) = out;
        let fp = fingerprint(&sets);
        match &pruned_fp {
            None => {
                pruned_fp = Some(fp);
                pruned_sets = Some(sets);
                report = Some(jobs_report);
            }
            Some(reference) => {
                assert_eq!(reference, &fp, "pruned jobs={jobs} diverged");
                assert_eq!(report.as_ref(), Some(&jobs_report), "pruned report diverged");
            }
        }
        println!(
            "pruned     jobs={:<2} wall={:>9.2} ms  {:>9.0} points/s",
            run.jobs, run.wall_ms, run.points_per_sec
        );
        pruned_runs.push(run);
    }

    let full_sets = full_sets.expect("exhaustive sets recorded");
    let pruned_sets = pruned_sets.expect("pruned sets recorded");
    let report = report.expect("explore report recorded");
    assert!(!report.fallback, "the bench space must engage the model, not fall back");

    // Front quality: the pruned hypervolume must stay within 1% of the
    // exhaustive hypervolume on every kernel.
    let hv_ratio = front_quality(&full_sets, &pruned_sets);
    assert!(hv_ratio >= 0.99, "pruned front lost {:.2}% hypervolume", (1.0 - hv_ratio) * 100.0);

    // Every pruned variant is an exactly-evaluated point of the
    // exhaustive sweep (same id, same metrics).
    for (pruned_set, full_set) in pruned_sets.iter().zip(&full_sets) {
        for v in pruned_set {
            let exact = full_set.iter().find(|f| f.id == v.id).expect("pruned id exists");
            assert_eq!(v.metrics, exact.metrics, "{} drifted from exact synthesis", v.id);
        }
    }

    let headline_jobs = pruned_runs.len() - 1;
    let speedup =
        pruned_runs[headline_jobs].points_per_sec / exhaustive_runs[headline_jobs].points_per_sec;
    println!(
        "surrogate: trained {}, predicted {}, exact {}, pruned {} (val mape {:.3})",
        report.train, report.predicted, report.exact, report.pruned, report.val_mape
    );
    println!(
        "speedup pruned vs exhaustive at jobs=4: {speedup:.1}x, worst hypervolume ratio {:.4}",
        hv_ratio
    );

    let runs_json = |runs: &[Run]| {
        Value::Array(
            runs.iter()
                .map(|r| {
                    Value::Object(vec![
                        ("jobs".to_owned(), Value::UInt(r.jobs as u64)),
                        ("wall_ms".to_owned(), Value::Float(r.wall_ms)),
                        ("points_per_sec".to_owned(), Value::Float(r.points_per_sec)),
                    ])
                })
                .collect(),
        )
    };
    let surrogate = Value::Object(vec![
        ("experiment".to_owned(), Value::Str("E25".to_owned())),
        ("kernels".to_owned(), Value::UInt(funcs.len() as u64)),
        ("points".to_owned(), Value::UInt(total_points as u64)),
        ("train".to_owned(), Value::UInt(report.train as u64)),
        ("exact".to_owned(), Value::UInt(report.exact as u64)),
        ("pruned".to_owned(), Value::UInt(report.pruned as u64)),
        ("val_mape".to_owned(), Value::Float(report.val_mape)),
        ("hv_ratio_worst".to_owned(), Value::Float(hv_ratio)),
        ("speedup_pruned_vs_exhaustive_jobs4".to_owned(), Value::Float(speedup)),
        (
            "exhaustive_points_per_sec".to_owned(),
            Value::Float(exhaustive_runs[headline_jobs].points_per_sec),
        ),
        (
            "pruned_points_per_sec".to_owned(),
            Value::Float(pruned_runs[headline_jobs].points_per_sec),
        ),
    ]);

    let json = Value::Object(vec![
        ("bench".to_owned(), Value::Str("dse_surrogate".to_owned())),
        ("experiment".to_owned(), Value::Str("E25".to_owned())),
        ("exhaustive_runs".to_owned(), runs_json(&exhaustive_runs)),
        ("pruned_runs".to_owned(), runs_json(&pruned_runs)),
        ("surrogate".to_owned(), surrogate.clone()),
        ("outputs_identical".to_owned(), Value::Bool(true)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dse_surrogate.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("serializes"))
        .expect("writes BENCH_dse_surrogate.json");
    println!("wrote {path}");

    // Fold the E25 section into BENCH_dse.json next to E18, replacing any
    // previous surrogate entry.
    let dse_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dse.json");
    if let Ok(existing) = std::fs::read_to_string(dse_path) {
        if let Ok(Value::Object(mut fields)) = serde_json::from_str::<Value>(&existing) {
            fields.retain(|(key, _)| key != "surrogate");
            fields.push(("surrogate".to_owned(), surrogate));
            std::fs::write(
                dse_path,
                serde_json::to_string_pretty(&Value::Object(fields)).expect("serializes"),
            )
            .expect("updates BENCH_dse.json");
            println!("updated {dse_path}");
        }
    }
}
