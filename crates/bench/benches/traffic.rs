//! E11: PTDR Monte-Carlo sampling cost and traffic assignment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use everest::apps::traffic::{
    assign_traffic, generate_fcd, ptdr_travel_time, random_od, shortest_route, RoadNetwork,
    SpeedProfiles,
};

fn bench_ptdr(c: &mut Criterion) {
    let network = RoadNetwork::grid(2026, 10, 1.0);
    let fcd = generate_fcd(&network, 7, 100_000);
    let profiles = SpeedProfiles::learn(&network, &fcd);
    let route = shortest_route(&network, &profiles, 0, network.nodes.len() - 1, 8).unwrap();
    let mut group = c.benchmark_group("e11_ptdr");
    for samples in [100usize, 1_000, 10_000] {
        group.throughput(Throughput::Elements(samples as u64));
        group.bench_with_input(BenchmarkId::new("samples", samples), &samples, |b, s| {
            b.iter(|| ptdr_travel_time(&network, &profiles, &route, 8.0, *s, 1))
        });
    }
    group.finish();

    let od = random_od(&network, 4, 40, 700.0);
    c.bench_function("e11_assignment_6_iters", |b| {
        b.iter(|| assign_traffic(&network, &profiles, std::hint::black_box(&od), 8, 6))
    });
    c.bench_function("e11_dijkstra", |b| {
        b.iter(|| shortest_route(&network, &profiles, 0, network.nodes.len() - 1, 8).unwrap())
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full-workspace bench run within
    // CI budgets; pass your own -- flags for high-precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_ptdr
}
criterion_main!(benches);
