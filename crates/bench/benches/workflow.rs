//! E10: workflow-platform scheduling throughput across workers and DAG
//! shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use everest::workflow::{exec::simulate, Policy, TaskGraph, Worker};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_scheduling");
    let graphs = [
        TaskGraph::wide(128, 500.0, 10_000),
        TaskGraph::deep(128, 500.0, 10_000),
        TaskGraph::random(5, 8, 16, 500.0),
    ];
    for g in &graphs {
        for workers in [4usize, 16, 64] {
            let pool = Worker::uniform_pool(workers, 1.0);
            group.bench_with_input(BenchmarkId::new(g.name.clone(), workers), &pool, |b, pool| {
                b.iter(|| simulate(std::hint::black_box(g), pool, Policy::Heft).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_policies");
    let g = TaskGraph::random(9, 10, 20, 300.0);
    let pool = Worker::heterogeneous_pool(4, 12);
    for policy in [Policy::Fifo, Policy::MinLoad, Policy::Heft] {
        group.bench_with_input(BenchmarkId::new("policy", policy), &policy, |b, p| {
            b.iter(|| simulate(std::hint::black_box(&g), &pool, *p).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full-workspace bench run within
    // CI budgets; pass your own -- flags for high-precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_scaling, bench_policies
}
criterion_main!(benches);
