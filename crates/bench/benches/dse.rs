//! E18: parallel, memoized design-space exploration. Compiles a
//! four-kernel source (two structurally identical pairs) over the default
//! design space at `jobs = 1` (sequential reference), `2` and `4`
//! (pooled, memoized engine), checks the outputs are bit-identical, and
//! writes the wall-clock/cache trajectory to `BENCH_dse.json` at the
//! repository root.
//!
//! Run with `cargo bench -p everest-bench --bench dse`.

use everest::Sdk;
use serde_json::Value;
use std::time::Instant;

/// Two gemm kernels and two stencil kernels: the pairs are structurally
/// identical, so the synthesis cache shares results across kernels on top
/// of collapsing same-config points within one kernel.
const SRC: &str = "
    kernel gemm_a(a: tensor<32x32xf64>, b: tensor<32x32xf64>) -> tensor<32x32xf64> {
        return a @ b;
    }
    kernel gemm_b(a: tensor<32x32xf64>, b: tensor<32x32xf64>) -> tensor<32x32xf64> {
        return a @ b;
    }
    kernel smooth_a(x: tensor<256xf64>) -> tensor<256xf64> {
        return stencil(x, [0.25, 0.5, 0.25]);
    }
    kernel smooth_b(x: tensor<256xf64>) -> tensor<256xf64> {
        return stencil(x, [0.25, 0.5, 0.25]);
    }
";

const RUNS: usize = 5;

struct Run {
    jobs: usize,
    wall_ms: f64,
    points: usize,
    points_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
}

fn fingerprint(compiled: &everest::Compiled) -> String {
    let mut out = String::new();
    for kernel in &compiled.kernels {
        for v in &kernel.variants {
            out.push_str(&serde_json::to_string(v).expect("variant serializes"));
            out.push('\n');
        }
    }
    out
}

/// Times one full compile at the given worker count with a cold synthesis
/// cache, returning the wall clock, cache counters and output fingerprint.
fn measure(jobs: usize) -> (Run, String) {
    let sdk = Sdk::builder().jobs(jobs).build();
    let points = sdk.space.size();

    // Warm-up run (cold allocator, lazy statics), then keep the fastest
    // of RUNS cold-cache runs to suppress scheduler noise.
    everest::hls::cache::global().clear();
    let compiled = sdk.compile(SRC).expect("compiles");
    let fp = fingerprint(&compiled);
    let kernels = compiled.kernels.len();

    let mut best = f64::INFINITY;
    let mut hits = 0;
    let mut misses = 0;
    for _ in 0..RUNS {
        everest::hls::cache::global().clear();
        let before = everest_telemetry::metrics().snapshot();
        let start = Instant::now();
        let out = sdk.compile(SRC).expect("compiles");
        let wall = start.elapsed().as_secs_f64() * 1e3;
        let after = everest_telemetry::metrics().snapshot();
        assert_eq!(fp, fingerprint(&out), "jobs={jobs} output drifted between runs");
        if wall < best {
            best = wall;
            hits = after.counter("dse.hls.cache.hit") - before.counter("dse.hls.cache.hit");
            misses = after.counter("dse.hls.cache.miss") - before.counter("dse.hls.cache.miss");
        }
    }

    let total_points = points * kernels;
    let lookups = hits + misses;
    let run = Run {
        jobs,
        wall_ms: best,
        points: total_points,
        points_per_sec: total_points as f64 / (best / 1e3),
        cache_hits: hits,
        cache_misses: misses,
        hit_rate: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
    };
    (run, fp)
}

fn main() {
    let mut runs = Vec::new();
    let mut reference_fp: Option<String> = None;
    for jobs in [1usize, 2, 4] {
        let (run, fp) = measure(jobs);
        match &reference_fp {
            None => reference_fp = Some(fp),
            Some(reference) => {
                assert_eq!(reference, &fp, "jobs={jobs} diverged from the sequential reference");
            }
        }
        println!(
            "jobs={:<2} wall={:>8.2} ms  {:>8.0} points/s  cache {}h/{}m ({:.0}% hit)",
            run.jobs,
            run.wall_ms,
            run.points_per_sec,
            run.cache_hits,
            run.cache_misses,
            run.hit_rate * 100.0
        );
        runs.push(run);
    }

    let wall_1 = runs[0].wall_ms;
    let wall_4 = runs[runs.len() - 1].wall_ms;
    let speedup = wall_1 / wall_4;
    let hit_rate = runs[runs.len() - 1].hit_rate;
    println!("speedup jobs=4 vs jobs=1: {speedup:.2}x, memoized hit rate {:.0}%", hit_rate * 100.0);

    let json = Value::Object(vec![
        ("bench".to_owned(), Value::Str("dse".to_owned())),
        ("experiment".to_owned(), Value::Str("E18".to_owned())),
        ("kernels".to_owned(), Value::UInt(4)),
        (
            "runs".to_owned(),
            Value::Array(
                runs.iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("jobs".to_owned(), Value::UInt(r.jobs as u64)),
                            ("wall_ms".to_owned(), Value::Float(r.wall_ms)),
                            ("points".to_owned(), Value::UInt(r.points as u64)),
                            ("points_per_sec".to_owned(), Value::Float(r.points_per_sec)),
                            ("cache_hits".to_owned(), Value::UInt(r.cache_hits)),
                            ("cache_misses".to_owned(), Value::UInt(r.cache_misses)),
                            ("hit_rate".to_owned(), Value::Float(r.hit_rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("speedup_jobs4_vs_jobs1".to_owned(), Value::Float(speedup)),
        ("outputs_identical".to_owned(), Value::Bool(true)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dse.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("serializes"))
        .expect("writes BENCH_dse.json");
    println!("wrote {path}");
}
