//! E3/E4: placement evaluation and the platform simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use everest::platform::ecosystem::{best_placement, Stage};
use everest::platform::{Link, Sim, System};

fn bench_platform(c: &mut Criterion) {
    c.bench_function("e3_best_placement_3_stages", |b| {
        let stages = vec![
            Stage::new("a", 2e6, 10_000, false),
            Stage::new("b", 5e8, 1_000, true),
            Stage::new("c", 5e9, 500, true),
        ];
        b.iter(|| best_placement(std::hint::black_box(&stages), 1_000_000))
    });

    c.bench_function("e4_transfer_model", |b| {
        let bus = Link::opencapi();
        let net = Link::udp_datacenter();
        b.iter(|| {
            let mut acc = 0.0;
            for size in [1u64 << 10, 1 << 16, 1 << 20, 1 << 24] {
                acc += bus.transfer_us(size) + net.transfer_us(size);
            }
            acc
        })
    });

    c.bench_function("platform_reference_system_build", |b| b.iter(System::everest_reference));

    c.bench_function("platform_sim_1000_activities", |b| {
        b.iter(|| {
            let mut sim = Sim::new();
            for i in 0..1000 {
                sim.run(if i % 3 == 0 { "fpga" } else { "cpu" }, "k", 0.0, 5.0);
            }
            sim.makespan()
        })
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full-workspace bench run within
    // CI budgets; pass your own -- flags for high-precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_platform
}
criterion_main!(benches);
