//! Compiler-infrastructure microbenchmarks: IR printing, parsing and the
//! canonicalization pipeline (the middle end of Fig. 1).

use criterion::{criterion_group, criterion_main, Criterion};
use everest::ir::pass::PassManager;
use everest::ir::{FuncBuilder, Module, Type};

fn big_module() -> Module {
    let mut m = Module::new("bench");
    for fi in 0..8 {
        let mut fb = FuncBuilder::new(format!("f{fi}"), &[Type::F64, Type::F64], &[Type::F64]);
        let mut acc = fb.binary("arith.mulf", fb.arg(0), fb.arg(1), Type::F64);
        for i in 0..200 {
            let k = fb.const_f(i as f64 * 0.5, Type::F64);
            let p = fb.binary("arith.mulf", acc, k, Type::F64);
            acc = fb.binary("arith.addf", p, fb.arg(0), Type::F64);
        }
        fb.ret(&[acc]);
        m.push(fb.finish());
    }
    m
}

fn bench_ir(c: &mut Criterion) {
    let m = big_module();
    let text = m.to_text();
    c.bench_function("ir_print_4800_ops", |b| b.iter(|| std::hint::black_box(&m).to_text()));
    c.bench_function("ir_parse_4800_ops", |b| {
        b.iter(|| everest::ir::parse_module(std::hint::black_box(&text)).unwrap())
    });
    c.bench_function("ir_verify", |b| b.iter(|| std::hint::black_box(&m).verify().unwrap()));
    c.bench_function("ir_canonicalize", |b| {
        b.iter(|| {
            let mut m2 = m.clone();
            PassManager::standard().run(&mut m2).unwrap();
            m2
        })
    });

    // Structural transforms: a 64-trip loop fully unrolled.
    let mut fb = FuncBuilder::new("loopy", &[Type::F64], &[Type::F64]);
    let init = fb.arg(0);
    let out = fb.for_loop(0, 64, 1, &[init], |fb, iv, c| {
        let x = fb.unary("arith.sitofp", iv, Type::F64);
        let p = fb.binary("arith.mulf", c[0], x, Type::F64);
        vec![fb.binary("arith.addf", p, x, Type::F64)]
    });
    fb.ret(&[out[0]]);
    let loopy = fb.finish();
    c.bench_function("ir_unroll_64_trips", |b| {
        b.iter(|| {
            let mut f2 = loopy.clone();
            everest::ir::transforms::unroll_func(&mut f2, 128);
            f2
        })
    });
    c.bench_function("ir_interpret_64_trip_loop", |b| {
        use everest::ir::interp::{Interp, RtValue};
        b.iter(|| Interp::new().call(&loopy, &[RtValue::Float(1.1)]).unwrap())
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full-workspace bench run within
    // CI budgets; pass your own -- flags for high-precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_ir
}
criterion_main!(benches);
