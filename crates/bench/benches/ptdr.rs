//! E19: the PTDR routing service. Measures (a) single-query latency of
//! the batched SoA Monte-Carlo engine against the scalar reference
//! kernel at 10k samples, (b) batch throughput of `PtdrService` at
//! `jobs = 1` (sequential reference, no cache) versus `jobs = 2`/`4`
//! (pooled + LRU response cache) on a 256-query workload with 64 unique
//! (route, departure-bin) keys, asserting every worker count returns
//! bit-identical statistics, and (c) the warm-cache hit rate. Writes the
//! trajectory to `BENCH_ptdr.json` at the repository root.
//!
//! Run with `cargo bench -p everest-bench --bench ptdr`.

use everest::apps::traffic::service::{
    ptdr_travel_time_reference, PtdrEngine, PtdrService, RouteQuery,
};
use everest::apps::traffic::{generate_fcd, random_od, shortest_route, RoadNetwork, SpeedProfiles};
use serde_json::Value;
use std::time::Instant;

const SINGLE_SAMPLES: usize = 10_000;
const BATCH_SAMPLES: usize = 2_000;
const ROUTES: usize = 32;
const REPEATS: usize = 4;
const RUNS: usize = 5;

struct BatchRun {
    jobs: usize,
    wall_ms: f64,
    queries: usize,
    queries_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
}

/// Bit-exact serialization of a result list, for cross-jobs comparison.
fn fingerprint(stats: &[everest::apps::traffic::TravelTimeStats]) -> String {
    let mut out = String::new();
    for s in stats {
        out.push_str(&format!(
            "{:016x}{:016x}{:016x}\n",
            s.mean_h.to_bits(),
            s.p95_h.to_bits(),
            s.std_h.to_bits()
        ));
    }
    out
}

fn build_queries(network: &RoadNetwork, profiles: &SpeedProfiles) -> Vec<RouteQuery> {
    let od = random_od(network, 11, ROUTES * 2, 700.0);
    let routes: Vec<Vec<usize>> = od
        .iter()
        .filter_map(|pair| shortest_route(network, profiles, pair.from, pair.to, 8))
        .filter(|route| !route.is_empty())
        .take(ROUTES)
        .collect();
    assert_eq!(routes.len(), ROUTES, "grid too sparse for {ROUTES} routes");
    // 64 unique (route, bin) keys — 32 routes × {morning rush, evening
    // rush} — each asked REPEATS times at distinct in-bin departures, the
    // shape of a real request stream where many users share a commute.
    let mut queries = Vec::new();
    for rep in 0..REPEATS {
        for &base in &[8.0f64, 17.0] {
            for route in &routes {
                queries.push(RouteQuery {
                    route: route.clone(),
                    depart_hour: base + rep as f64 * 0.05,
                    samples: BATCH_SAMPLES,
                });
            }
        }
    }
    queries
}

fn measure_batch(
    network: &RoadNetwork,
    profiles: &SpeedProfiles,
    queries: &[RouteQuery],
    jobs: usize,
) -> (BatchRun, String, PtdrService) {
    let service = PtdrService::new(network.clone(), profiles.clone()).with_jobs(jobs).with_seed(7);
    let before = everest_telemetry::metrics().snapshot();
    let start = Instant::now();
    let stats = service.route_batch(queries);
    let wall = start.elapsed().as_secs_f64() * 1e3;
    let after = everest_telemetry::metrics().snapshot();
    let hits = after.counter("ptdr.cache.hit") - before.counter("ptdr.cache.hit");
    let misses = after.counter("ptdr.cache.miss") - before.counter("ptdr.cache.miss");
    let lookups = hits + misses;
    let run = BatchRun {
        jobs,
        wall_ms: wall,
        queries: queries.len(),
        queries_per_sec: queries.len() as f64 / (wall / 1e3),
        cache_hits: hits,
        cache_misses: misses,
        hit_rate: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
    };
    (run, fingerprint(&stats), service)
}

fn main() {
    let network = RoadNetwork::grid(2026, 12, 1.0);
    let fcd = generate_fcd(&network, 7, 150_000);
    let profiles = SpeedProfiles::learn(&network, &fcd);
    let route = shortest_route(&network, &profiles, 0, network.nodes.len() - 1, 8).unwrap();

    // (a) Single-query latency, best of RUNS (the engine keeps its SoA
    // tables and scratch across repetitions — the warm serving path).
    let mut engine: PtdrEngine = PtdrEngine::new();
    let mut reference_ms = f64::INFINITY;
    let mut engine_ms = f64::INFINITY;
    for _ in 0..RUNS {
        let start = Instant::now();
        let r = ptdr_travel_time_reference(&network, &profiles, &route, 8.0, SINGLE_SAMPLES, 1);
        reference_ms = reference_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let f = engine.estimate(&network, &profiles, &route, 8.0, SINGLE_SAMPLES, 1);
        engine_ms = engine_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert!((f.mean_h - r.mean_h).abs() < r.mean_h * 0.05, "engine drifted off the reference");
    }
    let single_speedup = reference_ms / engine_ms;
    println!(
        "single query ({SINGLE_SAMPLES} samples, {} edges): reference {reference_ms:.3} ms, \
         engine {engine_ms:.3} ms — {single_speedup:.2}x",
        route.len()
    );

    // (b) Batch throughput at jobs = 1/2/4, cold cache each.
    let queries = build_queries(&network, &profiles);
    let mut runs: Vec<BatchRun> = Vec::new();
    let mut reference_fp: Option<String> = None;
    let mut warm_service = None;
    for jobs in [1usize, 2, 4] {
        let mut best: Option<(BatchRun, String, PtdrService)> = None;
        for _ in 0..RUNS {
            let m = measure_batch(&network, &profiles, &queries, jobs);
            if best.as_ref().is_none_or(|b| m.0.wall_ms < b.0.wall_ms) {
                best = Some(m);
            }
        }
        let (run, fp, service) = best.expect("at least one run");
        match &reference_fp {
            None => reference_fp = Some(fp),
            Some(reference) => {
                assert_eq!(reference, &fp, "jobs={jobs} diverged from the sequential reference");
            }
        }
        println!(
            "jobs={:<2} wall={:>8.2} ms  {:>7.1} queries/s  cache {}h/{}m ({:.0}% hit)",
            run.jobs,
            run.wall_ms,
            run.queries_per_sec,
            run.cache_hits,
            run.cache_misses,
            run.hit_rate * 100.0
        );
        if jobs == 4 {
            warm_service = Some(service);
        }
        runs.push(run);
    }
    let batch_speedup = runs[0].wall_ms / runs[runs.len() - 1].wall_ms;

    // (c) Warm cache: the same request stream against the jobs=4 service
    // that already answered it.
    let service = warm_service.expect("jobs=4 ran");
    let before = everest_telemetry::metrics().snapshot();
    let start = Instant::now();
    let warm_stats = service.route_batch(&queries);
    let warm_ms = start.elapsed().as_secs_f64() * 1e3;
    let after = everest_telemetry::metrics().snapshot();
    assert_eq!(reference_fp.as_deref(), Some(fingerprint(&warm_stats).as_str()));
    let warm_hits = after.counter("ptdr.cache.hit") - before.counter("ptdr.cache.hit");
    let warm_misses = after.counter("ptdr.cache.miss") - before.counter("ptdr.cache.miss");
    let warm_hit_rate = warm_hits as f64 / (warm_hits + warm_misses).max(1) as f64;
    let warm_qps = queries.len() as f64 / (warm_ms / 1e3);
    println!(
        "warm cache: {warm_ms:.2} ms  {warm_qps:.0} queries/s  ({:.0}% hit)",
        warm_hit_rate * 100.0
    );
    println!(
        "single-query speedup {single_speedup:.2}x, batch jobs=4 vs jobs=1 {batch_speedup:.2}x"
    );

    let json = Value::Object(vec![
        ("bench".to_owned(), Value::Str("ptdr".to_owned())),
        ("experiment".to_owned(), Value::Str("E19".to_owned())),
        (
            "single_query".to_owned(),
            Value::Object(vec![
                ("samples".to_owned(), Value::UInt(SINGLE_SAMPLES as u64)),
                ("route_edges".to_owned(), Value::UInt(route.len() as u64)),
                ("reference_ms".to_owned(), Value::Float(reference_ms)),
                ("engine_ms".to_owned(), Value::Float(engine_ms)),
                ("speedup".to_owned(), Value::Float(single_speedup)),
            ]),
        ),
        (
            "batch_runs".to_owned(),
            Value::Array(
                runs.iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("jobs".to_owned(), Value::UInt(r.jobs as u64)),
                            ("wall_ms".to_owned(), Value::Float(r.wall_ms)),
                            ("queries".to_owned(), Value::UInt(r.queries as u64)),
                            ("queries_per_sec".to_owned(), Value::Float(r.queries_per_sec)),
                            ("cache_hits".to_owned(), Value::UInt(r.cache_hits)),
                            ("cache_misses".to_owned(), Value::UInt(r.cache_misses)),
                            ("hit_rate".to_owned(), Value::Float(r.hit_rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("batch_speedup_jobs4_vs_jobs1".to_owned(), Value::Float(batch_speedup)),
        (
            "warm_cache".to_owned(),
            Value::Object(vec![
                ("wall_ms".to_owned(), Value::Float(warm_ms)),
                ("queries_per_sec".to_owned(), Value::Float(warm_qps)),
                ("hit_rate".to_owned(), Value::Float(warm_hit_rate)),
            ]),
        ),
        ("outputs_identical".to_owned(), Value::Bool(true)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ptdr.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("serializes"))
        .expect("writes BENCH_ptdr.json");
    println!("wrote {path}");
}
