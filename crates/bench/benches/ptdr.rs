//! E19: the PTDR routing service. Measures (a) single-query latency of
//! the batched SoA Monte-Carlo engine against the scalar reference
//! kernel at 10k samples, (b) batch throughput of `PtdrService` at
//! `jobs = 1` (sequential reference, no cache) versus `jobs = 2`/`4`
//! (pooled + LRU response cache) on a 256-query workload with 64 unique
//! (route, departure-bin) keys, asserting every worker count returns
//! bit-identical statistics, (c) the warm-cache hit rate, (d) per-query
//! latency percentiles from the telemetry histograms, and (e) the flight
//! recorder's wall-clock overhead (E22). Writes the trajectory to
//! `BENCH_ptdr.json` at the repository root plus the warm-pass metrics
//! snapshot to `METRICS_ptdr.json`.
//!
//! Run with `cargo bench -p everest-bench --bench ptdr`.

use everest::apps::traffic::service::{
    ptdr_travel_time_reference, PtdrEngine, PtdrService, RouteQuery,
};
use everest::apps::traffic::{generate_fcd, random_od, shortest_route, RoadNetwork, SpeedProfiles};
use everest_telemetry::{MetricsSnapshot, DEFAULT_RING_CAPACITY};
use serde_json::Value;
use std::time::Instant;

const SINGLE_SAMPLES: usize = 10_000;
const BATCH_SAMPLES: usize = 2_000;
const ROUTES: usize = 32;
const REPEATS: usize = 4;
const RUNS: usize = 5;

struct BatchRun {
    jobs: usize,
    wall_ms: f64,
    queries: usize,
    queries_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
    snapshot: MetricsSnapshot,
}

/// Percentile summary of one latency histogram, `Null` when absent.
fn hist_stats(snapshot: &MetricsSnapshot, name: &str) -> Value {
    match snapshot.histogram(name) {
        Some(h) => Value::Object(vec![
            ("count".to_owned(), Value::UInt(h.count)),
            ("mean_us".to_owned(), Value::Float(h.mean())),
            ("p50_us".to_owned(), Value::Float(h.p50())),
            ("p95_us".to_owned(), Value::Float(h.p95())),
            ("p99_us".to_owned(), Value::Float(h.p99())),
            ("max_us".to_owned(), Value::Float(h.max)),
        ]),
        None => Value::Null,
    }
}

/// Bit-exact serialization of a result list, for cross-jobs comparison.
fn fingerprint(stats: &[everest::apps::traffic::TravelTimeStats]) -> String {
    let mut out = String::new();
    for s in stats {
        out.push_str(&format!(
            "{:016x}{:016x}{:016x}\n",
            s.mean_h.to_bits(),
            s.p95_h.to_bits(),
            s.std_h.to_bits()
        ));
    }
    out
}

fn build_queries(network: &RoadNetwork, profiles: &SpeedProfiles) -> Vec<RouteQuery> {
    let od = random_od(network, 11, ROUTES * 2, 700.0);
    let routes: Vec<Vec<usize>> = od
        .iter()
        .filter_map(|pair| shortest_route(network, profiles, pair.from, pair.to, 8))
        .filter(|route| !route.is_empty())
        .take(ROUTES)
        .collect();
    assert_eq!(routes.len(), ROUTES, "grid too sparse for {ROUTES} routes");
    // 64 unique (route, bin) keys — 32 routes × {morning rush, evening
    // rush} — each asked REPEATS times at distinct in-bin departures, the
    // shape of a real request stream where many users share a commute.
    let mut queries = Vec::new();
    for rep in 0..REPEATS {
        for &base in &[8.0f64, 17.0] {
            for route in &routes {
                queries.push(RouteQuery {
                    route: route.clone(),
                    depart_hour: base + rep as f64 * 0.05,
                    samples: BATCH_SAMPLES,
                });
            }
        }
    }
    queries
}

fn measure_batch(
    network: &RoadNetwork,
    profiles: &SpeedProfiles,
    queries: &[RouteQuery],
    jobs: usize,
) -> (BatchRun, String, PtdrService) {
    let service = PtdrService::new(network.clone(), profiles.clone()).with_jobs(jobs).with_seed(7);
    // A clean registry per batch: the captured snapshot carries this
    // run's per-query latency percentiles and nothing else.
    everest_telemetry::metrics().reset();
    let start = Instant::now();
    let stats = service.route_batch(queries);
    let wall = start.elapsed().as_secs_f64() * 1e3;
    let after = everest_telemetry::metrics().snapshot();
    let hits = after.counter("ptdr.cache.hit");
    let misses = after.counter("ptdr.cache.miss");
    let lookups = hits + misses;
    let run = BatchRun {
        jobs,
        wall_ms: wall,
        queries: queries.len(),
        queries_per_sec: queries.len() as f64 / (wall / 1e3),
        cache_hits: hits,
        cache_misses: misses,
        hit_rate: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
        snapshot: after,
    };
    (run, fingerprint(&stats), service)
}

fn main() {
    let network = RoadNetwork::grid(2026, 12, 1.0);
    let fcd = generate_fcd(&network, 7, 150_000);
    let profiles = SpeedProfiles::learn(&network, &fcd);
    let route = shortest_route(&network, &profiles, 0, network.nodes.len() - 1, 8).unwrap();

    // (a) Single-query latency, best of RUNS (the engine keeps its SoA
    // tables and scratch across repetitions — the warm serving path).
    let mut engine: PtdrEngine = PtdrEngine::new();
    let mut reference_ms = f64::INFINITY;
    let mut engine_ms = f64::INFINITY;
    for _ in 0..RUNS {
        let start = Instant::now();
        let r = ptdr_travel_time_reference(&network, &profiles, &route, 8.0, SINGLE_SAMPLES, 1);
        reference_ms = reference_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let f = engine.estimate(&network, &profiles, &route, 8.0, SINGLE_SAMPLES, 1);
        engine_ms = engine_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert!((f.mean_h - r.mean_h).abs() < r.mean_h * 0.05, "engine drifted off the reference");
    }
    let single_speedup = reference_ms / engine_ms;
    println!(
        "single query ({SINGLE_SAMPLES} samples, {} edges): reference {reference_ms:.3} ms, \
         engine {engine_ms:.3} ms — {single_speedup:.2}x",
        route.len()
    );

    // (b) Batch throughput at jobs = 1/2/4, cold cache each.
    let queries = build_queries(&network, &profiles);
    let mut runs: Vec<BatchRun> = Vec::new();
    let mut reference_fp: Option<String> = None;
    let mut warm_service = None;
    for jobs in [1usize, 2, 4] {
        let mut best: Option<(BatchRun, String, PtdrService)> = None;
        for _ in 0..RUNS {
            let m = measure_batch(&network, &profiles, &queries, jobs);
            if best.as_ref().is_none_or(|b| m.0.wall_ms < b.0.wall_ms) {
                best = Some(m);
            }
        }
        let (run, fp, service) = best.expect("at least one run");
        match &reference_fp {
            None => reference_fp = Some(fp),
            Some(reference) => {
                assert_eq!(reference, &fp, "jobs={jobs} diverged from the sequential reference");
            }
        }
        println!(
            "jobs={:<2} wall={:>8.2} ms  {:>7.1} queries/s  cache {}h/{}m ({:.0}% hit)",
            run.jobs,
            run.wall_ms,
            run.queries_per_sec,
            run.cache_hits,
            run.cache_misses,
            run.hit_rate * 100.0
        );
        if jobs == 4 {
            warm_service = Some(service);
        }
        runs.push(run);
    }
    let batch_speedup = runs[0].wall_ms / runs[runs.len() - 1].wall_ms;

    // (c) Warm cache: the same request stream against the jobs=4 service
    // that already answered it.
    let service = warm_service.expect("jobs=4 ran");
    everest_telemetry::metrics().reset();
    // Best-of-RUNS: a single warm pass is sub-millisecond, so one-shot
    // timing is all noise. Every repetition is pure hits.
    let mut warm_ms = f64::INFINITY;
    for _ in 0..RUNS {
        let start = Instant::now();
        let warm_stats = service.route_batch(&queries);
        warm_ms = warm_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(reference_fp.as_deref(), Some(fingerprint(&warm_stats).as_str()));
    }
    let warm_snapshot = everest_telemetry::metrics().snapshot();
    let warm_hits = warm_snapshot.counter("ptdr.cache.hit");
    let warm_misses = warm_snapshot.counter("ptdr.cache.miss");
    let warm_hit_rate = warm_hits as f64 / (warm_hits + warm_misses).max(1) as f64;
    let warm_qps = queries.len() as f64 / (warm_ms / 1e3);
    println!(
        "warm cache: {warm_ms:.2} ms  {warm_qps:.0} queries/s  ({:.0}% hit)",
        warm_hit_rate * 100.0
    );
    println!(
        "single-query speedup {single_speedup:.2}x, batch jobs=4 vs jobs=1 {batch_speedup:.2}x"
    );

    // E22: flight-recorder overhead — the jobs=4 cold batch with the
    // recorder disabled versus recording into the default rings.
    // Interleaved best-of-RUNS so clock/cache drift hits both arms
    // equally.
    let mut wall_off = f64::INFINITY;
    let mut wall_on = f64::INFINITY;
    for _ in 0..RUNS {
        everest_telemetry::flight().set_capacity(0);
        let (run, _, _) = measure_batch(&network, &profiles, &queries, 4);
        wall_off = wall_off.min(run.wall_ms);
        everest_telemetry::flight().set_capacity(DEFAULT_RING_CAPACITY);
        let (run, _, _) = measure_batch(&network, &profiles, &queries, 4);
        wall_on = wall_on.min(run.wall_ms);
    }
    let recorder_overhead_pct = (wall_on - wall_off) / wall_off * 100.0;
    println!(
        "flight recorder: off {wall_off:.2} ms, on {wall_on:.2} ms \
         ({recorder_overhead_pct:+.2}% overhead)"
    );

    let json = Value::Object(vec![
        ("bench".to_owned(), Value::Str("ptdr".to_owned())),
        ("experiment".to_owned(), Value::Str("E19".to_owned())),
        (
            "single_query".to_owned(),
            Value::Object(vec![
                ("samples".to_owned(), Value::UInt(SINGLE_SAMPLES as u64)),
                ("route_edges".to_owned(), Value::UInt(route.len() as u64)),
                ("reference_ms".to_owned(), Value::Float(reference_ms)),
                ("engine_ms".to_owned(), Value::Float(engine_ms)),
                ("speedup".to_owned(), Value::Float(single_speedup)),
            ]),
        ),
        (
            "batch_runs".to_owned(),
            Value::Array(
                runs.iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("jobs".to_owned(), Value::UInt(r.jobs as u64)),
                            ("wall_ms".to_owned(), Value::Float(r.wall_ms)),
                            ("queries".to_owned(), Value::UInt(r.queries as u64)),
                            ("queries_per_sec".to_owned(), Value::Float(r.queries_per_sec)),
                            ("cache_hits".to_owned(), Value::UInt(r.cache_hits)),
                            ("cache_misses".to_owned(), Value::UInt(r.cache_misses)),
                            ("hit_rate".to_owned(), Value::Float(r.hit_rate)),
                            // Per-query serving latency (jobs=1 observes
                            // every query; pooled runs observe misses
                            // plus one-in-sixteen sampled hits).
                            (
                                "query_latency_us".to_owned(),
                                hist_stats(&r.snapshot, "ptdr.query.latency_us"),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("batch_speedup_jobs4_vs_jobs1".to_owned(), Value::Float(batch_speedup)),
        (
            "warm_cache".to_owned(),
            Value::Object(vec![
                ("wall_ms".to_owned(), Value::Float(warm_ms)),
                ("queries_per_sec".to_owned(), Value::Float(warm_qps)),
                ("hit_rate".to_owned(), Value::Float(warm_hit_rate)),
                (
                    "query_latency_us".to_owned(),
                    hist_stats(&warm_snapshot, "ptdr.query.latency_us"),
                ),
                ("hit_age_us".to_owned(), hist_stats(&warm_snapshot, "ptdr.cache.hit_age_us")),
            ]),
        ),
        ("outputs_identical".to_owned(), Value::Bool(true)),
        (
            "recorder_overhead".to_owned(),
            Value::Object(vec![
                ("jobs".to_owned(), Value::UInt(4)),
                ("wall_ms_recorder_off".to_owned(), Value::Float(wall_off)),
                ("wall_ms_recorder_on".to_owned(), Value::Float(wall_on)),
                ("overhead_pct".to_owned(), Value::Float(recorder_overhead_pct)),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ptdr.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("serializes"))
        .expect("writes BENCH_ptdr.json");
    println!("wrote {path}");

    // The warm-pass telemetry snapshot, reloadable by `everestc stats`.
    let metrics_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_ptdr.json");
    std::fs::write(metrics_path, serde_json::to_string_pretty(&warm_snapshot).expect("serializes"))
        .expect("writes METRICS_ptdr.json");
    println!("wrote {metrics_path}");
}
