//! E20: fault-tolerant network offload. Runs a fault-injected offload
//! batch over the reference system at `jobs = 1` (sequential reference),
//! `2` and `4` (parallel schedule pre-sampling), checks the
//! retry/fallback traces are bit-identical, sweeps the named fault
//! profiles for recovery statistics, records per-call latency
//! percentiles and the schedule/fold phase breakdown from the telemetry
//! histograms, measures the flight recorder's wall-clock overhead
//! (E22), and writes the results to `BENCH_offload.json` at the
//! repository root plus the final metrics snapshot to
//! `METRICS_offload.json`.
//!
//! Run with `cargo bench -p everest-bench --bench offload`.

use everest::{FaultPlan, OffloadCall, OffloadManager, System, TargetClass};
use everest_telemetry::{MetricsSnapshot, DEFAULT_RING_CAPACITY};
use serde_json::Value;
use std::time::Instant;

const SEED: u64 = 2026;
const CALLS: usize = 512;
const RUNS: usize = 5;

fn batch() -> Vec<OffloadCall> {
    (0..CALLS)
        .map(|i| OffloadCall { kernel: format!("k{i}"), payload_bytes: 16 << 10, work_us: 300.0 })
        .collect()
}

fn manager(profile: &str) -> OffloadManager {
    let plan = FaultPlan::from_profile(profile, SEED).expect("known profile");
    OffloadManager::for_system(&System::everest_reference(), plan).expect("reference system")
}

struct Run {
    jobs: usize,
    wall_ms: f64,
    calls_per_sec: f64,
    snapshot: MetricsSnapshot,
}

/// Percentile summary of one latency histogram, `Null` when absent.
fn hist_stats(snapshot: &MetricsSnapshot, name: &str) -> Value {
    match snapshot.histogram(name) {
        Some(h) => Value::Object(vec![
            ("count".to_owned(), Value::UInt(h.count)),
            ("mean_us".to_owned(), Value::Float(h.mean())),
            ("p50_us".to_owned(), Value::Float(h.p50())),
            ("p95_us".to_owned(), Value::Float(h.p95())),
            ("p99_us".to_owned(), Value::Float(h.p99())),
            ("max_us".to_owned(), Value::Float(h.max)),
        ]),
        None => Value::Null,
    }
}

/// Times the flaky batch at one worker count, returning the best-of-RUNS
/// wall clock, the (jobs-independent) trace fingerprint, and this worker
/// count's telemetry snapshot (per-call latency and the schedule/fold
/// phase split accumulated over all RUNS repetitions).
fn measure(jobs: usize) -> (Run, String) {
    let calls = batch();
    // A clean registry per worker count: the snapshot explains *this*
    // jobs setting (e.g. where the jobs=4 fold time goes), not a blur
    // over the whole sweep.
    everest_telemetry::metrics().reset();
    let mut best = f64::INFINITY;
    let mut trace = String::new();
    for _ in 0..RUNS {
        let mut mgr = manager("flaky");
        let start = Instant::now();
        mgr.run_batch(&calls, jobs).expect("batch completes");
        let wall = start.elapsed().as_secs_f64() * 1e3;
        if trace.is_empty() {
            trace = mgr.trace();
        } else {
            assert_eq!(trace, mgr.trace(), "jobs={jobs} trace drifted between runs");
        }
        best = best.min(wall);
    }
    let snapshot = everest_telemetry::metrics().snapshot();
    (Run { jobs, wall_ms: best, calls_per_sec: CALLS as f64 / (best / 1e3), snapshot }, trace)
}

/// Best-of-RUNS wall clock of the jobs=4 flaky batch with the flight
/// recorder off versus at the default capacity, for the E22 overhead
/// bound. Interleaved so clock/cache drift hits both arms equally.
fn recorder_overhead_walls() -> (f64, f64) {
    let calls = batch();
    let one_wall = |capacity: usize| {
        everest_telemetry::flight().set_capacity(capacity);
        let mut mgr = manager("flaky");
        let start = Instant::now();
        mgr.run_batch(&calls, 4).expect("batch completes");
        start.elapsed().as_secs_f64() * 1e3
    };
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..RUNS {
        off = off.min(one_wall(0));
        on = on.min(one_wall(DEFAULT_RING_CAPACITY));
    }
    everest_telemetry::flight().set_capacity(DEFAULT_RING_CAPACITY);
    (off, on)
}

/// Recovery statistics for one named fault profile.
fn profile_stats(profile: &str) -> Value {
    let calls = batch();
    let mut mgr = manager(profile);
    let outcomes = mgr.run_batch(&calls, 4).expect("batch completes");
    let degraded = outcomes.iter().filter(|o| o.degraded).count();
    let on_cpu = outcomes.iter().filter(|o| o.class == TargetClass::HostCpu).count();
    let attempts: u32 = outcomes.iter().map(|o| o.attempts).sum();
    Value::Object(vec![
        ("profile".to_owned(), Value::Str(profile.to_owned())),
        ("completed".to_owned(), Value::UInt(outcomes.len() as u64)),
        ("degraded".to_owned(), Value::UInt(degraded as u64)),
        ("on_cpu".to_owned(), Value::UInt(on_cpu as u64)),
        ("attempts".to_owned(), Value::UInt(u64::from(attempts))),
        ("tripped_devices".to_owned(), Value::UInt(mgr.tripped_devices().len() as u64)),
    ])
}

fn main() {
    let mut runs = Vec::new();
    let mut reference: Option<String> = None;
    for jobs in [1usize, 2, 4] {
        let (run, trace) = measure(jobs);
        match &reference {
            None => reference = Some(trace),
            Some(expected) => {
                assert_eq!(expected, &trace, "jobs={jobs} diverged from the sequential reference");
            }
        }
        println!(
            "jobs={:<2} wall={:>8.2} ms  {:>9.0} calls/s",
            run.jobs, run.wall_ms, run.calls_per_sec
        );
        runs.push(run);
    }
    let speedup = runs[0].wall_ms / runs[runs.len() - 1].wall_ms;
    println!("speedup jobs=4 vs jobs=1: {speedup:.2}x, traces identical");

    // E22: flight-recorder overhead — the same jobs=4 batch with the
    // recorder disabled versus recording into the default rings.
    let (wall_off, wall_on) = recorder_overhead_walls();
    let recorder_overhead_pct = (wall_on - wall_off) / wall_off * 100.0;
    println!(
        "flight recorder: off {wall_off:.2} ms, on {wall_on:.2} ms \
         ({recorder_overhead_pct:+.2}% overhead)"
    );

    let profiles: Vec<Value> = FaultPlan::PROFILES.iter().map(|p| profile_stats(p)).collect();
    for p in FaultPlan::PROFILES {
        let calls = batch();
        let mut mgr = manager(p);
        let outcomes = mgr.run_batch(&calls, 4).expect("batch completes");
        let degraded = outcomes.iter().filter(|o| o.degraded).count();
        println!(
            "profile={:<9} completed={} degraded={} tripped={}",
            p,
            outcomes.len(),
            degraded,
            mgr.tripped_devices().len()
        );
    }

    let json = Value::Object(vec![
        ("bench".to_owned(), Value::Str("offload".to_owned())),
        ("experiment".to_owned(), Value::Str("E20".to_owned())),
        ("seed".to_owned(), Value::UInt(SEED)),
        ("calls".to_owned(), Value::UInt(CALLS as u64)),
        (
            "runs".to_owned(),
            Value::Array(
                runs.iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("jobs".to_owned(), Value::UInt(r.jobs as u64)),
                            ("wall_ms".to_owned(), Value::Float(r.wall_ms)),
                            ("calls_per_sec".to_owned(), Value::Float(r.calls_per_sec)),
                            // Simulated per-call latency and retry count
                            // (deterministic — identical at any jobs).
                            (
                                "call_sim_us".to_owned(),
                                hist_stats(&r.snapshot, "offload.call.sim_us"),
                            ),
                            (
                                "call_attempts".to_owned(),
                                hist_stats(&r.snapshot, "offload.call.attempts"),
                            ),
                            // Wall-clock phase split: parallel schedule
                            // pre-sampling vs the sequential replay fold.
                            (
                                "phase_schedule_us".to_owned(),
                                hist_stats(&r.snapshot, "offload.phase.schedule_us"),
                            ),
                            (
                                "phase_fold_us".to_owned(),
                                hist_stats(&r.snapshot, "offload.phase.fold_us"),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("profiles".to_owned(), Value::Array(profiles)),
        ("speedup_jobs4_vs_jobs1".to_owned(), Value::Float(speedup)),
        ("traces_identical".to_owned(), Value::Bool(true)),
        (
            "recorder_overhead".to_owned(),
            Value::Object(vec![
                ("jobs".to_owned(), Value::UInt(4)),
                ("wall_ms_recorder_off".to_owned(), Value::Float(wall_off)),
                ("wall_ms_recorder_on".to_owned(), Value::Float(wall_on)),
                ("overhead_pct".to_owned(), Value::Float(recorder_overhead_pct)),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_offload.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("serializes"))
        .expect("writes BENCH_offload.json");
    println!("wrote {path}");

    // The jobs=4 telemetry snapshot, reloadable by `everestc stats`.
    let snapshot = &runs.last().expect("runs nonempty").snapshot;
    let metrics_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_offload.json");
    std::fs::write(metrics_path, serde_json::to_string_pretty(snapshot).expect("serializes"))
        .expect("writes METRICS_offload.json");
    println!("wrote {metrics_path}");
}
