//! E20/E23: fault-tolerant network offload. Runs a fault-injected
//! offload batch over the reference system at `jobs = 1` (sequential
//! reference), `2`, `4` and `8` (parallel per-device-lane fold) with
//! hardware-in-the-loop pacing (each lane's virtual device timeline
//! replayed at [`PACING_SCALE`]× real time, so the wall clock reflects
//! overlappable device occupancy rather than host bookkeeping), checks
//! the retry/fallback traces are bit-identical at every worker count,
//! characterizes run-to-run noise with an interleaved sweep (every jobs
//! setting timed once per round, so clock and cache drift hit all
//! settings equally), sweeps the named fault profiles for recovery
//! statistics, records per-call latency percentiles and the
//! partition/fold/merge phase breakdown from the telemetry histograms,
//! measures the flight recorder's wall-clock overhead (E22), and writes
//! the results to `BENCH_offload.json` at the repository root plus the
//! final metrics snapshot to `METRICS_offload.json`.
//!
//! Run with `cargo bench -p everest-bench --bench offload`.

use everest::{FaultPlan, OffloadCall, OffloadManager, System, TargetClass};
use everest_telemetry::{MetricsSnapshot, DEFAULT_RING_CAPACITY};
use serde_json::Value;
use std::time::Instant;

const SEED: u64 = 2026;
const CALLS: usize = 8_192;
const JOBS: [usize; 4] = [1, 2, 4, 8];
/// Interleaved repetitions per jobs setting — the noise sample.
const RUNS: usize = 5;
/// Hardware-in-the-loop pacing: simulated µs per real µs. The batch
/// replays each lane's virtual device timeline 10× faster than real
/// time, so the measured wall clock is dominated by (overlappable)
/// device occupancy rather than host bookkeeping — which is what lane
/// parallelism buys on a real deployment, and the only thing it *can*
/// buy on a single-core CI runner.
const PACING_SCALE: f64 = 10.0;

fn batch() -> Vec<OffloadCall> {
    (0..CALLS)
        .map(|i| OffloadCall { kernel: format!("k{i}"), payload_bytes: 16 << 10, work_us: 300.0 })
        .collect()
}

fn manager(profile: &str) -> OffloadManager {
    let plan = FaultPlan::from_profile(profile, SEED).expect("known profile");
    OffloadManager::for_system(&System::everest_reference(), plan).expect("reference system")
}

/// A manager with device-occupancy pacing, the configuration the
/// throughput sweep measures.
fn paced_manager(profile: &str) -> OffloadManager {
    manager(profile).with_pacing(PACING_SCALE)
}

struct Run {
    jobs: usize,
    /// Best-of-RUNS wall clock, the headline number.
    wall_ms: f64,
    calls_per_sec: f64,
    /// All RUNS interleaved wall clocks, the noise sample.
    walls_ms: Vec<f64>,
    /// `(max - min) / min` over the interleaved walls, percent.
    spread_pct: f64,
    snapshot: MetricsSnapshot,
}

/// Percentile summary of one latency histogram, `Null` when absent.
fn hist_stats(snapshot: &MetricsSnapshot, name: &str) -> Value {
    match snapshot.histogram(name) {
        Some(h) => Value::Object(vec![
            ("count".to_owned(), Value::UInt(h.count)),
            ("mean_us".to_owned(), Value::Float(h.mean())),
            ("p50_us".to_owned(), Value::Float(h.p50())),
            ("p95_us".to_owned(), Value::Float(h.p95())),
            ("p99_us".to_owned(), Value::Float(h.p99())),
            ("max_us".to_owned(), Value::Float(h.max)),
        ]),
        None => Value::Null,
    }
}

/// One timed batch at `jobs` workers; returns (wall ms, trace).
fn one_timed_batch(calls: &[OffloadCall], jobs: usize) -> (f64, String) {
    let mut mgr = paced_manager("flaky");
    let start = Instant::now();
    mgr.run_batch(calls, jobs).expect("batch completes");
    (start.elapsed().as_secs_f64() * 1e3, mgr.trace())
}

/// Times the flaky batch at every worker count with RUNS interleaved
/// rounds (round-robin over JOBS inside each round), asserting the
/// trace is bit-identical across both runs and worker counts. Then runs
/// a per-jobs telemetry pass against a clean registry so each snapshot
/// explains *that* jobs setting (per-call latency and the
/// partition/fold/merge phase split accumulated over RUNS batches).
fn measure_all() -> Vec<Run> {
    let calls = batch();
    let mut walls: Vec<Vec<f64>> = vec![Vec::new(); JOBS.len()];
    let mut reference: Option<String> = None;
    for _ in 0..RUNS {
        for (ji, jobs) in JOBS.iter().enumerate() {
            let (wall, trace) = one_timed_batch(&calls, *jobs);
            match &reference {
                None => reference = Some(trace),
                Some(expected) => {
                    assert_eq!(expected, &trace, "jobs={jobs} diverged from the reference trace");
                }
            }
            walls[ji].push(wall);
        }
    }
    JOBS.iter()
        .zip(walls)
        .map(|(jobs, walls_ms)| {
            // Clean registry per worker count, then RUNS batches so the
            // phase histograms carry ≈ lanes × RUNS samples each.
            everest_telemetry::metrics().reset();
            for _ in 0..RUNS {
                let mut mgr = paced_manager("flaky");
                mgr.run_batch(&calls, *jobs).expect("batch completes");
            }
            let snapshot = everest_telemetry::metrics().snapshot();
            let best = walls_ms.iter().copied().fold(f64::INFINITY, f64::min);
            let worst = walls_ms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            Run {
                jobs: *jobs,
                wall_ms: best,
                calls_per_sec: CALLS as f64 / (best / 1e3),
                spread_pct: (worst - best) / best * 100.0,
                walls_ms,
                snapshot,
            }
        })
        .collect()
}

/// Best-of-RUNS wall clock of the jobs=4 flaky batch with the flight
/// recorder off versus at the default capacity, for the E22 overhead
/// bound. Interleaved so clock/cache drift hits both arms equally.
fn recorder_overhead_walls() -> (f64, f64) {
    let calls = batch();
    let one_wall = |capacity: usize| {
        everest_telemetry::flight().set_capacity(capacity);
        let mut mgr = manager("flaky");
        let start = Instant::now();
        mgr.run_batch(&calls, 4).expect("batch completes");
        start.elapsed().as_secs_f64() * 1e3
    };
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..RUNS {
        off = off.min(one_wall(0));
        on = on.min(one_wall(DEFAULT_RING_CAPACITY));
    }
    everest_telemetry::flight().set_capacity(DEFAULT_RING_CAPACITY);
    (off, on)
}

/// Recovery statistics for one named fault profile.
fn profile_stats(profile: &str) -> Value {
    let calls = batch();
    let mut mgr = manager(profile);
    let outcomes = mgr.run_batch(&calls, 4).expect("batch completes");
    let degraded = outcomes.iter().filter(|o| o.degraded).count();
    let on_cpu = outcomes.iter().filter(|o| o.class == TargetClass::HostCpu).count();
    let attempts: u32 = outcomes.iter().map(|o| o.attempts).sum();
    Value::Object(vec![
        ("profile".to_owned(), Value::Str(profile.to_owned())),
        ("completed".to_owned(), Value::UInt(outcomes.len() as u64)),
        ("degraded".to_owned(), Value::UInt(degraded as u64)),
        ("on_cpu".to_owned(), Value::UInt(on_cpu as u64)),
        ("attempts".to_owned(), Value::UInt(u64::from(attempts))),
        ("tripped_devices".to_owned(), Value::UInt(mgr.tripped_devices().len() as u64)),
    ])
}

fn main() {
    let runs = measure_all();
    for run in &runs {
        println!(
            "jobs={:<2} wall={:>8.2} ms  {:>9.0} calls/s  spread={:>5.1}%",
            run.jobs, run.wall_ms, run.calls_per_sec, run.spread_pct
        );
    }
    let wall_at = |jobs: usize| runs.iter().find(|r| r.jobs == jobs).expect("jobs ran").wall_ms;
    let speedup = wall_at(1) / wall_at(4);
    let max_spread = runs.iter().map(|r| r.spread_pct).fold(0.0, f64::max);
    println!("speedup jobs=4 vs jobs=1: {speedup:.2}x, traces identical");
    println!("run-to-run noise: max spread {max_spread:.1}% over {RUNS} interleaved runs");

    // E22: flight-recorder overhead — the same jobs=4 batch with the
    // recorder disabled versus recording into the default rings.
    let (wall_off, wall_on) = recorder_overhead_walls();
    let recorder_overhead_pct = (wall_on - wall_off) / wall_off * 100.0;
    println!(
        "flight recorder: off {wall_off:.2} ms, on {wall_on:.2} ms \
         ({recorder_overhead_pct:+.2}% overhead)"
    );

    let profiles: Vec<Value> = FaultPlan::PROFILES.iter().map(|p| profile_stats(p)).collect();
    for p in FaultPlan::PROFILES {
        let calls = batch();
        let mut mgr = manager(p);
        let outcomes = mgr.run_batch(&calls, 4).expect("batch completes");
        let degraded = outcomes.iter().filter(|o| o.degraded).count();
        println!(
            "profile={:<9} completed={} degraded={} tripped={}",
            p,
            outcomes.len(),
            degraded,
            mgr.tripped_devices().len()
        );
    }

    let json = Value::Object(vec![
        ("bench".to_owned(), Value::Str("offload".to_owned())),
        ("experiment".to_owned(), Value::Str("E20/E23".to_owned())),
        ("seed".to_owned(), Value::UInt(SEED)),
        ("calls".to_owned(), Value::UInt(CALLS as u64)),
        (
            "runs".to_owned(),
            Value::Array(
                runs.iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("jobs".to_owned(), Value::UInt(r.jobs as u64)),
                            ("wall_ms".to_owned(), Value::Float(r.wall_ms)),
                            ("calls_per_sec".to_owned(), Value::Float(r.calls_per_sec)),
                            // Simulated per-call latency and retry count
                            // (deterministic — identical at any jobs).
                            (
                                "call_sim_us".to_owned(),
                                hist_stats(&r.snapshot, "offload.call.sim_us"),
                            ),
                            (
                                "call_attempts".to_owned(),
                                hist_stats(&r.snapshot, "offload.call.attempts"),
                            ),
                            // Wall-clock phase split: lane partition,
                            // parallel per-lane fold (one observation per
                            // lane per batch), in-order merge.
                            (
                                "phase_partition_us".to_owned(),
                                hist_stats(&r.snapshot, "offload.phase.partition_us"),
                            ),
                            (
                                "phase_fold_us".to_owned(),
                                hist_stats(&r.snapshot, "offload.phase.fold_us"),
                            ),
                            (
                                "phase_merge_us".to_owned(),
                                hist_stats(&r.snapshot, "offload.phase.merge_us"),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "noise".to_owned(),
            Value::Object(vec![
                ("interleaved_runs".to_owned(), Value::UInt(RUNS as u64)),
                (
                    "per_jobs".to_owned(),
                    Value::Array(
                        runs.iter()
                            .map(|r| {
                                Value::Object(vec![
                                    ("jobs".to_owned(), Value::UInt(r.jobs as u64)),
                                    (
                                        "walls_ms".to_owned(),
                                        Value::Array(
                                            r.walls_ms.iter().map(|w| Value::Float(*w)).collect(),
                                        ),
                                    ),
                                    ("spread_pct".to_owned(), Value::Float(r.spread_pct)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("max_spread_pct".to_owned(), Value::Float(max_spread)),
            ]),
        ),
        ("profiles".to_owned(), Value::Array(profiles)),
        ("speedup_jobs4_vs_jobs1".to_owned(), Value::Float(speedup)),
        ("traces_identical".to_owned(), Value::Bool(true)),
        (
            "recorder_overhead".to_owned(),
            Value::Object(vec![
                ("jobs".to_owned(), Value::UInt(4)),
                ("wall_ms_recorder_off".to_owned(), Value::Float(wall_off)),
                ("wall_ms_recorder_on".to_owned(), Value::Float(wall_on)),
                ("overhead_pct".to_owned(), Value::Float(recorder_overhead_pct)),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_offload.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("serializes"))
        .expect("writes BENCH_offload.json");
    println!("wrote {path}");

    // The jobs=4 telemetry snapshot, reloadable by `everestc stats`.
    let snapshot = &runs.iter().find(|r| r.jobs == 4).expect("jobs=4 ran").snapshot;
    let metrics_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_offload.json");
    std::fs::write(metrics_path, serde_json::to_string_pretty(snapshot).expect("serializes"))
        .expect("writes METRICS_offload.json");
    println!("wrote {metrics_path}");
}
