//! E1 (Fig. 1): runtime of the data-driven compilation flow itself —
//! DSL parse + type-check + IR lowering + canonicalization + variant
//! generation (including HLS for the hardware points).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use everest::Sdk;

const KERNELS: [(&str, &str); 3] = [
    (
        "gemm32",
        "kernel k(a: tensor<32x32xf64>, b: tensor<32x32xf64>) -> tensor<32x32xf64> { return a @ b; }",
    ),
    (
        "stencil1k",
        "kernel k(x: tensor<1024xf64>) -> tensor<1024xf64> { return stencil(x, [0.25, 0.5, 0.25]); }",
    ),
    (
        "mlp_layer",
        "kernel k(w: tensor<32x32xf64>, x: tensor<32x32xf64>) -> tensor<32x32xf64> { return sigmoid(w @ x); }",
    ),
];

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_frontend");
    for (name, src) in KERNELS {
        group.bench_with_input(BenchmarkId::new("dsl_to_ir", name), &src, |b, src| {
            b.iter(|| everest::dsl::compile_kernels(std::hint::black_box(src)).unwrap())
        });
    }
    group.finish();
}

fn bench_full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_full_flow");
    let sdk = Sdk::builder().space(everest::DesignSpace::small()).build();
    for (name, src) in KERNELS {
        group.bench_with_input(BenchmarkId::new("compile_variants", name), &src, |b, src| {
            b.iter(|| sdk.compile(std::hint::black_box(src)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full-workspace bench run within
    // CI budgets; pass your own -- flags for high-precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_frontend, bench_full_flow
}
criterion_main!(benches);
