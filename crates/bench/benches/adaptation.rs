//! E2/E9: cost of the runtime adaptation loop itself (selection must be
//! cheap relative to kernel invocations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use everest::runtime::adaptation::{run_scenario, Phase, Strategy};
use everest::runtime::autotuner::SystemState;
use everest::Sdk;

fn bench_adaptation(c: &mut Criterion) {
    let sdk = Sdk::builder().space(everest::DesignSpace::small()).build();
    let compiled = sdk
        .compile("kernel k(x: tensor<1024xf64>) -> tensor<1024xf64> { return sigmoid(x); }")
        .unwrap();
    let points = compiled.kernels[0].variants.clone();
    let phases = vec![
        Phase::calm("a", 50),
        Phase { congestion: 100.0, ..Phase::calm("b", 50) },
        Phase { free_luts: 0, ..Phase::calm("c", 50) },
    ];
    let mut group = c.benchmark_group("e2_scenario");
    for (label, strategy) in [
        ("static", Strategy::Static(0)),
        ("adaptive", Strategy::Adaptive),
        ("oracle", Strategy::Oracle),
    ] {
        group.bench_with_input(BenchmarkId::new("run", label), &strategy, |b, s| {
            b.iter(|| run_scenario(std::hint::black_box(&points), &phases, *s))
        });
    }
    group.finish();

    let tuner = compiled.kernels[0].autotuner();
    c.bench_function("e9_single_selection", |b| {
        b.iter(|| tuner.select(std::hint::black_box(&SystemState::default())).unwrap().id.clone())
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full-workspace bench run within
    // CI budgets; pass your own -- flags for high-precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_adaptation
}
criterion_main!(benches);
