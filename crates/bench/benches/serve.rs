//! E24: the sharded PTDR serving tier under open-loop overload. Drives
//! `everest_apps::traffic::serve::ServeTier` (4 edge shards + cloud
//! tier on a consistent-hash ring, bounded admission queues,
//! shed-oldest load shedding) with the deterministic diurnal/Zipf load
//! generator at 0.5×/1×/2× of its calibrated capacity, reporting
//! admitted/shed counts and virtual-time p50/p95/p99 per point, plus a
//! warm wall-clock throughput comparison against the single-node
//! `PtdrService` baseline (PR 3/PR 6). A `jobs = 1` shadow tier replays
//! every run and must produce bit-identical fingerprints. Writes
//! `BENCH_serve.json` + `METRICS_serve.json` at the repository root.
//!
//! Run with `cargo bench -p everest-bench --bench serve`.

use everest::apps::traffic::serve::{Arrival, LoadGen, ServeConfig, ServeTier, ShedPolicy};
use everest::apps::traffic::service::{PtdrService, RouteQuery};
use everest::apps::traffic::{generate_fcd, RoadNetwork, SpeedProfiles};
use serde_json::Value;
use std::time::Instant;

const SEED: u64 = 7;
const SHARDS: usize = 4;
const QUEUE_DEPTH: usize = 64;
const POOL_ROUTES: usize = 64;
const CALIBRATION_QUERIES: usize = 4_000;
const POINT_ARRIVALS: usize = 30_000;
const RUNS: usize = 7;

fn make_tier(network: &RoadNetwork, profiles: &SpeedProfiles, jobs: usize) -> ServeTier {
    let mut config = ServeConfig::new(SHARDS);
    config.seed = SEED;
    config.jobs = jobs;
    config.queue_depth = QUEUE_DEPTH;
    config.policy = ShedPolicy::ShedOldest;
    ServeTier::new(network.clone(), profiles.clone(), config)
}

fn main() {
    let network = RoadNetwork::grid(2026, 12, 1.0);
    let fcd = generate_fcd(&network, 7, 150_000);
    let profiles = SpeedProfiles::learn(&network, &fcd);
    let generator = LoadGen::new(&network, &profiles, POOL_ROUTES, SEED);

    let tier = make_tier(&network, &profiles, 4);
    let shadow = make_tier(&network, &profiles, 1);

    // Calibrate on two successive generator days: day 0 measures the
    // cold tier (and fills the caches as a side effect), day 1 the
    // steady-state mixed hit/miss capacity. Both are virtual-time
    // figures, deterministic at any jobs count — the jobs=1 shadow must
    // agree bit-for-bit.
    let cold_capacity = tier.calibrate(&generator, 0, CALIBRATION_QUERIES);
    let warm_capacity = tier.calibrate(&generator, 1, CALIBRATION_QUERIES);
    assert_eq!(cold_capacity, shadow.calibrate(&generator, 0, CALIBRATION_QUERIES));
    assert_eq!(warm_capacity, shadow.calibrate(&generator, 1, CALIBRATION_QUERIES));
    println!(
        "capacity ({SHARDS} shards, virtual): cold {cold_capacity:.0} q/s, \
         warm {warm_capacity:.0} q/s"
    );

    // Overload sweep at 0.5×/1×/2× warm capacity, one fresh compressed
    // diurnal day per point (days 2..4). The shadow tier replays each
    // point first; the measured tier's registry is reset after so
    // METRICS_serve.json carries exactly one sweep.
    let multiples = [0.5f64, 1.0, 2.0];
    let workloads: Vec<Vec<Arrival>> = multiples
        .iter()
        .enumerate()
        .map(|(day, mult)| {
            let offered = mult * warm_capacity;
            generator.generate(
                2 + day as u64,
                offered,
                POINT_ARRIVALS as f64 / offered,
                POINT_ARRIVALS * 2,
            )
        })
        .collect();
    let shadow_fps: Vec<String> = workloads.iter().map(|w| shadow.run(w).fingerprint()).collect();

    everest_telemetry::metrics().reset();
    let mut points = Vec::new();
    println!(
        "{:>6}  {:>10}  {:>8}  {:>8}  {:>6}  {:>8}  {:>8}  {:>8}",
        "load", "offered", "arrivals", "served", "shed", "p50_us", "p95_us", "p99_us"
    );
    for ((mult, workload), shadow_fp) in multiples.iter().zip(&workloads).zip(&shadow_fps) {
        let offered = mult * warm_capacity;
        let report = tier.run(workload);
        assert_eq!(
            &report.fingerprint(),
            shadow_fp,
            "jobs=4 tier diverged from the jobs=1 shadow at {mult}x load"
        );
        let shed: u64 = report.shards.iter().map(|s| s.shed).sum();
        let rejected: u64 = report.shards.iter().map(|s| s.rejected).sum();
        let peak_queue = report.shards.iter().map(|s| s.peak_queue).max().unwrap_or(0);
        println!(
            "{mult:>5.2}x  {offered:>10.0}  {:>8}  {:>8}  {shed:>6}  {:>8.1}  {:>8.1}  {:>8.1}",
            report.arrivals(),
            report.served(),
            report.latency.p50(),
            report.latency.p95(),
            report.latency.p99()
        );
        points.push(Value::Object(vec![
            ("load_multiple".to_owned(), Value::Float(*mult)),
            ("offered_qps".to_owned(), Value::Float(offered)),
            ("arrivals".to_owned(), Value::UInt(report.arrivals())),
            ("served".to_owned(), Value::UInt(report.served())),
            ("shed".to_owned(), Value::UInt(shed)),
            ("rejected".to_owned(), Value::UInt(rejected)),
            ("edge_hits".to_owned(), Value::UInt(report.edge_hits())),
            ("cloud_fills".to_owned(), Value::UInt(report.cloud_fills())),
            ("peak_queue_depth".to_owned(), Value::UInt(peak_queue as u64)),
            ("latency_p50_us".to_owned(), Value::Float(report.latency.p50())),
            ("latency_p95_us".to_owned(), Value::Float(report.latency.p95())),
            ("latency_p99_us".to_owned(), Value::Float(report.latency.p99())),
            ("wall_ms".to_owned(), Value::Float(report.wall_s * 1e3)),
        ]));
    }
    let sweep_snapshot = everest_telemetry::metrics().snapshot();

    // Shedding keeps the tail bounded: p99 at 2× overload can exceed
    // the in-capacity points only by the queue-implied bound.
    let overload_p99 = points
        .iter()
        .rev()
        .find_map(|p| match p {
            Value::Object(fields) => fields.iter().find_map(|(k, v)| match v {
                Value::Float(f) if k == "latency_p99_us" => Some(*f),
                _ => None,
            }),
            _ => None,
        })
        .expect("sweep recorded p99");
    let worst_query_us =
        tier.config().cost.worst_case_us(generator.longest_route_edges(), generator.max_samples());
    let p99_bound_us = (QUEUE_DEPTH + 2) as f64 * worst_query_us;
    assert!(
        overload_p99 <= p99_bound_us,
        "2x overload p99 {overload_p99:.0}us breaks the queue bound {p99_bound_us:.0}us"
    );
    println!("2x overload p99 {overload_p99:.0} us <= queue bound {p99_bound_us:.0} us");

    // Warm wall-clock throughput: a dedicated tier with the admission
    // queue effectively unbounded (throughput measurement, not a
    // shedding scenario) replays the 1× day — the first pass fills the
    // caches, every later pass is pure hits, exactly how the
    // single-node PtdrService warm baseline below is measured.
    // Best-of-RUNS both ways.
    let warm_workload = &workloads[1];
    let queries: Vec<RouteQuery> = warm_workload.iter().map(|a| a.query.clone()).collect();
    let warm_tier = {
        let mut config = *tier.config();
        config.queue_depth = usize::MAX >> 1;
        ServeTier::new(network.clone(), profiles.clone(), config)
    };
    warm_tier.run(warm_workload); // fill the caches
    let mut tier_wall_ms = f64::INFINITY;
    let mut warm_fp: Option<String> = None;
    for _ in 0..RUNS {
        let start = Instant::now();
        let report = warm_tier.run(warm_workload);
        tier_wall_ms = tier_wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(report.dropped(), 0, "unbounded warm pass must not shed");
        assert_eq!(report.cloud_fills(), 0, "replayed day must be all cache hits");
        let fp = report.fingerprint();
        match &warm_fp {
            None => warm_fp = Some(fp),
            Some(reference) => assert_eq!(reference, &fp, "warm passes diverged"),
        }
    }
    let tier_qps = queries.len() as f64 / (tier_wall_ms / 1e3);

    let baseline = PtdrService::new(network.clone(), profiles.clone())
        .with_jobs(4)
        .with_seed(SEED)
        .with_cache_capacity(1 << 18);
    baseline.route_batch(&queries); // fill the cache
    let mut baseline_wall_ms = f64::INFINITY;
    for _ in 0..RUNS {
        let start = Instant::now();
        baseline.route_batch(&queries);
        baseline_wall_ms = baseline_wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let baseline_qps = queries.len() as f64 / (baseline_wall_ms / 1e3);
    let speedup = tier_qps / baseline_qps;
    println!(
        "warm wall-clock: tier {tier_wall_ms:.2} ms ({tier_qps:.0} q/s) vs single-node \
         {baseline_wall_ms:.2} ms ({baseline_qps:.0} q/s) — {speedup:.2}x"
    );
    assert!(
        tier_qps > baseline_qps,
        "sharded tier ({tier_qps:.0} q/s) must beat the single-node baseline ({baseline_qps:.0} q/s)"
    );

    let json = Value::Object(vec![
        ("bench".to_owned(), Value::Str("serve".to_owned())),
        ("experiment".to_owned(), Value::Str("E24".to_owned())),
        (
            "topology".to_owned(),
            Value::Object(vec![
                ("shards".to_owned(), Value::UInt(SHARDS as u64)),
                ("vnodes".to_owned(), Value::UInt(tier.config().vnodes as u64)),
                ("queue_depth".to_owned(), Value::UInt(QUEUE_DEPTH as u64)),
                ("policy".to_owned(), Value::Str(tier.config().policy.to_string())),
                ("pool_routes".to_owned(), Value::UInt(POOL_ROUTES as u64)),
                ("zipf_users".to_owned(), Value::UInt(generator.users)),
                ("jobs".to_owned(), Value::UInt(4)),
            ]),
        ),
        (
            "capacity".to_owned(),
            Value::Object(vec![
                ("cold_qps_virtual".to_owned(), Value::Float(cold_capacity)),
                ("warm_qps_virtual".to_owned(), Value::Float(warm_capacity)),
            ]),
        ),
        ("load_points".to_owned(), Value::Array(points)),
        ("p99_bound_us".to_owned(), Value::Float(p99_bound_us)),
        (
            "warm".to_owned(),
            Value::Object(vec![
                ("queries".to_owned(), Value::UInt(queries.len() as u64)),
                ("wall_ms".to_owned(), Value::Float(tier_wall_ms)),
                ("queries_per_sec".to_owned(), Value::Float(tier_qps)),
                ("baseline_wall_ms".to_owned(), Value::Float(baseline_wall_ms)),
                ("baseline_queries_per_sec".to_owned(), Value::Float(baseline_qps)),
                ("speedup_vs_single_node".to_owned(), Value::Float(speedup)),
            ]),
        ),
        ("outputs_identical_across_jobs".to_owned(), Value::Bool(true)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).expect("serializes"))
        .expect("writes BENCH_serve.json");
    println!("wrote {path}");

    // The sweep's telemetry snapshot, reloadable by `everestc stats`.
    let metrics_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_serve.json");
    std::fs::write(
        metrics_path,
        serde_json::to_string_pretty(&sweep_snapshot).expect("serializes"),
    )
    .expect("writes METRICS_serve.json");
    println!("wrote {metrics_path}");
}
