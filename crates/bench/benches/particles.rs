//! Layout ablation: the AoS vs SoA effect the variants cost model
//! predicts, measured on the real particle kernels (paper III-B:
//! "layouts of particles as array-of-structures or structure-of-arrays").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use everest::apps::particles::{kinetic_energy, seed_particles, simulate, CellList};

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_streaming_sweep");
    for n in [1_000usize, 10_000] {
        let (aos, soa) = seed_particles(7, n, 20.0);
        group.bench_with_input(BenchmarkId::new("aos_kinetic", n), &aos, |b, s| {
            b.iter(|| kinetic_energy(std::hint::black_box(s)))
        });
        group.bench_with_input(BenchmarkId::new("soa_kinetic", n), &soa, |b, s| {
            b.iter(|| kinetic_energy(std::hint::black_box(s)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("layout_full_step");
    let (aos, soa) = seed_particles(7, 4_000, 20.0);
    group.bench_function("aos_sim_step", |b| {
        b.iter(|| {
            let mut s = aos.clone();
            simulate(&mut s, 20.0, 1.5, 0.01, 1)
        })
    });
    group.bench_function("soa_sim_step", |b| {
        b.iter(|| {
            let mut s = soa.clone();
            simulate(&mut s, 20.0, 1.5, 0.01, 1)
        })
    });
    group.finish();

    c.bench_function("cell_list_build_10k", |b| {
        let (aos, _) = seed_particles(9, 10_000, 20.0);
        b.iter(|| CellList::build(std::hint::black_box(&aos), 20.0, 1.5))
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full-workspace bench run within
    // CI budgets; pass your own -- flags for high-precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_layouts
}
criterion_main!(benches);
