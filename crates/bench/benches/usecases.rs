//! E12/E13: use-case kernels — ensemble forecasting and plume dispersion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use everest::apps::{airquality, weather};

fn bench_weather(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_wind_forecast");
    for res_km in [25.0f64, 12.0, 6.0] {
        group.bench_with_input(
            BenchmarkId::new("resolution_km", res_km as u64),
            &res_km,
            |b, r| b.iter(|| weather::evaluate_resolution(42, 100.0, 2.0, *r, 5).rmse_mw()),
        );
    }
    group.finish();
}

fn bench_airquality(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_plume");
    let met =
        airquality::Meteo { wind_ms: 2.5, wind_dir_rad: 0.35, stability: airquality::Stability::E };
    for cells in [16usize, 48, 96] {
        let model = airquality::reference_site(cells);
        group.bench_with_input(BenchmarkId::new("grid", cells), &model, |b, m| {
            b.iter(|| m.exceedance(std::hint::black_box(&met), 50.0))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full-workspace bench run within
    // CI budgets; pass your own -- flags for high-precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_weather, bench_airquality
}
criterion_main!(benches);
