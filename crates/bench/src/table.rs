//! Minimal fixed-width table formatting for experiment reports.

/// A simple text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|h| (*h).to_owned()).collect(), rows: Vec::new() }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", cells[i], w = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given precision (helper for experiment rows).
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "12345".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn float_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
