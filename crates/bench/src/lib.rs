//! # everest-bench — the experiment harness
//!
//! The EVEREST paper (DATE 2021) is a project-overview paper without
//! quantitative tables; its four figures are architecture diagrams and its
//! Section VI-D lists claimed benefits. This crate turns **every figure
//! and every claim into an executable experiment** (E1–E16, indexed in
//! `DESIGN.md`):
//!
//! * the `report` binary (`cargo run -p everest-bench --bin report`)
//!   regenerates every experiment table; `EXPERIMENTS.md` records the
//!   paper-claim vs. measured comparison;
//! * the Criterion benches under `benches/` measure the real runtime of
//!   the reproduction's own machinery (compilation flow, HLS, crypto,
//!   Monte-Carlo routing, workflow simulation).

pub mod diff;
pub mod experiments;
pub mod table;

pub use table::Table;
