//! The E1–E16 experiments: every figure and every Section VI-D claim of
//! the paper, regenerated as a table. See `DESIGN.md` for the index and
//! `EXPERIMENTS.md` for paper-vs-measured commentary.

use crate::table::{f, Table};
use everest::apps::{airquality, traffic, weather};
use everest::hls::accel::{synthesize, HlsConfig};
use everest::hls::dift::DiftConfig;
use everest::hls::memory::Scheme;
use everest::platform::ecosystem::{all_placements, evaluate, Stage, Tier};
use everest::platform::Link;
use everest::runtime::adaptation::{run_scenario, Phase, Strategy};
use everest::runtime::autotuner::{Constraint, Metric as TuneMetric, SystemState};
use everest::runtime::Autotuner;
use everest::security::modes::AesGcm;
use everest::security::{hmac_sha256, sha256};
use everest::variants::Variant;
use everest::workflow::{exec::simulate, Policy, TaskGraph, Worker};
use everest::Sdk;
use std::fmt::Write as _;
use std::time::Instant;

const GEMM: &str =
    "kernel gemm(a: tensor<64x64xf64>, b: tensor<64x64xf64>) -> tensor<64x64xf64> { return a @ b; }";
const STENCIL: &str =
    "kernel smooth(x: tensor<4096xf64>) -> tensor<4096xf64> { return stencil(x, [0.25, 0.5, 0.25]); }";
const SIGMOID: &str =
    "kernel activate(x: tensor<4096xf64>) -> tensor<4096xf64> { return sigmoid(x); }";

fn section(id: &str, title: &str, body: &str) -> String {
    format!("\n=== {id}: {title} ===\n{body}")
}

// ---------------------------------------------------------------------------
// E1 — Fig. 1: the data-driven compilation flow
// ---------------------------------------------------------------------------

/// E1: runs the full DSL → IR → variants flow on three kernels and reports
/// per-stage artifacts.
pub fn e1_compilation_flow() -> String {
    let sdk = Sdk::builder().build();
    let mut t = Table::new(&[
        "kernel",
        "IR ops",
        "loop-nest ops",
        "variants",
        "pareto",
        "best sw us",
        "best hw us",
        "hw energy mJ",
    ]);
    for (name, src) in [("gemm", GEMM), ("smooth", STENCIL), ("activate", SIGMOID)] {
        let raw = everest::dsl::compile_kernels(src).expect("compiles");
        let ops_before = raw.func(name).unwrap().op_count();
        let compiled = sdk.compile(src).expect("flow runs");
        let kernel = compiled.kernel(name).unwrap();
        let lowered = everest::hls::tensor_to_loops::lower_to_loops(raw.func(name).unwrap())
            .expect("lowers to loops");
        let ops_after = lowered.op_count();
        let best_sw = kernel
            .variants
            .iter()
            .filter(|v| !v.is_hardware())
            .map(|v| v.metrics.total_us())
            .fold(f64::INFINITY, f64::min);
        let best_hw = kernel
            .variants
            .iter()
            .filter(|v| v.is_hardware())
            .min_by(|a, b| a.metrics.total_us().total_cmp(&b.metrics.total_us()))
            .unwrap();
        t.row(&[
            name.into(),
            ops_before.to_string(),
            ops_after.to_string(),
            kernel.variants.len().to_string(),
            kernel.pareto_front().len().to_string(),
            f(best_sw, 2),
            f(best_hw.metrics.total_us(), 2),
            f(best_hw.metrics.energy_mj, 4),
        ]);
    }
    section(
        "E1",
        "data-driven compilation flow (paper Fig. 1)",
        &format!(
            "{}\nEvery kernel flows DSL -> unified IR -> canonicalized IR -> HW/SW variants\n\
             -> Pareto set exposed to the runtime; HLS supplies hardware estimates.\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E2 — Fig. 2: virtualized runtime adaptation
// ---------------------------------------------------------------------------

fn scenario_points() -> Vec<Variant> {
    // The activation kernel: its accelerator wins calm-phase latency, so
    // the adaptation story exercises real switching.
    let sdk = Sdk::builder().space(everest::DesignSpace::small()).build();
    let compiled = sdk.compile(SIGMOID).unwrap();
    compiled.kernels[0].variants.clone()
}

fn scenario_phases() -> Vec<Phase> {
    vec![
        Phase::calm("steady", 60),
        Phase { congestion: 200.0, ..Phase::calm("congested", 60) },
        Phase { free_luts: 0, ..Phase::calm("fabric-busy", 60) },
        Phase { hw_slowdown: 6.0, ..Phase::calm("throttled", 60) },
        Phase::calm("recovered", 60),
    ]
}

/// E2: the dynamic-adaptation loop vs static choices vs the oracle across
/// workload phases.
pub fn e2_runtime_adaptation() -> String {
    let points = scenario_points();
    let phases = scenario_phases();
    let mut t = Table::new(&["strategy", "total ms", "vs oracle", "fallbacks"]);
    let oracle = run_scenario(&points, &phases, Strategy::Oracle);
    let mut add = |label: String, strategy: Strategy| {
        let r = run_scenario(&points, &phases, strategy);
        t.row(&[
            label,
            f(r.total_us / 1e3, 2),
            format!("{:.2}x", r.total_us / oracle.total_us),
            r.fallbacks.to_string(),
        ]);
    };
    for (i, p) in points.iter().enumerate() {
        add(format!("static {}", p.id), Strategy::Static(i));
    }
    add("adaptive (mARGOt)".into(), Strategy::Adaptive);
    add("oracle".into(), Strategy::Oracle);
    section(
        "E2",
        "virtualized runtime adaptation (paper Fig. 2)",
        &format!(
            "{}\nPhases: steady / congested links / fabric taken / clock throttled / recovered.\n\
             The adaptive loop tracks the clairvoyant oracle and beats every static choice.\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E3 — Fig. 3: ecosystem hierarchy placement
// ---------------------------------------------------------------------------

/// E3: sweeps every valid placement of a streaming inference pipeline over
/// the endpoint/inner-edge/cloud hierarchy.
pub fn e3_ecosystem_placement() -> String {
    let stages = vec![
        Stage::new("pre-process", 2e6, 10_000, false),
        Stage::new("inference", 5e8, 1_000, true),
        Stage::new("model-update", 5e9, 500, true),
    ];
    let input_bytes = 1_000_000;
    let mut results: Vec<(Vec<Tier>, _)> = all_placements(stages.len())
        .into_iter()
        .map(|p| {
            let r = evaluate(&stages, &p, input_bytes);
            (p, r)
        })
        .collect();
    results.sort_by(|a, b| a.1.latency_us.total_cmp(&b.1.latency_us));
    let mut t = Table::new(&["placement", "latency ms", "energy mJ", "WAN bytes"]);
    for (p, r) in &results {
        let label: Vec<String> = p.iter().map(|t| t.to_string()).collect();
        t.row(&[
            label.join(" / "),
            f(r.latency_us / 1e3, 2),
            f(r.energy_mj, 1),
            r.wan_bytes.to_string(),
        ]);
    }
    section(
        "E3",
        "endpoint -> inner-edge -> cloud placement (paper Fig. 3)",
        &format!(
            "{}\nFiltering early at the edge slashes WAN traffic; heavy model updates\n\
             belong in the cloud — the hierarchy of Fig. 3 emerges from the sweep.\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E4 — Fig. 4: bus-attached vs network-attached FPGAs
// ---------------------------------------------------------------------------

/// E4: effective bandwidth and scale-out crossover between OpenCAPI
/// bus-attached and TCP/UDP network-attached FPGAs.
pub fn e4_attachment_comparison() -> String {
    let bus = Link::opencapi();
    let udp = Link::udp_datacenter();
    let tcp = Link::tcp_datacenter();
    let mut t = Table::new(&[
        "transfer",
        "bus eff GB/s",
        "udp eff GB/s",
        "tcp eff GB/s",
        "1x bus ms",
        "4x udp ms",
        "winner",
    ]);
    // A streaming job: each FPGA role processes its stream at 2 GB/s, so a
    // 4-device disaggregated pool has 4x the aggregate compute of one card.
    for size in [4u64 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20] {
        let compute_ms = |bytes: u64| bytes as f64 / (2.0 * 1e3) / 1e3;
        let bus_ms = bus.transfer_us(size) / 1e3 + compute_ms(size);
        // Scale-out: 4 network FPGAs each take a quarter of the stream.
        let quarter = size / 4;
        let net_ms = udp.transfer_us(quarter) / 1e3 + compute_ms(quarter);
        let label = if size < 1 << 20 {
            format!("{} KiB", size >> 10)
        } else {
            format!("{} MiB", size >> 20)
        };
        t.row(&[
            label,
            f(bus.effective_bandwidth_gbps(size), 2),
            f(udp.effective_bandwidth_gbps(size), 2),
            f(tcp.effective_bandwidth_gbps(size), 2),
            f(bus_ms, 3),
            f(net_ms, 3),
            if bus_ms <= net_ms { "bus".into() } else { "network x4".to_string() },
        ]);
    }
    section(
        "E4",
        "OpenCAPI bus vs TCP/UDP network attachment (paper Fig. 4)",
        &format!(
            "{}\nSmall transfers are latency-bound: the coherent bus wins. Large parallel\n\
             streams amortize the network latency and the disaggregated pool scales out.\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E5 — VI-D: acceleration vs software
// ---------------------------------------------------------------------------

/// E5: per-kernel best-hardware vs software latency and energy.
pub fn e5_acceleration() -> String {
    let sdk = Sdk::builder().build();
    let mut t = Table::new(&[
        "kernel",
        "sw 1t us",
        "sw 8t us",
        "hw us",
        "hw vs 1t",
        "sw mJ",
        "hw mJ",
        "energy gain",
    ]);
    for (name, src) in [("gemm", GEMM), ("smooth", STENCIL), ("activate", SIGMOID)] {
        let compiled = sdk.compile(src).unwrap();
        let kernel = compiled.kernel(name).unwrap();
        let sw_t = |threads: u32| {
            kernel
                .variants
                .iter()
                .filter(|v| {
                    !v.is_hardware()
                        && v.transforms.iter().any(
                            |tr| matches!(tr, everest::variants::Transform::Threads(n) if *n == threads),
                        )
                })
                .map(|v| v.metrics.total_us())
                .fold(f64::INFINITY, f64::min)
        };
        let hw = kernel
            .variants
            .iter()
            .filter(|v| v.is_hardware())
            .min_by(|a, b| a.metrics.total_us().total_cmp(&b.metrics.total_us()))
            .unwrap();
        let best_sw_energy = kernel
            .variants
            .iter()
            .filter(|v| !v.is_hardware())
            .map(|v| v.metrics.energy_mj)
            .fold(f64::INFINITY, f64::min);
        let best_hw_energy = kernel
            .variants
            .iter()
            .filter(|v| v.is_hardware())
            .map(|v| v.metrics.energy_mj)
            .fold(f64::INFINITY, f64::min);
        t.row(&[
            name.into(),
            f(sw_t(1), 2),
            f(sw_t(8), 2),
            f(hw.metrics.total_us(), 2),
            format!("{:.1}x", sw_t(1) / hw.metrics.total_us()),
            f(best_sw_energy, 4),
            f(best_hw_energy, 4),
            format!("{:.0}x", best_sw_energy / best_hw_energy),
        ]);
    }
    section(
        "E5",
        "hardware acceleration vs software (claim VI-D: performance & energy)",
        &format!(
            "{}\nWith host-resident data the accelerators win transcendental kernels on\n\
             latency and *every* kernel on energy (10-100x), matching the FPGA literature.\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E6 — memory partitioning ablation
// ---------------------------------------------------------------------------

/// E6: banks x scheme ablation on the 5-point stencil (single PE to
/// isolate the memory effect).
pub fn e6_memory_partitioning() -> String {
    let module = everest::dsl::compile_kernels(
        "kernel s(x: tensor<1024xf64>) -> tensor<1024xf64> { return stencil(x, [0.1, 0.2, 0.4, 0.2, 0.1]); }",
    )
    .unwrap();
    let func = module.func("s").unwrap();
    let mut t = Table::new(&["banks", "scheme", "II", "cycles", "BRAM"]);
    for scheme in [Scheme::Block, Scheme::Cyclic] {
        for banks in [1usize, 2, 4, 8] {
            let config = HlsConfig {
                banks,
                scheme,
                pe: 1,
                ports_per_bank: 1,
                // Generous compute budget so memory is the only bottleneck.
                budget: everest::hls::schedule::ResourceBudget::uniform(8),
                ..HlsConfig::default()
            };
            let acc = synthesize(func, &config).unwrap();
            t.row(&[
                banks.to_string(),
                scheme.to_string(),
                acc.innermost_ii.to_string(),
                acc.latency_cycles.to_string(),
                acc.area.brams.to_string(),
            ]);
        }
    }
    section(
        "E6",
        "on-chip memory partitioning (paper III-B, refs [28][29])",
        &format!(
            "{}\nCyclic partitioning spreads the 5 stencil taps across banks: II collapses\n\
             to 1 once banks >= taps; block partitioning keeps neighbours together and\n\
             stays port-limited regardless of bank count.\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E7 — TaintHLS DIFT overhead
// ---------------------------------------------------------------------------

/// E7: area/latency overhead of DIFT instrumentation per kernel.
pub fn e7_dift_overhead() -> String {
    let mut t = Table::new(&[
        "kernel",
        "LUTs",
        "LUTs+DIFT",
        "overhead %",
        "cycles",
        "cycles+DIFT",
        "shadow kbit",
    ]);
    for (name, src) in [("gemm", GEMM), ("smooth", STENCIL), ("activate", SIGMOID)] {
        let module = everest::dsl::compile_kernels(src).unwrap();
        let func = module.func(name).unwrap();
        let plain = synthesize(func, &HlsConfig::default()).unwrap();
        let hardened = synthesize(
            func,
            &HlsConfig { dift: Some(DiftConfig::default()), ..HlsConfig::default() },
        )
        .unwrap();
        let report = hardened.dift.as_ref().unwrap();
        t.row(&[
            name.into(),
            plain.area.luts.to_string(),
            hardened.area.luts.to_string(),
            f(100.0 * (hardened.area.luts - plain.area.luts) as f64 / plain.area.luts as f64, 1),
            plain.latency_cycles.to_string(),
            hardened.latency_cycles.to_string(),
            (report.shadow_bits / 1024).to_string(),
        ]);
    }
    section(
        "E7",
        "TaintHLS information-flow tracking overhead (paper III-B, ref [18])",
        &format!(
            "{}\nDIFT shadows every register and functional unit with 1-bit taint logic:\n\
             modest LUT overhead and ~2 cycles of latency, as TaintHLS reports.\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E8 — crypto library throughput
// ---------------------------------------------------------------------------

/// E8: measured software crypto throughput vs the modeled near-memory
/// engine.
pub fn e8_crypto() -> String {
    let mut t = Table::new(&["primitive", "sw MB/s (measured)", "near-mem model MB/s", "speedup"]);
    let payload = vec![0xa5u8; 1 << 20];

    let gcm = AesGcm::new(&[7u8; 16]);
    let nonce = [1u8; 12];
    let start = Instant::now();
    let mut sink = 0u8;
    let reps = 8;
    for _ in 0..reps {
        let ct = gcm.seal(&nonce, &payload, b"");
        sink ^= ct[0];
    }
    let gcm_mbs = (reps as f64 * payload.len() as f64 / 1e6) / start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..reps {
        sink ^= sha256(&payload)[0];
    }
    let sha_mbs = (reps as f64 * payload.len() as f64 / 1e6) / start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..reps {
        sink ^= hmac_sha256(b"key", &payload)[0];
    }
    let hmac_mbs = (reps as f64 * payload.len() as f64 / 1e6) / start.elapsed().as_secs_f64();
    std::hint::black_box(sink);

    // Near-memory engine model: one 16-byte AES block per cycle at 200 MHz
    // (round-unrolled pipeline); SHA-256 chains within a stream, so the
    // engine hashes 4 independent lanes at 64 bytes per 64-cycle block.
    let aes_hw = 16.0 * 200e6 / 1e6;
    let sha_hw = 4.0 * 64.0 * 200e6 / 64.0 / 1e6;
    for (name, sw, hw) in [
        ("AES-128-GCM seal", gcm_mbs, aes_hw),
        ("SHA-256", sha_mbs, sha_hw),
        ("HMAC-SHA256", hmac_mbs, sha_hw),
    ] {
        t.row(&[name.into(), f(sw, 1), f(hw, 0), format!("{:.0}x", hw / sw)]);
    }
    section(
        "E8",
        "memory/near-memory encryption library (paper III-A/B)",
        &format!(
            "{}\nThe software reference (this crate, pure Rust, no AES-NI) vs the modeled\n\
             pipelined near-memory engines the HLS library generates.\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E9 — mARGOt under constraints
// ---------------------------------------------------------------------------

/// E9: operating-point selection under an energy cap as conditions change.
pub fn e9_autotuning() -> String {
    let points = scenario_points();
    let sw_energy_floor = points
        .iter()
        .filter(|p| !p.is_hardware())
        .map(|p| p.metrics.energy_mj)
        .fold(f64::INFINITY, f64::min);
    let hw_energy = points
        .iter()
        .filter(|p| p.is_hardware())
        .map(|p| p.metrics.energy_mj)
        .fold(f64::INFINITY, f64::min);
    // A cap between hardware and software energy makes hardware mandatory —
    // unless the fabric disappears and the constraint must be traded off.
    let cap = (hw_energy * 4.0).min(sw_energy_floor * 0.8);
    let mut tuner = Autotuner::new(points.clone());
    tuner.add_constraint(Constraint { metric: TuneMetric::EnergyMj, max: cap });

    let mut t = Table::new(&["system state", "selected point", "energy mJ", "meets cap"]);
    let states = [
        ("calm", SystemState::default()),
        ("congested x50", SystemState { link_congestion: 50.0, ..Default::default() }),
        ("fabric gone", SystemState { free_luts: 0, ..Default::default() }),
    ];
    for (label, state) in states {
        match tuner.select(&state) {
            Ok(p) => {
                t.row(&[
                    label.into(),
                    p.id.clone(),
                    f(p.metrics.energy_mj, 4),
                    (p.metrics.energy_mj <= cap).to_string(),
                ]);
            }
            Err(_) => {
                t.row(&[label.into(), "(infeasible)".into(), "-".into(), "false".into()]);
            }
        }
    }
    section(
        "E9",
        "mARGOt operating-point selection under an energy cap (paper IV, ref [11])",
        &format!(
            "{}\nEnergy cap: {:.4} mJ. The selector keeps the constraint while fabric\n\
             exists and reports infeasibility (triggering operator policy) when not.\n",
            t.render(),
            cap
        ),
    )
}

// ---------------------------------------------------------------------------
// E10 — HyperLoom workflow scalability
// ---------------------------------------------------------------------------

/// E10: makespan vs worker count for canonical DAG shapes + scheduler
/// comparison.
pub fn e10_workflow_scalability() -> String {
    let graphs = vec![
        TaskGraph::wide(64, 1_000.0, 10_000),
        TaskGraph::deep(32, 1_000.0, 10_000),
        TaskGraph::diamond(16, 1_000.0, 10_000),
        TaskGraph::random(11, 6, 10, 1_000.0),
    ];
    let mut t = Table::new(&["graph", "w=1", "w=4", "w=16", "w=64", "speedup@16"]);
    for g in &graphs {
        let mk = |w: usize| {
            simulate(g, &Worker::uniform_pool(w, 1.0), Policy::Heft).unwrap().makespan_us / 1e3
        };
        let (m1, m4, m16, m64) = (mk(1), mk(4), mk(16), mk(64));
        t.row(&[
            g.name.clone(),
            f(m1, 1),
            f(m4, 1),
            f(m16, 1),
            f(m64, 1),
            format!("{:.1}x", m1 / m16),
        ]);
    }
    let g = TaskGraph::random(11, 6, 10, 1_000.0);
    let workers = Worker::heterogeneous_pool(4, 12);
    let mut s = Table::new(&["scheduler", "makespan ms", "mean util %"]);
    for policy in [Policy::Fifo, Policy::MinLoad, Policy::Heft] {
        let run = simulate(&g, &workers, policy).unwrap();
        s.row(&[
            policy.to_string(),
            f(run.makespan_us / 1e3, 2),
            f(100.0 * run.mean_utilization(), 1),
        ]);
    }
    section(
        "E10",
        "HyperLoom-style workflow platform scalability (paper III-A, ref [10])",
        &format!(
            "{}\nScheduler comparison on a random DAG over 4 fast + 12 slow workers:\n{}\n\
             Wide graphs scale near-linearly, chains are bound by the critical path,\n\
             and HEFT dominates the naive schedulers on heterogeneous pools.\n",
            t.render(),
            s.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E11 — PTDR Monte-Carlo routing
// ---------------------------------------------------------------------------

/// E11: PTDR estimator error and runtime vs sample count, with the modeled
/// FPGA sampling speedup.
pub fn e11_ptdr() -> String {
    let network = traffic::RoadNetwork::grid(2026, 12, 0.8);
    let fcd = traffic::generate_fcd(&network, 7, 200_000);
    let profiles = traffic::SpeedProfiles::learn(&network, &fcd);
    let route =
        traffic::shortest_route(&network, &profiles, 0, network.nodes.len() - 1, 8).unwrap();
    let reference = traffic::ptdr_travel_time(&network, &profiles, &route, 8.0, 100_000, 999);

    let mut t = Table::new(&["samples", "mean err %", "p95 min", "cpu ms", "fpga ms (model)"]);
    for samples in [10usize, 100, 1_000, 10_000] {
        // Average error over seeds to show the 1/sqrt(N) trend.
        let mut err = 0.0;
        for seed in 0..10 {
            let est = traffic::ptdr_travel_time(&network, &profiles, &route, 8.0, samples, seed);
            err += (est.mean_h - reference.mean_h).abs() / reference.mean_h;
        }
        err /= 10.0;
        let start = Instant::now();
        let stats = traffic::ptdr_travel_time(&network, &profiles, &route, 8.0, samples, 1);
        let cpu_ms = start.elapsed().as_secs_f64() * 1e3;
        // FPGA model: 32 parallel samplers, one segment sample per cycle
        // each at 200 MHz (ref [37] accelerates exactly this kernel).
        let fpga_ms = (samples * route.len()) as f64 / (32.0 * 200e6) * 1e3;
        t.row(&[
            samples.to_string(),
            f(err * 100.0, 2),
            f(stats.p95_h * 60.0, 1),
            f(cpu_ms, 3),
            f(fpga_ms, 4),
        ]);
    }
    section(
        "E11",
        "probabilistic time-dependent routing (paper VI-C, ref [37])",
        &format!(
            "{}\nEstimator error decays ~1/sqrt(N); the modeled 32-lane sampling engine\n\
             turns 10k-sample queries into sub-millisecond service calls.\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E12 — wind-energy resolution sweep
// ---------------------------------------------------------------------------

/// E12: forecast skill and compute cost vs ensemble grid resolution.
pub fn e12_wind_resolution() -> String {
    let mut t = Table::new(&["res km", "cells", "RMSE MW", "imbalance EUR/day", "rel. compute"]);
    let mut base_cells = 0.0;
    for res_km in [25.0, 12.0, 6.0, 3.0] {
        let report = weather::evaluate_resolution(42, 100.0, 2.0, res_km, 8);
        let cells = (100.0 / res_km) * (100.0 / res_km);
        if base_cells == 0.0 {
            base_cells = cells;
        }
        t.row(&[
            f(res_km, 0),
            (cells as usize).to_string(),
            f(report.rmse_mw(), 2),
            f(report.imbalance_cost_eur(60.0), 0),
            format!("{:.0}x", cells / base_cells),
        ]);
    }
    let (raw, corrected) = weather::mlp_corrected_forecast(7, 20, 20.0);
    section(
        "E12",
        "wind-farm day-ahead forecast vs ensemble resolution (paper VI-A)",
        &format!(
            "{}\nAI correction with historical data (20 training days at 20 km):\n\
             raw RMSE {:.2} MW -> corrected {:.2} MW; imbalance saved {:.0} EUR/day.\n\
             Finer ensembles cut the imbalance cost superlinearly in compute —\n\
             the cost transparent acceleration absorbs.\n",
            t.render(),
            raw.rmse_mw(),
            corrected.rmse_mw(),
            raw.imbalance_cost_eur(60.0) - corrected.imbalance_cost_eur(60.0)
        ),
    )
}

// ---------------------------------------------------------------------------
// E13 — air-quality forecast latency budget
// ---------------------------------------------------------------------------

/// E13: plume-forecast fidelity and latency vs grid resolution on the
/// 10-km domain.
pub fn e13_air_quality() -> String {
    let met =
        airquality::Meteo { wind_ms: 2.5, wind_dir_rad: 0.35, stability: airquality::Stability::E };
    let mut t = Table::new(&["cells/edge", "peak ug/m3", ">50 ug/m3 %", "ms per hour-step"]);
    for cells in [16usize, 32, 64, 128] {
        let model = airquality::reference_site(cells);
        let start = Instant::now();
        let (frac, peak) = model.exceedance(&met, 50.0);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        t.row(&[cells.to_string(), f(peak, 0), f(frac * 100.0, 1), f(ms, 2)]);
    }
    section(
        "E13",
        "industrial air-quality forecasting within 10 km (paper VI-B)",
        &format!(
            "{}\nEven the finest grid forecasts a full 24 h x 10-member ensemble in well\n\
             under the hourly decision budget; resolution sharpens the plume core that\n\
             coarse grids smear out.\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E14 — dynamic adaptation under failures
// ---------------------------------------------------------------------------

/// E14: edge-node failure with and without runtime migration.
pub fn e14_failure_migration() -> String {
    // A stream of 100 identical inference tasks on an edge worker; the
    // worker dies after 40. With adaptation the remainder migrates to the
    // cloud (slower link, faster compute); without it they are lost.
    let task_us = 2_000.0;
    let tasks = 100usize;
    let fail_after = 40usize;
    let edge_exec = task_us / 1.0;
    let cloud_exec = task_us / 6.0;
    let cloud_link_us = Link::tcp_datacenter().transfer_us(50_000);

    let healthy: f64 = (tasks as f64) * edge_exec;
    let migrated: f64 = (fail_after as f64) * edge_exec
        + 60_000.0 // detection + VM/vFPGA migration (reconfig) penalty
        + ((tasks - fail_after) as f64) * (cloud_exec + cloud_link_us);
    let stranded_completion = fail_after as f64 / tasks as f64;

    let mut t = Table::new(&["scenario", "completed %", "makespan ms"]);
    t.row(&["no failure (edge)".into(), "100".into(), f(healthy / 1e3, 1)]);
    t.row(&["failure, no adaptation".into(), f(stranded_completion * 100.0, 0), "stalled".into()]);
    t.row(&["failure + migration (EVEREST)".into(), "100".into(), f(migrated / 1e3, 1)]);
    section(
        "E14",
        "edge-node failure and transparent migration (claim VI-D: dynamic adaptation)",
        &format!(
            "{}\nThe virtualized runtime re-homes the computation (VM + vFPGA roles) to\n\
             the cloud: full completion at a bounded makespan penalty instead of a stall.\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E15 — cache-model validation of the tiling transform
// ---------------------------------------------------------------------------

/// E15: validates the variants cost model's tiling knob against the
/// trace-driven cache hierarchy (the gem5-class model of paper refs
/// \[25\]\[26\]).
pub fn e15_cache_tiling() -> String {
    use everest::platform::cache::{matmul_trace, Hierarchy};
    let mut t = Table::new(&["n", "tile", "L1 miss %", "L2 miss %", "AMAT cyc"]);
    for n in [64usize, 128] {
        for tile in [None, Some(16usize), Some(32)] {
            let mut h = Hierarchy::typical();
            matmul_trace(&mut h, n, tile);
            t.row(&[
                n.to_string(),
                tile.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
                f(100.0 * h.l1.miss_rate(), 2),
                f(100.0 * h.l2.miss_rate(), 2),
                f(h.amat(), 2),
            ]);
        }
    }
    section(
        "E15",
        "cache-model validation of the tiling variant (paper III-B, refs [25][26])",
        &format!(
            "{}
Blocked matmul keeps the 3 x tile^2 working set inside L1: the trace-driven
             model confirms the miss-rate collapse the software cost model's tiling
             boost assumes.
",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E16 — multi-VM accelerator sharing
// ---------------------------------------------------------------------------

/// E16: consolidation of tenant VMs onto shared vFPGA slots (paper IV:
/// "parallel application instances running in different virtual
/// machines").
pub fn e16_multi_tenant() -> String {
    use everest::runtime::contention::{share_slots, slots_for_slo, Tenant};
    let tenants = vec![
        Tenant::new("vm-energy", 120.0, 400.0, 80),
        Tenant::new("vm-airq", 200.0, 700.0, 50),
        Tenant::new("vm-traffic", 60.0, 150.0, 150),
    ];
    let mut t = Table::new(&["slots", "vm-energy us", "vm-airq us", "vm-traffic us", "util %"]);
    for slots in [1usize, 2, 4] {
        let r = share_slots(&tenants, slots);
        t.row(&[
            slots.to_string(),
            f(r.response_of("vm-energy").unwrap(), 0),
            f(r.response_of("vm-airq").unwrap(), 0),
            f(r.response_of("vm-traffic").unwrap(), 0),
            f(100.0 * r.slot_utilization, 1),
        ]);
    }
    let needed = slots_for_slo(&tenants, 1.5, 8);
    section(
        "E16",
        "multi-VM accelerator sharing (paper IV / Fig. 2)",
        &format!(
            "{}
Three use-case VMs co-located on shared vFPGA slots: consolidation keeps
             utilization high; the sizing helper picks {} slot(s) for a 1.5x response SLO.
",
            t.render(),
            needed.map(|n| n.to_string()).unwrap_or_else(|| "-".into())
        ),
    )
}

/// Runs every experiment and concatenates the report.
pub fn full_report() -> String {
    let mut out = String::new();
    writeln!(out, "EVEREST reproduction — experiment report (E1-E16)").unwrap();
    writeln!(out, "==================================================").unwrap();
    out.push_str(&e1_compilation_flow());
    out.push_str(&e2_runtime_adaptation());
    out.push_str(&e3_ecosystem_placement());
    out.push_str(&e4_attachment_comparison());
    out.push_str(&e5_acceleration());
    out.push_str(&e6_memory_partitioning());
    out.push_str(&e7_dift_overhead());
    out.push_str(&e8_crypto());
    out.push_str(&e9_autotuning());
    out.push_str(&e10_workflow_scalability());
    out.push_str(&e11_ptdr());
    out.push_str(&e12_wind_resolution());
    out.push_str(&e13_air_quality());
    out.push_str(&e14_failure_migration());
    out.push_str(&e15_cache_tiling());
    out.push_str(&e16_multi_tenant());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_three_kernels() {
        let r = e1_compilation_flow();
        for k in ["gemm", "smooth", "activate"] {
            assert!(r.contains(k), "missing kernel {k}");
        }
    }

    #[test]
    fn e2_adaptive_beats_statics() {
        let points = scenario_points();
        let phases = scenario_phases();
        let adaptive = run_scenario(&points, &phases, Strategy::Adaptive);
        for i in 0..points.len() {
            let st = run_scenario(&points, &phases, Strategy::Static(i));
            assert!(adaptive.total_us <= st.total_us + 1e-6);
        }
    }

    #[test]
    fn e4_bus_wins_small_network_wins_large() {
        let r = e4_attachment_comparison();
        let lines: Vec<&str> =
            r.lines().filter(|l| l.contains("KiB") || l.contains("MiB")).collect();
        assert!(lines.first().unwrap().trim_end().ends_with("bus"));
        assert!(lines.last().unwrap().trim_end().ends_with("network x4"));
    }

    #[test]
    fn e6_cyclic_reaches_ii_one_with_enough_banks() {
        let r = e6_memory_partitioning();
        // The cyclic/8-bank row must achieve II = 1.
        let row = r
            .lines()
            .find(|l| l.trim_start().starts_with('8') && l.contains("cyclic"))
            .expect("cyclic 8-bank row present");
        let cells: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(cells[2], "1", "II must be 1: {row}");
    }

    #[test]
    fn e7_overhead_is_modest() {
        let r = e7_dift_overhead();
        assert!(r.contains("TaintHLS"));
        // Parse overhead column: all < 40%.
        for line in r.lines().filter(|l| {
            let t = l.trim_start();
            t.starts_with("gemm") || t.starts_with("smooth") || t.starts_with("activate")
        }) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let pct: f64 = cells[3].parse().unwrap();
            assert!(pct < 40.0, "overhead {pct}% too high: {line}");
        }
    }

    #[test]
    fn e15_tiling_cuts_amat() {
        let r = e15_cache_tiling();
        // For n=128 the tiled AMAT must be below the untiled one.
        let rows: Vec<&str> = r.lines().filter(|l| l.trim_start().starts_with("128")).collect();
        let amat = |row: &str| -> f64 { row.split_whitespace().last().unwrap().parse().unwrap() };
        assert!(amat(rows[1]) < amat(rows[0]), "tiling must cut AMAT: {rows:?}");
    }

    #[test]
    fn e14_migration_bounds_the_penalty() {
        let r = e14_failure_migration();
        assert!(r.contains("stalled"));
        assert!(r.contains("100"));
    }
}
