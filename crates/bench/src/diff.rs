//! Regression gate over `BENCH_*.json` trajectories.
//!
//! Every bench binary writes its results as a JSON tree whose throughput
//! leaves follow the `*_per_sec` naming convention (`calls_per_sec`,
//! `queries_per_sec`, ...). This module diffs a committed baseline tree
//! against a freshly measured one: it walks both trees, pairs throughput
//! leaves by their structural path (object keys and array indices, so
//! `batch_runs[2].queries_per_sec` in the baseline lines up with the same
//! run in the fresh file), and flags any leaf whose fresh value falls
//! more than a threshold below the baseline. Higher is better by
//! construction — only `*_per_sec` leaves participate, so latency noise
//! in `wall_ms` fields never trips the gate.
//!
//! The `bench_diff` binary wraps this into a CI step: nonzero exit on
//! regression, a human-readable table either way.

use serde_json::Value;

/// One throughput leaf present in the baseline tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Structural path, e.g. `batch_runs[0].queries_per_sec`.
    pub path: String,
    /// Baseline throughput.
    pub baseline: f64,
    /// Fresh throughput, `None` when the leaf disappeared.
    pub fresh: Option<f64>,
}

impl DiffEntry {
    /// `fresh / baseline`; 0 when the leaf vanished or baseline is 0.
    pub fn ratio(&self) -> f64 {
        match self.fresh {
            Some(fresh) if self.baseline > 0.0 => fresh / self.baseline,
            _ => 0.0,
        }
    }

    /// `true` when fresh throughput dropped more than `threshold`
    /// (a fraction: 0.10 = 10%) below the baseline, or vanished.
    pub fn regressed(&self, threshold: f64) -> bool {
        self.ratio() < 1.0 - threshold
    }
}

/// `true` for keys that name a higher-is-better throughput leaf.
fn is_throughput_key(key: &str) -> bool {
    key.contains("per_sec")
}

fn numeric(value: &Value) -> Option<f64> {
    match value {
        Value::Int(n) => Some(*n as f64),
        Value::UInt(n) => Some(*n as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Collects every `(path, value)` throughput leaf in a JSON tree, in
/// deterministic traversal order.
pub fn throughput_leaves(tree: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(tree, "", &mut out);
    out
}

fn walk(value: &Value, path: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Object(fields) => {
            for (key, child) in fields {
                let child_path =
                    if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                if is_throughput_key(key) {
                    if let Some(n) = numeric(child) {
                        out.push((child_path, n));
                        continue;
                    }
                }
                walk(child, &child_path, out);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                walk(child, &format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// Pairs the baseline's throughput leaves with the fresh tree's by path.
/// Leaves that exist only in the fresh tree are new metrics and never
/// regressions, so they are ignored.
pub fn diff(baseline: &Value, fresh: &Value) -> Vec<DiffEntry> {
    let fresh_leaves = throughput_leaves(fresh);
    throughput_leaves(baseline)
        .into_iter()
        .map(|(path, base)| {
            let fresh = fresh_leaves.iter().find(|(p, _)| *p == path).map(|(_, v)| *v);
            DiffEntry { path, baseline: base, fresh }
        })
        .collect()
}

/// Renders the diff as an aligned report; `threshold` is a fraction.
pub fn render(entries: &[DiffEntry], threshold: f64) -> String {
    let mut out = String::new();
    let width = entries.iter().map(|e| e.path.len()).max().unwrap_or(4).max(4);
    out.push_str(&format!(
        "{:<width$}  {:>12}  {:>12}  {:>7}  status\n",
        "path", "baseline", "fresh", "ratio"
    ));
    for e in entries {
        let (fresh, ratio, status) = match e.fresh {
            Some(f) => {
                let status = if e.regressed(threshold) { "REGRESSED" } else { "ok" };
                (format!("{f:.1}"), format!("{:.3}", e.ratio()), status)
            }
            None => ("missing".to_owned(), "-".to_owned(), "REGRESSED"),
        };
        out.push_str(&format!(
            "{:<width$}  {:>12.1}  {:>12}  {:>7}  {}\n",
            e.path, e.baseline, fresh, ratio, status
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(text: &str) -> Value {
        serde_json::from_str(text).expect("valid JSON")
    }

    #[test]
    fn collects_per_sec_leaves_with_structural_paths() {
        let t = tree(
            r#"{"bench":"x","runs":[{"jobs":1,"calls_per_sec":100.0},
                {"jobs":4,"calls_per_sec":250.0}],
                "warm":{"queries_per_sec":900.0},"wall_ms":17.5}"#,
        );
        let leaves = throughput_leaves(&t);
        assert_eq!(
            leaves,
            vec![
                ("runs[0].calls_per_sec".to_owned(), 100.0),
                ("runs[1].calls_per_sec".to_owned(), 250.0),
                ("warm.queries_per_sec".to_owned(), 900.0),
            ]
        );
    }

    #[test]
    fn flags_drops_beyond_threshold_only() {
        let base = tree(r#"{"a_per_sec":100.0,"b_per_sec":100.0,"c_per_sec":100.0}"#);
        let fresh = tree(r#"{"a_per_sec":95.0,"b_per_sec":89.0,"c_per_sec":130.0}"#);
        let entries = diff(&base, &fresh);
        let regressed: Vec<&str> =
            entries.iter().filter(|e| e.regressed(0.10)).map(|e| e.path.as_str()).collect();
        assert_eq!(regressed, vec!["b_per_sec"], "only the 11% drop trips a 10% gate");
    }

    #[test]
    fn missing_leaf_counts_as_regression() {
        let base = tree(r#"{"runs":[{"calls_per_sec":10.0}]}"#);
        let fresh = tree(r#"{"runs":[]}"#);
        let entries = diff(&base, &fresh);
        assert_eq!(entries.len(), 1);
        assert!(entries[0].fresh.is_none());
        assert!(entries[0].regressed(0.10));
    }

    #[test]
    fn new_fresh_leaves_are_ignored() {
        let base = tree(r#"{"a_per_sec":10.0}"#);
        let fresh = tree(r#"{"a_per_sec":10.0,"brand_new_per_sec":1.0}"#);
        let entries = diff(&base, &fresh);
        assert_eq!(entries.len(), 1, "new metrics never gate");
        assert!(!entries[0].regressed(0.10));
    }

    #[test]
    fn integer_throughputs_are_numeric_leaves() {
        let base = tree(r#"{"calls_per_sec":100}"#);
        let fresh = tree(r#"{"calls_per_sec":50}"#);
        let entries = diff(&base, &fresh);
        assert_eq!(entries[0].baseline, 100.0);
        assert!(entries[0].regressed(0.10));
    }

    #[test]
    fn render_marks_status_per_row() {
        let base = tree(r#"{"a_per_sec":100.0,"b_per_sec":100.0}"#);
        let fresh = tree(r#"{"a_per_sec":100.0,"b_per_sec":10.0}"#);
        let report = render(&diff(&base, &fresh), 0.10);
        let lines: Vec<&str> = report.lines().collect();
        assert!(lines[1].ends_with("ok"));
        assert!(lines[2].ends_with("REGRESSED"));
    }
}
