//! `bench_diff` — the throughput regression gate.
//!
//! Compares freshly measured `BENCH_*.json` files against committed
//! baselines and exits nonzero when any `*_per_sec` leaf drops more than
//! the threshold (default 10%) below its baseline. Usage:
//!
//! ```text
//! bench_diff [--threshold <pct>] <baseline.json> <fresh.json> \
//!            [<baseline.json> <fresh.json> ...]
//! ```
//!
//! Files are consumed in baseline/fresh pairs so one invocation can gate
//! every bench. CI runs this as a release-blocking step at
//! `--threshold 20`, which clears the measured run-to-run noise floor
//! (see EXPERIMENTS.md E23), and archives the report as an artifact.

use everest_bench::diff::{diff, render, DiffEntry};
use serde_json::Value;
use std::process::ExitCode;

const USAGE: &str = "usage: bench_diff [--threshold <pct>] <baseline.json> <fresh.json>...";
const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("'{path}' is not valid JSON: {e}"))
}

fn run() -> Result<bool, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    if let Some(pos) = args.iter().position(|a| a == "--threshold") {
        if pos + 1 >= args.len() {
            return Err("--threshold requires a value".to_owned());
        }
        threshold_pct =
            args[pos + 1].parse::<f64>().ok().filter(|t| *t > 0.0 && *t < 100.0).ok_or_else(
                || format!("--threshold must be a percentage in (0, 100), got '{}'", args[pos + 1]),
            )?;
        args.drain(pos..=pos + 1);
    }
    if args.is_empty() || !args.len().is_multiple_of(2) {
        return Err(USAGE.to_owned());
    }
    let threshold = threshold_pct / 100.0;

    let mut any_regressed = false;
    for pair in args.chunks(2) {
        let baseline = load(&pair[0])?;
        let fresh = load(&pair[1])?;
        let entries = diff(&baseline, &fresh);
        let regressed: Vec<&DiffEntry> =
            entries.iter().filter(|e| e.regressed(threshold)).collect();
        println!(
            "== {} vs {} ({} throughput leaves, gate -{threshold_pct}%)",
            pair[0],
            pair[1],
            entries.len()
        );
        print!("{}", render(&entries, threshold));
        if regressed.is_empty() {
            println!("ok: no leaf dropped more than {threshold_pct}%");
        } else {
            any_regressed = true;
            println!("REGRESSION: {} leaf(s) below the -{threshold_pct}% gate", regressed.len());
        }
        println!();
    }
    Ok(any_regressed)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
