//! Prints the full E1–E16 experiment report.
//!
//! Run with: `cargo run -p everest-bench --bin report` (use `--release`
//! for representative E8/E11/E13 timings).

fn main() {
    print!("{}", everest_bench::experiments::full_report());
}
