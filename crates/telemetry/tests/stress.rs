//! Concurrent-writer stress tests for the metrics registry and the
//! flight recorder: N threads × M events, then assert nothing was lost
//! (below ring capacity) and the snapshots are well-formed.

use everest_telemetry::recorder::DEFAULT_RING_CAPACITY;
use everest_telemetry::{LogHistogram, MetricsRegistry};

const THREADS: usize = 8;
const EVENTS: usize = 5_000;

// The two flight-recorder tests share the process-global recorder, so
// they serialize on this lock and reset around themselves.
static FLIGHT_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn registry_survives_concurrent_writers_without_losing_updates() {
    let registry = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                for i in 0..EVENTS {
                    registry.counter_inc("stress.calls");
                    registry.counter_add("stress.bytes", 10);
                    registry.observe("stress.latency_us", (t * EVENTS + i) as f64 + 1.0);
                    registry.gauge_set("stress.depth", t as f64);
                }
            });
        }
    });
    let snap = registry.snapshot();
    let total = (THREADS * EVENTS) as u64;
    assert_eq!(snap.counter("stress.calls"), total);
    assert_eq!(snap.counter("stress.bytes"), total * 10);
    let h = snap.histogram("stress.latency_us").unwrap();
    assert_eq!(h.count, total, "no observation lost");
    // Sum of 1..=THREADS*EVENTS
    assert_eq!(h.sum, (total * (total + 1) / 2) as f64);
    assert!(h.buckets.windows(2).all(|w| w[0].index < w[1].index), "buckets sorted unique");
    assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>() + h.zeros, total);
    let depth = snap.gauge("stress.depth").unwrap();
    assert!((0.0..THREADS as f64).contains(&depth), "gauge holds one writer's value");
}

#[test]
fn per_worker_histograms_merge_losslessly() {
    let registry = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let mut local = LogHistogram::new();
                for i in 0..EVENTS {
                    local.observe((t + i) as f64 + 0.5);
                }
                registry.merge_histogram("stress.merged", &local);
            });
        }
    });
    let snap = registry.snapshot();
    let h = snap.histogram("stress.merged").unwrap();
    assert_eq!(h.count, (THREADS * EVENTS) as u64);
    assert!(h.p50() > 0.0 && h.p99() >= h.p50());
}

#[test]
fn flight_recorder_loses_nothing_below_ring_capacity() {
    let _guard = FLIGHT_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let flight = everest_telemetry::flight();
    flight.reset();
    let per_thread = DEFAULT_RING_CAPACITY / 2; // below capacity: lossless
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..per_thread {
                    everest_telemetry::flight().marker("stress.ev", (t * per_thread + i) as f64);
                }
            });
        }
    });
    let dump = flight.dump("stress");
    let mine: Vec<_> = dump.events.iter().filter(|e| e.name == "stress.ev").collect();
    assert_eq!(mine.len(), THREADS * per_thread, "no event lost below capacity");
    assert_eq!(dump.dropped, 0);
    assert!(mine.windows(2).all(|w| w[0].ts_us <= w[1].ts_us), "dump is time-ordered");
    // Every payload arrived exactly once.
    let mut values: Vec<u64> = mine.iter().map(|e| e.value as u64).collect();
    values.sort_unstable();
    assert_eq!(values, (0..(THREADS * per_thread) as u64).collect::<Vec<_>>());
    flight.reset();
}

#[test]
fn flight_recorder_overwrite_is_bounded_above_capacity() {
    let _guard = FLIGHT_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let flight = everest_telemetry::flight();
    flight.reset();
    let events = DEFAULT_RING_CAPACITY * 3;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 0..events {
                everest_telemetry::flight().marker("stress.flood", i as f64);
            }
            let dump = everest_telemetry::flight().dump("flood");
            let mine: Vec<_> = dump.events.iter().filter(|e| e.name == "stress.flood").collect();
            assert_eq!(mine.len(), DEFAULT_RING_CAPACITY, "memory stays bounded");
            // The survivors are exactly the newest window, in order.
            let first = (events - DEFAULT_RING_CAPACITY) as f64;
            assert_eq!(mine[0].value, first);
            assert_eq!(mine.last().unwrap().value, (events - 1) as f64);
        });
    });
    flight.reset();
}
