//! Behavioral tests for the global flight recorder. The recorder is a
//! process-wide singleton, so every test serializes on one lock and
//! tags its events with test-unique names.

use everest_telemetry::recorder::DEFAULT_RING_CAPACITY;
use everest_telemetry::EventKind;

static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_recorder(capacity: usize, f: impl FnOnce(&everest_telemetry::FlightRecorder)) {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let flight = everest_telemetry::flight();
    flight.set_capacity(capacity);
    flight.reset();
    f(flight);
    flight.set_capacity(DEFAULT_RING_CAPACITY);
    flight.reset();
}

#[test]
fn events_dump_in_time_order_with_payloads() {
    with_recorder(64, |flight| {
        flight.record(EventKind::SpanBegin, "t1.call", 0.0);
        flight.record(EventKind::Observe, "t1.lat", 42.5);
        flight.marker("t1.done", 3.0);
        let dump = flight.dump("test");
        let mine: Vec<_> = dump.events.iter().filter(|e| e.name.starts_with("t1.")).collect();
        assert_eq!(mine.len(), 3);
        assert_eq!(mine[0].kind, EventKind::SpanBegin);
        assert_eq!(mine[1].value, 42.5);
        assert_eq!(mine[2].kind, EventKind::Marker);
        assert!(mine.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert_eq!(dump.reason, "test");
        assert_eq!(dump.dropped, 0);
    });
}

#[test]
fn ring_overwrites_oldest_and_accounts_drops() {
    with_recorder(8, |flight| {
        for i in 0..20 {
            flight.marker("t2.ev", i as f64);
        }
        let dump = flight.dump("test");
        let mine: Vec<_> = dump.events.iter().filter(|e| e.name == "t2.ev").collect();
        assert_eq!(mine.len(), 8, "ring keeps exactly its capacity");
        let values: Vec<f64> = mine.iter().map(|e| e.value).collect();
        assert_eq!(values, (12..20).map(|i| i as f64).collect::<Vec<_>>(), "newest survive");
        assert_eq!(dump.dropped, 12);
    });
}

#[test]
fn zero_capacity_disables_recording() {
    with_recorder(0, |flight| {
        flight.marker("t3.ev", 1.0);
        flight.alarm("t3.alarm", 2.0);
        let dump = flight.dump("test");
        assert!(dump.events.iter().all(|e| !e.name.starts_with("t3.")));
        assert!(flight.take_alarm_dump().is_none());
    });
}

#[test]
fn alarm_captures_a_dump_of_preceding_events() {
    with_recorder(64, |flight| {
        flight.marker("t4.before", 1.0);
        flight.alarm("t4.alarm", 99.0);
        let dump = flight.take_alarm_dump().expect("alarm captured a dump");
        assert_eq!(dump.reason, "t4.alarm");
        assert!(dump.events.iter().any(|e| e.name == "t4.before"));
        let alarm = dump.events.iter().find(|e| e.name == "t4.alarm").unwrap();
        assert_eq!(alarm.kind, EventKind::Alarm);
        assert_eq!(alarm.value, 99.0);
        assert!(flight.take_alarm_dump().is_none(), "take drains");
    });
}

#[test]
fn alarm_storm_retains_the_first_dump() {
    with_recorder(64, |flight| {
        flight.marker("t7.root_cause", 1.0);
        flight.alarm("t7.first", 1.0);
        // Cascade: follow-up alarms record events but must not replace
        // the pending dump (nor pay for re-merging the rings).
        for _ in 0..10 {
            flight.alarm("t7.cascade", 2.0);
        }
        let dump = flight.take_alarm_dump().expect("first alarm captured");
        assert_eq!(dump.reason, "t7.first", "earliest un-taken alarm wins");
        assert!(dump.events.iter().any(|e| e.name == "t7.root_cause"));
        assert!(
            !dump.events.iter().any(|e| e.name == "t7.cascade"),
            "the retained dump predates the cascade"
        );
        // Once drained, the next alarm captures again.
        flight.alarm("t7.later", 3.0);
        assert_eq!(flight.take_alarm_dump().expect("re-armed").reason, "t7.later");
    });
}

#[test]
fn threads_merge_into_one_sorted_dump() {
    with_recorder(64, |flight| {
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for i in 0..10 {
                        everest_telemetry::flight().marker("t5.ev", (t * 100 + i) as f64);
                    }
                });
            }
        });
        let dump = flight.dump("test");
        let mine: Vec<_> = dump.events.iter().filter(|e| e.name == "t5.ev").collect();
        assert_eq!(mine.len(), 40);
        assert!(mine.windows(2).all(|w| w[0].ts_us <= w[1].ts_us), "time-ordered");
        let tids: std::collections::HashSet<u32> = mine.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "each thread kept its own tid");
    });
}

#[test]
fn dump_serializes_to_json() {
    with_recorder(16, |flight| {
        flight.record(EventKind::CounterAdd, "t6.count", 2.0);
        let json = flight.dump("json-test").to_json();
        assert!(json.contains("\"reason\": \"json-test\""));
        assert!(json.contains("\"kind\": \"counter_add\""));
        assert!(json.contains("\"name\": \"t6.count\""));
    });
}
