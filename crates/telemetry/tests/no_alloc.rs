//! Verifies the acceptance criterion that disabled tracing adds no heap
//! allocation per span. Lives in its own integration-test binary because
//! it swaps in a counting global allocator. The counter is per-thread —
//! the sibling `enabled_spans_do_record` test and the libtest harness's
//! main thread may allocate concurrently with the measured window, and
//! those allocations are not the span's.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

// Const-initialized Cell<u64> TLS: the access itself never allocates
// and registers no destructor, so it is safe inside the allocator.
std::thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_spans_allocate_nothing() {
    // The default global tracer is disabled; warm up any lazy statics
    // (thread-locals, lock internals) outside the measured window.
    {
        let mut span = everest_telemetry::span("warmup", "test");
        span.attr("k", 1);
    }

    let before = ALLOCATIONS.with(Cell::get);
    for _ in 0..1000 {
        let mut span = everest_telemetry::span("hot", "test");
        span.attr("iteration", 42);
        drop(span);
    }
    let after = ALLOCATIONS.with(Cell::get);
    assert_eq!(after - before, 0, "disabled spans must not allocate");
}

#[test]
fn enabled_spans_do_record() {
    // Sanity check in the same binary: recording still works (and is
    // allowed to allocate).
    let tracer = everest_telemetry::Tracer::recording();
    drop(tracer.span("op", "test"));
    assert_eq!(tracer.finish().len(), 1);
}
