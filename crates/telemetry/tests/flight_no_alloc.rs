//! Verifies the flight recorder's bounded-overhead contract: once a
//! thread's ring exists, recording an event performs no heap
//! allocation. Lives in its own test binary (single test) because it
//! swaps in a counting global allocator. The counter is per-thread —
//! the libtest harness's main thread occasionally allocates while the
//! test body runs, and those allocations are not the recorder's.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

// Const-initialized Cell<u64> TLS: the access itself never allocates
// and registers no destructor, so it is safe inside the allocator.
std::thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn recording_allocates_nothing_after_ring_warmup() {
    let flight = everest_telemetry::flight();
    // First event creates this thread's preallocated ring.
    flight.marker("warmup", 0.0);

    let before = ALLOCATIONS.with(Cell::get);
    // More events than the ring holds, so both the fill and the
    // overwrite paths are exercised.
    for i in 0..4096 {
        flight.record(everest_telemetry::EventKind::Observe, "hot.value", i as f64);
    }
    let after = ALLOCATIONS.with(Cell::get);
    assert_eq!(after - before, 0, "flight recording must not allocate per event");

    // The events really are there (ring capacity's worth).
    let dump = flight.dump("check");
    let hot = dump.events.iter().filter(|e| e.name == "hot.value").count();
    assert_eq!(hot, everest_telemetry::recorder::DEFAULT_RING_CAPACITY);
}
