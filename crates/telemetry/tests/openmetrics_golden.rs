//! Golden test for the OpenMetrics text exposition: exact output,
//! `_total`/`_bucket`/`_sum`/`_count` conventions, cumulative `le`
//! bounds, name sanitization, and label escaping.

use everest_telemetry::openmetrics::{escape_label_value, openmetrics_text, sanitize_name};
use everest_telemetry::MetricsRegistry;

#[test]
fn openmetrics_text_matches_golden() {
    let registry = MetricsRegistry::new();
    registry.counter_add("offload.completed", 8);
    registry.gauge_set("pool.depth", 2.5);
    // 1.0 lands in bucket [1, 1.03125); 3.0 in [3, 3.0625); 0.0 in the
    // zero bucket — all bounds print exactly in decimal.
    registry.observe("rt.latency_us", 0.0);
    registry.observe("rt.latency_us", 1.0);
    registry.observe("rt.latency_us", 3.0);

    let text = openmetrics_text(&registry.snapshot());
    let golden = "\
# TYPE offload_completed counter
offload_completed_total 8
# TYPE pool_depth gauge
pool_depth 2.5
# TYPE rt_latency_us histogram
rt_latency_us_bucket{le=\"0\"} 1
rt_latency_us_bucket{le=\"1.03125\"} 2
rt_latency_us_bucket{le=\"3.0625\"} 3
rt_latency_us_bucket{le=\"+Inf\"} 3
rt_latency_us_sum 4
rt_latency_us_count 3
# EOF
";
    assert_eq!(text, golden);
}

#[test]
fn serve_tier_families_match_golden() {
    // Exactly the metric families `ServeTier::publish` (everest-apps)
    // emits after a run: shard counters (present even at zero), the
    // per-shard peak queue-depth gauges via `gauge_max`, and the
    // virtual-time latency/wait histograms.
    let registry = MetricsRegistry::new();
    registry.counter_add("serve.queries", 6);
    registry.counter_add("serve.shard.hit", 2);
    registry.counter_add("serve.shard.miss", 3);
    registry.counter_add("serve.shard.fill", 2);
    registry.counter_add("serve.shard.shed", 1);
    registry.counter_add("serve.shard.rejected", 0);
    registry.gauge_max("serve.shard0.queue_depth", 3.0);
    registry.gauge_max("serve.shard0.queue_depth", 7.0); // peak wins
    registry.gauge_max("serve.shard0.queue_depth", 5.0);
    registry.gauge_max("serve.shard1.queue_depth", 2.0);
    registry.observe("serve.query.latency_us", 0.0);
    registry.observe("serve.query.latency_us", 1.0);
    registry.observe("serve.query.latency_us", 3.0);
    registry.observe("serve.queue.wait_us", 0.0);

    let text = openmetrics_text(&registry.snapshot());
    let golden = "\
# TYPE serve_queries counter
serve_queries_total 6
# TYPE serve_shard_fill counter
serve_shard_fill_total 2
# TYPE serve_shard_hit counter
serve_shard_hit_total 2
# TYPE serve_shard_miss counter
serve_shard_miss_total 3
# TYPE serve_shard_rejected counter
serve_shard_rejected_total 0
# TYPE serve_shard_shed counter
serve_shard_shed_total 1
# TYPE serve_shard0_queue_depth gauge
serve_shard0_queue_depth 7
# TYPE serve_shard1_queue_depth gauge
serve_shard1_queue_depth 2
# TYPE serve_query_latency_us histogram
serve_query_latency_us_bucket{le=\"0\"} 1
serve_query_latency_us_bucket{le=\"1.03125\"} 2
serve_query_latency_us_bucket{le=\"3.0625\"} 3
serve_query_latency_us_bucket{le=\"+Inf\"} 3
serve_query_latency_us_sum 4
serve_query_latency_us_count 3
# TYPE serve_queue_wait_us histogram
serve_queue_wait_us_bucket{le=\"0\"} 1
serve_queue_wait_us_bucket{le=\"+Inf\"} 1
serve_queue_wait_us_sum 0
serve_queue_wait_us_count 1
# EOF
";
    assert_eq!(text, golden);
}

#[test]
fn bucket_counts_are_cumulative_and_close_at_count() {
    let registry = MetricsRegistry::new();
    for i in 1..=100 {
        registry.observe("h", i as f64);
    }
    let text = openmetrics_text(&registry.snapshot());
    let mut last = 0u64;
    let mut inf = None;
    for line in text.lines().filter(|l| l.starts_with("h_bucket")) {
        let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(count >= last, "bucket counts must be cumulative: {line}");
        last = count;
        if line.contains("le=\"+Inf\"") {
            inf = Some(count);
        }
    }
    assert_eq!(inf, Some(100), "+Inf bucket equals total count");
    assert!(text.contains("h_count 100"));
    assert!(text.ends_with("# EOF\n"));
}

#[test]
fn names_and_labels_are_made_safe() {
    assert_eq!(sanitize_name("dse.hls.cache.hit"), "dse_hls_cache_hit");
    assert_eq!(sanitize_name("2fast"), "_2fast");
    assert_eq!(escape_label_value("say \"hi\\there\"\n"), "say \\\"hi\\\\there\\\"\\n");
}
