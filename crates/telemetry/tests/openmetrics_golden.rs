//! Golden test for the OpenMetrics text exposition: exact output,
//! `_total`/`_bucket`/`_sum`/`_count` conventions, cumulative `le`
//! bounds, name sanitization, and label escaping.

use everest_telemetry::openmetrics::{escape_label_value, openmetrics_text, sanitize_name};
use everest_telemetry::MetricsRegistry;

#[test]
fn openmetrics_text_matches_golden() {
    let registry = MetricsRegistry::new();
    registry.counter_add("offload.completed", 8);
    registry.gauge_set("pool.depth", 2.5);
    // 1.0 lands in bucket [1, 1.03125); 3.0 in [3, 3.0625); 0.0 in the
    // zero bucket — all bounds print exactly in decimal.
    registry.observe("rt.latency_us", 0.0);
    registry.observe("rt.latency_us", 1.0);
    registry.observe("rt.latency_us", 3.0);

    let text = openmetrics_text(&registry.snapshot());
    let golden = "\
# TYPE offload_completed counter
offload_completed_total 8
# TYPE pool_depth gauge
pool_depth 2.5
# TYPE rt_latency_us histogram
rt_latency_us_bucket{le=\"0\"} 1
rt_latency_us_bucket{le=\"1.03125\"} 2
rt_latency_us_bucket{le=\"3.0625\"} 3
rt_latency_us_bucket{le=\"+Inf\"} 3
rt_latency_us_sum 4
rt_latency_us_count 3
# EOF
";
    assert_eq!(text, golden);
}

#[test]
fn bucket_counts_are_cumulative_and_close_at_count() {
    let registry = MetricsRegistry::new();
    for i in 1..=100 {
        registry.observe("h", i as f64);
    }
    let text = openmetrics_text(&registry.snapshot());
    let mut last = 0u64;
    let mut inf = None;
    for line in text.lines().filter(|l| l.starts_with("h_bucket")) {
        let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(count >= last, "bucket counts must be cumulative: {line}");
        last = count;
        if line.contains("le=\"+Inf\"") {
            inf = Some(count);
        }
    }
    assert_eq!(inf, Some(100), "+Inf bucket equals total count");
    assert!(text.contains("h_count 100"));
    assert!(text.ends_with("# EOF\n"));
}

#[test]
fn names_and_labels_are_made_safe() {
    assert_eq!(sanitize_name("dse.hls.cache.hit"), "dse_hls_cache_hit");
    assert_eq!(sanitize_name("2fast"), "_2fast");
    assert_eq!(escape_label_value("say \"hi\\there\"\n"), "say \\\"hi\\\\there\\\"\\n");
}
