//! OpenMetrics / Prometheus text exposition for [`MetricsSnapshot`].
//!
//! [`openmetrics_text`] renders counters as `<name>_total`, gauges
//! verbatim, and histograms with the conventional cumulative
//! `_bucket{le="..."}` series plus `_sum` and `_count`, terminated by
//! `# EOF`. Metric names are sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*`
//! charset (the registry uses dotted names like `offload.latency_us`)
//! and label values are escaped per the spec.

use crate::histogram::HistogramSnapshot;
use crate::metrics::MetricsSnapshot;
use std::fmt::Write;

/// Maps a registry metric name onto the OpenMetrics charset: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit
/// gains a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value: backslash, double quote, and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats an `le` bound: shortest roundtrip decimal (`f64` Display).
fn format_bound(bound: f64) -> String {
    format!("{bound}")
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    let name = sanitize_name(&h.name);
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    if h.zeros > 0 {
        cumulative += h.zeros;
        let _ = writeln!(out, "{name}_bucket{{le=\"0\"}} {cumulative}");
    }
    for bucket in &h.buckets {
        cumulative += bucket.count;
        let (_, upper) = bucket.bounds();
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", format_bound(upper));
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders the snapshot in OpenMetrics text format (ends with `# EOF`).
pub fn openmetrics_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for counter in &snapshot.counters {
        let name = sanitize_name(&counter.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name}_total {}", counter.value);
    }
    for gauge in &snapshot.gauges {
        let name = sanitize_name(&gauge.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", gauge.value);
    }
    for histogram in &snapshot.histograms {
        write_histogram(&mut out, histogram);
    }
    out.push_str("# EOF\n");
    out
}

/// Renders a human-readable table: counters, gauges, then histograms
/// with count/mean/percentiles. Backs `everestc stats`.
pub fn render_table(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for c in &snapshot.counters {
            let _ = writeln!(out, "  {:<40} {}", c.name, c.value);
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for g in &snapshot.gauges {
            let _ = writeln!(out, "  {:<40} {}", g.name, g.value);
        }
    }
    if !snapshot.histograms.is_empty() {
        let _ = writeln!(
            out,
            "histograms: {:<28} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "", "count", "mean", "p50", "p95", "p99", "max"
        );
        for h in &snapshot.histograms {
            let _ = writeln!(
                out,
                "  {:<38} {:>9} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {:>11.2}",
                h.name,
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize_name("offload.latency_us"), "offload_latency_us");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a:b-c d"), "a:b_c_d");
    }

    #[test]
    fn label_escaping_covers_the_spec_triplet() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn text_output_ends_with_eof() {
        let snap = crate::MetricsRegistry::new().snapshot();
        assert_eq!(openmetrics_text(&snap), "# EOF\n");
    }
}
