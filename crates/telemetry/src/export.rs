//! Exporters: Chrome trace-event JSON and a flame summary table.

use crate::trace::SpanRecord;
use serde_json::Value;

/// Chrome trace-event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Duration begin.
    Begin,
    /// Duration end.
    End,
    /// Complete event (`ts` + `dur`).
    Complete,
    /// Instant event.
    Instant,
}

impl Phase {
    fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Complete => "X",
            Phase::Instant => "i",
        }
    }
}

/// One event in the Chrome trace-event format
/// (<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name.
    pub name: String,
    /// Comma-separated categories.
    pub cat: String,
    /// Phase.
    pub ph: Phase,
    /// Timestamp, µs.
    pub ts_us: u64,
    /// Duration, µs — only for [`Phase::Complete`].
    pub dur_us: Option<u64>,
    /// Process id lane.
    pub pid: u32,
    /// Thread id lane.
    pub tid: u32,
    /// Extra `args` payload, shown by the viewer on click.
    pub args: Vec<(String, String)>,
}

impl TraceEvent {
    /// A complete (`X`) event.
    pub fn complete(name: &str, cat: &str, ts_us: u64, dur_us: u64, pid: u32, tid: u32) -> Self {
        TraceEvent {
            name: name.to_owned(),
            cat: cat.to_owned(),
            ph: Phase::Complete,
            ts_us,
            dur_us: Some(dur_us),
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// A begin (`B`) event.
    pub fn begin(name: &str, cat: &str, ts_us: u64, pid: u32, tid: u32) -> Self {
        TraceEvent {
            name: name.to_owned(),
            cat: cat.to_owned(),
            ph: Phase::Begin,
            ts_us,
            dur_us: None,
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// An end (`E`) event.
    pub fn end(name: &str, cat: &str, ts_us: u64, pid: u32, tid: u32) -> Self {
        TraceEvent {
            name: name.to_owned(),
            cat: cat.to_owned(),
            ph: Phase::End,
            ts_us,
            dur_us: None,
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// Adds an `args` entry, builder style.
    pub fn with_arg(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.args.push((key.to_owned(), value.to_string()));
        self
    }

    fn to_value(&self) -> Value {
        // `Int` when it fits, matching what the JSON parser produces, so
        // exported values roundtrip to equal `Value`s.
        fn uint(n: u64) -> Value {
            i64::try_from(n).map_or(Value::UInt(n), Value::Int)
        }
        let mut fields = vec![
            ("name".to_owned(), Value::Str(self.name.clone())),
            ("cat".to_owned(), Value::Str(self.cat.clone())),
            ("ph".to_owned(), Value::Str(self.ph.code().to_owned())),
            ("ts".to_owned(), uint(self.ts_us)),
        ];
        if let Some(dur) = self.dur_us {
            fields.push(("dur".to_owned(), uint(dur)));
        }
        fields.push(("pid".to_owned(), uint(self.pid as u64)));
        fields.push(("tid".to_owned(), uint(self.tid as u64)));
        if self.ph == Phase::Instant {
            fields.push(("s".to_owned(), Value::Str("t".to_owned())));
        }
        if !self.args.is_empty() {
            let args = self.args.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect();
            fields.push(("args".to_owned(), Value::Object(args)));
        }
        Value::Object(fields)
    }
}

/// Pid lane used for compiler-side spans.
pub const COMPILER_PID: u32 = 1;

/// Pid lane used for simulated workflow timelines (keeps the Gantt chart
/// separate from compiler spans in the viewer).
pub const WORKFLOW_PID: u32 = 2;

/// Converts finished spans into complete (`X`) trace events, carrying
/// span id / parent id and every attribute in `args`.
pub fn spans_to_events(spans: &[SpanRecord]) -> Vec<TraceEvent> {
    spans
        .iter()
        .map(|span| {
            let mut event = TraceEvent::complete(
                &span.name,
                &span.category,
                span.start_us,
                span.duration_us(),
                COMPILER_PID,
                span.tid,
            )
            .with_arg("span_id", span.id);
            if let Some(parent) = span.parent {
                event = event.with_arg("parent_id", parent);
            }
            for (key, value) in &span.attrs {
                event = event.with_arg(key, value);
            }
            event
        })
        .collect()
}

/// Serializes events as a Chrome trace-event JSON array, loadable in
/// `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let array = Value::Array(events.iter().map(TraceEvent::to_value).collect());
    serde_json::to_string(&array).expect("value tree always serializes")
}

/// Aggregated timing for one span name in a [`flame_summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlameRow {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub calls: u64,
    /// Total wall time, µs.
    pub total_us: u64,
    /// Total minus time spent in child spans, µs.
    pub self_us: u64,
}

/// Aggregates spans by name (calls, total µs, self µs), ordered by total
/// time descending.
pub fn flame_rows(spans: &[SpanRecord]) -> Vec<FlameRow> {
    // Time attributed to children, keyed by parent span id.
    let mut child_us: Vec<(u64, u64)> = Vec::new();
    for span in spans {
        if let Some(parent) = span.parent {
            match child_us.iter_mut().find(|(id, _)| *id == parent) {
                Some((_, total)) => *total += span.duration_us(),
                None => child_us.push((parent, span.duration_us())),
            }
        }
    }
    let mut rows: Vec<FlameRow> = Vec::new();
    for span in spans {
        let in_children =
            child_us.iter().find(|(id, _)| *id == span.id).map_or(0, |(_, total)| *total);
        let total = span.duration_us();
        let own = total.saturating_sub(in_children);
        match rows.iter_mut().find(|row| row.name == span.name) {
            Some(row) => {
                row.calls += 1;
                row.total_us += total;
                row.self_us += own;
            }
            None => rows.push(FlameRow {
                name: span.name.clone(),
                calls: 1,
                total_us: total,
                self_us: own,
            }),
        }
    }
    rows.sort_by(|a, b| b.total_us.cmp(&a.total_us).then_with(|| a.name.cmp(&b.name)));
    rows
}

/// Renders a human-readable flame summary table.
pub fn flame_summary(spans: &[SpanRecord]) -> String {
    let rows = flame_rows(spans);
    let name_width =
        rows.iter().map(|row| row.name.len()).chain(std::iter::once("span".len())).max().unwrap();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_width$}  {:>7}  {:>12}  {:>12}  {:>10}\n",
        "span", "calls", "total µs", "self µs", "mean µs"
    ));
    out.push_str(&format!("{}\n", "-".repeat(name_width + 2 + 7 + 2 + 12 + 2 + 12 + 2 + 10)));
    for row in &rows {
        let mean = row.total_us as f64 / row.calls as f64;
        out.push_str(&format!(
            "{:<name_width$}  {:>7}  {:>12}  {:>12}  {:>10.1}\n",
            row.name, row.calls, row.total_us, row.self_us, mean
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_owned(),
            category: "test".to_owned(),
            start_us: start,
            end_us: end,
            tid: 1,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn chrome_json_has_required_fields() {
        let spans = vec![span(1, None, "compile", 0, 500)];
        let json = chrome_trace_json(&spans_to_events(&spans));
        let value: Value = serde_json::from_str(&json).unwrap();
        let Value::Array(events) = value else { panic!("expected array") };
        assert_eq!(events.len(), 1);
        let event = &events[0];
        assert_eq!(event.get("name"), Some(&Value::Str("compile".to_owned())));
        assert_eq!(event.get("ph"), Some(&Value::Str("X".to_owned())));
        assert_eq!(event.get("ts"), Some(&Value::Int(0)));
        assert_eq!(event.get("dur"), Some(&Value::Int(500)));
        assert!(event.get("pid").is_some() && event.get("tid").is_some());
    }

    #[test]
    fn parent_links_and_attrs_land_in_args() {
        let mut child = span(2, Some(1), "inner", 10, 20);
        child.attrs.push(("k".to_owned(), "v".to_owned()));
        let events = spans_to_events(&[child]);
        let args = &events[0].args;
        assert!(args.contains(&("parent_id".to_owned(), "1".to_owned())));
        assert!(args.contains(&("k".to_owned(), "v".to_owned())));
    }

    #[test]
    fn begin_end_events_serialize_with_phase_codes() {
        let events = vec![
            TraceEvent::begin("task", "workflow", 5, 2, 3),
            TraceEvent::end("task", "workflow", 9, 2, 3),
        ];
        let json = chrome_trace_json(&events);
        let Value::Array(values) = serde_json::from_str(&json).unwrap() else {
            panic!("expected array")
        };
        assert_eq!(values[0].get("ph"), Some(&Value::Str("B".to_owned())));
        assert_eq!(values[1].get("ph"), Some(&Value::Str("E".to_owned())));
        assert_eq!(values[0].get("tid"), Some(&Value::Int(3)));
        assert!(values[0].get("dur").is_none());
    }

    #[test]
    fn flame_rows_compute_self_time_and_order() {
        let spans = vec![
            span(1, None, "outer", 0, 100),
            span(2, Some(1), "inner", 10, 40),
            span(3, Some(1), "inner", 50, 70),
        ];
        let rows = flame_rows(&spans);
        assert_eq!(rows[0].name, "outer");
        assert_eq!(rows[0].total_us, 100);
        assert_eq!(rows[0].self_us, 100 - 30 - 20);
        assert_eq!(rows[1].name, "inner");
        assert_eq!(rows[1].calls, 2);
        assert_eq!(rows[1].total_us, 50);
        assert_eq!(rows[1].self_us, 50);
    }

    #[test]
    fn flame_summary_renders_every_row() {
        let spans = vec![span(1, None, "a", 0, 10), span(2, None, "b", 0, 4)];
        let table = flame_summary(&spans);
        assert!(table.contains("span"));
        assert!(table.contains('a') && table.contains('b'));
        assert_eq!(table.lines().count(), 4); // header, rule, two rows
    }
}
