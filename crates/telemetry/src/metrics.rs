//! Named counters, gauges, and log-bucketed latency histograms.
//!
//! Histograms are [`LogHistogram`]s: HDR-style log-linear buckets with
//! percentile estimation (see [`crate::histogram`]). Snapshots of the
//! whole registry serialize to stable JSON and merge across invocations
//! via [`MetricsSnapshot::merge`].

use crate::histogram::LogHistogram;
pub use crate::histogram::{HistogramBucket, HistogramSnapshot};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

#[derive(Default)]
struct Inner {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, LogHistogram)>,
}

fn slot<'a, T>(
    entries: &'a mut Vec<(String, T)>,
    name: &str,
    init: impl FnOnce() -> T,
) -> &'a mut T {
    if let Some(at) = entries.iter().position(|(n, _)| n == name) {
        return &mut entries[at].1;
    }
    entries.push((name.to_owned(), init()));
    &mut entries.last_mut().unwrap().1
}

/// A thread-safe registry of named metrics.
///
/// All operations auto-register the metric on first use.
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry (const, so it can back a `static`).
    pub const fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Mutex::new(Inner {
                counters: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
            }),
        }
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        *slot(&mut self.inner.lock().counters, name, || 0) += delta;
    }

    /// Increments the named counter by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        *slot(&mut self.inner.lock().gauges, name, || 0.0) = value;
    }

    /// Raises the named gauge to `value` if the current reading is
    /// lower (or the gauge is unset) — peak tracking, e.g. high-water
    /// queue depths. NaN is ignored so a bad sample cannot wedge the
    /// gauge.
    pub fn gauge_max(&self, name: &str, value: f64) {
        if value.is_nan() {
            return;
        }
        let mut inner = self.inner.lock();
        let slot = slot(&mut inner.gauges, name, || value);
        if value > *slot {
            *slot = value;
        }
    }

    /// Records `value` into the named histogram.
    ///
    /// NaN is rejected (it can no longer poison `sum`/mean) and negative
    /// values clamp to the zero bucket — see [`LogHistogram::observe`].
    pub fn observe(&self, name: &str, value: f64) {
        slot(&mut self.inner.lock().histograms, name, LogHistogram::new).observe(value);
    }

    /// Folds a locally-accumulated histogram into the named registry
    /// histogram under a single lock acquisition. This is the
    /// low-contention path for per-worker histograms: observe into a
    /// thread-local [`LogHistogram`], then merge once at the end.
    pub fn merge_histogram(&self, name: &str, local: &LogHistogram) {
        if local.count() == 0 {
            return;
        }
        slot(&mut self.inner.lock().histograms, name, LogHistogram::new).merge_from(local);
    }

    /// A point-in-time copy of every metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut counters: Vec<CounterSnapshot> = inner
            .counters
            .iter()
            .map(|(name, value)| CounterSnapshot { name: name.clone(), value: *value })
            .collect();
        let mut gauges: Vec<GaugeSnapshot> = inner
            .gauges
            .iter()
            .map(|(name, value)| GaugeSnapshot { name: name.clone(), value: *value })
            .collect();
        let mut histograms: Vec<HistogramSnapshot> =
            inner.histograms.iter().map(|(name, h)| h.snapshot(name)).collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { counters, gauges, histograms }
    }

    /// Clears every metric (used between CLI invocations and tests).
    pub fn reset(&self) {
        *self.inner.lock() = Inner::default();
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Monotonic total.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// Serializable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The named histogram, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Folds another snapshot into this one: counters add, gauges take
    /// the other's value (last wins), histograms merge bucket-wise.
    /// Sorted-name order is preserved.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|mine| mine.name == g.name) {
                Some(mine) => mine.value = g.value,
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => mine.merge(h),
                None => self.histograms.push(h.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let registry = MetricsRegistry::new();
        registry.counter_inc("b.total");
        registry.counter_add("a.total", 41);
        registry.counter_inc("a.total");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("a.total"), 42);
        assert_eq!(snap.counter("b.total"), 1);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.counters[0].name, "a.total");
    }

    #[test]
    fn gauges_keep_last_value() {
        let registry = MetricsRegistry::new();
        registry.gauge_set("free_luts", 1000.0);
        registry.gauge_set("free_luts", 640.0);
        assert_eq!(registry.snapshot().gauge("free_luts"), Some(640.0));
        assert_eq!(registry.snapshot().gauge("missing"), None);
    }

    #[test]
    fn gauge_max_tracks_the_peak() {
        let registry = MetricsRegistry::new();
        registry.gauge_max("queue.depth", 3.0);
        registry.gauge_max("queue.depth", 7.0);
        registry.gauge_max("queue.depth", 5.0);
        registry.gauge_max("queue.depth", f64::NAN);
        assert_eq!(registry.snapshot().gauge("queue.depth"), Some(7.0));
        // A later gauge_set still overwrites (last-wins semantics).
        registry.gauge_set("queue.depth", 1.0);
        assert_eq!(registry.snapshot().gauge("queue.depth"), Some(1.0));
    }

    #[test]
    fn histograms_report_count_sum_and_percentiles() {
        let registry = MetricsRegistry::new();
        for value in 1..=1000 {
            registry.observe("latency", value as f64);
        }
        let snap = registry.snapshot();
        let h = snap.histogram("latency").unwrap();
        assert_eq!(h.count, 1000);
        assert_eq!(h.sum, 500_500.0);
        assert!((h.p50() - 500.0).abs() / 500.0 < 0.02);
        assert!((h.p99() - 990.0).abs() / 990.0 < 0.02);
        assert_eq!(h.max, 1000.0);
    }

    #[test]
    fn observe_rejects_nan_and_clamps_negative() {
        // Regression: a single NaN used to make `sum` (and the mean)
        // NaN forever; negatives used to drag `sum` down.
        let registry = MetricsRegistry::new();
        registry.observe("h", 10.0);
        registry.observe("h", f64::NAN);
        registry.observe("h", -7.0);
        registry.observe("h", 30.0);
        let snap = registry.snapshot();
        let h = snap.histogram("h").unwrap();
        assert!(!h.sum.is_nan());
        assert_eq!(h.sum, 40.0);
        assert_eq!(h.count, 3); // NaN never counted
        assert_eq!(h.nan_rejected, 1);
        assert_eq!(h.zeros, 1); // the clamped negative
        assert!(!h.mean().is_nan());
    }

    #[test]
    fn merge_histogram_folds_local_worker_data() {
        let registry = MetricsRegistry::new();
        registry.observe("work", 5.0);
        let mut local = LogHistogram::new();
        local.observe(7.0);
        local.observe(9.0);
        registry.merge_histogram("work", &local);
        registry.merge_histogram("work", &LogHistogram::new()); // no-op
        let snap = registry.snapshot();
        let h = snap.histogram("work").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 21.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let registry = MetricsRegistry::new();
        registry.counter_add("n", 3);
        registry.gauge_set("g", 1.5);
        registry.observe("h", 42.0);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshots_merge_across_invocations() {
        let a = {
            let r = MetricsRegistry::new();
            r.counter_add("calls", 2);
            r.gauge_set("depth", 1.0);
            r.observe("lat", 10.0);
            r.snapshot()
        };
        let b = {
            let r = MetricsRegistry::new();
            r.counter_add("calls", 3);
            r.counter_inc("faults");
            r.gauge_set("depth", 4.0);
            r.observe("lat", 30.0);
            r.snapshot()
        };
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.counter("calls"), 5);
        assert_eq!(merged.counter("faults"), 1);
        assert_eq!(merged.gauge("depth"), Some(4.0));
        let lat = merged.histogram("lat").unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 40.0);
    }

    #[test]
    fn reset_clears_everything() {
        let registry = MetricsRegistry::new();
        registry.counter_inc("n");
        registry.reset();
        let snap = registry.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }
}
