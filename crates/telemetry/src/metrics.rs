//! Named counters, gauges, and fixed-bucket histograms.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Default histogram bucket upper bounds (µs-flavoured powers of ten),
/// used when a value is observed on an unregistered histogram.
pub const DEFAULT_BUCKETS: [f64; 8] =
    [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0, 100_000_000.0];

#[derive(Debug, Clone)]
struct Histogram {
    /// Upper bounds of the finite buckets, ascending.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` counts; the last bucket is the overflow.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], count: 0, sum: 0.0 }
    }

    fn observe(&mut self, value: f64) {
        let slot =
            self.bounds.iter().position(|&bound| value <= bound).unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
    }
}

#[derive(Default)]
struct Inner {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

fn slot<'a, T>(
    entries: &'a mut Vec<(String, T)>,
    name: &str,
    init: impl FnOnce() -> T,
) -> &'a mut T {
    if let Some(at) = entries.iter().position(|(n, _)| n == name) {
        return &mut entries[at].1;
    }
    entries.push((name.to_owned(), init()));
    &mut entries.last_mut().unwrap().1
}

/// A thread-safe registry of named metrics.
///
/// All operations auto-register the metric on first use; histograms can
/// be pre-registered with explicit bucket bounds via
/// [`MetricsRegistry::register_histogram`].
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry (const, so it can back a `static`).
    pub const fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Mutex::new(Inner {
                counters: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
            }),
        }
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        *slot(&mut self.inner.lock().counters, name, || 0) += delta;
    }

    /// Increments the named counter by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        *slot(&mut self.inner.lock().gauges, name, || 0.0) = value;
    }

    /// Registers a histogram with explicit ascending bucket upper
    /// bounds. Re-registering an existing histogram keeps its data.
    pub fn register_histogram(&self, name: &str, bounds: &[f64]) {
        slot(&mut self.inner.lock().histograms, name, || Histogram::new(bounds));
    }

    /// Records `value` into the named histogram
    /// ([`DEFAULT_BUCKETS`] if it was never registered).
    pub fn observe(&self, name: &str, value: f64) {
        slot(&mut self.inner.lock().histograms, name, || Histogram::new(&DEFAULT_BUCKETS))
            .observe(value);
    }

    /// A point-in-time copy of every metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut counters: Vec<CounterSnapshot> = inner
            .counters
            .iter()
            .map(|(name, value)| CounterSnapshot { name: name.clone(), value: *value })
            .collect();
        let mut gauges: Vec<GaugeSnapshot> = inner
            .gauges
            .iter()
            .map(|(name, value)| GaugeSnapshot { name: name.clone(), value: *value })
            .collect();
        let mut histograms: Vec<HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                bounds: h.bounds.clone(),
                counts: h.counts.clone(),
                count: h.count,
                sum: h.sum,
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { counters, gauges, histograms }
    }

    /// Clears every metric (used between CLI invocations and tests).
    pub fn reset(&self) {
        *self.inner.lock() = Inner::default();
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Monotonic total.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one longer than `bounds` (overflow bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean of observed values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Serializable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The named histogram, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let registry = MetricsRegistry::new();
        registry.counter_inc("b.total");
        registry.counter_add("a.total", 41);
        registry.counter_inc("a.total");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("a.total"), 42);
        assert_eq!(snap.counter("b.total"), 1);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.counters[0].name, "a.total");
    }

    #[test]
    fn gauges_keep_last_value() {
        let registry = MetricsRegistry::new();
        registry.gauge_set("free_luts", 1000.0);
        registry.gauge_set("free_luts", 640.0);
        assert_eq!(registry.snapshot().gauge("free_luts"), Some(640.0));
        assert_eq!(registry.snapshot().gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_count_correctly() {
        let registry = MetricsRegistry::new();
        registry.register_histogram("latency", &[10.0, 100.0, 1000.0]);
        for value in [1.0, 10.0, 11.0, 500.0, 5000.0, 9999.0] {
            registry.observe("latency", value);
        }
        let snap = registry.snapshot();
        let h = snap.histogram("latency").unwrap();
        // <=10: {1, 10}; <=100: {11}; <=1000: {500}; overflow: {5000, 9999}
        assert_eq!(h.counts, vec![2, 1, 1, 2]);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1.0 + 10.0 + 11.0 + 500.0 + 5000.0 + 9999.0);
        assert!((h.mean() - h.sum / 6.0).abs() < 1e-9);
    }

    #[test]
    fn unregistered_histogram_uses_default_buckets() {
        let registry = MetricsRegistry::new();
        registry.observe("auto", 50.0);
        let snap = registry.snapshot();
        let h = snap.histogram("auto").unwrap();
        assert_eq!(h.bounds, DEFAULT_BUCKETS.to_vec());
        assert_eq!(h.counts.iter().sum::<u64>(), 1);
        assert_eq!(h.counts[1], 1); // 10 < 50 <= 100
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let registry = MetricsRegistry::new();
        registry.counter_add("n", 3);
        registry.gauge_set("g", 1.5);
        registry.observe("h", 42.0);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn reset_clears_everything() {
        let registry = MetricsRegistry::new();
        registry.counter_inc("n");
        registry.reset();
        let snap = registry.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }
}
