//! HDR-style log-linear latency histograms with mergeable snapshots and
//! quantile estimation.
//!
//! A [`LogHistogram`] covers the full positive `f64` range with
//! log-linear buckets: each power-of-two octave is split into
//! `2^SUB_BITS = 32` linear sub-buckets, bounding the relative width of
//! any bucket to `1/32 ≈ 3.1%` (so a bucket-midpoint quantile estimate
//! is within ~1.6% of the true value). The bucket index is derived
//! directly from the IEEE-754 bit pattern — exponent plus the top five
//! mantissa bits — so `observe` is a handful of integer ops and two
//! array increments, cheap enough for always-on hot-path use.
//!
//! Octaves outside `[2^-20, 2^44)` clamp to the edge buckets; for the
//! microsecond-flavoured latencies recorded here that spans sub-ns to
//! ~200 days. Zero and negative values land in a dedicated zero bucket
//! and NaN is rejected outright (counted, never summed) — see
//! [`LogHistogram::observe`].
//!
//! [`HistogramSnapshot`] is the serializable point-in-time view: a
//! sparse list of non-empty buckets that can be merged across threads,
//! processes, or CLI invocations and re-queried for quantiles.

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` linear
/// sub-buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUBS: u32 = 1 << SUB_BITS;
/// Smallest tracked binary exponent (values below clamp to bucket 0).
const EXP_MIN: i32 = -20;
/// Largest tracked binary exponent (values at or above `2^(EXP_MAX+1)`
/// clamp to the last bucket).
const EXP_MAX: i32 = 43;
/// Number of octaves tracked.
const OCTAVES: u32 = (EXP_MAX - EXP_MIN + 1) as u32;
/// Total finite buckets (excluding the zero bucket).
const BUCKETS: usize = (OCTAVES * SUBS) as usize;

/// Largest value representable without clamping; observations above it
/// (including `+inf`) are clamped here so `sum` stays finite.
const MAX_TRACKABLE: f64 = (1u64 << (EXP_MAX + 1)) as f64;

/// Bucket index for a strictly positive finite value.
fn bucket_index(value: f64) -> usize {
    let bits = value.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023; // subnormals => -1023, clamps low
    if exp < EXP_MIN {
        return 0;
    }
    if exp > EXP_MAX {
        return BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as u32;
    ((exp - EXP_MIN) as u32 * SUBS + sub) as usize
}

/// `[lower, upper)` value bounds of a bucket index.
pub(crate) fn bucket_bounds(index: u32) -> (f64, f64) {
    let octave = index / SUBS;
    let sub = index % SUBS;
    let base = (EXP_MIN + octave as i32) as f64;
    let lo = base.exp2() * (1.0 + sub as f64 / SUBS as f64);
    let hi = if sub + 1 == SUBS {
        (base + 1.0).exp2()
    } else {
        base.exp2() * (1.0 + (sub + 1) as f64 / SUBS as f64)
    };
    (lo, hi)
}

/// A mutable log-linear histogram. Not thread-safe by itself — wrap in
/// a lock (as [`crate::MetricsRegistry`] does) or keep one per thread
/// and [`merge`](LogHistogram::merge_from) at the end.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    /// Observations of zero or negative values.
    zeros: u64,
    /// NaN observations rejected (never counted into `count`/`sum`).
    nan_rejected: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram. Bucket storage is allocated lazily on the
    /// first positive observation.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: Vec::new(),
            zeros: 0,
            nan_rejected: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Records one observation.
    ///
    /// NaN is rejected (tracked in the `nan_rejected` tally) so a single
    /// bad sample can never poison `sum`/`mean`; negative values clamp
    /// to the zero bucket; values above [`MAX_TRACKABLE`] (including
    /// `+inf`) clamp to the top bucket. Returns whether the value was
    /// accepted.
    pub fn observe(&mut self, value: f64) -> bool {
        if value.is_nan() {
            self.nan_rejected += 1;
            return false;
        }
        let clamped = value.clamp(0.0, MAX_TRACKABLE);
        if clamped <= 0.0 {
            self.zeros += 1;
        } else {
            if self.counts.is_empty() {
                self.counts = vec![0; BUCKETS];
            }
            self.counts[bucket_index(clamped)] += 1;
        }
        self.count += 1;
        self.sum += clamped;
        self.min = self.min.min(clamped);
        self.max = self.max.max(clamped);
        true
    }

    /// Total accepted observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram's observations into this one.
    pub fn merge_from(&mut self, other: &LogHistogram) {
        if !other.counts.is_empty() {
            if self.counts.is_empty() {
                self.counts = vec![0; BUCKETS];
            }
            for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
                *mine += theirs;
            }
        }
        self.zeros += other.zeros;
        self.nan_rejected += other.nan_rejected;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A serializable snapshot holding only the non-empty buckets.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| HistogramBucket { index: index as u32, count })
            .collect();
        HistogramSnapshot {
            name: name.to_owned(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: self.max,
            zeros: self.zeros,
            nan_rejected: self.nan_rejected,
            buckets,
        }
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Dense log-linear bucket index (see [`HistogramBucket::bounds`]).
    pub index: u32,
    /// Observations in this bucket.
    pub count: u64,
}

impl HistogramBucket {
    /// `[lower, upper)` value bounds of this bucket.
    pub fn bounds(&self) -> (f64, f64) {
        bucket_bounds(self.index)
    }
}

/// Serializable, mergeable point-in-time view of a [`LogHistogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total accepted observations (including zeros).
    pub count: u64,
    /// Sum of accepted observations (clamped; never NaN).
    pub sum: f64,
    /// Smallest accepted observation, 0.0 when empty.
    pub min: f64,
    /// Largest accepted observation, 0.0 when empty.
    pub max: f64,
    /// Observations that were zero or negative.
    pub zeros: u64,
    /// NaN observations rejected.
    pub nan_rejected: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Mean of accepted observations, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by walking the
    /// cumulative bucket counts and reporting the matched bucket's
    /// midpoint, clamped to the observed `[min, max]`. Relative error is
    /// bounded by half the bucket width (~1.6%).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = self.zeros;
        if cumulative >= rank {
            return 0.0;
        }
        for bucket in &self.buckets {
            cumulative += bucket.count;
            if cumulative >= rank {
                let (lo, hi) = bucket.bounds();
                return (0.5 * (lo + hi)).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Folds another snapshot into this one (sparse bucket-list merge).
    /// The result is identical to snapshotting a single histogram that
    /// saw both observation streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 && other.nan_rejected == 0 {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
            match x.index.cmp(&y.index) {
                std::cmp::Ordering::Less => {
                    merged.push(x.clone());
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    merged.push(y.clone());
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    merged.push(HistogramBucket { index: x.index, count: x.count + y.count });
                    a.next();
                    b.next();
                }
            }
        }
        merged.extend(a.cloned());
        merged.extend(b.cloned());
        self.buckets = merged;
        self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.zeros += other.zeros;
        self.nan_rejected += other.nan_rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe_all(values: &[f64]) -> LogHistogram {
        let mut h = LogHistogram::new();
        for &v in values {
            h.observe(v);
        }
        h
    }

    #[test]
    fn bucket_bounds_contain_the_values_that_map_to_them() {
        for &v in &[1e-6, 0.004, 0.72, 1.0, 3.5, 17.0, 1000.0, 123456.789, 9.9e12] {
            let idx = bucket_index(v) as u32;
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v < hi, "value {v} outside bucket {idx} bounds [{lo}, {hi})");
        }
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for idx in [0u32, 31, 32, 640, 1000, BUCKETS as u32 - 1] {
            let (lo, hi) = bucket_bounds(idx);
            assert!((hi - lo) / lo <= 1.0 / 16.0 + 1e-12, "bucket {idx} too wide");
        }
    }

    #[test]
    fn quantiles_are_within_bucket_error_of_exact() {
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let snap = observe_all(&values).snapshot("t");
        for (q, exact) in [(0.5, 5000.0), (0.9, 9000.0), (0.99, 9900.0), (0.999, 9990.0)] {
            let est = snap.quantile(q);
            let err = (est - exact).abs() / exact;
            assert!(err < 0.02, "q={q}: estimate {est} vs exact {exact} (err {err})");
        }
        assert_eq!(snap.quantile(1.0), 10_000.0);
        assert_eq!(snap.min, 1.0);
        assert_eq!(snap.max, 10_000.0);
    }

    #[test]
    fn nan_is_rejected_and_cannot_poison_the_mean() {
        let mut h = LogHistogram::new();
        assert!(h.observe(10.0));
        assert!(!h.observe(f64::NAN));
        assert!(h.observe(30.0));
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.nan_rejected, 1);
        assert_eq!(snap.mean(), 20.0);
        assert!(!snap.sum.is_nan());
    }

    #[test]
    fn negative_and_zero_values_clamp_to_the_zero_bucket() {
        let snap = observe_all(&[-5.0, 0.0, 2.0]).snapshot("t");
        assert_eq!(snap.zeros, 2);
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 2.0);
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.quantile(0.5), 0.0);
    }

    #[test]
    fn infinity_clamps_to_the_top_bucket() {
        let mut h = LogHistogram::new();
        h.observe(f64::INFINITY);
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 1);
        assert!(snap.sum.is_finite());
        assert_eq!(snap.buckets.len(), 1);
        assert_eq!(snap.buckets[0].index, BUCKETS as u32 - 1);
    }

    #[test]
    fn snapshot_merge_matches_single_histogram() {
        let left: Vec<f64> = (1..500).map(|i| i as f64 * 1.7).collect();
        let right: Vec<f64> = (1..800).map(|i| i as f64 * 0.3).collect();
        let mut both = left.clone();
        both.extend(&right);

        let mut merged = observe_all(&left).snapshot("t");
        merged.merge(&observe_all(&right).snapshot("t"));
        let single = observe_all(&both).snapshot("t");
        assert_eq!(merged, single);
    }

    #[test]
    fn live_merge_matches_snapshot_merge() {
        let mut a = observe_all(&[1.0, 2.0, 3.0]);
        let b = observe_all(&[0.5, 9.0, -1.0]);
        let mut expect = a.snapshot("t");
        expect.merge(&b.snapshot("t"));
        a.merge_from(&b);
        assert_eq!(a.snapshot("t"), expect);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = observe_all(&[0.001, 1.0, 250.0, 1e9, -3.0]).snapshot("lat");
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let snap = LogHistogram::new().snapshot("t");
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.99), 0.0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.min, 0.0);
    }
}
