//! Observability for the EVEREST pipeline: span tracing, metrics, and
//! Chrome-trace export.
//!
//! The crate has three layers:
//!
//! * [`trace`] — a thread-safe [`Tracer`] handing out RAII [`Span`]
//!   guards. Spans record name, category, start/end timestamps (µs),
//!   nesting (parent span ids), and `key=value` attributes. The global
//!   tracer defaults to a no-op that performs **no heap allocation per
//!   span**, so instrumented code costs nearly nothing when tracing is
//!   off.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges, and
//!   HDR-style log-bucketed [`histogram`]s with percentile estimation
//!   and a serializable, mergeable [`MetricsSnapshot`].
//! * [`recorder`] — the always-on [`FlightRecorder`]: a bounded ring of
//!   recent structured events per thread, dumped on demand or when a
//!   runtime alarm fires. Reach it via [`flight`].
//! * [`export`] / [`openmetrics`] — exporters: Chrome trace-event JSON
//!   (loadable in `chrome://tracing` / Perfetto), a human-readable
//!   flame summary table, and OpenMetrics/Prometheus text.
//!
//! Instrumented crates call [`span`] / [`metrics`](fn@metrics)
//! unconditionally; a front-end (e.g. `everestc --trace`) opts in by
//! installing a recording tracer via [`install_global`].
//!
//! ```
//! use everest_telemetry as telemetry;
//!
//! telemetry::install_global(telemetry::Tracer::recording());
//! {
//!     let mut span = telemetry::span("compile", "sdk");
//!     span.attr("kernel", "fft");
//! }
//! let spans = telemetry::take_global().finish();
//! assert_eq!(spans.len(), 1);
//! let json = telemetry::export::chrome_trace_json(
//!     &telemetry::export::spans_to_events(&spans),
//! );
//! assert!(json.starts_with('['));
//! ```

pub mod export;
pub mod histogram;
pub mod metrics;
pub mod openmetrics;
pub mod recorder;
pub mod trace;

pub use export::TraceEvent;
pub use histogram::{HistogramSnapshot, LogHistogram};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use recorder::{EventKind, FlightDump, FlightEvent, FlightRecorder, DEFAULT_RING_CAPACITY};
pub use trace::{Span, SpanRecord, Tracer};

use parking_lot::RwLock;

static GLOBAL: RwLock<Tracer> = RwLock::new(Tracer::disabled());
static METRICS: MetricsRegistry = MetricsRegistry::new();
static FLIGHT: FlightRecorder = FlightRecorder::new();

/// Replaces the global tracer (usually with [`Tracer::recording`]).
pub fn install_global(tracer: Tracer) {
    *GLOBAL.write() = tracer;
}

/// A handle to the current global tracer.
pub fn global() -> Tracer {
    GLOBAL.read().clone()
}

/// Swaps the global tracer back to disabled and returns the old one, so
/// its spans can be [`Tracer::finish`]ed exactly once.
pub fn take_global() -> Tracer {
    std::mem::take(&mut *GLOBAL.write())
}

/// Opens a span on the global tracer. A no-op (no heap allocation) while
/// the global tracer is disabled.
pub fn span(name: &str, category: &str) -> Span {
    GLOBAL.read().span(name, category)
}

/// The process-wide metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    &METRICS
}

/// The process-wide flight recorder (always on, bounded overhead).
pub fn flight() -> &'static FlightRecorder {
    &FLIGHT
}
