//! The tracer: thread-safe span collection with RAII guards.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One finished span, in tracer-relative microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the tracer.
    pub id: u64,
    /// Id of the span that was open on the same thread when this one
    /// began, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `ir.pass.cse`.
    pub name: String,
    /// Coarse grouping, e.g. `ir` or `sdk`.
    pub category: String,
    /// Start offset from the tracer epoch, µs.
    pub start_us: u64,
    /// End offset from the tracer epoch, µs.
    pub end_us: u64,
    /// Small dense id of the recording thread.
    pub tid: u32,
    /// `key=value` attributes attached via [`Span::attr`].
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

struct Core {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

// Per-thread stack of open span ids, used to assign parent links, plus a
// small dense thread id (Chrome trace tids read better than OS tids).
thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(1);

pub(crate) fn current_tid() -> u32 {
    THREAD_ID.with(|cell| {
        let mut tid = cell.get();
        if tid == 0 {
            tid = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(tid);
        }
        tid
    })
}

/// A thread-safe span collector. Cloning yields another handle to the
/// same underlying buffer; a disabled tracer is a pure no-op.
#[derive(Clone)]
pub struct Tracer {
    core: Option<Arc<Core>>,
}

impl Tracer {
    /// A tracer that records nothing and allocates nothing per span.
    pub const fn disabled() -> Tracer {
        Tracer { core: None }
    }

    /// A tracer that records spans, with its epoch set to "now".
    pub fn recording() -> Tracer {
        Tracer {
            core: Some(Arc::new(Core {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether spans opened on this tracer are recorded.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Opens a span. The span ends (and is recorded) when the returned
    /// guard drops. On a disabled tracer this performs no heap
    /// allocation.
    pub fn span(&self, name: &str, category: &str) -> Span {
        let Some(core) = &self.core else {
            return Span { active: None };
        };
        let id = core.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        Span {
            active: Some(Box::new(ActiveSpan {
                core: Arc::clone(core),
                id,
                parent,
                name: name.to_owned(),
                category: category.to_owned(),
                start: Instant::now(),
                attrs: Vec::new(),
            })),
        }
    }

    /// Drains every span recorded so far, ordered by start time.
    pub fn finish(&self) -> Vec<SpanRecord> {
        let Some(core) = &self.core else {
            return Vec::new();
        };
        let mut spans = std::mem::take(&mut *core.spans.lock());
        spans.sort_by_key(|s| (s.start_us, s.id));
        spans
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

struct ActiveSpan {
    core: Arc<Core>,
    id: u64,
    parent: Option<u64>,
    name: String,
    category: String,
    start: Instant,
    attrs: Vec<(String, String)>,
}

/// RAII guard for an open span; recording happens on drop.
pub struct Span {
    active: Option<Box<ActiveSpan>>,
}

impl Span {
    /// Attaches a `key=value` attribute. No-op on a disabled tracer.
    pub fn attr(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key.to_owned(), value.to_string()));
        }
    }

    /// Whether this span is being recorded.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end = Instant::now();
        SPAN_STACK.with(|stack| {
            // Guards are stack-ordered per thread, so the top entry is
            // this span except when a guard crossed threads; retain()
            // keeps the stack consistent either way.
            let mut stack = stack.borrow_mut();
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != active.id);
            }
        });
        let epoch = active.core.epoch;
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            category: active.category,
            start_us: active.start.duration_since(epoch).as_micros() as u64,
            end_us: end.duration_since(epoch).as_micros() as u64,
            tid: current_tid(),
            attrs: active.attrs,
        };
        active.core.spans.lock().push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_via_parent_ids() {
        let tracer = Tracer::recording();
        {
            let _outer = tracer.span("outer", "test");
            {
                let _inner = tracer.span("inner", "test");
            }
            let _sibling = tracer.span("sibling", "test");
        }
        let spans = tracer.finish();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let sibling = spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.end_us <= outer.end_us);
    }

    #[test]
    fn attrs_are_recorded_in_order() {
        let tracer = Tracer::recording();
        {
            let mut span = tracer.span("op", "test");
            span.attr("kernel", "fft");
            span.attr("variants", 4);
        }
        let spans = tracer.finish();
        assert_eq!(
            spans[0].attrs,
            vec![("kernel".to_owned(), "fft".to_owned()), ("variants".to_owned(), "4".to_owned())]
        );
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        {
            let mut span = tracer.span("op", "test");
            span.attr("ignored", 1);
            assert!(!span.is_recording());
        }
        assert!(tracer.finish().is_empty());
    }

    #[test]
    fn finish_drains_once() {
        let tracer = Tracer::recording();
        drop(tracer.span("op", "test"));
        assert_eq!(tracer.finish().len(), 1);
        assert!(tracer.finish().is_empty());
    }

    #[test]
    fn concurrent_spans_get_distinct_ids_and_tids() {
        let tracer = Tracer::recording();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    let _span = tracer.span(&format!("worker-{i}"), "test");
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let spans = tracer.finish();
        assert_eq!(spans.len(), 4);
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
        // Each spawned thread gets its own tid and an empty stack, so no
        // cross-thread parent links appear.
        assert!(spans.iter().all(|s| s.parent.is_none()));
    }
}
