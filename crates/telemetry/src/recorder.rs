//! The always-on flight recorder: a bounded ring of recent structured
//! events per thread, dumpable on demand or when an alarm fires.
//!
//! Full span tracing is either off or on; the flight recorder fills the
//! gap between them. Every thread that records events owns a private
//! fixed-capacity ring buffer (its mutex is touched by no other thread
//! outside of dumps, so the hot path is an uncontended lock — one CAS —
//! plus a slot write). Old events are overwritten in place, bounding
//! both memory and time: the recorder never allocates per event after
//! its ring is created, and setting the capacity to zero reduces
//! [`FlightRecorder::record`] to a single relaxed atomic load.
//!
//! [`FlightRecorder::dump`] merges every thread's ring into one
//! time-ordered [`FlightDump`] — a post-hoc "what just happened" trace.
//! [`FlightRecorder::alarm`] additionally captures a dump automatically
//! so the events *leading up to* a `RuntimeMonitor` alarm survive even
//! if nobody was watching; [`FlightRecorder::take_alarm_dump`] retrieves
//! the most recent one.

use crate::trace::current_tid;
use parking_lot::Mutex;
use std::cell::OnceCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// What a [`FlightEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span began (value = nesting depth, when known).
    SpanBegin,
    /// A span ended (value = duration in µs).
    SpanEnd,
    /// A counter was bumped (value = delta).
    CounterAdd,
    /// A gauge was set (value = new value).
    GaugeSet,
    /// A histogram observation (value = observed value).
    Observe,
    /// An alarm fired (value = alarm payload, e.g. latency µs).
    Alarm,
    /// A free-form marker (value is event-specific).
    Marker,
}

impl EventKind {
    /// Stable lowercase name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::CounterAdd => "counter_add",
            EventKind::GaugeSet => "gauge_set",
            EventKind::Observe => "observe",
            EventKind::Alarm => "alarm",
            EventKind::Marker => "marker",
        }
    }
}

/// One recorded event. `name` is `&'static str` by design: recording
/// must not allocate, and every instrumentation site names its events
/// with literals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Microseconds since the recorder epoch (first event process-wide).
    pub ts_us: u64,
    /// Dense id of the recording thread (shared with span records).
    pub tid: u32,
    /// Event kind.
    pub kind: EventKind,
    /// Event name, e.g. `offload.fault`.
    pub name: &'static str,
    /// Kind-specific payload.
    pub value: f64,
}

struct RingBuf {
    slots: Vec<FlightEvent>,
    capacity: usize,
    /// Next overwrite position once full (the oldest slot). Tracked
    /// directly so the hot path never divides.
    head: usize,
    /// Total events ever pushed; `written - slots.len()` were overwritten.
    written: u64,
}

impl RingBuf {
    fn push(&mut self, event: FlightEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            self.slots[self.head] = event;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
        self.written += 1;
    }

    /// Events oldest-first.
    fn ordered(&self) -> Vec<FlightEvent> {
        if self.slots.len() < self.capacity || self.capacity == 0 {
            return self.slots.clone();
        }
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.slots[self.head..]);
        out.extend_from_slice(&self.slots[..self.head]);
        out
    }
}

struct Ring {
    tid: u32,
    buf: Mutex<RingBuf>,
}

thread_local! {
    static THREAD_RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

/// The process-wide flight recorder. Use [`crate::flight`] to reach the
/// global instance; constructing more is possible but they would share
/// the per-thread rings, so don't.
pub struct FlightRecorder {
    capacity: AtomicUsize,
    rings: Mutex<Vec<Arc<Ring>>>,
    epoch: OnceLock<Instant>,
    last_alarm: Mutex<Option<FlightDump>>,
}

impl FlightRecorder {
    pub(crate) const fn new() -> FlightRecorder {
        FlightRecorder {
            capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
            rings: Mutex::new(Vec::new()),
            epoch: OnceLock::new(),
            last_alarm: Mutex::new(None),
        }
    }

    /// Current per-thread ring capacity; 0 means disabled.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Resizes every ring (existing events are dropped) and sets the
    /// capacity for rings created later. `0` disables recording:
    /// [`record`](FlightRecorder::record) becomes one atomic load.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        for ring in self.rings.lock().iter() {
            let mut buf = ring.buf.lock();
            buf.slots = Vec::with_capacity(capacity);
            buf.capacity = capacity;
            buf.head = 0;
            buf.written = 0;
        }
    }

    #[inline]
    fn now_us(&self) -> u64 {
        let epoch = *self.epoch.get_or_init(Instant::now);
        // u64 arithmetic instead of `as_micros` — the u128 division is
        // measurable on the record fast path.
        let elapsed = epoch.elapsed();
        elapsed.as_secs() * 1_000_000 + u64::from(elapsed.subsec_micros())
    }

    /// Records one event into the calling thread's ring. Allocation-free
    /// after the thread's first event; near-free when disabled.
    #[inline]
    pub fn record(&self, kind: EventKind, name: &'static str, value: f64) {
        let capacity = self.capacity.load(Ordering::Relaxed);
        if capacity == 0 {
            return;
        }
        let ts_us = self.now_us();
        THREAD_RING.with(|cell| {
            let ring = cell.get_or_init(|| {
                let ring = Arc::new(Ring {
                    tid: current_tid(),
                    buf: Mutex::new(RingBuf {
                        slots: Vec::with_capacity(capacity),
                        capacity,
                        head: 0,
                        written: 0,
                    }),
                });
                self.rings.lock().push(Arc::clone(&ring));
                ring
            });
            ring.buf.lock().push(FlightEvent { ts_us, tid: ring.tid, kind, name, value });
        });
    }

    /// Shorthand for a [`EventKind::Marker`] event.
    #[inline]
    pub fn marker(&self, name: &'static str, value: f64) {
        self.record(EventKind::Marker, name, value);
    }

    /// Records an [`EventKind::Alarm`] event and, when no alarm dump is
    /// already pending, captures a dump of everything currently in the
    /// rings, retrievable via
    /// [`take_alarm_dump`](FlightRecorder::take_alarm_dump). Retaining
    /// the *first* un-taken dump (rather than replacing it) keeps the
    /// events closest to the root cause and bounds the cost of an alarm
    /// storm: follow-up alarms record one ring event each instead of
    /// re-merging every ring.
    pub fn alarm(&self, name: &'static str, value: f64) {
        self.record(EventKind::Alarm, name, value);
        if self.capacity() == 0 {
            return;
        }
        let mut pending = self.last_alarm.lock();
        if pending.is_none() {
            *pending = Some(self.dump(name));
        }
    }

    /// The dump captured by the most recent [`alarm`](FlightRecorder::alarm),
    /// if any, leaving `None` behind.
    pub fn take_alarm_dump(&self) -> Option<FlightDump> {
        self.last_alarm.lock().take()
    }

    /// Merges every thread's ring into one time-ordered dump.
    pub fn dump(&self, reason: &str) -> FlightDump {
        let rings = self.rings.lock();
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for ring in rings.iter() {
            let buf = ring.buf.lock();
            dropped += buf.written.saturating_sub(buf.slots.len() as u64);
            events.extend(buf.ordered());
        }
        let threads = rings.len();
        drop(rings);
        events.sort_by_key(|e| (e.ts_us, e.tid));
        FlightDump { reason: reason.to_owned(), threads, dropped, events }
    }

    /// Clears every ring and any retained alarm dump. Thread
    /// registrations survive so live threads keep recording.
    pub fn reset(&self) {
        for ring in self.rings.lock().iter() {
            let mut buf = ring.buf.lock();
            buf.slots.clear();
            buf.head = 0;
            buf.written = 0;
        }
        *self.last_alarm.lock() = None;
    }
}

/// A merged, time-ordered copy of every thread's recent events.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Why the dump was taken (alarm name, `"cli"`, ...).
    pub reason: String,
    /// Number of threads that had recorded events.
    pub threads: usize,
    /// Events overwritten before the dump (total across threads).
    pub dropped: u64,
    /// Surviving events, ordered by `(ts_us, tid)`.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Serializes the dump as JSON (events as objects with `ts_us`,
    /// `tid`, `kind`, `name`, `value`).
    pub fn to_json(&self) -> String {
        use serde_json::Value;
        fn uint(v: u64) -> Value {
            if v <= i64::MAX as u64 {
                Value::Int(v as i64)
            } else {
                Value::Float(v as f64)
            }
        }
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("ts_us".to_owned(), uint(e.ts_us)),
                    ("tid".to_owned(), Value::Int(e.tid as i64)),
                    ("kind".to_owned(), Value::Str(e.kind.as_str().to_owned())),
                    ("name".to_owned(), Value::Str(e.name.to_owned())),
                    ("value".to_owned(), Value::Float(e.value)),
                ])
            })
            .collect();
        let root = Value::Object(vec![
            ("reason".to_owned(), Value::Str(self.reason.clone())),
            ("threads".to_owned(), uint(self.threads as u64)),
            ("dropped".to_owned(), uint(self.dropped)),
            ("events".to_owned(), Value::Array(events)),
        ]);
        serde_json::to_string_pretty(&root).expect("value serializes")
    }
}
